(* Validation-service harness (`make serve-smoke` and the
   BENCH_service.json load generator).

   Everything runs against a real Server over loopback TCP — the same
   code path a remote client exercises — with a frozen campaign clock so
   the acceptance checks can demand byte identity:

   - two tenants submit and stream campaigns concurrently, and each
     streamed record sequence (and the server's on-disk journal) must be
     byte-identical to a batch Campaign.run of the same parameters;
   - the same campaigns served at every --concurrency {1,2,4} x
     --jobs {1,2} combination must stream the same bytes — runner slots
     and pool slicing are pure scheduling, never observable;
   - connections are persistent: sequential requests reuse one socket
     and the /metrics reuse counter proves it;
   - a SIGKILLed --concurrency 2 server with two campaigns mid-flight
     must, after restart from its state directory, finish both and leave
     journals + streams indistinguishable from uninterrupted runs;
   - quota rejections surface as HTTP 429, cancellation as a terminal
     "cancelled" stream, and /metrics as a Prometheus dump.

   The load generator measures submit->done latency per campaign across
   client/campaign mixes, then re-measures one fixed mix at server
   concurrency 1/2/4 (the concurrency_scaling block), and writes
   throughput + p50/p95/p99 to BENCH_service.json. *)

module Json = Scamv_util.Json
module Stopwatch = Scamv_util.Stopwatch
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Scheduler = Scamv_service.Scheduler
module Server = Scamv_service.Server
module Session = Scamv_service.Session
module Tenant = Scamv_service.Tenant
module Workload = Scamv_service.Workload

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("service: FAIL: " ^ m);
      exit 1)
    fmt

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Minimal HTTP/1.1 client                                             *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let read_line_crlf ic =
  match In_channel.input_line ic with
  | None -> fail "connection closed mid-response"
  | Some line ->
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_chunked ic =
  let b = Buffer.create 4096 in
  let rec loop () =
    let size_line = read_line_crlf ic in
    let size = int_of_string ("0x" ^ size_line) in
    if size > 0 then begin
      Buffer.add_string b (really_input_string ic size);
      let _crlf = read_line_crlf ic in
      loop ()
    end
    else
      let _trailer = read_line_crlf ic in
      ()
  in
  loop ();
  Buffer.contents b

let read_response ic =
  let status_line = read_line_crlf ic in
  let status =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> int_of_string code
    | _ -> fail "malformed status line %S" status_line
  in
  let rec headers acc =
    match read_line_crlf ic with
    | "" -> List.rev acc
    | line -> (
      match String.index_opt line ':' with
      | None -> fail "malformed response header %S" line
      | Some i ->
        headers
          (( String.lowercase_ascii (String.sub line 0 i),
             String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
          :: acc))
  in
  let headers = headers [] in
  let body =
    match List.assoc_opt "transfer-encoding" headers with
    | Some "chunked" -> read_chunked ic
    | _ -> (
      match List.assoc_opt "content-length" headers with
      | Some n -> really_input_string ic (int_of_string n)
      | None -> In_channel.input_all ic)
  in
  { status; headers; body }

(* A persistent (keep-alive) connection: every response is framed by
   Content-Length or chunked encoding, so the socket stays usable for the
   next request until [close:true] or [close_conn]. *)
type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let request_on c ~meth ~path ?(body = "") ?(close = false) () =
  Printf.fprintf c.oc "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %d\r\n%s\r\n%s"
    meth path (String.length body)
    (if close then "Connection: close\r\n" else "")
    body;
  flush c.oc;
  read_response c.ic

let request ~port ~meth ~path ?(body = "") () =
  let c = connect ~port in
  Fun.protect
    ~finally:(fun () -> close_conn c)
    (fun () -> request_on c ~meth ~path ~body ~close:true ())

let body_json r = Json.of_string r.body

let body_member r name =
  match Json.member name (body_json r) with
  | Some v -> v
  | None -> fail "response body missing field %s: %s" name r.body

let ndjson_lines body =
  String.split_on_char '\n' body |> List.filter (fun l -> l <> "")

let record_lines lines =
  List.filter (fun l -> String.length l >= 10 && String.sub l 0 10 = "{\"record\":") lines

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Submissions and batch references                                    *)
(* ------------------------------------------------------------------ *)

type spec = {
  tenant : string;
  template : string;
  setup : string;
  programs : int;
  tests : int;
  seed : int64 option;
}

let spec_body s =
  Json.to_string
    (Json.Obj
       ([
          ("tenant", Json.Str s.tenant);
          ("template", Json.Str s.template);
          ("setup", Json.Str s.setup);
          ("programs", Json.Num (float_of_int s.programs));
          ("tests_per_program", Json.Num (float_of_int s.tests));
        ]
       @
       match s.seed with
       | None -> []
       | Some v -> [ ("seed", Json.Str (Int64.to_string v)) ]))

let submit ~port s =
  let r = request ~port ~meth:"POST" ~path:"/campaigns" ~body:(spec_body s) () in
  if r.status <> 201 then fail "submit: expected 201, got %d (%s)" r.status r.body;
  match body_member r "id" with
  | Json.Str id -> id
  | _ -> fail "submit: non-string id in %s" r.body

let stream ~port id =
  let r = request ~port ~meth:"GET" ~path:(Printf.sprintf "/campaigns/%s/stream" id) () in
  if r.status <> 200 then fail "stream %s: expected 200, got %d" id r.status;
  if List.assoc_opt "transfer-encoding" r.headers <> Some "chunked" then
    fail "stream %s: response is not chunked" id;
  ndjson_lines r.body

(* Run the same campaign the service would, directly through
   Campaign.run, and return (journal file bytes, expected record lines). *)
let batch_reference s ~seed =
  let template =
    match Workload.lookup_template s.template with
    | Ok t -> t
    | Error e -> fail "batch reference: %s" e
  in
  let setup =
    match Workload.lookup_setup s.setup with
    | Ok m -> m
    | Error e -> fail "batch reference: %s" e
  in
  let cfg =
    Campaign.make
      ~name:(Workload.campaign_name ~setup:s.setup ~template:s.template)
      ~template ~setup ~view:(Workload.view_for s.setup) ~programs:s.programs
      ~tests_per_program:s.tests ~seed ~clock:Stopwatch.frozen ()
  in
  let path = Filename.temp_file "scamv-service-ref" ".journal" in
  Sys.remove path;
  let journal = Journal.create ~path () in
  let (_ : Campaign.outcome) = Campaign.run ~journal cfg in
  Journal.close journal;
  let bytes = read_file path in
  Sys.remove path;
  (bytes, List.map Session.record_line (Journal.events journal))

let check_stream_matches_batch ~what ~state_dir ~port id s ~seed =
  let lines = stream ~port id in
  let bytes, expected = batch_reference s ~seed in
  if record_lines lines <> expected then
    fail "%s: streamed records differ from batch run" what;
  (match List.rev lines with
  | last :: _ when has_prefix ~prefix:"{\"done\":\"completed\"" last -> ()
  | last :: _ -> fail "%s: stream ended with %s" what last
  | [] -> fail "%s: empty stream" what);
  let server_journal = Filename.concat state_dir (id ^ ".journal") in
  if read_file server_journal <> bytes then
    fail "%s: server journal differs from batch journal" what;
  Printf.printf "OK: %s byte-identical to batch (%d records)\n%!" what
    (List.length expected)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let scheduler_config ?state_dir ?(jobs = 1) ?(concurrency = 1)
    ?(quota = Tenant.default_quota) () =
  { Scheduler.jobs; concurrency; state_dir; quota; clock = Stopwatch.frozen }

let start_server scd =
  let srv = Server.create ~port:0 scd in
  Server.start srv;
  srv

(* ------------------------------------------------------------------ *)
(* Functional smoke suite                                              *)
(* ------------------------------------------------------------------ *)

let spec_alice = {
  tenant = "alice"; template = "A"; setup = "mct-vs-mspec";
  programs = 3; tests = 3; seed = Some 2021L;
}

let spec_bob = {
  tenant = "bob"; template = "C"; setup = "mspec1-vs-mspec";
  programs = 2; tests = 2; seed = Some 7L;
}

let smoke_two_tenants () =
  let dir = temp_dir "scamv-service" in
  let scd = Scheduler.create ~config:(scheduler_config ~state_dir:dir ~jobs:2 ()) () in
  let srv = start_server scd in
  let port = Server.port srv in
  let health = request ~port ~meth:"GET" ~path:"/healthz" () in
  if health.status <> 200 then fail "healthz: %d" health.status;
  (* Two tenants, submitted and streamed concurrently: the streams open
     while the campaigns are still queued/running, so this exercises the
     blocking wait path, not just replay of finished sessions. *)
  let id_a = submit ~port spec_alice in
  let id_b = submit ~port spec_bob in
  let results = Array.make 2 [] in
  let reader i id = Thread.create (fun () -> results.(i) <- stream ~port id) () in
  let ta = reader 0 id_a and tb = reader 1 id_b in
  Thread.join ta;
  Thread.join tb;
  check_stream_matches_batch ~what:"tenant alice campaign" ~state_dir:dir ~port
    id_a spec_alice ~seed:2021L;
  check_stream_matches_batch ~what:"tenant bob campaign" ~state_dir:dir ~port
    id_b spec_bob ~seed:7L;
  (* Status and listing. *)
  let st = request ~port ~meth:"GET" ~path:("/campaigns/" ^ id_a) () in
  if st.status <> 200 then fail "status: %d" st.status;
  (match body_member st "state" with
  | Json.Str "completed" -> ()
  | j -> fail "status: unexpected state %s" (Json.to_string j));
  let listing = request ~port ~meth:"GET" ~path:"/campaigns" () in
  (match Json.member "campaigns" (body_json listing) with
  | Some (Json.Arr l) when List.length l = 2 -> ()
  | _ -> fail "listing: expected 2 campaigns: %s" listing.body);
  (* Error surfaces. *)
  let miss = request ~port ~meth:"GET" ~path:"/campaigns/nope-0" () in
  if miss.status <> 404 then fail "missing campaign: expected 404, got %d" miss.status;
  let put = request ~port ~meth:"PUT" ~path:"/campaigns" () in
  if put.status <> 405 then fail "PUT /campaigns: expected 405, got %d" put.status;
  let bad = request ~port ~meth:"POST" ~path:"/campaigns" ~body:"{nope" () in
  if bad.status <> 400 then fail "bad JSON: expected 400, got %d" bad.status;
  let bad_setup =
    request ~port ~meth:"POST" ~path:"/campaigns"
      ~body:{|{"setup":"not-a-setup"}|} ()
  in
  if bad_setup.status <> 400 then fail "bad setup: expected 400, got %d" bad_setup.status;
  (* Prometheus export carries both campaign telemetry and service
     counters. *)
  let metrics = request ~port ~meth:"GET" ~path:"/metrics" () in
  if metrics.status <> 200 then fail "metrics: %d" metrics.status;
  List.iter
    (fun needle ->
      if not (contains_substring metrics.body needle) then
        fail "metrics: missing %s" needle)
    [
      "service_campaigns_completed 2";
      "service_campaigns_submitted 2";
      "service_http_requests";
      "service_sessions_total 2";
      "sat_conflicts";
    ];
  Server.stop srv;
  Scheduler.shutdown scd;
  Printf.printf "OK: two-tenant smoke (status/listing/errors/metrics)\n%!";
  dir

(* The same campaign served by a --jobs 1 server must stream the same
   bytes as the --jobs 2 server above. *)
let smoke_jobs_identity dir_jobs2 =
  let dir = temp_dir "scamv-service-j1" in
  let scd = Scheduler.create ~config:(scheduler_config ~state_dir:dir ~jobs:1 ()) () in
  let srv = start_server scd in
  let port = Server.port srv in
  let id = submit ~port spec_alice in
  let lines = stream ~port id in
  let bytes, expected = batch_reference spec_alice ~seed:2021L in
  if record_lines lines <> expected then
    fail "jobs identity: --jobs 1 stream differs from batch";
  let j1 = read_file (Filename.concat dir (id ^ ".journal")) in
  let j2 = read_file (Filename.concat dir_jobs2 (id ^ ".journal")) in
  if j1 <> bytes || j1 <> j2 then
    fail "jobs identity: journals differ across server --jobs levels";
  Server.stop srv;
  Scheduler.shutdown scd;
  Printf.printf "OK: served campaign byte-identical across --jobs 1/2 servers\n%!"

(* Quota backpressure and queued-cancel, over real HTTP against a
   scheduler with no runner thread (so sessions stay queued
   deterministically). *)
let smoke_backpressure_and_cancel () =
  let quota = { Tenant.max_backlog = 1; max_active = 1 } in
  let scd = Scheduler.create ~config:(scheduler_config ~quota ()) ~start:false () in
  let srv = start_server scd in
  let port = Server.port srv in
  let id = submit ~port { spec_alice with seed = None } in
  let r = request ~port ~meth:"POST" ~path:"/campaigns" ~body:(spec_body spec_alice) () in
  if r.status <> 429 then fail "backpressure: expected 429, got %d" r.status;
  if List.assoc_opt "retry-after" r.headers <> Some "1" then
    fail "backpressure: missing Retry-After";
  let del = request ~port ~meth:"DELETE" ~path:("/campaigns/" ^ id) () in
  if del.status <> 200 then fail "cancel: %d" del.status;
  (match body_member del "cancelled" with
  | Json.Bool true -> ()
  | j -> fail "cancel: expected true, got %s" (Json.to_string j));
  (* The freed backlog slot admits a new campaign. *)
  let id2 = submit ~port spec_bob in
  (* A cancelled queued campaign streams exactly one line: done. *)
  (match stream ~port id with
  | [ line ] when has_prefix ~prefix:"{\"done\":\"cancelled\"" line -> ()
  | lines -> fail "cancel: unexpected stream %s" (String.concat " | " lines));
  let del2 = request ~port ~meth:"DELETE" ~path:("/campaigns/" ^ id) () in
  (match body_member del2 "cancelled" with
  | Json.Bool false -> ()
  | _ -> fail "cancel: second DELETE should be a no-op");
  ignore id2;
  Server.stop srv;
  Scheduler.shutdown scd;
  Printf.printf "OK: quota 429 backpressure and queued-campaign cancel\n%!"

(* Persistent connections over the wire: three requests down one socket,
   with the server's own reuse counter as the witness. *)
let smoke_keep_alive () =
  let scd = Scheduler.create ~config:(scheduler_config ()) ~start:false () in
  let srv = start_server scd in
  let port = Server.port srv in
  let c = connect ~port in
  let r1 = request_on c ~meth:"GET" ~path:"/healthz" () in
  if r1.status <> 200 then fail "keep-alive: first request: %d" r1.status;
  if List.assoc_opt "connection" r1.headers <> Some "keep-alive" then
    fail "keep-alive: server did not advertise a persistent connection";
  let r2 = request_on c ~meth:"GET" ~path:"/healthz" () in
  if r2.status <> 200 then fail "keep-alive: second request: %d" r2.status;
  let r3 = request_on c ~meth:"GET" ~path:"/metrics" ~close:true () in
  if r3.status <> 200 then fail "keep-alive: metrics request: %d" r3.status;
  if not (contains_substring r3.body "service_connections_reused 2") then
    fail "keep-alive: reuse counter did not reach 2:\n%s" r3.body;
  if List.assoc_opt "connection" r3.headers <> Some "close" then
    fail "keep-alive: Connection: close not honored";
  (match In_channel.input_line c.ic with
  | None -> ()
  | Some _ -> fail "keep-alive: connection still open after Connection: close");
  close_conn c;
  Server.stop srv;
  Scheduler.shutdown scd;
  Printf.printf "OK: persistent connection served 3 requests (2 reuses counted)\n%!"

(* The tentpole acceptance: the same two campaigns served at every
   --concurrency {1,2,4} x --jobs {1,2} combination stream and journal
   exactly the batch bytes. *)
let smoke_concurrency_identity () =
  let refs =
    List.map
      (fun s -> (s, batch_reference s ~seed:(Option.get s.seed)))
      [ spec_alice; spec_bob ]
  in
  List.iter
    (fun (concurrency, jobs) ->
      let dir = temp_dir "scamv-service-conc" in
      let scd =
        Scheduler.create
          ~config:(scheduler_config ~state_dir:dir ~jobs ~concurrency ())
          ()
      in
      let srv = start_server scd in
      let port = Server.port srv in
      (* submit both before streaming so they are in flight together *)
      let ids = List.map (fun (s, _) -> submit ~port s) refs in
      List.iter2
        (fun id (s, (bytes, expected)) ->
          let lines = stream ~port id in
          if record_lines lines <> expected then
            fail
              "concurrency identity: --concurrency %d --jobs %d: %s stream \
               differs from batch"
              concurrency jobs s.tenant;
          if read_file (Filename.concat dir (id ^ ".journal")) <> bytes then
            fail
              "concurrency identity: --concurrency %d --jobs %d: %s journal \
               differs from batch"
              concurrency jobs s.tenant)
        ids refs;
      Server.stop srv;
      Scheduler.shutdown scd)
    [ (1, 1); (1, 2); (2, 1); (2, 2); (4, 1); (4, 2) ];
  Printf.printf
    "OK: served campaigns byte-identical to batch across --concurrency \
     {1,2,4} x --jobs {1,2}\n\
     %!"

(* ------------------------------------------------------------------ *)
(* Kill + resume                                                       *)
(* ------------------------------------------------------------------ *)

let spec_carol = {
  tenant = "carol"; template = "A"; setup = "mct-vs-mspec";
  programs = 10; tests = 4; seed = None;  (* namespace seed *)
}

let spec_dave = {
  tenant = "dave"; template = "A"; setup = "mct-vs-mspec";
  programs = 8; tests = 3; seed = None;  (* namespace seed *)
}

(* The `service-child` subcommand: a real server on an ephemeral port,
   state in [dir], prints "PORT <n>" and serves until SIGKILLed. *)
let child ?(concurrency = 1) dir =
  let scd =
    Scheduler.create ~config:(scheduler_config ~state_dir:dir ~concurrency ()) ()
  in
  let srv = start_server scd in
  Printf.printf "PORT %d\n%!" (Server.port srv);
  while true do
    Unix.sleepf 3600.0
  done

let kill_resume () =
  let dir = temp_dir "scamv-service-kr" in
  let out_read, out_write = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "service-child"; dir; "2" |]
      Unix.stdin out_write Unix.stderr
  in
  Unix.close out_write;
  let child_out = Unix.in_channel_of_descr out_read in
  let port =
    match In_channel.input_line child_out with
    | Some line when has_prefix ~prefix:"PORT " line ->
      int_of_string (String.sub line 5 (String.length line - 5))
    | _ -> fail "service child did not report its port"
  in
  (* Two tenants' campaigns in flight on the concurrency-2 child. *)
  let id_carol = submit ~port spec_carol in
  let id_dave = submit ~port spec_dave in
  (* Wait for journal records from both campaigns to reach the child's
     disk, then SIGKILL it mid-campaign.  (On a very fast machine a
     campaign may already be done — recovery of a completed session is
     exercised instead.) *)
  let size id =
    try (Unix.stat (Filename.concat dir (id ^ ".journal"))).Unix.st_size
    with Unix.Unix_error _ -> 0
  in
  let give_up = Unix.gettimeofday () +. 120.0 in
  while size id_carol < 200 || size id_dave < 200 do
    if Unix.gettimeofday () > give_up then
      fail "service child wrote no journal records within 120s";
    Unix.sleepf 0.02
  done;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  close_in child_out;
  (* Restart "the server" from the same state directory: recovery must
     re-enqueue both interrupted campaigns and finish them.  The restart
     also runs at --concurrency 2, so recovered sessions land back on
     derived runner slots. *)
  let scd =
    Scheduler.create ~config:(scheduler_config ~state_dir:dir ~concurrency:2 ()) ()
  in
  let srv = start_server scd in
  let port = Server.port srv in
  Scheduler.drain scd;
  List.iter
    (fun (id, s) ->
      let seed = Tenant.derive_seed ~tenant:s.tenant ~sequence:0 in
      check_stream_matches_batch
        ~what:(Printf.sprintf "kill+resume campaign (%s)" s.tenant)
        ~state_dir:dir ~port id s ~seed)
    [ (id_carol, spec_carol); (id_dave, spec_dave) ];
  Server.stop srv;
  Scheduler.shutdown scd

(* ------------------------------------------------------------------ *)
(* Load generator                                                      *)
(* ------------------------------------------------------------------ *)

type mix = {
  mix_name : string;
  clients : int;  (** concurrent tenants, one submitting thread each *)
  campaigns_per_client : int;
  mix_template : string;
  mix_setup : string;
  mix_programs : int;
  mix_tests : int;
}

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let run_mix ~port mix =
  let latencies = Array.make (mix.clients * mix.campaigns_per_client) 0.0 in
  let t0 = Unix.gettimeofday () in
  let client c =
    Thread.create
      (fun () ->
        for j = 0 to mix.campaigns_per_client - 1 do
          let s =
            {
              tenant = Printf.sprintf "%s-t%d" mix.mix_name c;
              template = mix.mix_template;
              setup = mix.mix_setup;
              programs = mix.mix_programs;
              tests = mix.mix_tests;
              seed = None;
            }
          in
          let start = Unix.gettimeofday () in
          let id = submit ~port s in
          let lines = stream ~port id in
          (match List.rev lines with
          | last :: _ when has_prefix ~prefix:"{\"done\":\"completed\"" last -> ()
          | _ -> fail "load mix %s: campaign %s did not complete" mix.mix_name id);
          latencies.((c * mix.campaigns_per_client) + j) <-
            Unix.gettimeofday () -. start
        done)
      ()
  in
  let threads = List.init mix.clients client in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let campaigns = Array.length latencies in
  Printf.printf
    "mix %-12s %d clients x %d campaigns: %.2fs wall, %.2f campaigns/s, p50 %.3fs p95 %.3fs p99 %.3fs\n%!"
    mix.mix_name mix.clients mix.campaigns_per_client wall
    (float_of_int campaigns /. wall)
    (percentile latencies 0.50) (percentile latencies 0.95)
    (percentile latencies 0.99);
  Json.Obj
    [
      ("name", Json.Str mix.mix_name);
      ("clients", Json.Num (float_of_int mix.clients));
      ("campaigns", Json.Num (float_of_int campaigns));
      ("programs_per_campaign", Json.Num (float_of_int mix.mix_programs));
      ("tests_per_program", Json.Num (float_of_int mix.mix_tests));
      ("template", Json.Str mix.mix_template);
      ("setup", Json.Str mix.mix_setup);
      ("wall_seconds", Json.Num wall);
      ("throughput_campaigns_per_second", Json.Num (float_of_int campaigns /. wall));
      ( "latency_seconds",
        Json.Obj
          [
            ("p50", Json.Num (percentile latencies 0.50));
            ("p95", Json.Num (percentile latencies 0.95));
            ("p99", Json.Num (percentile latencies 0.99));
            ("max", Json.Num latencies.(campaigns - 1));
          ] );
    ]

(* Concurrency scaling: the same fixed mix re-measured against a fresh
   server at --concurrency 1/2/4, the pool budget sliced accordingly.
   Runs at concurrency > 1 carry the honesty flag [cores_limited]: on a
   machine with no spare cores (CI containers routinely schedule a single
   core) extra runner slots cannot pay off, and the flag keeps a reader
   from mistaking that for a scaling bug. *)
let concurrency_scaling ~smoke () =
  let levels = [ 1; 2; 4 ] in
  let mk_mix concurrency =
    {
      mix_name = Printf.sprintf "concurrency-%d" concurrency;
      clients = 4;
      campaigns_per_client = (if smoke then 2 else 6);
      mix_template = "A";
      mix_setup = "mct-vs-mspec";
      mix_programs = 2;
      mix_tests = 2;
    }
  in
  let throughput j =
    match Json.member "throughput_campaigns_per_second" j with
    | Some (Json.Num n) -> n
    | _ -> fail "concurrency scaling: mix result lost its throughput"
  in
  let runs =
    List.map
      (fun concurrency ->
        (* total pool budget = concurrency, so every runner slot gets a
           width-1 slice and slots scale without oversubscribing a core
           more than the slot count itself does *)
        let scd =
          Scheduler.create
            ~config:(scheduler_config ~jobs:concurrency ~concurrency ())
            ()
        in
        let srv = start_server scd in
        let result = run_mix ~port:(Server.port srv) (mk_mix concurrency) in
        Server.stop srv;
        Scheduler.shutdown scd;
        (concurrency, result))
      levels
  in
  let base = throughput (List.assoc 1 runs) in
  List.map
    (fun (concurrency, result) ->
      let t = throughput result in
      let fields = match result with Json.Obj f -> f | _ -> [] in
      Json.Obj
        ([
           ("concurrency", Json.Num (float_of_int concurrency));
           ( "speedup_vs_concurrency1",
             Json.Num (if base > 0. then t /. base else 0.) );
         ]
        @ (if concurrency > 1 then [ ("cores_limited", Json.Bool (t < base)) ]
           else [])
        @ fields))
    runs

let load ~smoke ~out () =
  let jobs = 2 in
  let scd = Scheduler.create ~config:(scheduler_config ~jobs ()) () in
  let srv = start_server scd in
  let port = Server.port srv in
  let scale n = if smoke then max 1 (n / 4) else n in
  let mixes =
    [
      {
        mix_name = "interactive";
        clients = 2;
        campaigns_per_client = scale 8;
        mix_template = "A";
        mix_setup = "mct-vs-mspec";
        mix_programs = 2;
        mix_tests = 2;
      };
      {
        mix_name = "throughput";
        clients = 4;
        campaigns_per_client = scale 4;
        mix_template = "C";
        mix_setup = "mct-unguided";
        mix_programs = 4;
        mix_tests = 3;
      };
    ]
  in
  Printf.printf "## Service load generator (%s)\n%!" (if smoke then "smoke" else "full");
  let results = List.map (run_mix ~port) mixes in
  Server.stop srv;
  Scheduler.shutdown scd;
  Printf.printf "## Concurrency scaling (%s)\n%!" (if smoke then "smoke" else "full");
  let scaling = concurrency_scaling ~smoke () in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "scamv-service-bench/v2");
        ("mode", Json.Str (if smoke then "smoke" else "full"));
        ("server_jobs", Json.Num (float_of_int jobs));
        ( "available_cores",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("mixes", Json.Arr results);
        ("concurrency_scaling", Json.Arr scaling);
      ]
  in
  Out_channel.with_open_bin out (fun oc -> Json.write ~pretty:true oc doc);
  Printf.printf "service bench written to %s\n%!" out

(* The `service-metrics` subcommand (`make metrics-smoke`): boot a
   --concurrency 2 server, run one campaign and a couple of keep-alive
   requests so the connection counters move, and dump /metrics to a file
   for `validate-telemetry` to check the service families. *)
let metrics_dump ~out () =
  let scd = Scheduler.create ~config:(scheduler_config ~concurrency:2 ()) () in
  let srv = start_server scd in
  let port = Server.port srv in
  let id = submit ~port { spec_alice with programs = 2; tests = 2 } in
  let (_ : string list) = stream ~port id in
  let c = connect ~port in
  let r1 = request_on c ~meth:"GET" ~path:"/healthz" () in
  if r1.status <> 200 then fail "metrics dump: healthz: %d" r1.status;
  let r = request_on c ~meth:"GET" ~path:"/metrics" ~close:true () in
  if r.status <> 200 then fail "metrics dump: /metrics: %d" r.status;
  close_conn c;
  Server.stop srv;
  Scheduler.shutdown scd;
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc r.body);
  Printf.printf "service metrics dump written to %s\n%!" out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let suite () =
  Printf.printf "## Service smoke suite\n%!";
  let dir_jobs2 = smoke_two_tenants () in
  smoke_jobs_identity dir_jobs2;
  smoke_keep_alive ();
  smoke_backpressure_and_cancel ();
  smoke_concurrency_identity ();
  kill_resume ();
  Printf.printf "service: all acceptance checks passed\n%!"
