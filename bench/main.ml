(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6) on the simulated platform, plus the ablation
   studies called out in DESIGN.md and bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 -- everything, scaled down
     dune exec bench/main.exe -- table1       -- Table 1 only
     dune exec bench/main.exe -- fig7         -- Fig. 7 table only
     dune exec bench/main.exe -- fig3         -- Fig. 3 class counts
     dune exec bench/main.exe -- ablations    -- ablation studies
     dune exec bench/main.exe -- micro        -- bechamel micro-benches
     dune exec bench/main.exe -- --full ...   -- paper-sized campaigns

   Absolute numbers differ from the paper (simulator vs 4 Raspberry Pi
   boards over 7 days); the *shape* — which campaigns find
   counterexamples, and the refined-vs-unguided ratios of Sec. A.6.1 —
   is the reproduction target.  See EXPERIMENTS.md. *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Core = Scamv_microarch.Core
module Refinement = Scamv_models.Refinement
module Catalog = Scamv_models.Catalog
module Region = Scamv_models.Region
module Templates = Scamv_gen.Templates
module Gen = Scamv_gen.Gen
module Campaign = Scamv.Campaign
module Pipeline = Scamv.Pipeline
module Stats = Scamv.Stats
module Text_table = Scamv_util.Text_table
module Exec = Scamv_symbolic.Exec
module Synth = Scamv_relation.Synth
module Solver = Scamv_smt.Solver
module T = Scamv_smt.Term

let platform = Platform.cortex_a53
let region = Region.paper_unaligned platform
let region_pa = Region.paper_page_aligned platform

(* Every benchmark here drives the AArch64 side; unwrap template draws
   once instead of threading the guest-program sum through the tables. *)
let arm_draw ~seed template =
  match (Gen.generate ~seed template).Templates.program with
  | Scamv_arch.Isa.Aarch64_program p -> p
  | Scamv_arch.Isa.Riscv_program _ ->
    invalid_arg "bench: AArch64 template expected"

let view_of_region (r : Region.t) =
  Executor.Region { first_set = r.Region.first_set; last_set = r.Region.last_set }

(* ------------------------------------------------------------------ *)
(* Campaign catalogue: one row per column of Table 1 / Fig. 7           *)
(* ------------------------------------------------------------------ *)

type row_spec = {
  id : string;
  template : Templates.t Gen.t;
  setup : Refinement.t;
  view : Executor.view;
  programs : int;  (* scaled-down default *)
  full_programs : int;  (* the paper's count *)
  tests : int;
  paper : string;  (* the paper's counterexample / experiments summary *)
}

let table1_rows =
  [
    {
      id = "Mpart unguided (Mpc)";
      template = Templates.stride;
      setup = Refinement.mpart_unguided platform region;
      view = view_of_region region;
      programs = 30;
      full_programs = 450;
      tests = 30;
      paper = "21 cx / 13752 exp";
    };
    {
      id = "Mpart + Mpart' (Mpc&Mline)";
      template = Templates.stride;
      setup = Refinement.mpart_vs_mpart' platform region;
      view = view_of_region region;
      programs = 30;
      full_programs = 450;
      tests = 30;
      paper = "447 cx / 18000 exp";
    };
    {
      id = "Mpart page-aligned unguided";
      template = Templates.stride;
      setup = Refinement.mpart_unguided platform region_pa;
      view = view_of_region region_pa;
      programs = 30;
      full_programs = 425;
      tests = 30;
      paper = "0 cx / 12860 exp";
    };
    {
      id = "Mpart page-aligned + Mpart'";
      template = Templates.stride;
      setup = Refinement.mpart_vs_mpart' platform region_pa;
      view = view_of_region region_pa;
      programs = 30;
      full_programs = 425;
      tests = 30;
      paper = "0 cx / 17000 exp";
    };
    {
      id = "Mct template A unguided";
      template = Templates.template_a;
      setup = Refinement.mct_unguided;
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 655;
      tests = 30;
      paper = "6 cx / 26200 exp";
    };
    {
      id = "Mct template A + Mspec";
      template = Templates.template_a;
      setup = Refinement.mct_vs_mspec ();
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 652;
      tests = 30;
      paper = "12462 cx / 25737 exp";
    };
    {
      id = "Mct template B unguided";
      template = Templates.template_b;
      setup = Refinement.mct_unguided;
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 942;
      tests = 30;
      paper = "0 cx / 37680 exp";
    };
    {
      id = "Mct template B + Mspec";
      template = Templates.template_b;
      setup = Refinement.mct_vs_mspec ();
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 941;
      tests = 30;
      paper = "4838 cx / 37640 exp";
    };
  ]

let fig7_rows =
  [
    {
      id = "Mct template C unguided";
      template = Templates.template_c;
      setup = Refinement.mct_unguided;
      view = Executor.Full_cache;
      programs = 8;
      full_programs = 8;
      tests = 100;
      paper = "0 cx / 8000 exp";
    };
    {
      id = "Mct template C + Mspec";
      template = Templates.template_c;
      setup = Refinement.mct_vs_mspec ();
      view = Executor.Full_cache;
      programs = 8;
      full_programs = 8;
      tests = 100;
      paper = "3423 cx / 8000 exp";
    };
    {
      id = "Mspec1 template C + Mspec";
      template = Templates.template_c;
      setup = Refinement.mspec1_vs_mspec ();
      view = Executor.Full_cache;
      programs = 8;
      full_programs = 8;
      tests = 100;
      paper = "0 cx / 8000 exp";
    };
    {
      id = "Mspec1 template B + Mspec";
      template = Templates.template_b;
      setup = Refinement.mspec1_vs_mspec ();
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 915;
      tests = 30;
      paper = "206 cx / 36600 exp";
    };
    {
      id = "Mct template D + Mspec'";
      template = Templates.template_d;
      setup = Refinement.mct_vs_mspec_straight_line ();
      view = Executor.Full_cache;
      programs = 30;
      full_programs = 478;
      tests = 30;
      paper = "0 cx / 47800 exp";
    };
  ]

let run_rows ~full ~title rows =
  Format.printf "@.## %s (%s campaigns)@.@.%!" title
    (if full then "paper-sized" else "scaled-down");
  let measured =
    List.map
      (fun spec ->
        let programs = if full then spec.full_programs else spec.programs in
        let cfg =
          Campaign.make ~name:spec.id ~template:spec.template ~setup:spec.setup
            ~view:spec.view ~programs ~tests_per_program:spec.tests ()
        in
        let outcome = Campaign.run cfg in
        (spec, outcome))
      rows
  in
  let rows_txt =
    List.map
      (fun (spec, (outcome : Campaign.outcome)) ->
        Stats.row ~name:spec.id outcome.Campaign.stats @ [ spec.paper ])
      measured
  in
  print_string
    (Text_table.render ~header:(Stats.header @ [ "paper (full scale)" ]) ~rows:rows_txt);
  measured

(* ------------------------------------------------------------------ *)
(* Fig. 3: partitioning of the input space                             *)
(* ------------------------------------------------------------------ *)

let x = Reg.x

let running_example =
  [|
    Ast.Ldr (x 2, { Ast.base = x 0; offset = Ast.Imm 0L; scale = 0 });
    Ast.Add (x 1, x 1, Ast.Imm 1L);
    Ast.Cmp (x 0, Ast.Reg (x 1));
    Ast.B_cond (Ast.Hs, 5);
    Ast.Ldr (x 3, { Ast.base = x 2; offset = Ast.Imm 0L; scale = 0 });
  |]

let fig3 () =
  Format.printf "@.## Fig. 3: equivalence classes of the running example@.@.";
  let module Model = Scamv_smt.Model in
  let module Obs = Scamv_bir.Obs in
  let module Vars = Scamv_bir.Vars in
  let domain =
    List.concat_map
      (fun x0 ->
        List.concat_map
          (fun x1 ->
            List.map (fun c -> (Int64.of_int x0, Int64.of_int x1, Int64.of_int c)) [ 0; 64 ])
          (List.init 8 Fun.id))
      (List.init 8 Fun.id)
  in
  let model_of (x0, x1, cell) =
    Model.empty
    |> fun m ->
    Model.add_var m (Vars.reg (x 0)) (Model.Bv (x0, 64))
    |> fun m ->
    Model.add_var m (Vars.reg (x 1)) (Model.Bv (x1, 64))
    |> fun m -> Model.add_mem_cell m Vars.mem_name ~addr:x0 ~value:cell
  in
  let count bir keep =
    let leaves = Exec.execute bir in
    let table = Hashtbl.create 64 in
    List.iter
      (fun input ->
        let model = model_of input in
        let leaf =
          List.find
            (fun (l : Exec.leaf) -> Scamv_smt.Eval.eval_bool model l.Exec.path_cond)
            leaves
        in
        let trace = Exec.concrete_obs model leaf |> List.filter (fun (t, _, _) -> keep t) in
        Hashtbl.replace table trace ())
      domain;
    Hashtbl.length table
  in
  let pc = count (Scamv_models.Model.annotate Catalog.mpc running_example) (fun t -> t = Obs.Base) in
  let ct = count (Scamv_models.Model.annotate Catalog.mct running_example) (fun t -> t = Obs.Base) in
  let spec =
    count
      (Refinement.annotate (Refinement.mct_vs_mspec ()) running_example)
      (fun t -> t = Obs.Base || t = Obs.Refined)
  in
  print_string
    (Text_table.render
       ~header:[ "panel"; "model"; "classes over 128 inputs" ]
       ~rows:
         [
           [ "(b) support"; "Mpc"; string_of_int pc ];
           [ "(a) under validation"; "Mct"; string_of_int ct ];
           [ "(c) refined"; "Mspec"; string_of_int spec ];
         ])

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ablation_projection () =
  (* Sec. 5.1: one symbolic execution with tagged observations vs running
     the pipeline separately for M1 and M2. *)
  Format.printf "@.## Ablation: single-run projection vs naive two-run refinement@.@.";
  let programs =
    List.init 20 (fun i ->
        arm_draw ~seed:(Int64.of_int (i + 1)) Templates.template_b)
  in
  let setup = Refinement.mct_vs_mspec () in
  let (), combined =
    time_it (fun () ->
        List.iter (fun p -> ignore (Exec.execute (Refinement.annotate setup p))) programs)
  in
  let (), naive =
    time_it (fun () ->
        List.iter
          (fun p ->
            ignore (Exec.execute (Scamv_models.Model.annotate Catalog.mct p));
            ignore (Exec.execute (Refinement.annotate setup p)))
          programs)
  in
  print_string
    (Text_table.render
       ~header:[ "strategy"; "symbolic-execution time (20 programs)" ]
       ~rows:
         [
           [ "tagged single run (Sec. 5.1)"; Printf.sprintf "%.4fs" combined ];
           [ "naive M1 + M2 runs"; Printf.sprintf "%.4fs" naive ];
           [ "saving"; Printf.sprintf "%.1f%%" (100. *. (1. -. (combined /. naive))) ];
         ])

let ablation_path_split () =
  (* Sec. 5.4: per-path-pair relations vs the monolithic Eq. 1 formula. *)
  Format.printf "@.## Ablation: per-path-pair relations vs monolithic Eq. 1@.@.";
  let program = arm_draw ~seed:3L Templates.template_b in
  let setup = Refinement.mct_unguided in
  let bir = Refinement.annotate setup program in
  let leaves = Exec.execute bir in
  let cfg = { Synth.platform; require_refined_difference = false } in
  let pairs = Synth.compatible_pairs leaves in
  let (), split_time =
    time_it (fun () ->
        List.iter
          (fun pair ->
            match Synth.pair_relation cfg leaves pair with
            | None -> ()
            | Some r ->
              let s = Solver.make_session r.Synth.assertions in
              for _ = 1 to 5 do
                ignore (Solver.next_model s)
              done)
          pairs)
  in
  let (), mono_time =
    time_it (fun () ->
        let full = Synth.full_equivalence cfg leaves in
        let s = Solver.make_session [ full ] in
        for _ = 1 to 5 * List.length pairs do
          ignore (Solver.next_model s)
        done)
  in
  print_string
    (Text_table.render
       ~header:[ "strategy"; "time for equal model count" ]
       ~rows:
         [
           [ "per-path-pair split (Sec. 5.4)"; Printf.sprintf "%.4fs" split_time ];
           [ "monolithic Eq. 1"; Printf.sprintf "%.4fs" mono_time ];
         ]);
  Format.printf
    "(note: the monolithic relation omits the per-path platform constraints@.\
    \ and provides no path-pair coverage - its models may all come from one@.\
    \ path pair, which is exactly what the round-robin split prevents)@."

let ablation_prefetch_threshold () =
  Format.printf "@.## Ablation: prefetcher trigger threshold vs Mpart violations@.@.";
  let rows =
    List.map
      (fun threshold ->
        let setup = Refinement.mpart_vs_mpart' platform region in
        let cfg =
          Campaign.make
            ~name:(Printf.sprintf "threshold %d" threshold)
            ~template:Templates.stride ~setup ~view:(view_of_region region) ~programs:15
            ~tests_per_program:20 ()
        in
        let cfg =
          {
            cfg with
            Campaign.executor =
              {
                cfg.Campaign.executor with
                Executor.core =
                  { cfg.Campaign.executor.Executor.core with Core.prefetch_threshold = threshold };
              };
          }
        in
        let s = (Campaign.run cfg).Campaign.stats in
        [
          string_of_int threshold;
          string_of_int s.Stats.counterexamples;
          string_of_int s.Stats.experiments;
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  print_string
    (Text_table.render
       ~header:[ "prefetch threshold (loads)"; "counterexamples"; "experiments" ]
       ~rows)

let ablation_spec_window () =
  Format.printf "@.## Ablation: speculation window vs Mct/template-C violations@.@.";
  let rows =
    List.map
      (fun window ->
        let setup = Refinement.mct_vs_mspec () in
        let cfg =
          Campaign.make
            ~name:(Printf.sprintf "window %d" window)
            ~template:Templates.template_c ~setup ~view:Executor.Full_cache ~programs:8
            ~tests_per_program:25 ()
        in
        let cfg =
          {
            cfg with
            Campaign.executor =
              {
                cfg.Campaign.executor with
                Executor.core =
                  { cfg.Campaign.executor.Executor.core with Core.spec_window = window };
              };
          }
        in
        let s = (Campaign.run cfg).Campaign.stats in
        [
          string_of_int window;
          string_of_int s.Stats.counterexamples;
          string_of_int s.Stats.experiments;
        ])
      [ 0; 1; 2; 4; 8; 16 ]
  in
  print_string
    (Text_table.render
       ~header:[ "speculation window (instrs)"; "counterexamples"; "experiments" ]
       ~rows)

let ablation_forwarding () =
  (* Sec. 6.5: the tailored model Mspec1 is core-specific.  On a core with
     speculative forwarding (classic Spectre-PHT microarchitecture) the
     dependent second load issues, so Mspec1 stops being sound. *)
  Format.printf "@.## Ablation: speculative forwarding vs Mspec1 soundness (template C)@.@.";
  let rows =
    List.map
      (fun (name, core_cfg) ->
        let cfg =
          Campaign.make ~name ~template:Templates.template_c
            ~setup:(Refinement.mspec1_vs_mspec ()) ~view:Executor.Full_cache ~programs:8
            ~tests_per_program:25 ()
        in
        let cfg =
          { cfg with Campaign.executor = { cfg.Campaign.executor with Executor.core = core_cfg } }
        in
        let s = (Campaign.run cfg).Campaign.stats in
        [ name; string_of_int s.Stats.counterexamples; string_of_int s.Stats.experiments ])
      [ ("Cortex-A53 (no forwarding)", Core.cortex_a53); ("out-of-order core", Core.out_of_order) ]
  in
  print_string
    (Text_table.render ~header:[ "core"; "counterexamples"; "experiments" ] ~rows)

let ablations () =
  ablation_projection ();
  ablation_path_split ();
  ablation_prefetch_threshold ();
  ablation_spec_window ();
  ablation_forwarding ()

(* ------------------------------------------------------------------ *)
(* A.6.1 checklist                                                     *)
(* ------------------------------------------------------------------ *)

let checklist table1 fig7 =
  Format.printf "@.## Sec. A.6.1 evaluation checklist (refined vs unguided)@.@.";
  let find id rows =
    List.find_map
      (fun (spec, (o : Campaign.outcome)) ->
        if spec.id = id then Some o.Campaign.stats else None)
      rows
    |> Option.get
  in
  let ratio a b =
    if b = 0 then "inf" else Printf.sprintf "%.1fx" (float_of_int a /. float_of_int b)
  in
  let mpart_u = find "Mpart unguided (Mpc)" table1
  and mpart_r = find "Mpart + Mpart' (Mpc&Mline)" table1
  and a_u = find "Mct template A unguided" table1
  and a_r = find "Mct template A + Mspec" table1
  and b_u = find "Mct template B unguided" table1
  and b_r = find "Mct template B + Mspec" table1
  and c_u = find "Mct template C unguided" fig7
  and c_r = find "Mct template C + Mspec" fig7 in
  let rows =
    [
      [
        "Mpart: counterexamples, refined vs unguided";
        ratio mpart_r.Stats.counterexamples mpart_u.Stats.counterexamples;
        "~20x";
      ];
      [
        "Mpart: programs w/ counterexample";
        ratio mpart_r.Stats.programs_with_counterexample
          mpart_u.Stats.programs_with_counterexample;
        "~4x";
      ];
      [
        "Mct A: counterexamples, refined vs unguided";
        ratio a_r.Stats.counterexamples a_u.Stats.counterexamples;
        "~2000x";
      ];
      [
        "Mct B: refined finds counterexamples, unguided none";
        Printf.sprintf "%d vs %d" b_r.Stats.counterexamples b_u.Stats.counterexamples;
        "4838 vs 0";
      ];
      [
        "Mct C: refined finds counterexamples, unguided none";
        Printf.sprintf "%d vs %d" c_r.Stats.counterexamples c_u.Stats.counterexamples;
        "3423 vs 0";
      ];
    ]
  in
  print_string (Text_table.render ~header:[ "check"; "measured"; "paper" ] ~rows)

(* ------------------------------------------------------------------ *)
(* Extensions: model repair and the other side channels                 *)
(* ------------------------------------------------------------------ *)

let repair () =
  Format.printf "@.## Extension: model repair (Sec. 8 future work)@.@.";
  let rows =
    List.map
      (fun (name, template, programs) ->
        let o = Scamv.Repair.run ~programs ~tests_per_program:15 ~template () in
        let trail =
          String.concat ", "
            (List.map
               (fun (s : Scamv.Repair.step) ->
                 Printf.sprintf "k=%d:%d cx"
                   s.Scamv.Repair.tried.Scamv.Repair.observed_transient_loads
                   s.Scamv.Repair.stats.Stats.counterexamples)
               o.Scamv.Repair.steps)
        in
        let result =
          match o.Scamv.Repair.repaired with
          | Some c -> Printf.sprintf "k = %d" c.Scamv.Repair.observed_transient_loads
          | None -> "not repaired"
        in
        [ name; trail; result ])
      [
        ("template C (dependent loads)", Templates.template_c, 8);
        ("template B (independent loads)", Templates.template_b, 40);
        ("template A (guarded load)", Templates.template_a, 20);
      ]
  in
  print_string
    (Text_table.render ~header:[ "workload"; "validation trail"; "repaired model" ] ~rows)

let channels () =
  Format.printf "@.## Extension: channel-relative soundness (TLB / timing)@.@.";
  let run name template setup view =
    let cfg =
      Campaign.make ~name ~template ~setup ~view ~programs:10 ~tests_per_program:20
        ~seed:5L ()
    in
    let s = (Campaign.run cfg).Campaign.stats in
    [ name; string_of_int s.Stats.counterexamples; string_of_int s.Stats.experiments ]
  in
  let two_reads =
    Gen.return
      {
        Templates.template_name = "two reads";
        program =
          Scamv_arch.Isa.Aarch64_program
            [|
              Ast.Ldr (x 1, { Ast.base = x 0; offset = Ast.Imm 0L; scale = 0 });
              Ast.Ldr (x 2, { Ast.base = x 3; offset = Ast.Imm 0L; scale = 0 });
            |];
      }
  in
  let rows =
    [
      run "Mpage vs TLB attacker (Mline refined)" Templates.stride
        (Refinement.mpage_vs_mline platform) Executor.Tlb_state;
      run "Mpage vs cache attacker (Mline refined)" Templates.stride
        (Refinement.mpage_vs_mline platform) Executor.Full_cache;
      run "Mct vs TLB attacker (unguided)" Templates.stride Refinement.mct_unguided
        Executor.Tlb_state;
      run "Mpc vs timing attacker (Mline refined)" two_reads
        (Refinement.refine_with_model ~base:Catalog.mpc ~refined:(Catalog.mline platform) ())
        Executor.Total_time;
      run "Mct vs timing attacker (unguided)" two_reads Refinement.mct_unguided
        Executor.Total_time;
    ]
  in
  print_string
    (Text_table.render ~header:[ "validation"; "counterexamples"; "experiments" ] ~rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  Format.printf "@.## Bechamel micro-benchmarks (one per table/figure + primitives)@.@.%!";
  let open Bechamel in
  let program_a = (Gen.generate ~seed:7L Templates.template_a).Templates.program in
  let program_c = (Gen.generate ~seed:7L Templates.template_c).Templates.program in
  let stride = (Gen.generate ~seed:7L Templates.stride).Templates.program in
  (* Table 1, cache-coloring columns: one refinement-guided test case. *)
  let t_table1_mpart =
    let setup = Refinement.mpart_vs_mpart' platform region in
    let cfg = Pipeline.default_config setup in
    Test.make ~name:"table1 mpart-refined test case"
      (Staged.stage (fun () ->
           let s = Pipeline.prepare cfg stride in
           ignore (Pipeline.next_test_case s)))
  in
  (* Table 1, speculation columns: one refinement-guided test case. *)
  let t_table1_mct =
    let setup = Refinement.mct_vs_mspec () in
    let cfg = Pipeline.default_config setup in
    Test.make ~name:"table1 mct-A-refined test case"
      (Staged.stage (fun () ->
           let s = Pipeline.prepare cfg program_a in
           ignore (Pipeline.next_test_case s)))
  in
  (* Fig. 7: Mspec1 preparation on template C. *)
  let t_fig7 =
    let setup = Refinement.mspec1_vs_mspec () in
    let cfg = Pipeline.default_config setup in
    Test.make ~name:"fig7 mspec1-C preparation"
      (Staged.stage (fun () -> ignore (Pipeline.prepare cfg program_c)))
  in
  (* Fig. 3: symbolic execution of the instrumented running example. *)
  let t_fig3 =
    let bir = Refinement.annotate (Refinement.mct_vs_mspec ()) running_example in
    Test.make ~name:"fig3 symbolic execution" (Staged.stage (fun () -> ignore (Exec.execute bir)))
  in
  (* Fig. 6: one full experiment (training + 2 x 10 measured runs). *)
  let t_fig6 =
    let setup = Refinement.mct_vs_mspec () in
    let cfg = Pipeline.default_config setup in
    let session = Pipeline.prepare cfg program_a in
    let tc =
      match Pipeline.next_test_case session with
      | Pipeline.Case tc -> tc
      | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
        failwith "bench: expected a test case"
    in
    let experiment =
      {
        Executor.program = program_a;
        state1 = tc.Pipeline.state1;
        state2 = tc.Pipeline.state2;
        train = tc.Pipeline.train;
      }
    in
    Test.make ~name:"fig6 one experiment on the simulator"
      (Staged.stage (fun () -> ignore (Executor.run (Executor.default_config ()) experiment)))
  in
  (* Substrate primitives. *)
  let t_sat =
    Test.make ~name:"primitive SMT solve (64-bit add relation)"
      (Staged.stage (fun () ->
           let a = T.bv_var "a" 64 and b = T.bv_var "b" 64 in
           ignore (Solver.solve [ T.eq (T.add a b) (T.bv_const 12345L 64); T.ult a b ])))
  in
  let t_sim =
    let core = Core.create Core.cortex_a53 in
    let stride_arm = arm_draw ~seed:7L Templates.stride in
    Test.make ~name:"primitive simulator run (stride)"
      (Staged.stage (fun () ->
           Core.reset_cache core;
           let m = Scamv_isa.Machine.create () in
           Scamv_isa.Machine.set_reg m (Reg.x 12) platform.Platform.mem_base;
           ignore (Core.run core stride_arm m)))
  in
  let tests =
    Test.make_grouped ~name:"scamv" ~fmt:"%s %s"
      [ t_table1_mpart; t_table1_mct; t_fig7; t_fig3; t_fig6; t_sat; t_sim ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan in
      rows := [ name; Printf.sprintf "%11.0f ns" ns ] :: !rows)
    results;
  print_string
    (Text_table.render ~header:[ "benchmark"; "time per run" ] ~rows:(List.sort compare !rows))

(* ------------------------------------------------------------------ *)
(* Multicore campaign benchmark (BENCH_campaign.json)                  *)
(* ------------------------------------------------------------------ *)

module Json = Scamv_util.Json
module Metrics = Scamv_telemetry.Metrics
module Collector = Scamv_telemetry.Collector

(* ------------------------------------------------------------------ *)
(* Solver microbenchmark (blast / solve / enumerate in isolation)      *)
(* ------------------------------------------------------------------ *)

(* Times the three phases of the generation hot path separately on a
   fixed seeded workload (every relation of one template-A program under
   Mct-vs-Mspec):

   - blast: session construction only — array elimination, Tseitin
     blasting, tracked-input allocation — once with a private blast graph
     per session (the pre-shared-cache behaviour) and once with one graph
     shared across all sessions (what the pipeline does per program);
   - first_model: the initial SAT solve + lexicographic minimization of
     each session;
   - enumerate: draws under accumulated blocking clauses.

   The workload is deterministic (fixed generator and session seeds); the
   times land in BENCH_campaign.json next to the campaign numbers so the
   perf trajectory of the solver itself is tracked, not just end-to-end
   campaign wall time.

   Every phase is run [reps] times and each rep is timed on its own: the
   JSON carries the per-rep minimum and median next to the legacy
   all-reps sum (the [*_seconds] keys keep their historical scale so
   committed baselines stay comparable).  The minimum is the
   least-noise estimate of the work itself; the median guards against
   reading too much into one quiet scheduler tick. *)
let summarize_reps times =
  let sorted = Array.copy times in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let median =
    if n land 1 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.
  in
  (Array.fold_left ( +. ) 0. times, sorted.(0), median)

let solver_microbench () =
  let reps = 3 in
  let draws = 4 in
  let setup = Refinement.mct_vs_mspec () in
  let scfg = { Synth.platform; require_refined_difference = true } in
  (* One relation group per seeded program; the shared-graph variant shares
     a blast graph *within* each group, exactly as the pipeline does. *)
  let groups =
    List.map
      (fun seed ->
        let program = arm_draw ~seed Templates.template_a in
        let leaves = Exec.execute (Refinement.annotate setup program) in
        let prepared = Synth.prepare scfg leaves in
        List.filter_map
          (Synth.pair_relation_prepared prepared)
          (Synth.compatible_pairs leaves))
      [ 11L; 12L; 13L; 14L; 15L; 16L ]
  in
  let n_relations = List.length (List.concat groups) in
  let make ?graph (r : Synth.pair_relation) =
    Solver.make_session ~seed:1L ?graph r.Synth.assertions
  in
  let rep_times f = Array.init reps (fun rep -> snd (time_it (fun () -> f rep))) in
  let blast_private =
    rep_times (fun _ -> List.iter (List.iter (fun r -> ignore (make r))) groups)
  in
  let blast_shared =
    rep_times (fun _ ->
        List.iter
          (fun group ->
            let graph = Scamv_smt.Blaster.new_graph () in
            List.iter (fun r -> ignore (make ~graph r)) group)
          groups)
  in
  let sessions () =
    List.concat_map
      (fun group ->
        let graph = Scamv_smt.Blaster.new_graph () in
        List.map (make ~graph) group)
      groups
  in
  let batches = Array.init reps (fun _ -> sessions ()) in
  let first_model =
    rep_times (fun rep ->
        List.iter (fun s -> ignore (Solver.next_model s)) batches.(rep))
  in
  let models = ref 0 in
  let enumerate =
    rep_times (fun rep ->
        List.iter
          (fun s ->
            for _ = 1 to draws do
              match Solver.next_model s with
              | Solver.Model _ -> incr models
              | Solver.Exhausted | Solver.Budget_exceeded -> ()
            done)
          batches.(rep))
  in
  Format.printf "@.## Solver microbenchmark (%d relations x %d reps)@.@."
    n_relations reps;
  let print_phase label times =
    let sum, mn, md = summarize_reps times in
    Format.printf "%s %.4fs total (min %.4f / median %.4f per rep)@." label sum
      mn md
  in
  print_phase "blast (private graph per session):" blast_private;
  print_phase "blast (shared graph per program): " blast_shared;
  print_phase "first model + minimize:           " first_model;
  print_phase
    (Printf.sprintf "enumerate (%d draws/session):     " draws)
    enumerate;
  Format.printf "models enumerated: %d@.%!" !models;
  let phase_fields name times =
    let sum, mn, md = summarize_reps times in
    [
      (name ^ "_seconds", Json.Num sum);
      (name ^ "_min_seconds", Json.Num mn);
      (name ^ "_median_seconds", Json.Num md);
    ]
  in
  Json.Obj
    ([
       ("relations", Json.Num (float_of_int n_relations));
       ("reps", Json.Num (float_of_int reps));
       ("draws_per_session", Json.Num (float_of_int draws));
     ]
    @ phase_fields "blast_private_graph" blast_private
    @ phase_fields "blast_shared_graph" blast_shared
    @ phase_fields "first_model" first_model
    @ phase_fields "enumerate" enumerate
    @ [ ("models_enumerated", Json.Num (float_of_int !models)) ])

(* ------------------------------------------------------------------ *)
(* Portfolio race microbenchmark                                       *)
(* ------------------------------------------------------------------ *)

module Pool = Scamv_util.Pool

(* Deterministic portfolio race: every relation of two seeded programs is
   solved one-shot under the first K portfolio configurations with a
   tight per-call conflict budget.  The winner of a race is the
   lowest-ranked configuration that answers within the budget — rank
   order, not wall-clock order — and a loser is bounded by the budget
   rather than cancelled, so each verdict is a pure function of the
   query and identical whether the K sessions run sequentially or spread
   over a Domain pool.  The harness runs the race both ways, times each,
   and fails loudly if any verdict differs. *)
let portfolio_microbench () =
  let configs = 4 in
  let conflicts = 16 in
  let budget = Scamv_smt.Sat.budget ~conflicts () in
  let setup = Refinement.mct_vs_mspec () in
  let scfg = { Synth.platform; require_refined_difference = true } in
  let relations =
    List.concat_map
      (fun seed ->
        let program = arm_draw ~seed Templates.template_a in
        let leaves = Exec.execute (Refinement.annotate setup program) in
        let prepared = Synth.prepare scfg leaves in
        List.filter_map
          (Synth.pair_relation_prepared prepared)
          (Synth.compatible_pairs leaves))
      [ 11L; 12L ]
    |> Array.of_list
  in
  let n = Array.length relations in
  (* 0 = budget exceeded, 1 = exhausted (unsat), 2 = model.  Each entrant
     builds a private session (own blast graph) so pool domains share
     nothing mutable; Synth relations are immutable inputs. *)
  let entrant i =
    let r = relations.(i / configs) in
    let pc = Scamv_smt.Portfolio.config (i mod configs) in
    let seed = Scamv_smt.Portfolio.seed_for pc 1L in
    let s =
      Solver.make_session
        ~default_phase:pc.Scamv_smt.Portfolio.default_phase
        ~restart_base:pc.Scamv_smt.Portfolio.restart_base ~budget ~seed
        r.Synth.assertions
    in
    match Solver.next_model s with
    | Solver.Model _ -> 2
    | Solver.Exhausted -> 1
    | Solver.Budget_exceeded -> 0
  in
  let race jobs =
    let tags = Pool.map ~jobs entrant (n * configs) in
    Array.init n (fun r ->
        let rec first rank =
          if rank >= configs then None
          else if tags.((r * configs) + rank) > 0 then Some rank
          else first (rank + 1)
        in
        first 0)
  in
  let sequential_winners, sequential_seconds = time_it (fun () -> race 1) in
  let parallel_winners, parallel_seconds =
    time_it (fun () -> race configs)
  in
  if sequential_winners <> parallel_winners then begin
    prerr_endline
      "FAIL: portfolio race winners differ between sequential and pooled runs";
    exit 1
  end;
  let wins = Array.make configs 0 in
  let unresolved = ref 0 in
  Array.iter
    (function Some rank -> wins.(rank) <- wins.(rank) + 1 | None -> incr unresolved)
    sequential_winners;
  Format.printf
    "@.## Portfolio race (%d relations x %d configs, %d-conflict budget)@.@.\
     sequential: %.4fs   pooled: %.4fs@.\
     wins by rank: %s   unresolved: %d@.%!"
    n configs conflicts sequential_seconds parallel_seconds
    (String.concat " "
       (Array.to_list (Array.mapi (fun i w -> Printf.sprintf "%d:%d" i w) wins)))
    !unresolved;
  Json.Obj
    [
      ("configs", Json.Num (float_of_int configs));
      ("relations", Json.Num (float_of_int n));
      ("budget_conflicts", Json.Num (float_of_int conflicts));
      ("sequential_seconds", Json.Num sequential_seconds);
      ("parallel_seconds", Json.Num parallel_seconds);
      ( "wins",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun i w -> (string_of_int i, Json.Num (float_of_int w)))
                wins)
          @ [ ("none", Json.Num (float_of_int !unresolved)) ]) );
      ("deterministic_across_jobs", Json.Bool true);
    ]

(* ------------------------------------------------------------------ *)
(* Incremental-vs-fresh identity check (`make solver-smoke`)           *)
(* ------------------------------------------------------------------ *)

(* The pipeline asserts a refined relation in two increments — the
   candidate part at session creation, the refinement part through
   [Solver.extend] on the same live session.  Because non-diversified
   enumeration is canonical (every draw is the lexicographically minimal
   unblocked model, a property of the formula alone), the staged session
   must produce byte-for-byte the same model sequence as a fresh session
   asserting everything at once.  This check enumerates both ways over a
   seeded workload and exits nonzero on the first divergence, so `make
   solver-smoke` / CI catches an unsound reuse of solver state. *)
let solver_identity () =
  let draws = 5 in
  let setup = Refinement.mct_vs_mspec () in
  let scfg = { Synth.platform; require_refined_difference = true } in
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let program = arm_draw ~seed Templates.template_a in
      let leaves = Exec.execute (Refinement.annotate setup program) in
      let prepared = Synth.prepare scfg leaves in
      List.iter
        (fun pair ->
          match Synth.pair_relation_prepared prepared pair with
          | None -> ()
          | Some r ->
            let fresh = Solver.make_session ~seed:1L r.Synth.assertions in
            let staged =
              let s =
                Solver.make_session ~seed:1L r.Synth.candidate_assertions
              in
              Solver.extend s r.Synth.refinement_assertions
            in
            let show m = Format.asprintf "%a" Scamv_smt.Model.pp m in
            let next s =
              match Solver.next_model s with
              | Solver.Model m -> Some (show m)
              | Solver.Exhausted -> None
              | Solver.Budget_exceeded -> assert false (* no budget set *)
            in
            for draw = 1 to draws do
              let a = next fresh and b = next staged in
              if a <> b then begin
                Printf.eprintf
                  "FAIL: seed %Ld pair (%d,%d) draw %d: staged session \
                   diverges from fresh session\n"
                  seed (fst pair) (snd pair) draw;
                exit 1
              end;
              if a <> None then incr checked
            done)
        (Synth.compatible_pairs leaves))
    [ 11L; 12L; 13L ];
  Printf.printf
    "OK: incremental (extend) sessions enumerate identically to fresh \
     sessions (%d models compared)\n"
    !checked

(* One fixed, seeded campaign timed at jobs in {1, 2, 4}.  The workload is
   identical across job counts (same seed, same per-program RNG streams),
   so wall-clock ratios are honest speedups and every count must agree —
   the harness cross-checks that and records the verdict in the JSON. *)
let bench_campaign ~smoke ~out () =
  let programs = if smoke then 4 else 24 in
  let tests = if smoke then 3 else 12 in
  let seed = 2021L in
  let name = "bench mct-vs-mspec template A" in
  let make_cfg () =
    Campaign.make ~name ~template:Templates.template_a
      ~setup:(Refinement.mct_vs_mspec ()) ~view:Executor.Full_cache ~programs
      ~tests_per_program:tests ~seed ()
  in
  let job_counts = [ 1; 2; 4 ] in
  Format.printf "@.## Multicore campaign benchmark (%s: %d programs x %d tests)@.@.%!"
    (if smoke then "smoke" else "full")
    programs tests;
  let runs =
    List.map
      (fun jobs ->
        let cfg = make_cfg () in
        let t0 = Unix.gettimeofday () in
        let outcome = Campaign.run ~jobs cfg in
        let wall = Unix.gettimeofday () -. t0 in
        (* Solver work and phase totals come from the campaign's merged
           telemetry registry (the SAT solver flushes per-query deltas into
           it), not from any process-global counter, so each run's numbers
           are exactly its own even though the runs share the process. *)
        let m = outcome.Campaign.telemetry.Collector.metrics in
        let conflicts = Metrics.counter m "sat.conflicts" in
        Format.printf "jobs %d: %.2fs wall, %d experiments, %d conflicts@.%!" jobs
          wall outcome.Campaign.stats.Stats.experiments conflicts;
        (jobs, wall, outcome))
      job_counts
  in
  let wall_of j =
    List.find_map (fun (jobs, w, _) -> if jobs = j then Some w else None) runs
    |> Option.get
  in
  let baseline = wall_of 1 in
  let counts (o : Campaign.outcome) =
    let s = o.Campaign.stats in
    ( s.Stats.programs,
      s.Stats.experiments,
      s.Stats.counterexamples,
      s.Stats.inconclusive,
      s.Stats.programs_with_counterexample,
      Metrics.counter o.Campaign.telemetry.Collector.metrics "sat.conflicts" )
  in
  let _, _, outcome1 = List.hd runs in
  let deterministic =
    List.for_all (fun (_, _, o) -> counts o = counts outcome1) runs
  in
  if not deterministic then
    Format.printf "WARNING: statistics differ across job counts!@.";
  let run_json (jobs, wall, (o : Campaign.outcome)) =
    let s = o.Campaign.stats in
    let m = o.Campaign.telemetry.Collector.metrics in
    let speedup = if wall > 0. then baseline /. wall else 0. in
    (* A parallel run slower than jobs=1 means the machine did not actually
       have spare cores for the extra domains (CI containers routinely
       advertise more cores than they schedule); flag it so a reader does
       not mistake the slowdown for a scaling bug. *)
    let cores_limited =
      if jobs > 1 then [ ("cores_limited", Json.Bool (speedup < 1.)) ] else []
    in
    Json.Obj
      ([
        ("jobs", Json.Num (float_of_int jobs));
        ("wall_seconds", Json.Num wall);
        ("speedup_vs_jobs1", Json.Num speedup);
        ( "programs_per_second",
          Json.Num (if wall > 0. then float_of_int programs /. wall else 0.) );
        ("sat_conflicts", Json.Num (float_of_int (Metrics.counter m "sat.conflicts")));
        ("sat_queries", Json.Num (float_of_int (Metrics.counter m "sat.queries")));
        ( "phases",
          Json.Obj
            [
              ( "generation_seconds",
                Json.Num (Metrics.histogram_sum m "phase.generation.seconds") );
              ( "execution_seconds",
                Json.Num (Metrics.histogram_sum m "phase.execution.seconds") );
            ] );
        ("experiments", Json.Num (float_of_int s.Stats.experiments));
        ("counterexamples", Json.Num (float_of_int s.Stats.counterexamples));
      ]
      @ cores_limited)
  in
  let solver_section = solver_microbench () in
  let portfolio_section = portfolio_microbench () in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Num 1.);
        ("benchmark", Json.Str "campaign-multicore");
        ( "campaign",
          Json.Obj
            [
              ("name", Json.Str name);
              ("template", Json.Str "A");
              ("setup", Json.Str "mct-vs-mspec");
              ("programs", Json.Num (float_of_int programs));
              ("tests_per_program", Json.Num (float_of_int tests));
              ("seed", Json.Num (Int64.to_float seed));
              ("smoke", Json.Bool smoke);
            ] );
        ( "available_cores",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("deterministic_across_jobs", Json.Bool deterministic);
        ("runs", Json.Arr (List.map run_json runs));
        ("solver_microbench", solver_section);
        ("portfolio", portfolio_section);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." out;
  if not deterministic then exit 1

(* Validates that a BENCH_campaign.json emitted above is well-formed:
   parses, carries the required keys, and covers jobs {1, 2, 4}.  Used by
   `make bench-smoke` / CI so a schema regression fails the build. *)
let validate_bench file =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error m -> fail "%s" m
  in
  let doc = try Json.of_string text with Json.Parse_error m -> fail "%s: %s" file m in
  let member k j =
    match Json.member k j with Some v -> v | None -> fail "missing key %S" k
  in
  let num k j =
    match member k j with Json.Num n -> n | _ -> fail "key %S is not a number" k
  in
  ignore (num "schema_version" doc);
  let campaign = member "campaign" doc in
  List.iter
    (fun k -> ignore (member k campaign))
    [ "name"; "programs"; "tests_per_program"; "seed" ];
  ignore (num "available_cores" doc);
  (match member "deterministic_across_jobs" doc with
  | Json.Bool true -> ()
  | Json.Bool false -> fail "runs were not deterministic across job counts"
  | _ -> fail "deterministic_across_jobs is not a bool");
  let runs =
    match member "runs" doc with
    | Json.Arr l -> l
    | _ -> fail "key \"runs\" is not an array"
  in
  let seen =
    List.map
      (fun r ->
        List.iter
          (fun k -> ignore (num k r))
          [ "wall_seconds"; "speedup_vs_jobs1"; "programs_per_second"; "sat_conflicts" ];
        let phases = member "phases" r in
        ignore (num "generation_seconds" phases);
        ignore (num "execution_seconds" phases);
        let jobs = int_of_float (num "jobs" r) in
        (* Parallel runs must carry the honesty flag: slower-than-serial
           results are only trustworthy if annotated. *)
        if jobs > 1 then begin
          match member "cores_limited" r with
          | Json.Bool _ -> ()
          | _ -> fail "run with jobs = %d has no boolean \"cores_limited\"" jobs
        end;
        jobs)
      runs
  in
  List.iter
    (fun j -> if not (List.mem j seen) then fail "no run with jobs = %d" j)
    [ 1; 2; 4 ];
  let solver = member "solver_microbench" doc in
  List.iter
    (fun k ->
      ignore (num (k ^ "_seconds") solver);
      ignore (num (k ^ "_min_seconds") solver);
      ignore (num (k ^ "_median_seconds") solver))
    [ "blast_private_graph"; "blast_shared_graph"; "first_model"; "enumerate" ];
  List.iter
    (fun k -> ignore (num k solver))
    [ "relations"; "reps"; "draws_per_session"; "models_enumerated" ];
  let portfolio = member "portfolio" doc in
  List.iter
    (fun k -> ignore (num k portfolio))
    [
      "configs"; "relations"; "budget_conflicts"; "sequential_seconds";
      "parallel_seconds";
    ];
  (match member "wins" portfolio with
  | Json.Obj _ -> ()
  | _ -> fail "portfolio key \"wins\" is not an object");
  (match member "deterministic_across_jobs" portfolio with
  | Json.Bool true -> ()
  | Json.Bool false -> fail "portfolio race was not deterministic"
  | _ -> fail "portfolio deterministic_across_jobs is not a bool");
  Printf.printf "OK: %s is a valid campaign benchmark (%d runs)\n" file
    (List.length runs)

(* Perf regression gate (`make perf-check`): re-runs the seeded campaign at
   the same size as the committed reference and fails if the fresh jobs=1
   generation-phase time regresses more than 25% against it.  Generation
   time — SMT blasting, solving, model enumeration — is the phase this
   repository optimizes; wall time also contains the simulator, and
   parallel runs depend on the machine, so neither is gated. *)
let compare_bench ref_file new_file =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let load file =
    let text =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error m -> fail "%s" m
    in
    try Json.of_string text with Json.Parse_error m -> fail "%s: %s" file m
  in
  let generation_jobs1 file doc =
    let runs =
      match Json.member "runs" doc with
      | Some (Json.Arr l) -> l
      | _ -> fail "%s: no runs array" file
    in
    let jobs1 =
      List.find_opt
        (fun r -> match Json.member "jobs" r with Some (Json.Num 1.) -> true | _ -> false)
        runs
    in
    match jobs1 with
    | None -> fail "%s: no jobs = 1 run" file
    | Some r -> (
      match Json.member "phases" r with
      | Some p -> (
        match Json.member "generation_seconds" p with
        | Some (Json.Num n) -> n
        | _ -> fail "%s: no generation_seconds" file)
      | None -> fail "%s: no phases" file)
  in
  let reference = generation_jobs1 ref_file (load ref_file) in
  let fresh = generation_jobs1 new_file (load new_file) in
  let allowed = reference *. 1.25 in
  Printf.printf
    "generation_seconds (jobs=1): reference %.3fs, this run %.3fs (limit %.3fs)\n"
    reference fresh allowed;
  if fresh > allowed then
    fail "generation phase regressed %.0f%% (> 25%% over %s)"
      ((fresh /. reference -. 1.) *. 100.)
      ref_file;
  Printf.printf "OK: generation phase within 25%% of %s\n" ref_file

(* Service perf regression gate (`make service-perf-check`): re-runs the
   load generator and compares its concurrency-1 scaling entry against
   the committed BENCH_service.json.  Service throughput is noisier than
   the solver's generation phase (threads, loopback TCP, campaign
   scheduling), so the gate is deliberately loose: fail only when fresh
   throughput drops below half the committed rate or p95 latency more
   than doubles. *)
let compare_service ref_file new_file =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let load file =
    let text =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error m -> fail "%s" m
    in
    try Json.of_string text with Json.Parse_error m -> fail "%s: %s" file m
  in
  let conc1 file =
    let doc = load file in
    let entries =
      match Json.member "concurrency_scaling" doc with
      | Some (Json.Arr l) -> l
      | _ -> fail "%s: no concurrency_scaling block" file
    in
    let entry =
      match
        List.find_opt
          (fun e ->
            match Json.member "concurrency" e with
            | Some (Json.Num 1.) -> true
            | _ -> false)
          entries
      with
      | Some e -> e
      | None -> fail "%s: no concurrency = 1 entry" file
    in
    let throughput =
      match Json.member "throughput_campaigns_per_second" entry with
      | Some (Json.Num n) -> n
      | _ -> fail "%s: concurrency-1 entry has no throughput" file
    in
    let p95 =
      match Json.member "latency_seconds" entry with
      | Some l -> (
        match Json.member "p95" l with
        | Some (Json.Num n) -> n
        | _ -> fail "%s: concurrency-1 entry has no p95" file)
      | None -> fail "%s: concurrency-1 entry has no latency_seconds" file
    in
    (throughput, p95)
  in
  let ref_tp, ref_p95 = conc1 ref_file in
  let new_tp, new_p95 = conc1 new_file in
  Printf.printf
    "concurrency-1: reference %.2f campaigns/s p95 %.3fs, this run %.2f \
     campaigns/s p95 %.3fs\n"
    ref_tp ref_p95 new_tp new_p95;
  if new_tp < ref_tp /. 2. then
    fail "service throughput dropped below half of %s (%.2f < %.2f)" ref_file
      new_tp (ref_tp /. 2.);
  if new_p95 > ref_p95 *. 2. then
    fail "service p95 latency more than doubled against %s (%.3fs > %.3fs)"
      ref_file new_p95 (ref_p95 *. 2.);
  Printf.printf "OK: service throughput and p95 within bounds of %s\n" ref_file

(* Validates the --trace / --metrics output of a campaign run: the trace
   must re-parse with Scamv_util.Json and contain every pipeline span the
   instrumentation promises, and the metrics dump must expose the
   registry's core counter families.  Used by `make metrics-smoke` / CI so
   a telemetry regression fails the build. *)
let validate_telemetry trace_file metrics_file =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let read f =
    try In_channel.with_open_text f In_channel.input_all
    with Sys_error m -> fail "%s" m
  in
  let doc =
    try Json.of_string (read trace_file)
    with Json.Parse_error m -> fail "%s: %s" trace_file m
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr l) -> l
    | _ -> fail "%s: missing traceEvents array" trace_file
  in
  let span_names =
    List.filter_map
      (fun e ->
        match Json.member "name" e with Some (Json.Str s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun required ->
      if not (List.mem required span_names) then
        fail "%s: no %S span recorded" trace_file required)
    [
      "campaign"; "program"; "generate"; "prepare"; "annotate"; "lift";
      "symexec"; "synth"; "enumerate"; "execute"; "run"; "compare";
    ];
  let metrics_text = read metrics_file in
  let has_metric name =
    (* A metric is present iff some line starts with its mangled name
       (plain sample, _bucket{le=...}, _sum or _count line). *)
    String.split_on_char '\n' metrics_text
    |> List.exists (fun line ->
           String.length line >= String.length name
           && String.sub line 0 (String.length name) = name)
  in
  List.iter
    (fun required ->
      if not (has_metric required) then
        fail "%s: no %s metric" metrics_file required)
    [
      "scamv_sat_conflicts"; "scamv_sat_queries"; "scamv_sat_learned";
      "scamv_sat_deleted"; "scamv_sat_restarts"; "scamv_sat_lbd";
      "scamv_smt_blast_cache_hits"; "scamv_smt_blast_cache_cross_hits";
      "scamv_uarch_cache_hits"; "scamv_uarch_tlb_hits";
      "scamv_uarch_predictor_hits"; "scamv_campaign_experiments";
      "scamv_phase_generation_seconds"; "scamv_phase_execution_seconds";
      "scamv_span_enumerate_seconds";
      (* Incremental-session and portfolio instrumentation (the smoke
         campaign runs a refined setup with --portfolio 2, so the scope
         and rescue counters must all be registered). *)
      "scamv_sat_pushes"; "scamv_sat_pops"; "scamv_sat_assumption_solves";
      "scamv_smt_incremental_reuse_hits"; "scamv_portfolio_races";
      "scamv_portfolio_wins_0"; "scamv_portfolio_wins_1";
    ];
  Printf.printf "OK: %s (%d spans) and %s validate\n" trace_file
    (List.length events) metrics_file

(* Validates a /metrics dump from a live validation server (the optional
   third `validate-telemetry` argument, produced by `service-metrics`):
   the connection-management and scheduler families must all be present —
   they are pre-registered at startup, so a missing name means the
   registration regressed, not merely that a counter stayed at zero. *)
let validate_service_metrics file =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error m -> fail "%s" m
  in
  let has_metric name =
    String.split_on_char '\n' text
    |> List.exists (fun line ->
           String.length line >= String.length name
           && String.sub line 0 (String.length name) = name)
  in
  List.iter
    (fun required ->
      if not (has_metric required) then fail "%s: no %s metric" file required)
    [
      "scamv_service_http_requests";
      "scamv_service_campaigns_submitted";
      "scamv_service_campaigns_completed";
      "scamv_service_connections_active";
      "scamv_service_connections_queued";
      "scamv_service_connections_reused";
      "scamv_service_connections_rejected";
      "scamv_service_sessions_total";
      "scamv_scheduler_concurrent_sessions";
      "scamv_scheduler_slices";
      "scamv_scheduler_slice_width";
    ];
  (* the dump comes from a server that served a reused request *)
  let value name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line 0 i = name ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
           | _ -> None)
  in
  (match value "scamv_service_connections_reused" with
  | Some v when v >= 1.0 -> ()
  | Some v -> fail "%s: connections_reused stayed at %g" file v
  | None -> fail "%s: connections_reused has no sample line" file);
  Printf.printf "OK: %s carries the service/scheduler metric families\n" file

(* ------------------------------------------------------------------ *)
(* Chaos harness (`make chaos-smoke`)                                  *)
(* ------------------------------------------------------------------ *)

module Journal = Scamv.Journal
module Chaos = Scamv_util.Chaos
module Deadline = Scamv_util.Deadline
module Stopwatch = Scamv_util.Stopwatch

(* Acceptance tests for the supervised execution layer (DESIGN.md
   "Failure domains and supervision"):

   - kill/resume: a child process runs a journaled campaign and is
     SIGKILLed mid-flight; the surviving journal additionally has its
     tail truncated mid-record.  The resumed campaign must recover the
     clean prefix (reporting what it dropped) and finish with a journal,
     progress log and statistics byte-identical to an uninterrupted run.
   - worker crashes: with chaos worker kills armed, --jobs 1 and
     --jobs 4 runs must stay byte-identical — crash decisions are pure
     per-program functions of the chaos seed and domain restarts are
     schedule-independent — while actually crashing some (not all)
     programs.
   - deadlines: with a virtual conflict deadline armed, --jobs 1 and
     --jobs 2 runs must stay byte-identical and actually expire on some
     (not all) programs. *)

let chaos_fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* One fixed seeded campaign under the frozen clock, so every observable
   output (journal rows, stats, progress lines) is a pure function of the
   seed and the injected chaos/deadline — byte-identical means identical. *)
let chaos_cfg ?deadline ?chaos ~programs ~tests () =
  Campaign.make ~name:"chaos"
    ~template:Templates.template_a
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs ~tests_per_program:tests ~seed:2021L
    ~sat_budget:(Scamv_smt.Sat.budget ~conflicts:200 ())
    ?deadline ?chaos ~clock:Stopwatch.frozen ()

let run_campaign ?resume ~jobs cfg =
  let journal = Journal.create () in
  let events = ref [] in
  let outcome =
    Campaign.run ~on_event:(fun m -> events := m :: !events) ~journal ?resume ~jobs cfg
  in
  (Journal.to_csv journal, outcome, List.rev !events)

(* The `chaos-child` subcommand: runs the journaled campaign this process
   is about to SIGKILL.  Kept inside the bench executable so the harness
   needs no extra binary. *)
let chaos_child path programs tests =
  let cfg = chaos_cfg ~programs ~tests () in
  let journal = Journal.create ~path () in
  let (_ : Campaign.outcome) = Campaign.run ~journal ~jobs:1 cfg in
  Journal.close journal

let chaos_kill_resume ~programs ~tests () =
  let path = Filename.temp_file "scamv-chaos" ".journal" in
  Sys.remove path;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process Sys.executable_name
      [|
        Sys.executable_name; "chaos-child"; path; string_of_int programs;
        string_of_int tests;
      |]
      Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  (* Journal records are flushed one by one; wait until a couple are on
     disk, then SIGKILL the child mid-campaign.  If the machine is fast
     enough that the child finishes first, the test still exercises
     recovery: the tail is torn below either way. *)
  let give_up = Unix.gettimeofday () +. 120.0 in
  let size () = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  let child_exited = ref false in
  while (not !child_exited) && size () < 200 do
    if Unix.gettimeofday () > give_up then
      chaos_fail "chaos child wrote no journal records within 120s";
    (match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> Unix.sleepf 0.02
    | _ -> child_exited := true)
  done;
  if not !child_exited then begin
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid)
  end;
  let contents = In_channel.with_open_bin path In_channel.input_all in
  if String.length contents < 40 then
    chaos_fail "chaos child died before writing any journal record";
  (* Tear the tail mid-record so resume must take the recovery path. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub contents 0 (String.length contents - 7)));
  let cfg () = chaos_cfg ~programs ~tests () in
  let csv_resumed, resumed, events = run_campaign ~resume:path ~jobs:1 (cfg ()) in
  let csv_ref, reference, _ = run_campaign ~jobs:1 (cfg ()) in
  if not (List.exists (fun m -> contains_substring m "damaged tail") events) then
    chaos_fail "resume after SIGKILL did not report tail recovery";
  if csv_resumed <> csv_ref then
    chaos_fail "resumed journal differs from uninterrupted run";
  if Stdlib.compare resumed.Campaign.stats reference.Campaign.stats <> 0 then
    chaos_fail "resumed statistics differ from uninterrupted run";
  let m = resumed.Campaign.telemetry.Collector.metrics in
  if Metrics.counter m "journal.recovered_records" <= 0 then
    chaos_fail "resume recovered no journal records";
  if Metrics.counter m "journal.recovered_tails" <> 1 then
    chaos_fail "resume did not count the damaged tail";
  Sys.remove path;
  Printf.printf "OK: SIGKILL + torn tail resume matches uninterrupted run (%d records recovered)\n%!"
    (Metrics.counter m "journal.recovered_records")

let check_identical ~what (csv_a, (oa : Campaign.outcome), ev_a)
    (csv_b, (ob : Campaign.outcome), ev_b) =
  if csv_a <> csv_b then chaos_fail "%s: journals differ across --jobs" what;
  if ev_a <> ev_b then chaos_fail "%s: progress logs differ across --jobs" what;
  (* Stdlib.compare, not (=): an all-crashed run has zero experiments and
     its Summary min/max fields are nan, which (=) never equates. *)
  if Stdlib.compare oa.Campaign.stats ob.Campaign.stats <> 0 then begin
    Format.eprintf "--jobs A stats:@.%a@.--jobs B stats:@.%a@." Stats.pp
      oa.Campaign.stats Stats.pp ob.Campaign.stats;
    chaos_fail "%s: statistics differ across --jobs" what
  end

let chaos_worker_crash_identity ~programs ~tests () =
  let mk () =
    chaos_cfg ~chaos:(Chaos.create ~rate:0.4 ~seed:0xC4A05L ()) ~programs ~tests ()
  in
  let r1 = run_campaign ~jobs:1 (mk ()) in
  let r4 = run_campaign ~jobs:4 (mk ()) in
  check_identical ~what:"worker crashes" r1 r4;
  let _, (o : Campaign.outcome), _ = r1 in
  let crashed = o.Campaign.stats.Stats.crashed_programs in
  if crashed = 0 then
    chaos_fail "chaos rate produced no worker crashes (tune rate/seed)";
  if crashed >= programs then chaos_fail "chaos crashed every program";
  let _, o4, _ = r4 in
  let restarts j = Metrics.counter j.Campaign.telemetry.Collector.metrics "pool.restarts" in
  if restarts o = 0 then chaos_fail "no pool restarts recorded";
  if restarts o <> restarts o4 then
    chaos_fail "pool.restarts differs across --jobs (%d vs %d)" (restarts o)
      (restarts o4);
  Printf.printf "OK: worker-crash campaign byte-identical at --jobs 1/4 (%d of %d programs crashed, %d restarts)\n%!"
    crashed programs (restarts o)

let chaos_deadline_identity ~programs ~tests () =
  (* The limit scales with the per-program test count so that across the
     smoke and full sizes some programs expire and some finish. *)
  let mk () = chaos_cfg ~deadline:(Deadline.Conflicts (50 * tests)) ~programs ~tests () in
  let r1 = run_campaign ~jobs:1 (mk ()) in
  let r2 = run_campaign ~jobs:2 (mk ()) in
  check_identical ~what:"deadlines" r1 r2;
  let _, (o : Campaign.outcome), _ = r1 in
  let hits = Metrics.counter o.Campaign.telemetry.Collector.metrics "deadline.hits" in
  if hits = 0 then chaos_fail "no program hit the conflict deadline (tune limit)";
  if o.Campaign.stats.Stats.crashed_programs >= programs then
    chaos_fail "every program hit the deadline";
  Printf.printf "OK: deadline campaign byte-identical at --jobs 1/2 (%d deadline hits)\n%!"
    hits

let chaos_suite ~smoke () =
  let programs = if smoke then 6 else 12 in
  let tests = if smoke then 3 else 6 in
  Printf.printf "## Chaos harness (%s: %d programs x %d tests)\n%!"
    (if smoke then "smoke" else "full")
    programs tests;
  chaos_kill_resume ~programs ~tests ();
  chaos_worker_crash_identity ~programs ~tests ();
  chaos_deadline_identity ~programs ~tests ();
  Printf.printf "chaos: all acceptance checks passed\n%!"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
  | "validate-bench" :: file :: _ ->
    validate_bench file;
    exit 0
  | "validate-telemetry" :: trace :: metrics :: rest ->
    validate_telemetry trace metrics;
    (match rest with
    | service :: _ -> validate_service_metrics service
    | [] -> ());
    exit 0
  | "compare-bench" :: ref_file :: new_file :: _ ->
    compare_bench ref_file new_file;
    exit 0
  | "solver" :: _ ->
    ignore (solver_microbench ());
    ignore (portfolio_microbench ());
    exit 0
  | "solver-identity" :: _ ->
    solver_identity ();
    exit 0
  | "chaos-child" :: path :: programs :: tests :: _ ->
    chaos_child path (int_of_string programs) (int_of_string tests);
    exit 0
  | "chaos" :: rest ->
    chaos_suite ~smoke:(List.mem "--smoke" rest) ();
    exit 0
  | "service-child" :: dir :: rest ->
    let concurrency = match rest with c :: _ -> int_of_string c | [] -> 1 in
    Service_bench.child ~concurrency dir;
    exit 0
  | "service-metrics" :: rest ->
    let out =
      let rec find = function
        | "--out" :: f :: _ -> f
        | _ :: tail -> find tail
        | [] -> "metrics.service.txt"
      in
      find rest
    in
    Service_bench.metrics_dump ~out ();
    exit 0
  | "compare-service" :: ref_file :: new_file :: _ ->
    compare_service ref_file new_file;
    exit 0
  | "service" :: rest ->
    let smoke = List.mem "--smoke" rest in
    let out =
      let rec find = function
        | "--out" :: f :: _ -> f
        | _ :: tail -> find tail
        | [] -> "BENCH_service.json"
      in
      find rest
    in
    if not (List.mem "--load-only" rest) then Service_bench.suite ();
    Service_bench.load ~smoke ~out ();
    exit 0
  | _ -> ());
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let out =
    let rec find = function
      | "--out" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_campaign.json"
    in
    find args
  in
  let args =
    let rec strip = function
      | "--out" :: _ :: rest -> strip rest
      | a :: rest when a = "--full" || a = "--smoke" -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let what = match args with [] -> [ "all" ] | _ -> args in
  (* `campaign` is deliberately not part of "all": it re-runs the same
     campaign three times and is meant for the bench-smoke target / perf
     trajectory, not the paper-reproduction sweep. *)
  if List.mem "campaign" what then begin
    bench_campaign ~smoke ~out ();
    if what = [ "campaign" ] then begin
      Format.printf "@.done.@.";
      exit 0
    end
  end;
  let wants k = List.mem k what || List.mem "all" what in
  let table1 =
    if wants "table1" then Some (run_rows ~full ~title:"Table 1" table1_rows) else None
  in
  let fig7 =
    if wants "fig7" then Some (run_rows ~full ~title:"Fig. 7 table" fig7_rows) else None
  in
  (match (table1, fig7) with Some t1, Some f7 -> checklist t1 f7 | _ -> ());
  if wants "fig3" then fig3 ();
  if wants "ablations" then ablations ();
  if wants "repair" then repair ();
  if wants "channels" then channels ();
  if wants "micro" then micro ();
  Format.printf "@.done.@."
