(* Quickstart: the paper's running example (Fig. 2) through the whole
   pipeline — observation augmentation, speculative instrumentation
   (Fig. 4), symbolic execution, relation synthesis, test-case
   generation, and execution on the simulated Cortex-A53.

   Run with:  dune exec examples/quickstart.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Catalog = Scamv_models.Catalog
module Model = Scamv_models.Model
module Exec = Scamv_symbolic.Exec
module Pipeline = Scamv.Pipeline

let x = Reg.x

(* Fig. 2: x2 := mem[x0]; if x0 < x1 + 1 then x3 := mem[x2].
   (The bound is materialized with an explicit add + compare.) *)
let running_example =
  [|
    Ast.Ldr (x 2, { Ast.base = x 0; offset = Ast.Imm 0L; scale = 0 });
    Ast.Add (x 1, x 1, Ast.Imm 1L);
    Ast.Cmp (x 0, Ast.Reg (x 1));
    Ast.B_cond (Ast.Hs, 5) (* skip the body when x0 >= x1 + 1 *);
    Ast.Ldr (x 3, { Ast.base = x 2; offset = Ast.Imm 0L; scale = 0 });
  |]

let banner title = Format.printf "@.=== %s ===@." title

let () =
  banner "Fig. 2: the running example";
  Format.printf "%a@." Ast.pp_program running_example;

  banner "Observation augmentation with Mct (pc + accessed addresses)";
  let bir_mct = Model.annotate Catalog.mct running_example in
  Format.printf "%a@." Scamv_bir.Program.pp bir_mct;

  banner "Fig. 4: Mspec instrumentation (shadow statements on branch edges)";
  let setup = Refinement.mct_vs_mspec () in
  let bir_spec = Refinement.annotate setup running_example in
  Format.printf "%a@." Scamv_bir.Program.pp bir_spec;

  banner "Symbolic execution: one terminating state per path";
  let leaves = Exec.execute bir_spec in
  List.iteri
    (fun i leaf -> Format.printf "--- path %d ---@.%a@." i Exec.pp_leaf leaf)
    leaves;

  banner "Test-case generation (M1 = Mct equivalent, M2 = Mspec distinct)";
  let cfg = Pipeline.default_config setup in
  let guest = Scamv_arch.Isa.Aarch64_program running_example in
  let session = Pipeline.prepare ~seed:42L cfg guest in
  (match Pipeline.next_test_case session with
  | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
    Format.printf "no test case (did the relation become unsat?)@."
  | Pipeline.Case tc ->
    Format.printf "state 1:@.%a@." Machine.pp tc.Pipeline.state1;
    Format.printf "state 2:@.%a@." Machine.pp tc.Pipeline.state2;
    Format.printf "training states: %d@." (List.length tc.Pipeline.train);

    banner "Execution on the simulated Cortex-A53";
    let verdict =
      Executor.run ~seed:1L
        (Executor.default_config ())
        {
          Executor.program = guest;
          state1 = tc.Pipeline.state1;
          state2 = tc.Pipeline.state2;
          train = tc.Pipeline.train;
        }
    in
    Format.printf "verdict: %s@."
      (match verdict with
      | Executor.Distinguishable ->
        "DISTINGUISHABLE - counterexample to Mct's soundness (speculative leak)"
      | Executor.Indistinguishable -> "indistinguishable"
      | Executor.Inconclusive -> "inconclusive"));

  banner "Unguided search on the same program, for contrast";
  let unguided = Pipeline.default_config Refinement.mct_unguided in
  let session = Pipeline.prepare ~seed:42L unguided guest in
  let counter = ref 0 in
  let tested = ref 0 in
  let continue_loop = ref true in
  while !continue_loop && !tested < 20 do
    match Pipeline.next_test_case session with
    | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
      continue_loop := false
    | Pipeline.Case tc ->
      incr tested;
      let verdict =
        Executor.run
          ~seed:(Int64.of_int !tested)
          (Executor.default_config ())
          {
            Executor.program = guest;
            state1 = tc.Pipeline.state1;
            state2 = tc.Pipeline.state2;
            train = tc.Pipeline.train;
          }
      in
      if verdict = Executor.Distinguishable then incr counter
  done;
  Format.printf "unguided: %d counterexamples in %d experiments@." !counter !tested
