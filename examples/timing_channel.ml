(* The end-to-end timing channel: the attacker reads only the PMC cycle
   counter of the victim's run (Sec. 6.1 describes this as the realistic
   measurement).  Execution time varies with cache hits and misses, so a
   model that does not determine the *aliasing* of memory accesses cannot
   be sound for it.

   The workload loads from two independent addresses: if they fall into
   the same cache line the second access hits (fast); otherwise it misses
   (slow).  The program-counter model Mpc treats all these states as
   equivalent — and is invalidated; the constant-time model Mct pins the
   addresses and validates.

   Run with:  dune exec examples/timing_channel.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Catalog = Scamv_models.Catalog
module Gen = Scamv_gen.Gen
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let x = Reg.x
let platform = Platform.cortex_a53

(* Two loads from independent pointers: timing depends on whether they
   alias in the cache. *)
let two_pointer_reads =
  Gen.return
    {
      Scamv_gen.Templates.template_name = "two-pointer reads";
      program =
        Scamv_arch.Isa.Aarch64_program
          [|
            Ast.Ldr (x 1, { Ast.base = x 0; offset = Ast.Imm 0L; scale = 0 });
            Ast.Ldr (x 2, { Ast.base = x 3; offset = Ast.Imm 0L; scale = 0 });
          |];
    }

let run name setup =
  let cfg =
    Campaign.make ~name ~template:two_pointer_reads ~setup ~view:Executor.Total_time
      ~programs:1 ~tests_per_program:60 ~seed:11L ()
  in
  let s = (Campaign.run cfg).Campaign.stats in
  Format.printf "%-46s experiments=%3d counterexamples=%3d@." name s.Stats.experiments
    s.Stats.counterexamples;
  s.Stats.counterexamples

let () =
  Format.printf
    "Validating models against a timing-only attacker (cycle counter):@.@.";
  let mpc =
    run "Mpc (control flow only), refined by Mline"
      (Refinement.refine_with_model ~base:Catalog.mpc ~refined:(Catalog.mline platform) ())
  in
  let mct = run "Mct (control flow + addresses), unguided" Refinement.mct_unguided in
  Format.printf "@.";
  if mpc > 0 then
    Format.printf
      "Mpc is UNSOUND for the timing channel: states with the same control@.\
       flow but different access aliasing run in different time (%d pairs).@."
      mpc;
  if mct = 0 then
    Format.printf
      "Mct validates: equal addresses imply equal hit/miss patterns and@.\
       hence equal cycle counts on this core.@."
