(* Cache-coloring audit (Sec. 4.2.1 / 6.2 as a user would apply it):
   given a security-sensitive routine — here a table lookup like an AES
   T-table round — validate the cache-partitioning model Mpart against
   the simulated hardware, with and without a page-aligned attacker
   region, using Mpart' refinement and Mline coverage for guidance.

   The audit reproduces the operational conclusion of the paper: cache
   coloring is unsound against the prefetcher unless the partition is
   page aligned.

   Run with:  dune exec examples/coloring_audit.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Gen = Scamv_gen.Gen
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let x = Reg.x
let platform = Platform.cortex_a53

(* A table-walk routine: the key-dependent starting row (x0 + x1) is read
   and the walk continues down the next rows — the sequential pattern a
   T-table cipher produces when traversing a table column.  Equidistant
   accesses are exactly what wakes the stride prefetcher up. *)
let lookup_routine =
  let row = 64L in
  let read k dest =
    Ast.Ldr
      (dest, { Ast.base = x 0; offset = Ast.Imm (Int64.mul (Int64.of_int k) row); scale = 0 })
  in
  Gen.return
    {
      Scamv_gen.Templates.template_name = "t-table walk";
      program =
        Scamv_arch.Isa.Aarch64_program
          [|
            Ast.Add (x 0, x 0, Ast.Reg (x 1)) (* key-dependent starting row *);
            read 0 (x 4);
            read 1 (x 5);
            read 2 (x 6);
            read 3 (x 7);
          |];
    }

let audit ~name region =
  let view =
    Executor.Region { first_set = region.Region.first_set; last_set = region.Region.last_set }
  in
  let setup = Refinement.mpart_vs_mpart' platform region in
  let cfg =
    Campaign.make ~name ~template:lookup_routine ~setup ~view ~programs:1
      ~tests_per_program:400 ~seed:7L ()
  in
  let outcome = Campaign.run cfg in
  let s = outcome.Campaign.stats in
  Format.printf "%-34s experiments=%4d counterexamples=%4d inconclusive=%3d@." name
    s.Stats.experiments s.Stats.counterexamples s.Stats.inconclusive;
  s.Stats.counterexamples

let () =
  Format.printf
    "Auditing a T-table lookup routine under cache coloring (Mpart),@.\
     refined by Mpart' with Mline coverage:@.@.";
  let unaligned = audit ~name:"attacker region sets 61..127" (Region.paper_unaligned platform) in
  let aligned = audit ~name:"page-aligned region sets 64..127" (Region.paper_page_aligned platform) in
  Format.printf "@.";
  if unaligned > 0 then
    Format.printf
      "FINDING: the prefetcher crosses the unaligned colour boundary - the@.\
       routine's table accesses leak into the attacker-visible sets even@.\
       though the model Mpart claims isolation (Sec. 6.2).@."
  else Format.printf "unexpected: no violation found for the unaligned region@.";
  if aligned = 0 then
    Format.printf
      "MITIGATION VALIDATED: with a page-aligned partition no counterexample@.\
       is found - prefetching stops at the page boundary.@."
  else Format.printf "unexpected: page-aligned partition leaked@."
