(* Fig. 5 / Fig. 7: the test-program templates, instantiated.

   Prints a few random instantiations of every template together with the
   validation setup each template is used with in the paper's
   experiments, and the instrumented BIR for one instance.

   Run with:  dune exec examples/templates_tour.exe *)

module Ast = Scamv_isa.Ast
module Gen = Scamv_gen.Gen
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Platform = Scamv_isa.Platform

let platform = Platform.cortex_a53

let tour =
  [
    ( "Stride Template (Sec. 6.2)",
      Templates.stride,
      "validates Mpart (cache coloring) refined by Mpart', Mline coverage" );
    ( "Template A (Fig. 5)",
      Templates.template_a,
      "validates Mct (constant time) refined by Mspec - the SiSCloak shape" );
    ( "Template B (Fig. 5)",
      Templates.template_b,
      "validates Mct and Mspec1; unconstrained register allocation" );
    ( "Template C (Fig. 7)",
      Templates.template_c,
      "causally dependent loads: separates Mspec1 from Mspec on the A53" );
    ( "Template D (Fig. 7)",
      Templates.template_d,
      "straight-line speculation probe after a direct branch" );
  ]

let () =
  List.iter
    (fun (title, template, usage) ->
      Format.printf "@.=== %s ===@.(%s)@." title usage;
      for seed = 1 to 3 do
        let { Templates.program; _ } = Gen.generate ~seed:(Int64.of_int seed) template in
        Format.printf "--- instance %d ---@.%a@." seed Scamv_arch.Isa.pp_program program
      done)
    tour;

  (* One instrumented instance: Template C under Mspec1-vs-Mspec, the
     setup of Sec. 6.5. *)
  Format.printf "@.=== Template C instrumented for Mspec1 vs Mspec ===@.";
  let { Templates.program; _ } = Gen.generate ~seed:1L Templates.template_c in
  let program =
    match program with
    | Scamv_arch.Isa.Aarch64_program p -> p
    | Scamv_arch.Isa.Riscv_program _ -> assert false
  in
  let bir = Refinement.annotate (Refinement.mspec1_vs_mspec ()) program in
  Format.printf "%a@." Scamv_bir.Program.pp bir;
  ignore (Region.paper_unaligned platform)
