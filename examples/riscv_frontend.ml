(* Multi-architecture support (Sec. 2.3: "Scam-V supports multiple
   architectures by translating binary programs to an intermediate
   language").  A RISC-V (RV64) victim is validated twice: translated to
   the common ISA (the original frontend), and natively, through the
   arch-parametric lifter ([Scamv_riscv.Lift.arch]) that turns RV64
   straight into BIR with no AArch64 detour.  Both paths find the
   speculative leak.

   Run with:  dune exec examples/riscv_frontend.exe *)

module Rv = Scamv_riscv.Ast
module Translate = Scamv_riscv.Translate
module Arm = Scamv_isa.Ast
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Gen = Scamv_gen.Gen
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

(* The SiSCloak gadget, written in RV64: a bounds check whose
   misprediction speculatively dereferences an already-loaded value.

     ld   x3, 0(x1)      # x3 := table entry (committed)
     bge  x3, x2, end    # classification check
     ld   x5, 0(x3)      # guarded dereference
   end:
*)
let rv_gadget =
  [|
    Rv.Ld (Rv.x 3, 0L, Rv.x 1);
    Rv.Bge (Rv.x 3, Rv.x 2, 3);
    Rv.Ld (Rv.x 5, 0L, Rv.x 3);
  |]

let run ~isa name template setup =
  let cfg =
    Campaign.make ~name ~isa ~template ~setup ~view:Executor.Full_cache
      ~programs:1 ~tests_per_program:40 ~seed:9L ()
  in
  let s = (Campaign.run cfg).Campaign.stats in
  Format.printf "%-28s experiments=%3d counterexamples=%3d ttc=%s@." name
    s.Stats.experiments s.Stats.counterexamples
    (match s.Stats.time_to_first_counterexample with
    | None -> "-"
    | Some t -> Printf.sprintf "%.2fs" t);
  s.Stats.counterexamples

let () =
  Format.printf "=== RV64 victim ===@.%a@." Rv.pp_program rv_gadget;
  (match Translate.translate rv_gadget with
  | Error msg -> Format.printf "translation failed: %s@." msg
  | Ok arm ->
    Format.printf "=== translated to the common ISA ===@.%a@." Arm.pp_program arm;
    let template =
      Gen.return
        {
          Scamv_gen.Templates.template_name = "rv64 gadget";
          program = Scamv_arch.Isa.Aarch64_program arm;
        }
    in
    Format.printf "@.=== validating Mct on the translated program ===@.";
    let refined =
      run ~isa:Scamv_arch.Isa.Aarch64 "Mct vs Mspec (refined)" template
        (Refinement.mct_vs_mspec ())
    in
    let unguided =
      run ~isa:Scamv_arch.Isa.Aarch64 "Mct unguided" template
        Refinement.mct_unguided
    in
    Format.printf "@.";
    if refined > 0 && unguided = 0 then
      Format.printf
        "The RISC-V victim leaks exactly like its AArch64 counterpart: one@.\
         speculative load suffices, and only refinement-guided search sees it.@.\
         Supporting the new architecture took one translator module - models,@.\
         symbolic execution, relation synthesis and the platform are unchanged.@.");
  (* The same gadget again, without the translation detour: the native
     RV64 lifter feeds the identical pipeline, and the RV64 side of the
     simulated core (compare-and-branch speculation) runs it. *)
  Format.printf "@.=== validating Mct natively (no translation) ===@.%a@."
    Scamv_bir.Program.pp
    (Scamv_bir.Lifter.lift_arch Scamv_riscv.Lift.arch rv_gadget);
  let native_template =
    Gen.return
      {
        Scamv_gen.Templates.template_name = "rv64 gadget (native)";
        program = Scamv_arch.Isa.Riscv_program rv_gadget;
      }
  in
  let native =
    run ~isa:Scamv_arch.Isa.Riscv "Mct vs Mspec (native)" native_template
      (Refinement.mct_vs_mspec ())
  in
  if native > 0 then
    Format.printf
      "@.The native frontend reaches the same conclusion - and it also@.\
       accepts RV64 programs the translator rejects (register-amount@.\
       shifts, jal with a live link register).@."
