(* Command-line front end to the Scam-V reproduction.

   scamv campaign --template A --setup mct-vs-mspec ...   run a campaign
   scamv show --template C --setup mspec1-vs-mspec        inspect a program
   scamv models                                           list models/setups
*)

module Ast = Scamv_isa.Ast
module Isa = Scamv_arch.Isa
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Templates = Scamv_gen.Templates
module Gen = Scamv_gen.Gen
module Campaign = Scamv.Campaign
module Pipeline = Scamv.Pipeline
module Stats = Scamv.Stats
open Cmdliner

let platform = Platform.cortex_a53

(* ---- setups ---- *)

let region = Region.paper_unaligned platform
let region_pa = Region.paper_page_aligned platform

let setups =
  [
    ("mct-unguided", fun () -> Refinement.mct_unguided);
    ("mct-vs-mspec", fun () -> Refinement.mct_vs_mspec ());
    ("mspec1-vs-mspec", fun () -> Refinement.mspec1_vs_mspec ());
    ("mct-vs-mspec-sl", fun () -> Refinement.mct_vs_mspec_straight_line ());
    ("mpart-unguided", fun () -> Refinement.mpart_unguided platform region);
    ("mpart-vs-mpart'", fun () -> Refinement.mpart_vs_mpart' platform region);
    ("mpart-pa-unguided", fun () -> Refinement.mpart_unguided platform region_pa);
    ("mpart-pa-vs-mpart'", fun () -> Refinement.mpart_vs_mpart' platform region_pa);
  ]

let default_view name =
  if String.length name >= 5 && String.sub name 0 5 = "mpart" then
    if String.length name >= 8 && String.sub name 0 8 = "mpart-pa" then
      Executor.Region
        { first_set = region_pa.Region.first_set; last_set = region_pa.Region.last_set }
    else
      Executor.Region
        { first_set = region.Region.first_set; last_set = region.Region.last_set }
  else Executor.Full_cache

(* ---- common options ---- *)

let template_arg =
  let doc = "Test-program template: stride, A, B, C or D (Fig. 5 / Fig. 7)." in
  Arg.(value & opt string "A" & info [ "template"; "t" ] ~docv:"NAME" ~doc)

let setup_arg =
  let doc =
    "Validation setup (model under validation and refinement): "
    ^ String.concat ", " (List.map fst setups)
    ^ "."
  in
  Arg.(value & opt string "mct-vs-mspec" & info [ "setup"; "m" ] ~docv:"SETUP" ~doc)

let seed_arg =
  let doc = "Random seed; campaigns are fully reproducible from it." in
  Arg.(value & opt int64 2021L & info [ "seed" ] ~docv:"SEED" ~doc)

let isa_arg =
  let doc = "Guest instruction set: aarch64 or riscv." in
  Arg.(value & opt string "aarch64" & info [ "isa" ] ~docv:"ISA" ~doc)

let lookup_setup name =
  match List.assoc_opt name setups with
  | Some s -> Ok (s ())
  | None -> Error (`Msg ("unknown setup " ^ name ^ "; see `scamv models`"))

let lookup_isa name =
  match Isa.of_string name with Ok isa -> Ok isa | Error msg -> Error (`Msg msg)

let lookup_template ?isa name =
  match Templates.by_name ?isa name with
  | t -> Ok t
  | exception Invalid_argument msg -> Error (`Msg msg)

(* ---- campaign command ---- *)

let campaign_cmd =
  let programs_arg =
    Arg.(value & opt int 50 & info [ "programs"; "p" ] ~docv:"N" ~doc:"Programs to generate.")
  in
  let tests_arg =
    Arg.(value & opt int 30 & info [ "tests"; "k" ] ~docv:"K" ~doc:"Test cases per program.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print progress events.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Persist the experiment journal to $(docv) incrementally (one \
             flushed CSV row per event); the file doubles as a checkpoint for \
             $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a killed campaign from the journal CSV it left behind; \
             completed programs are replayed, the rest are re-run.  Typically \
             $(docv) is the same file as $(b,--csv).")
  in
  let max_conflicts_arg =
    Arg.(
      value & opt int 0
      & info [ "max-conflicts" ] ~docv:"N"
          ~doc:"SAT budget: conflicts allowed per solver call (0 = unlimited).")
  in
  let max_decisions_arg =
    Arg.(
      value & opt int 0
      & info [ "max-decisions" ] ~docv:"N"
          ~doc:"SAT budget: decisions allowed per solver call (0 = unlimited).")
  in
  let max_propagations_arg =
    Arg.(
      value & opt int 0
      & info [ "max-propagations" ] ~docv:"N"
          ~doc:"SAT budget: propagations allowed per solver call (0 = unlimited).")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int 1
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Executor attempts per experiment; inconclusive (noisy) runs are \
             retried up to this many times with majority voting.")
  in
  let confirm_arg =
    Arg.(
      value & opt int 1
      & info [ "confirm" ] ~docv:"K"
          ~doc:"Votes a conclusive verdict needs before retrying stops.")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:
            "Board-noise fault injection: probability in [0,1] that a \
             measurement is perturbed, dropped, or polluted.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int64 0xFA17L
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of the injected fault stream.")
  in
  let deadline_conflicts_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-conflicts" ] ~docv:"N"
          ~doc:
            "Per-program virtual deadline: abandon a program (recording it \
             as crashed) once its SAT searches have spent $(docv) conflicts. \
             Purely work-based, so output stays byte-identical across \
             $(b,--jobs) levels.  0 = no deadline.")
  in
  let deadline_seconds_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-seconds" ] ~docv:"S"
          ~doc:
            "Per-program wall-clock watchdog: abandon a program (recording \
             it as crashed) after $(docv) seconds.  For service use; not \
             deterministic.  0 = no deadline.  Mutually exclusive with \
             $(b,--deadline-conflicts).")
  in
  let chaos_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-rate" ] ~docv:"R"
          ~doc:
            "Chaos harness: probability in [0,1] of injecting a fault at \
             each chaos site (worker kills, journal write poison/delay, \
             solver budget exhaustion).  Injection decisions are a pure \
             function of ($(b,--chaos-seed), site, key), so chaos campaigns \
             are reproducible and jobs-independent.  0 = chaos off.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int64 0xC4A05L
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed of the chaos injection decisions.")
  in
  let portfolio_arg =
    Arg.(
      value & opt int 1
      & info [ "portfolio" ] ~docv:"K"
          ~doc:
            "Solver portfolio size: when a path pair's enumeration \
             exhausts its SAT budget, try up to $(docv)-1 challenger \
             solver configurations (varied restart series, decision \
             polarity and seed) in rank order before quarantining the \
             pair.  Configuration 0 is the stock solver, and the \
             challenger table is fixed, so results are deterministic \
             and — without a SAT budget — independent of $(docv).  \
             Counted as $(b,portfolio.races) / $(b,portfolio.wins.<k>).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains running program pipelines in parallel (0 = all \
             cores).  Results are merged in program order, so journal, \
             statistics and progress output are identical to $(b,--jobs 1) \
             for the same seed; only timings differ.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file of the campaign's phase \
             spans (lift, annotate, symexec, synth, enumerate, run, \
             compare, ...) to $(docv); open it in chrome://tracing or \
             Perfetto.  Spans are merged in program order, so the file is \
             independent of $(b,--jobs).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus-style text dump of the telemetry registry \
             (SAT/SMT work, microarchitectural hit/miss counters, campaign \
             phase histograms) to $(docv) and print a summary table at the \
             end of the run.")
  in
  let run template_name setup_name isa_name programs tests seed verbose csv
      resume max_conflicts max_decisions max_propagations max_attempts confirm
      fault_rate fault_seed deadline_conflicts deadline_seconds chaos_rate
      chaos_seed portfolio jobs trace metrics =
    let ( let* ) = Result.bind in
    let* isa = lookup_isa isa_name in
    let* template = lookup_template ~isa template_name in
    let* setup = lookup_setup setup_name in
    let* () =
      if fault_rate < 0.0 || fault_rate > 1.0 then
        Error (`Msg "--fault-rate must be within [0, 1]")
      else Ok ()
    in
    let* () =
      if max_attempts < 1 || confirm < 1 then
        Error (`Msg "--max-attempts and --confirm must be at least 1")
      else Ok ()
    in
    let* () =
      if jobs < 0 then Error (`Msg "--jobs must be at least 0") else Ok ()
    in
    let* () =
      if deadline_conflicts < 0 then
        Error (`Msg "--deadline-conflicts must be at least 0")
      else if deadline_seconds < 0.0 then
        Error (`Msg "--deadline-seconds must be at least 0")
      else if deadline_conflicts > 0 && deadline_seconds > 0.0 then
        Error
          (`Msg
            "--deadline-conflicts and --deadline-seconds are mutually \
             exclusive")
      else Ok ()
    in
    let* () =
      if chaos_rate < 0.0 || chaos_rate > 1.0 then
        Error (`Msg "--chaos-rate must be within [0, 1]")
      else Ok ()
    in
    let* () =
      (* Tolerant pre-flight check: a torn tail is recovered (and reported
         below by Campaign.run), so only unreadable files and malformed v1
         CSVs are rejected here. *)
      match resume with
      | None -> Ok ()
      | Some path -> (
        try
          if Sys.file_exists path then ignore (Scamv.Journal.load ~path);
          Ok ()
        with
        | Scamv.Journal.Parse_error msg ->
          Error (`Msg (Printf.sprintf "--resume %s: %s" path msg))
        | Sys_error msg -> Error (`Msg msg))
    in
    let name = Printf.sprintf "%s on template %s" setup_name template_name in
    let cap n = if n > 0 then Some n else None in
    let sat_budget =
      match (cap max_conflicts, cap max_decisions, cap max_propagations) with
      | None, None, None -> None
      | conflicts, decisions, propagations ->
        Some
          (Scamv_smt.Sat.budget ?conflicts ?decisions ?propagations ())
    in
    let retry = Scamv.Retry.make ~max_attempts ~confirm () in
    let faults =
      if fault_rate > 0.0 then
        Some (Scamv_microarch.Faults.config ~rate:fault_rate ~seed:fault_seed ())
      else None
    in
    let deadline =
      if deadline_conflicts > 0 then
        Some (Scamv_util.Deadline.Conflicts deadline_conflicts)
      else if deadline_seconds > 0.0 then
        Some (Scamv_util.Deadline.Wall_seconds deadline_seconds)
      else None
    in
    let chaos =
      if chaos_rate > 0.0 then
        Some (Scamv_util.Chaos.create ~rate:chaos_rate ~seed:chaos_seed ())
      else None
    in
    let* () =
      if portfolio < 1 then
        Error (`Msg "--portfolio must be at least 1")
      else Ok ()
    in
    let cfg =
      Campaign.make ~name ~isa ~template ~setup ~view:(default_view setup_name)
        ~programs ~tests_per_program:tests ~seed ?sat_budget ~portfolio ~retry
        ?faults ?deadline ?chaos ()
    in
    let on_event = if verbose then print_endline else fun _ -> () in
    let journal = Scamv.Journal.create ?path:csv ?chaos () in
    let outcome = Campaign.run ~on_event ~journal ?resume ~jobs cfg in
    Scamv.Journal.close journal;
    print_string
      (Scamv_util.Text_table.render ~header:Stats.header
         ~rows:[ Stats.row ~name outcome.Campaign.stats ]);
    let m = outcome.Campaign.telemetry.Scamv_telemetry.Collector.metrics in
    let c k = Scamv_telemetry.Metrics.counter m k in
    Printf.printf
      "uarch: cache %d/%d hit/miss, tlb %d/%d, predictor %d/%d, %d \
       transient loads, %d faults injected\n"
      (c "uarch.cache.hits") (c "uarch.cache.misses") (c "uarch.tlb.hits")
      (c "uarch.tlb.misses")
      (c "uarch.predictor.hits")
      (c "uarch.predictor.misses")
      (c "uarch.transient_loads")
      (c "uarch.faults.injected");
    Printf.printf "wall time: %.1fs\n" outcome.Campaign.wall_seconds;
    (match csv with
    | None -> ()
    | Some path ->
      Printf.printf "journal: %d experiments written to %s\n"
        (Scamv.Journal.length journal) path);
    (match trace with
    | None -> ()
    | Some path ->
      Scamv_telemetry.Export.to_file path
        (Scamv_telemetry.Export.trace_string outcome.Campaign.telemetry);
      Printf.printf "trace: %d spans written to %s\n"
        (List.length outcome.Campaign.telemetry.Scamv_telemetry.Collector.spans)
        path);
    (match metrics with
    | None -> ()
    | Some path ->
      Scamv_telemetry.Export.to_file path (Scamv_telemetry.Export.prometheus m);
      print_string (Scamv_telemetry.Export.summary_table m);
      Printf.printf "metrics: written to %s\n" path);
    Ok ()
  in
  let term =
    Term.(
      const run $ template_arg $ setup_arg $ isa_arg $ programs_arg $ tests_arg
      $ seed_arg $ verbose_arg $ csv_arg $ resume_arg $ max_conflicts_arg $ max_decisions_arg
      $ max_propagations_arg $ max_attempts_arg $ confirm_arg $ fault_rate_arg
      $ fault_seed_arg $ deadline_conflicts_arg $ deadline_seconds_arg
      $ chaos_rate_arg $ chaos_seed_arg $ portfolio_arg $ jobs_arg $ trace_arg
      $ metrics_arg)
  in
  let info =
    Cmd.info "campaign" ~doc:"Run a validation campaign and print Table-1-style statistics."
  in
  Cmd.v info Term.(term_result term)

(* ---- show command ---- *)

let show_cmd =
  let run template_name setup_name isa_name seed =
    let ( let* ) = Result.bind in
    let* isa = lookup_isa isa_name in
    let* template = lookup_template ~isa template_name in
    let* setup = lookup_setup setup_name in
    let { Templates.program; template_name = name } = Gen.generate ~seed template in
    let annotated =
      match program with
      | Isa.Aarch64_program p -> Refinement.annotate setup p
      | Isa.Riscv_program p ->
        Refinement.annotate_arch setup Scamv_riscv.Lift.arch p
    in
    Format.printf "=== template %s instance (%a) ===@.%a@." name Isa.pp isa
      Isa.pp_program program;
    Format.printf "=== instrumented BIR (%s) ===@.%a@." setup.Refinement.name
      Scamv_bir.Program.pp annotated;
    let leaves = Scamv_symbolic.Exec.execute annotated in
    Format.printf "=== symbolic paths ===@.";
    List.iteri
      (fun i l -> Format.printf "--- path %d ---@.%a@." i Scamv_symbolic.Exec.pp_leaf l)
      leaves;
    let cfg = Pipeline.default_config ~isa setup in
    let session = Pipeline.prepare ~seed cfg program in
    (match Pipeline.next_test_case session with
    | Pipeline.Exhausted -> Format.printf "=== no test case (relation unsatisfiable) ===@."
    | Pipeline.Quarantined { pair = p1, p2; reason } ->
      Format.printf "=== path pair (%d,%d) quarantined: %s ===@." p1 p2 reason
    | Pipeline.Crashed { reason } ->
      Format.printf "=== generation crashed: %s ===@." reason
    | Pipeline.Case tc ->
      Format.printf "=== first test case ===@.state 1:@.%a@.state 2:@.%a@."
        Scamv_isa.Machine.pp tc.Pipeline.state1 Scamv_isa.Machine.pp tc.Pipeline.state2);
    Ok ()
  in
  let term = Term.(const run $ template_arg $ setup_arg $ isa_arg $ seed_arg) in
  let info =
    Cmd.info "show"
      ~doc:"Generate one program and show its instrumentation, paths and a test case."
  in
  Cmd.v info Term.(term_result term)

(* ---- diff command ---- *)

let diff_cmd =
  let programs_arg =
    Arg.(
      value & opt int 20
      & info [ "programs"; "p" ] ~docv:"N" ~doc:"Programs to generate per ISA.")
  in
  let tests_arg =
    Arg.(value & opt int 10 & info [ "tests"; "k" ] ~docv:"K" ~doc:"Test cases per program.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print progress events.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Persist both sides' journal rows followed by the diverged \
             records to $(docv).")
  in
  let max_conflicts_arg =
    Arg.(
      value & opt int 0
      & info [ "max-conflicts" ] ~docv:"N"
          ~doc:"SAT budget: conflicts allowed per solver call (0 = unlimited).")
  in
  let portfolio_arg =
    Arg.(
      value & opt int 1
      & info [ "portfolio" ] ~docv:"K" ~doc:"Solver portfolio size.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains per side (0 = all cores).  Output is identical \
             across $(docv) levels for the same seed.")
  in
  let frozen_clock_arg =
    Arg.(
      value & flag
      & info [ "frozen-clock" ]
          ~doc:
            "Zero every measured duration so the journal is a pure function \
             of the parameters (used by the diff-smoke acceptance check).")
  in
  let run template_name setup_name programs tests seed verbose csv max_conflicts
      portfolio jobs frozen =
    let ( let* ) = Result.bind in
    (* Both ISAs must know the template; checking each side up front turns
       a mid-run Invalid_argument into a proper usage error. *)
    let* _ = lookup_template ~isa:Isa.Aarch64 template_name in
    let* _ = lookup_template ~isa:Isa.Riscv template_name in
    let* setup = lookup_setup setup_name in
    let* () =
      if jobs < 0 then Error (`Msg "--jobs must be at least 0") else Ok ()
    in
    let* () =
      if portfolio < 1 then Error (`Msg "--portfolio must be at least 1")
      else Ok ()
    in
    let name = Printf.sprintf "%s on template %s" setup_name template_name in
    let sat_budget =
      if max_conflicts > 0 then
        Some (Scamv_smt.Sat.budget ~conflicts:max_conflicts ())
      else None
    in
    let clock =
      if frozen then Scamv_util.Stopwatch.frozen else Scamv_util.Stopwatch.wall
    in
    let on_event = if verbose then print_endline else fun _ -> () in
    let journal = Scamv.Journal.create ?path:csv () in
    let outcome =
      Scamv.Diff.run ~on_event ~journal ~jobs ~name ~template:template_name
        ~setup ~view:(default_view setup_name) ~programs
        ~tests_per_program:tests ~seed ?sat_budget ~portfolio ~clock ()
    in
    Scamv.Journal.close journal;
    print_string
      (Scamv_util.Text_table.render ~header:Stats.header
         ~rows:
           [
             Stats.row
               ~name:(name ^ " [aarch64]")
               outcome.Scamv.Diff.aarch64.Campaign.stats;
             Stats.row ~name:(name ^ " [riscv]")
               outcome.Scamv.Diff.riscv.Campaign.stats;
           ]);
    Printf.printf "cross-ISA: %d path pair(s) compared, %d unmatched, %d divergence(s)\n"
      outcome.Scamv.Diff.compared_pairs outcome.Scamv.Diff.unmatched_pairs
      (List.length outcome.Scamv.Diff.divergences);
    List.iter
      (function
        | Scamv.Journal.Diverged { program_index; pair = p1, p2; aarch64; riscv; _ } ->
          Printf.printf "  program %d pair (%d,%d): aarch64=%s riscv=%s\n"
            program_index p1 p2
            (Scamv.Journal.verdict_string aarch64)
            (Scamv.Journal.verdict_string riscv)
        | _ -> ())
      outcome.Scamv.Diff.divergences;
    (match csv with
    | None -> ()
    | Some path ->
      Printf.printf "journal: %d records written to %s\n"
        (Scamv.Journal.length journal) path);
    Ok ()
  in
  let term =
    Term.(
      const run $ template_arg $ setup_arg $ programs_arg $ tests_arg $ seed_arg
      $ verbose_arg $ csv_arg $ max_conflicts_arg $ portfolio_arg $ jobs_arg
      $ frozen_clock_arg)
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Run the same (template, setup, seed) campaign on both guest ISAs and \
         report path pairs whose verdicts diverge."
  in
  Cmd.v info Term.(term_result term)

(* ---- models command ---- *)

let models_cmd =
  let run () =
    print_endline "Observational models:";
    List.iter
      (fun (m : Scamv_models.Model.t) ->
        Printf.printf "  %-8s %s\n" m.Scamv_models.Model.name m.Scamv_models.Model.description)
      (Scamv_models.Catalog.all_static platform region
      @ [
          Scamv_models.Catalog.mspec ();
          Scamv_models.Catalog.mspec1 ();
          Scamv_models.Catalog.mspec_straight_line ();
        ]);
    print_endline "";
    print_endline "Validation setups (--setup):";
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) setups;
    Ok ()
  in
  let info = Cmd.info "models" ~doc:"List the available models and validation setups." in
  Cmd.v info Term.(term_result (const run $ const ()))

(* ---- serve command ---- *)

let serve_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to listen on.")
  in
  let port_arg =
    Arg.(
      value & opt int 8421
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 = pick a free one).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains in the pool shared by all campaigns (0 = all \
             cores).  Campaign artifacts are byte-identical across $(docv) \
             levels.")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 1
      & info [ "concurrency" ] ~docv:"K"
          ~doc:
            "Campaigns executed at once: the worker pool is partitioned \
             into $(docv) deterministic slices, each driven by its own \
             runner.  Slice assignment is a pure function of (tenant, \
             sequence), so artifacts stay byte-identical across $(docv) \
             levels.")
  in
  let max_connections_arg =
    Arg.(
      value & opt int 64
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Connection workers (and the accept-queue bound); overflow \
             connections are answered 503 with Retry-After.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Idle time after which a keep-alive connection is closed.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Persist each campaign's journal and metadata under $(docv); \
             without it campaigns are lost on restart.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Adopt the campaigns already recorded in $(b,--state-dir): \
             finished ones become streamable again, interrupted ones are \
             re-enqueued and resumed from their journals.")
  in
  let max_backlog_arg =
    Arg.(
      value & opt int Scamv_service.Tenant.default_quota.Scamv_service.Tenant.max_backlog
      & info [ "max-backlog" ] ~docv:"N"
          ~doc:"Queued campaigns allowed per tenant before submissions get 429.")
  in
  let max_active_arg =
    Arg.(
      value & opt int Scamv_service.Tenant.default_quota.Scamv_service.Tenant.max_active
      & info [ "max-active" ] ~docv:"N"
          ~doc:"Unfinished campaigns allowed per tenant before submissions get 429.")
  in
  let frozen_clock_arg =
    Arg.(
      value & flag
      & info [ "frozen-clock" ]
          ~doc:
            "Zero every measured duration so campaign artifacts are pure \
             functions of their parameters (used by the byte-identity \
             acceptance checks).")
  in
  let run host port jobs concurrency max_connections idle_timeout state_dir
      resume max_backlog max_active frozen =
    let ( let* ) = Result.bind in
    let* () =
      if jobs < 0 then Error (`Msg "--jobs must be at least 0") else Ok ()
    in
    let* () =
      if concurrency < 1 then Error (`Msg "--concurrency must be at least 1")
      else Ok ()
    in
    let* () =
      if max_connections < 1 then
        Error (`Msg "--max-connections must be at least 1")
      else Ok ()
    in
    let* () =
      if idle_timeout <= 0.0 then
        Error (`Msg "--idle-timeout must be positive")
      else Ok ()
    in
    let* () =
      if max_backlog < 1 || max_active < 1 then
        Error (`Msg "--max-backlog and --max-active must be at least 1")
      else Ok ()
    in
    let* () =
      (* A state dir with history from a previous server life must be
         adopted explicitly: silently ignoring it would reuse tenant
         sequence numbers and clobber old journals. *)
      match state_dir with
      | Some dir when (not resume) && Sys.file_exists dir ->
        let stale =
          Sys.readdir dir |> Array.to_list
          |> List.exists (fun f -> Filename.check_suffix f ".meta.json")
        in
        if stale then
          Error
            (`Msg
              (Printf.sprintf
                 "%s already holds campaigns from a previous run; pass \
                  --resume to adopt them or choose a fresh directory"
                 dir))
        else Ok ()
      | _ -> Ok ()
    in
    let config =
      {
        Scamv_service.Scheduler.jobs;
        concurrency;
        state_dir;
        quota =
          { Scamv_service.Tenant.max_backlog; max_active };
        clock =
          (if frozen then Scamv_util.Stopwatch.frozen else Scamv_util.Stopwatch.wall);
      }
    in
    let scheduler = Scamv_service.Scheduler.create ~config () in
    let server =
      Scamv_service.Server.create ~host ~port ~max_connections ~idle_timeout
        scheduler
    in
    let* () =
      try
        Scamv_service.Server.start server;
        Ok ()
      with Unix.Unix_error (e, _, _) ->
        Error (`Msg (Printf.sprintf "cannot listen on %s:%d: %s" host port
                       (Unix.error_message e)))
    in
    Printf.printf "scamv service listening on http://%s:%d\n%!" host
      (Scamv_service.Server.port server);
    (* Block until SIGINT/SIGTERM, then drain cooperatively.  The main
       thread must sleep in short slices: OCaml signal handlers only run
       when some thread reaches a poll point, and with every other
       thread parked in accept(2) or Condition.wait a main thread
       blocked the same way would never wake to see the signal. *)
    let quitting = ref false in
    let request_quit _ = quitting := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_quit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_quit);
    while not !quitting do
      Thread.delay 0.2
    done;
    prerr_endline "shutting down...";
    Scamv_service.Server.stop server;
    Scamv_service.Scheduler.shutdown scheduler;
    Ok ()
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ jobs_arg $ concurrency_arg
      $ max_connections_arg $ idle_timeout_arg $ state_dir_arg $ resume_arg
      $ max_backlog_arg $ max_active_arg $ frozen_clock_arg)
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the campaign-validation service: campaigns over HTTP with \
         streamed NDJSON verdicts, multi-tenant quotas and restartable \
         persistence."
  in
  Cmd.v info Term.(term_result term)

let () =
  let doc = "Validation of side-channel models via observation refinement (MICRO'21)" in
  let info = Cmd.info "scamv" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ campaign_cmd; diff_cmd; show_cmd; models_cmd; serve_cmd ]))
