DUNE ?= dune

# Seeded smoke campaign: fault injection + retry + a tight SAT budget +
# a 2-config solver portfolio, so the quarantine/retry/fault/portfolio
# counters are exercised on every check.
SMOKE = campaign --template A --setup mct-vs-mspec -p 6 -k 4 --seed 2021 \
	--fault-rate 0.1 --fault-seed 7 --max-attempts 3 --max-conflicts 100 \
	--portfolio 2

.PHONY: all build test smoke check bench bench-smoke chaos-smoke metrics-smoke solver-smoke serve-smoke diff-smoke perf-check service-perf-check clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

smoke: build
	$(DUNE) exec bin/scamv_cli.exe -- $(SMOKE)
	$(DUNE) exec bin/scamv_cli.exe -- $(SMOKE) --jobs 4

check: build test smoke

bench:
	$(DUNE) exec bench/main.exe

# Small multicore campaign benchmark: times the same seeded campaign at
# --jobs 1/2/4 plus the solver microbenchmark (blast/solve/enumerate in
# isolation), writes BENCH_campaign.json, and validates the emitted schema
# (cross-checking that statistics are identical across job counts).
bench-smoke: build
	$(DUNE) exec bench/main.exe -- solver
	$(DUNE) exec bench/main.exe -- campaign --smoke --out BENCH_campaign.smoke.json
	$(DUNE) exec bench/main.exe -- validate-bench BENCH_campaign.smoke.json

# Supervision acceptance: SIGKILL a journaled campaign mid-flight, tear
# the journal tail, and require the resumed run to match an uninterrupted
# one byte for byte; then require chaos worker-kill and virtual-deadline
# campaigns to stay byte-identical across --jobs levels.
chaos-smoke: build
	$(DUNE) exec bench/main.exe -- chaos --smoke

# Solver smoke: the phase-isolated solver microbenchmark plus the
# deterministic portfolio race, then the incremental-vs-fresh identity
# check (a staged make_session + extend session must enumerate byte-for-
# byte the same models as a fresh session asserting everything at once).
solver-smoke: build
	$(DUNE) exec bench/main.exe -- solver
	$(DUNE) exec bench/main.exe -- solver-identity

# Validation-service acceptance: boot an in-process HTTP server and check
# the full surface — two tenants submitting and streaming concurrently
# (both streams byte-identical to batch Campaign.run), byte-identity
# across --concurrency {1,2,4} x --jobs {1,2} servers, HTTP keep-alive
# reuse witnessed by the server's own counters, quota 429 backpressure
# plus queued-campaign cancellation over the wire, and SIGKILL of a
# --concurrency 2 server with two campaigns mid-flight followed by a
# --resume restart that completes both byte-identically.  Then a small
# load run (two client mixes + the concurrency-scaling sweep) writes the
# latency/throughput report.
serve-smoke: build
	$(DUNE) exec bench/main.exe -- service --smoke --out BENCH_service.smoke.json

# Cross-ISA acceptance: the same frozen-clock differential campaign at
# --jobs 1 and --jobs 2 must print identical divergence reports and
# write identical journals — diff output is a pure function of
# (template, setup, seed), never of the schedule.
DIFF_SMOKE = diff --template A --setup mct-vs-mspec -p 6 -k 4 --seed 2021 \
	--max-conflicts 200 --frozen-clock

diff-smoke: build
	$(DUNE) exec bin/scamv_cli.exe -- $(DIFF_SMOKE) --jobs 1 \
		--csv diff.smoke.j1.csv > diff.smoke.j1.out
	$(DUNE) exec bin/scamv_cli.exe -- $(DIFF_SMOKE) --jobs 2 \
		--csv diff.smoke.j2.csv > diff.smoke.j2.out
	cmp diff.smoke.j1.csv diff.smoke.j2.csv
	sed 's/diff\.smoke\.j[12]\.csv/JOURNAL/' diff.smoke.j1.out > diff.smoke.j1.norm
	sed 's/diff\.smoke\.j[12]\.csv/JOURNAL/' diff.smoke.j2.out > diff.smoke.j2.norm
	cmp diff.smoke.j1.norm diff.smoke.j2.norm

# Perf regression gate: re-run the committed campaign benchmark (same
# deterministic seed and size — the "full" config is itself smoke-scale,
# a few seconds end to end) and fail if the fresh jobs=1 generation-phase
# time is more than 25% above the committed BENCH_campaign.json.
perf-check: build
	$(DUNE) exec bench/main.exe -- campaign --out BENCH_campaign.perfcheck.json
	$(DUNE) exec bench/main.exe -- compare-bench BENCH_campaign.json BENCH_campaign.perfcheck.json

# Telemetry round trip: run a small parallel campaign with --trace and
# --metrics, then check both files parse and carry the expected spans and
# metric families; then dump /metrics from a live --concurrency 2 server
# and check the service/scheduler families (pre-registered counters,
# connection gauges, slice widths) are all exported.
metrics-smoke: build
	$(DUNE) exec bin/scamv_cli.exe -- $(SMOKE) --jobs 2 \
		--trace trace.smoke.json --metrics metrics.smoke.txt
	$(DUNE) exec bench/main.exe -- service-metrics --out metrics.service.smoke.txt
	$(DUNE) exec bench/main.exe -- validate-telemetry trace.smoke.json \
		metrics.smoke.txt metrics.service.smoke.txt

# Service perf regression gate: re-run the load generator (suite skipped)
# and fail if the fresh concurrency-1 throughput drops below half the
# committed BENCH_service.json, or p95 latency more than doubles.  Bounds
# are loose on purpose: service numbers ride on threads and loopback TCP.
service-perf-check: build
	$(DUNE) exec bench/main.exe -- service --load-only \
		--out BENCH_service.perfcheck.json
	$(DUNE) exec bench/main.exe -- compare-service BENCH_service.json \
		BENCH_service.perfcheck.json

clean:
	$(DUNE) clean
