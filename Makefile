DUNE ?= dune

# Seeded smoke campaign: fault injection + retry + a tight SAT budget, so
# the quarantine/retry/fault counters are exercised on every check.
SMOKE = campaign --template A --setup mct-vs-mspec -p 6 -k 4 --seed 2021 \
	--fault-rate 0.1 --fault-seed 7 --max-attempts 3 --max-conflicts 100

.PHONY: all build test smoke check bench clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

smoke: build
	$(DUNE) exec bin/scamv_cli.exe -- $(SMOKE)

check: build test smoke

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
