module Splitmix = Scamv_util.Splitmix
module Reg = Scamv_isa.Reg

type 'a t = Splitmix.t -> 'a * Splitmix.t

let run g rng = g rng
let generate ~seed g = fst (g (Splitmix.of_seed seed))
let return x rng = (x, rng)

let map f g rng =
  let x, rng = g rng in
  (f x, rng)

let bind g f rng =
  let x, rng = g rng in
  f x rng

let both a b = bind a (fun x -> map (fun y -> (x, y)) b)

let list n g rng =
  let rec go n acc rng =
    if n = 0 then (List.rev acc, rng)
    else
      let x, rng = g rng in
      go (n - 1) (x :: acc) rng
  in
  go n [] rng

let list_of gs rng =
  List.fold_left
    (fun (acc, rng) g ->
      let x, rng = g rng in
      (x :: acc, rng))
    ([], rng) gs
  |> fun (acc, rng) -> (List.rev acc, rng)

let int_in lo hi rng = Splitmix.int_in rng lo hi
let int64_any rng = Splitmix.next rng
let bool rng = Splitmix.bool rng
let choose xs rng = Splitmix.choose rng xs
let oneof gs = bind (choose gs) (fun g -> g)

let opt p g rng =
  let v, rng = Splitmix.float rng in
  if v < p then map (fun x -> Some x) g rng else (None, rng)

let frequency weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  bind (int_in 0 (total - 1)) (fun k ->
      let rec pick k = function
        | [] -> invalid_arg "Gen.frequency: empty"
        | (w, g) :: rest -> if k < w then g else pick (k - w) rest
      in
      pick k weighted)

let reg = map Reg.x (int_in 0 (Reg.count - 1))

let reg_avoiding avoid =
  let candidates = List.filter (fun r -> not (List.exists (Reg.equal r) avoid)) Reg.all in
  if candidates = [] then invalid_arg "Gen.reg_avoiding: all registers excluded";
  choose candidates

let distinct_regs ?(avoid = []) n =
  let rec go n picked =
    if n = 0 then return (List.rev picked)
    else
      bind (reg_avoiding (avoid @ picked)) (fun r -> go (n - 1) (r :: picked))
  in
  go n []

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) g f = map f g
  let ( and+ ) = both
end
