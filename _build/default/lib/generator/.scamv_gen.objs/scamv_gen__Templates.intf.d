lib/generator/templates.mli: Gen Scamv_isa
