lib/generator/gen.ml: List Scamv_isa Scamv_util
