lib/generator/templates.ml: Array Gen Int64 List Scamv_isa
