lib/generator/gen.mli: Scamv_isa Scamv_util
