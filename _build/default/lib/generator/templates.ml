module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
open Gen.Syntax

type t = { template_name : string; program : Ast.program }

let conds = [ Ast.Eq; Ast.Ne; Ast.Hs; Ast.Lo; Ast.Hi; Ast.Ls; Ast.Ge; Ast.Lt ]

let reg_addr base offset = { Ast.base; offset = Ast.Reg offset; scale = 0 }
let imm_addr base imm = { Ast.base; offset = Ast.Imm imm; scale = 0 }

(* Stride Template (Sec. 6.2): 3..5 loads from [r0], [r0+v], [r0+2v], ...
   with the distance a multiple of the cache line size so consecutive
   accesses hit different sets. *)
let stride =
  let* count = Gen.int_in 3 5 in
  let* line_multiple = Gen.int_in 1 4 in
  let v = Int64.of_int (64 * line_multiple) in
  let* regs = Gen.distinct_regs (count + 1) in
  match regs with
  | base :: dests ->
    let loads =
      List.mapi
        (fun i dest -> Ast.Ldr (dest, imm_addr base (Int64.mul (Int64.of_int i) v)))
        dests
    in
    Gen.return { template_name = "stride"; program = Array.of_list loads }
  | [] -> assert false

(* Template A (Fig. 5): anticipated load, comparison, guarded dependent
   load.  Side constraints from Sec. 6.3: r2 <> r1 and r4 not in
   {r1, r2}; r6 is free and may alias r0 or r1 (the subclass unguided
   search stumbles on). *)
let template_a =
  let* r0 = Gen.reg in
  let* r1 = Gen.reg_avoiding [ r0 ] in
  let* r2 = Gen.reg_avoiding [ r1 ] in
  let* r4 = Gen.reg_avoiding [ r1; r2 ] in
  let* r5 = Gen.reg in
  let* r6 = Gen.reg in
  let* cond = Gen.choose conds in
  let program =
    [|
      Ast.Ldr (r2, reg_addr r0 r1);
      Ast.Cmp (r1, Ast.Reg r4);
      Ast.B_cond (cond, 4) (* skip the body *);
      Ast.Ldr (r5, reg_addr r6 r2);
    |]
  in
  Gen.return { template_name = "A"; program }

(* Template B (Fig. 5): 0..2 loads, comparison with a random predicate,
   1..2 loads in the body; no register-allocation constraints at all. *)
let template_b =
  let any_load =
    let* d = Gen.reg in
    let* b = Gen.reg in
    let* o = Gen.reg in
    Gen.return (Ast.Ldr (d, reg_addr b o))
  in
  let* before = Gen.bind (Gen.int_in 0 2) (fun n -> Gen.list n any_load) in
  let* body = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let* ra = Gen.reg in
  let* rb = Gen.reg in
  let* cond = Gen.choose conds in
  let prefix = before @ [ Ast.Cmp (ra, Ast.Reg rb) ] in
  let skip_target = List.length prefix + 1 + List.length body in
  let program =
    Array.of_list (prefix @ (Ast.B_cond (cond, skip_target) :: body))
  in
  Gen.return { template_name = "B"; program }

(* Template C (Fig. 7): two causally dependent loads in the branch body,
   optionally interleaved with an arithmetic operation on the loaded
   value.  Registers are distinct so the dependency is guaranteed. *)
let template_c =
  let* regs = Gen.distinct_regs 8 in
  match regs with
  | [ r1; r2; r3; r5; r6; r7; r8; r9 ] ->
    let* cond = Gen.choose conds in
    let* middle_op =
      Gen.opt 0.5
        (let* imm = Gen.int_in 1 255 in
         let* op = Gen.choose [ `Add; `Eor ] in
         Gen.return (op, Int64.of_int imm))
    in
    let body =
      match middle_op with
      | None -> [ Ast.Ldr (r6, reg_addr r5 r3); Ast.Ldr (r8, reg_addr r7 r6) ]
      | Some (op, imm) ->
        let arith =
          match op with
          | `Add -> Ast.Add (r9, r6, Ast.Imm imm)
          | `Eor -> Ast.Eor (r9, r6, Ast.Imm imm)
        in
        [ Ast.Ldr (r6, reg_addr r5 r3); arith; Ast.Ldr (r8, reg_addr r7 r9) ]
    in
    let skip_target = 2 + List.length body in
    let program =
      Array.of_list (Ast.Cmp (r1, Ast.Reg r2) :: Ast.B_cond (cond, skip_target) :: body)
    in
    Gen.return { template_name = "C"; program }
  | _ -> assert false

(* Template D (Fig. 7): loads placed textually after an unconditional
   direct branch; they never execute architecturally and leak only if the
   processor speculates straight-line past the branch. *)
let template_d =
  let any_load =
    let* d = Gen.reg in
    let* b = Gen.reg in
    let* o = Gen.reg in
    Gen.return (Ast.Ldr (d, reg_addr b o))
  in
  let* before = Gen.bind (Gen.int_in 0 1) (fun n -> Gen.list n any_load) in
  let* dead = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let jump_at = List.length before in
  let target = jump_at + 1 + List.length dead in
  let program = Array.of_list (before @ (Ast.B target :: dead)) in
  Gen.return { template_name = "D"; program }

let by_name = function
  | "stride" -> stride
  | "A" -> template_a
  | "B" -> template_b
  | "C" -> template_c
  | "D" -> template_d
  | name -> invalid_arg ("Templates.by_name: unknown template " ^ name)
