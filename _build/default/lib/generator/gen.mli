(** Monadic random generators in the QuickCheck style (Sec. 5.4): the
    grammar-driven template generators are built from these combinators,
    and all randomness flows from an explicit {!Scamv_util.Splitmix.t}
    state so program generation is reproducible. *)

type 'a t

val run : 'a t -> Scamv_util.Splitmix.t -> 'a * Scamv_util.Splitmix.t
val generate : seed:int64 -> 'a t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val both : 'a t -> 'b t -> ('a * 'b) t
val list : int -> 'a t -> 'a list t
val list_of : 'a t list -> 'a list t

val int_in : int -> int -> int t
(** Inclusive range. *)

val int64_any : int64 t
val bool : bool t
val choose : 'a list -> 'a t
val oneof : 'a t list -> 'a t
val opt : float -> 'a t -> 'a option t
(** [opt p g] yields [Some] with probability [p]. *)

val frequency : (int * 'a t) list -> 'a t

(** {1 Register allocation} *)

val reg : Scamv_isa.Reg.t t
(** Any general-purpose register. *)

val reg_avoiding : Scamv_isa.Reg.t list -> Scamv_isa.Reg.t t
(** A register not in the given list.
    @raise Invalid_argument if all registers are excluded. *)

val distinct_regs : ?avoid:Scamv_isa.Reg.t list -> int -> Scamv_isa.Reg.t list t
(** [n] pairwise-distinct registers outside [avoid]. *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( and+ ) : 'a t -> 'b t -> ('a * 'b) t
end
