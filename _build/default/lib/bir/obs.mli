(** Tagged observations (Sec. 5.1 of the paper).

    An observational model annotates the program with observation
    statements.  Under refinement, one instrumented program carries the
    observations of both the model under validation ([Base]) and the
    refined model ([Refined]); the projection function of the paper is
    realized by filtering on the tag. *)

type tag =
  | Base  (** observation of the model under validation (M1) *)
  | Refined  (** observation exclusive to the refined model (M2) *)
  | Coverage
      (** observation of a supporting model (Sec. 4.1): not constrained by
          the relation, but tracked so successive test cases come from
          different equivalence classes *)
  | Platform
      (** well-formedness marker: an address that must fall inside the
          evaluation platform's cacheable experiment region (the page
          tables set up by the TrustZone module, Sec. 6.1) *)

type t = {
  tag : tag;
  kind : string;
      (** what is observed, e.g. ["pc"], ["load_addr"], ["branch_cond"],
          ["cache_line"], ["spec_load_addr"]; used for diagnostics and by
          coverage tracking *)
  cond : Scamv_smt.Term.t;
      (** the observation fires only when this holds (e.g. the
          attacker-region predicate of the cache-partitioning model);
          [Term.tt] for unconditional observations *)
  values : Scamv_smt.Term.t list;  (** the observed expressions *)
}

val make :
  ?tag:tag -> ?cond:Scamv_smt.Term.t -> kind:string -> Scamv_smt.Term.t list -> t

val is_base : t -> bool
val is_refined : t -> bool
val is_coverage : t -> bool

val map_terms : (Scamv_smt.Term.t -> Scamv_smt.Term.t) -> t -> t
(** Apply a function to the condition and all observed values (used by
    symbolic execution to substitute the current environment). *)

val pp : Format.formatter -> t -> unit
