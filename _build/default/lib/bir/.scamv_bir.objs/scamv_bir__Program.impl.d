lib/bir/program.ml: Format Int List Map Obs Printf Scamv_smt
