lib/bir/lifter.ml: Array Int64 List Obs Program Scamv_isa Scamv_smt Vars
