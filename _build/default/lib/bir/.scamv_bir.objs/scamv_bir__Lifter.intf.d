lib/bir/lifter.mli: Obs Program Scamv_isa Scamv_smt
