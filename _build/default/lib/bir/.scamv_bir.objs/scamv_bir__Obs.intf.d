lib/bir/obs.mli: Format Scamv_smt
