lib/bir/obs.ml: Format List Scamv_smt
