lib/bir/vars.mli: Scamv_isa Scamv_smt
