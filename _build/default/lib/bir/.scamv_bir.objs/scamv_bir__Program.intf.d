lib/bir/program.mli: Format Obs Scamv_smt
