lib/bir/vars.ml: List Scamv_isa Scamv_smt String
