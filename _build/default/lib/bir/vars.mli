(** Naming conventions tying BIR program variables to SMT variables.

    A single flat namespace covers registers ([x0] .. [x30]), the data
    memory ([mem]), the NZCV flags, shadow (transient) copies used by the
    speculation instrumentation, and the state-pair suffixes used by
    relation synthesis. *)

val reg : Scamv_isa.Reg.t -> string
val reg_term : Scamv_isa.Reg.t -> Scamv_smt.Term.t

val mem_name : string
val mem_term : Scamv_smt.Term.t

val flag_n : string
val flag_z : string
val flag_c : string
val flag_v : string
val flag_term : string -> Scamv_smt.Term.t

val shadow : string -> string
(** Shadow (transient) counterpart of a variable, e.g. ["x3_sh"].
    Shadowing is idempotent on already-shadowed names. *)

val is_shadow : string -> bool

val all_program_vars : (string * Scamv_smt.Sort.t) list
(** Registers, memory and flags (without shadows). *)

val with_suffix : string -> string -> string
(** [with_suffix "x0" "_1"] = ["x0_1"]; relation synthesis uses suffixes
    ["_1"] / ["_2"] for the two states of a test case and ["_t"] for the
    predictor-training state. *)
