(** Block-structured intermediate representation with explicit observation
    statements, in the style of HolBA's BIR.

    Expressions are {!Scamv_smt.Term} values over the program variables of
    {!Vars}; an assignment [Assign (x, e)] evaluates [e] over the current
    variable valuation.  Block identifiers are arbitrary; the lifter uses
    the instruction index, and instrumentation passes allocate fresh ids
    for the stub blocks they insert on branch edges. *)

type stmt =
  | Assign of string * Scamv_smt.Term.t
  | Observe of Obs.t

type terminator =
  | Jmp of int
  | Cjmp of Scamv_smt.Term.t * int * int  (** condition, then-id, else-id *)
  | Halt

type block = { id : int; stmts : stmt list; term : terminator }

type t

val make : entry:int -> block list -> t
(** @raise Invalid_argument on duplicate block ids, a missing entry block,
    or terminators referencing unknown blocks. *)

val entry : t -> int
val block : t -> int -> block
(** @raise Not_found on unknown id. *)

val blocks : t -> block list
(** All blocks, ordered by id. *)

val fresh_id : t -> int
(** An id strictly greater than every existing block id. *)

val map_blocks : (block -> block) -> t -> t
(** Rebuild the program by transforming every block (ids may not change). *)

val add_blocks : block list -> t -> t
(** Add new blocks (fresh ids) to the program. *)

val successors : block -> int list

val stmt_vars : stmt -> (string * Scamv_smt.Sort.t) list
(** Variables occurring in a statement (read or written). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
