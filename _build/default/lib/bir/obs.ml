module Term = Scamv_smt.Term

type tag = Base | Refined | Coverage | Platform
type t = { tag : tag; kind : string; cond : Term.t; values : Term.t list }

let make ?(tag = Base) ?(cond = Term.tt) ~kind values = { tag; kind; cond; values }
let is_base o = o.tag = Base
let is_refined o = o.tag = Refined
let is_coverage o = o.tag = Coverage

let map_terms f o = { o with cond = f o.cond; values = List.map f o.values }

let pp ppf { tag; kind; cond; values } =
  Format.fprintf ppf "@[<h>observe[%s,%s]"
    (match tag with
    | Base -> "base"
    | Refined -> "refined"
    | Coverage -> "coverage"
    | Platform -> "platform")
    kind;
  (match cond with
  | Term.True -> ()
  | c -> Format.fprintf ppf " when %a" Term.pp c);
  List.iter (fun v -> Format.fprintf ppf " %a" Term.pp v) values;
  Format.fprintf ppf "@]"
