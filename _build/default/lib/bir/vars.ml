module Term = Scamv_smt.Term
module Sort = Scamv_smt.Sort
module Reg = Scamv_isa.Reg

let reg r = Reg.name r
let reg_term r = Term.bv_var (reg r) 64
let mem_name = "mem"
let mem_term = Term.mem_var mem_name
let flag_n = "nf"
let flag_z = "zf"
let flag_c = "cf"
let flag_v = "vf"
let flag_term name = Term.bool_var name

let shadow_suffix = "_sh"

let is_shadow name =
  let n = String.length name and k = String.length shadow_suffix in
  n >= k && String.sub name (n - k) k = shadow_suffix

let shadow name = if is_shadow name then name else name ^ shadow_suffix

let all_program_vars =
  List.map (fun r -> (reg r, Sort.Bv 64)) Reg.all
  @ [
      (mem_name, Sort.Mem);
      (flag_n, Sort.Bool);
      (flag_z, Sort.Bool);
      (flag_c, Sort.Bool);
      (flag_v, Sort.Bool);
    ]

let with_suffix name suffix = name ^ suffix
