module Term = Scamv_smt.Term
module Int_map = Map.Make (Int)

type stmt = Assign of string * Term.t | Observe of Obs.t
type terminator = Jmp of int | Cjmp of Term.t * int * int | Halt
type block = { id : int; stmts : stmt list; term : terminator }
type t = { entry : int; blocks : block Int_map.t }

let successors b =
  match b.term with Jmp id -> [ id ] | Cjmp (_, a, b) -> [ a; b ] | Halt -> []

let make ~entry block_list =
  let blocks =
    List.fold_left
      (fun acc b ->
        if Int_map.mem b.id acc then
          invalid_arg (Printf.sprintf "Program.make: duplicate block id %d" b.id)
        else Int_map.add b.id b acc)
      Int_map.empty block_list
  in
  if not (Int_map.mem entry blocks) then
    invalid_arg "Program.make: entry block missing";
  Int_map.iter
    (fun _ b ->
      List.iter
        (fun s ->
          if not (Int_map.mem s blocks) then
            invalid_arg
              (Printf.sprintf "Program.make: block %d jumps to unknown block %d" b.id s))
        (successors b))
    blocks;
  { entry; blocks }

let entry t = t.entry

let block t id =
  match Int_map.find_opt id t.blocks with Some b -> b | None -> raise Not_found

let blocks t = List.map snd (Int_map.bindings t.blocks)

let fresh_id t =
  match Int_map.max_binding_opt t.blocks with None -> 0 | Some (id, _) -> id + 1

let map_blocks f t =
  let blocks =
    Int_map.map
      (fun b ->
        let b' = f b in
        if b'.id <> b.id then invalid_arg "Program.map_blocks: id changed";
        b')
      t.blocks
  in
  { t with blocks }

let add_blocks new_blocks t =
  make ~entry:t.entry (List.map snd (Int_map.bindings t.blocks) @ new_blocks)

let stmt_vars = function
  | Assign (x, e) ->
    let sort = Term.sort_of e in
    (x, sort) :: Term.free_vars e
  | Observe o ->
    List.concat_map Term.free_vars (o.Obs.cond :: o.Obs.values)

let pp_stmt ppf = function
  | Assign (x, e) -> Format.fprintf ppf "%s := %a" x Term.pp e
  | Observe o -> Obs.pp ppf o

let pp_terminator ppf = function
  | Jmp id -> Format.fprintf ppf "jmp B%d" id
  | Cjmp (c, a, b) -> Format.fprintf ppf "cjmp %a B%d B%d" Term.pp c a b
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf t =
  Format.fprintf ppf "@[<v>entry B%d@," t.entry;
  Int_map.iter
    (fun _ b ->
      Format.fprintf ppf "B%d:@," b.id;
      List.iter (fun s -> Format.fprintf ppf "  %a@," pp_stmt s) b.stmts;
      Format.fprintf ppf "  %a@," pp_terminator b.term)
    t.blocks;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
