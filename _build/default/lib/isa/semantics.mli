(** Architectural (in-order, non-speculative) semantics.

    The single-instruction step is exposed so the microarchitectural
    simulator can reuse it for both committed and transient execution;
    [run] is the reference executor used for differential testing against
    the BIR lifter and the symbolic engine. *)

type event =
  | Fetch of int  (** instruction index executed *)
  | Load of int64  (** data memory address read *)
  | Store of int64  (** data memory address written *)
  | Branch of { pc : int; taken : bool; target : int }
      (** resolved direct branch (conditional or not) *)

type step_result = {
  next_pc : int;
  events : event list;  (** in program order; [Fetch] first *)
}

val eval_operand : Machine.t -> Ast.operand -> int64
val eval_address : Machine.t -> Ast.addressing -> int64
val eval_cond : Machine.flags -> Ast.cond -> bool

val flags_of_cmp : int64 -> int64 -> Machine.flags
(** NZCV after [cmp a, b] (i.e. [a - b] at width 64). *)

val step : Ast.program -> Machine.t -> int -> step_result
(** Execute the instruction at the given index, mutating the machine.
    @raise Invalid_argument if the index is out of range. *)

type trace = event list

val run : ?fuel:int -> Ast.program -> Machine.t -> trace
(** Run from index 0 until the pc leaves the program.  [fuel] bounds the
    number of executed instructions (default 10_000).
    @raise Failure when fuel is exhausted (cyclic program). *)
