type t = int

let count = 31

let x i =
  if i < 0 || i >= count then invalid_arg "Reg.x: register index out of range";
  i

let index r = r
let equal = Int.equal
let compare = Int.compare
let all = List.init count (fun i -> i)
let name r = "x" ^ string_of_int r
let pp ppf r = Format.pp_print_string ppf (name r)
