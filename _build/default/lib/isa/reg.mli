(** General-purpose registers of the AArch64 subset (x0 .. x30). *)

type t

val x : int -> t
(** [x i] is register [xi]; [i] must be in [0, 30]. *)

val index : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val count : int
(** Number of general-purpose registers (31). *)

val all : t list
val name : t -> string
(** ["x0"] .. ["x30"], matching the SMT variable naming convention. *)

val pp : Format.formatter -> t -> unit
