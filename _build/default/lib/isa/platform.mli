(** Cortex-A53-like platform parameters shared by the observational models
    (which need address-to-cache-set arithmetic) and the
    microarchitectural simulator.

    Defaults model the evaluation platform of the paper (Raspberry Pi 3):
    32 KiB L1D, 4-way, 64-byte lines, 128 sets, 4 KiB pages. *)

type t = {
  line_shift : int;  (** log2 of the cache line size, 6 for 64 B *)
  set_count : int;  (** number of cache sets (power of two), 128 *)
  way_count : int;  (** associativity, 4 *)
  page_shift : int;  (** log2 of the page size, 12 for 4 KiB *)
  mem_base : int64;  (** base of the cacheable experiment memory region *)
  mem_size : int64;  (** size of the experiment memory region in bytes *)
}

val cortex_a53 : t

val set_index_bits : t -> int
(** Number of address bits selecting the cache set. *)

val set_index : t -> int64 -> int
(** Cache set index of a byte address. *)

val page_index : t -> int64 -> int64
(** Page number of a byte address. *)

val line_base : t -> int64 -> int64
(** Address rounded down to its cache line. *)

val in_memory_range : t -> int64 -> bool
(** Whether an address lies within the experiment memory region. *)
