type flags = { n : bool; z : bool; c : bool; v : bool }

module Int64_map = Map.Make (Int64)

type t = {
  regs : int64 array;
  mutable flags : flags;
  mutable mem : int64 Int64_map.t;
}

let zero_flags = { n = false; z = false; c = false; v = false }
let create () = { regs = Array.make Reg.count 0L; flags = zero_flags; mem = Int64_map.empty }
let copy t = { regs = Array.copy t.regs; flags = t.flags; mem = t.mem }
let get_reg t r = t.regs.(Reg.index r)
let set_reg t r v = t.regs.(Reg.index r) <- v
let get_flags t = t.flags
let set_flags t flags = t.flags <- flags

let load t addr =
  match Int64_map.find_opt addr t.mem with None -> 0L | Some v -> v

let store t addr v = t.mem <- Int64_map.add addr v t.mem
let mem_bindings t = Int64_map.bindings t.mem

let normalized_mem t = Int64_map.filter (fun _ v -> not (Int64.equal v 0L)) t.mem

let equal_arch a b =
  Array.for_all2 Int64.equal a.regs b.regs
  && a.flags = b.flags
  && Int64_map.equal Int64.equal (normalized_mem a) (normalized_mem b)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i v -> if not (Int64.equal v 0L) then Format.fprintf ppf "x%d = 0x%Lx@," i v)
    t.regs;
  let { n; z; c; v } = t.flags in
  Format.fprintf ppf "flags = {n=%b z=%b c=%b v=%b}@," n z c v;
  List.iter (fun (a, v) -> Format.fprintf ppf "mem[0x%Lx] = 0x%Lx@," a v) (mem_bindings t);
  Format.fprintf ppf "@]"
