lib/isa/semantics.ml: Array Ast Bool Int64 List Machine Scamv_util
