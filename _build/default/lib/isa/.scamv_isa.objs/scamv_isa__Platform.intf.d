lib/isa/platform.mli:
