lib/isa/ast.ml: Array Format List Printf Reg
