lib/isa/machine.ml: Array Format Int64 List Map Reg
