lib/isa/machine.mli: Format Reg
