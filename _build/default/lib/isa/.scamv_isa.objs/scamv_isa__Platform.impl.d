lib/isa/platform.ml: Int64 Scamv_util
