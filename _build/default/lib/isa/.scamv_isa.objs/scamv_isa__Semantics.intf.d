lib/isa/semantics.mli: Ast Machine
