lib/isa/ast.mli: Format Reg Stdlib
