module Bits = Scamv_util.Bits

type event =
  | Fetch of int
  | Load of int64
  | Store of int64
  | Branch of { pc : int; taken : bool; target : int }

type step_result = { next_pc : int; events : event list }

let eval_operand m = function
  | Ast.Reg r -> Machine.get_reg m r
  | Ast.Imm v -> v

let eval_address m { Ast.base; offset; scale } =
  Int64.add (Machine.get_reg m base) (Int64.shift_left (eval_operand m offset) scale)

let eval_cond (f : Machine.flags) = function
  | Ast.Eq -> f.z
  | Ast.Ne -> not f.z
  | Ast.Hs -> f.c
  | Ast.Lo -> not f.c
  | Ast.Hi -> f.c && not f.z
  | Ast.Ls -> (not f.c) || f.z
  | Ast.Ge -> Bool.equal f.n f.v
  | Ast.Lt -> not (Bool.equal f.n f.v)
  | Ast.Gt -> (not f.z) && Bool.equal f.n f.v
  | Ast.Le -> f.z || not (Bool.equal f.n f.v)

let flags_of_cmp a b =
  let result = Int64.sub a b in
  {
    Machine.n = Bits.bit result 63;
    z = Int64.equal result 0L;
    (* Carry for subtraction: set iff no borrow, i.e. a >= b unsigned. *)
    c = Bits.ule b a;
    (* Signed overflow: operands of different sign and result sign
       differs from the first operand. *)
    v = Bits.bit (Int64.logand (Int64.logxor a b) (Int64.logxor a result)) 63;
  }

let shift_amount v = if Bits.ult v 64L then Int64.to_int v else 64

let alu_op op a b =
  match op with
  | `Add -> Int64.add a b
  | `Sub -> Int64.sub a b
  | `And -> Int64.logand a b
  | `Orr -> Int64.logor a b
  | `Eor -> Int64.logxor a b
  | `Lsl ->
    let k = shift_amount b in
    if k >= 64 then 0L else Int64.shift_left a k
  | `Lsr ->
    let k = shift_amount b in
    if k >= 64 then 0L else Int64.shift_right_logical a k
  | `Asr ->
    let k = shift_amount b in
    Int64.shift_right a (min k 63)

let step program m pc =
  if pc < 0 || pc >= Array.length program then
    invalid_arg "Semantics.step: pc out of range";
  let fetch = Fetch pc in
  let binary op d a operand =
    Machine.set_reg m d (alu_op op (Machine.get_reg m a) (eval_operand m operand));
    { next_pc = pc + 1; events = [ fetch ] }
  in
  match program.(pc) with
  | Ast.Nop -> { next_pc = pc + 1; events = [ fetch ] }
  | Ast.Mov (d, op) ->
    Machine.set_reg m d (eval_operand m op);
    { next_pc = pc + 1; events = [ fetch ] }
  | Ast.Add (d, a, op) -> binary `Add d a op
  | Ast.Sub (d, a, op) -> binary `Sub d a op
  | Ast.And_ (d, a, op) -> binary `And d a op
  | Ast.Orr (d, a, op) -> binary `Orr d a op
  | Ast.Eor (d, a, op) -> binary `Eor d a op
  | Ast.Lsl (d, a, op) -> binary `Lsl d a op
  | Ast.Lsr (d, a, op) -> binary `Lsr d a op
  | Ast.Asr (d, a, op) -> binary `Asr d a op
  | Ast.Ldr (d, addr) ->
    let a = eval_address m addr in
    Machine.set_reg m d (Machine.load m a);
    { next_pc = pc + 1; events = [ fetch; Load a ] }
  | Ast.Str (s, addr) ->
    let a = eval_address m addr in
    Machine.store m a (Machine.get_reg m s);
    { next_pc = pc + 1; events = [ fetch; Store a ] }
  | Ast.Cmp (a, op) ->
    Machine.set_flags m (flags_of_cmp (Machine.get_reg m a) (eval_operand m op));
    { next_pc = pc + 1; events = [ fetch ] }
  | Ast.B target ->
    { next_pc = target; events = [ fetch; Branch { pc; taken = true; target } ] }
  | Ast.B_cond (c, target) ->
    let taken = eval_cond (Machine.get_flags m) c in
    let next_pc = if taken then target else pc + 1 in
    { next_pc; events = [ fetch; Branch { pc; taken; target } ] }

type trace = event list

let run ?(fuel = 10_000) program m =
  let rec go pc fuel acc =
    if pc < 0 || pc >= Array.length program then List.rev acc
    else if fuel = 0 then failwith "Semantics.run: fuel exhausted (cyclic program?)"
    else
      let { next_pc; events } = step program m pc in
      go next_pc (fuel - 1) (List.rev_append events acc)
  in
  go 0 fuel []
