module Bits = Scamv_util.Bits

type t = {
  line_shift : int;
  set_count : int;
  way_count : int;
  page_shift : int;
  mem_base : int64;
  mem_size : int64;
}

let cortex_a53 =
  {
    line_shift = 6;
    set_count = 128;
    way_count = 4;
    page_shift = 12;
    mem_base = 0x8000_0000L;
    mem_size = 0x20_0000L (* 2 MiB experiment region *);
  }

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)
let set_index_bits t = log2 t.set_count

let set_index t addr =
  Int64.to_int
    (Bits.extract ~hi:(t.line_shift + set_index_bits t - 1) ~lo:t.line_shift addr)

let page_index t addr = Int64.shift_right_logical addr t.page_shift

let line_base t addr =
  Int64.logand addr (Int64.lognot (Bits.mask t.line_shift))

let in_memory_range t addr =
  Bits.ule t.mem_base addr && Bits.ult addr (Int64.add t.mem_base t.mem_size)
