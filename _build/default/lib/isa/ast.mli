(** Abstract syntax of the AArch64 subset used by the test-program
    templates (Fig. 5 / Fig. 7 of the paper): ALU operations, loads and
    stores with register/immediate addressing, compare, and (conditional)
    direct branches.

    Branch targets are instruction indexes into the program array; the
    pretty printer reconstructs labels.  Execution falling off the end of
    the array halts. *)

type operand = Reg of Reg.t | Imm of int64

type addressing = {
  base : Reg.t;
  offset : operand;  (** added to the base *)
  scale : int;  (** left-shift applied to the offset, 0..4 *)
}

(** Condition codes, Cortex naming. *)
type cond =
  | Eq  (** equal *)
  | Ne  (** not equal *)
  | Hs  (** unsigned higher-or-same *)
  | Lo  (** unsigned lower *)
  | Hi  (** unsigned higher *)
  | Ls  (** unsigned lower-or-same *)
  | Ge  (** signed greater-or-equal *)
  | Lt  (** signed less-than *)
  | Gt  (** signed greater-than *)
  | Le  (** signed less-or-equal *)

type instr =
  | Mov of Reg.t * operand
  | Add of Reg.t * Reg.t * operand
  | Sub of Reg.t * Reg.t * operand
  | And_ of Reg.t * Reg.t * operand
  | Orr of Reg.t * Reg.t * operand
  | Eor of Reg.t * Reg.t * operand
  | Lsl of Reg.t * Reg.t * operand
  | Lsr of Reg.t * Reg.t * operand
  | Asr of Reg.t * Reg.t * operand
  | Ldr of Reg.t * addressing
  | Str of Reg.t * addressing
  | Cmp of Reg.t * operand
  | B_cond of cond * int  (** conditional direct branch to index *)
  | B of int  (** unconditional direct branch to index *)
  | Nop

type program = instr array

val negate_cond : cond -> cond

val is_load : instr -> bool
val is_store : instr -> bool
val is_branch : instr -> bool
(** Conditional or unconditional branch. *)

val successors : program -> int -> int list
(** Successor instruction indexes of the instruction at the given index;
    the program length acts as the halt point.  Fall-through first. *)

val defined_reg : instr -> Reg.t option
(** Register written by the instruction, if any. *)

val used_regs : instr -> Reg.t list
(** Registers read by the instruction. *)

val validate : program -> (unit, string) Stdlib.result
(** Check branch targets are within [0, length] and scales within 0..4. *)

val pp_cond : Format.formatter -> cond -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string
