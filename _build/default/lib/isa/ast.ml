type operand = Reg of Reg.t | Imm of int64
type addressing = { base : Reg.t; offset : operand; scale : int }

type cond = Eq | Ne | Hs | Lo | Hi | Ls | Ge | Lt | Gt | Le

type instr =
  | Mov of Reg.t * operand
  | Add of Reg.t * Reg.t * operand
  | Sub of Reg.t * Reg.t * operand
  | And_ of Reg.t * Reg.t * operand
  | Orr of Reg.t * Reg.t * operand
  | Eor of Reg.t * Reg.t * operand
  | Lsl of Reg.t * Reg.t * operand
  | Lsr of Reg.t * Reg.t * operand
  | Asr of Reg.t * Reg.t * operand
  | Ldr of Reg.t * addressing
  | Str of Reg.t * addressing
  | Cmp of Reg.t * operand
  | B_cond of cond * int
  | B of int
  | Nop

type program = instr array

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Hs -> Lo
  | Lo -> Hs
  | Hi -> Ls
  | Ls -> Hi
  | Ge -> Lt
  | Lt -> Ge
  | Gt -> Le
  | Le -> Gt

let is_load = function Ldr _ -> true | _ -> false
let is_store = function Str _ -> true | _ -> false
let is_branch = function B_cond _ | B _ -> true | _ -> false

let successors program i =
  let len = Array.length program in
  let clip t = min t len in
  match program.(i) with
  | B target -> [ clip target ]
  | B_cond (_, target) -> [ clip (i + 1); clip target ]
  | _ -> [ clip (i + 1) ]

let defined_reg = function
  | Mov (d, _)
  | Add (d, _, _)
  | Sub (d, _, _)
  | And_ (d, _, _)
  | Orr (d, _, _)
  | Eor (d, _, _)
  | Lsl (d, _, _)
  | Lsr (d, _, _)
  | Asr (d, _, _)
  | Ldr (d, _) ->
    Some d
  | Str _ | Cmp _ | B_cond _ | B _ | Nop -> None

let operand_regs = function Reg r -> [ r ] | Imm _ -> []
let addressing_regs { base; offset; scale = _ } = base :: operand_regs offset

let used_regs = function
  | Mov (_, op) -> operand_regs op
  | Add (_, a, op)
  | Sub (_, a, op)
  | And_ (_, a, op)
  | Orr (_, a, op)
  | Eor (_, a, op)
  | Lsl (_, a, op)
  | Lsr (_, a, op)
  | Asr (_, a, op) ->
    a :: operand_regs op
  | Ldr (_, addr) -> addressing_regs addr
  | Str (s, addr) -> s :: addressing_regs addr
  | Cmp (a, op) -> a :: operand_regs op
  | B_cond _ | B _ | Nop -> []

let validate program =
  let len = Array.length program in
  let problem = ref None in
  Array.iteri
    (fun i instr ->
      if !problem = None then
        match instr with
        | B target | B_cond (_, target) ->
          if target < 0 || target > len then
            problem :=
              Some (Printf.sprintf "instruction %d: branch target %d out of range" i target)
        | Ldr (_, { scale; _ }) | Str (_, { scale; _ }) ->
          if scale < 0 || scale > 4 then
            problem := Some (Printf.sprintf "instruction %d: bad scale %d" i scale)
        | _ -> ())
    program;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp_cond ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "eq"
    | Ne -> "ne"
    | Hs -> "hs"
    | Lo -> "lo"
    | Hi -> "hi"
    | Ls -> "ls"
    | Ge -> "ge"
    | Lt -> "lt"
    | Gt -> "gt"
    | Le -> "le")

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm v -> Format.fprintf ppf "#%Ld" v

let pp_addressing ppf { base; offset; scale } =
  match (offset, scale) with
  | Imm 0L, _ -> Format.fprintf ppf "[%a]" Reg.pp base
  | _, 0 -> Format.fprintf ppf "[%a, %a]" Reg.pp base pp_operand offset
  | _ -> Format.fprintf ppf "[%a, %a, lsl #%d]" Reg.pp base pp_operand offset scale

let pp_instr ppf = function
  | Mov (d, op) -> Format.fprintf ppf "mov %a, %a" Reg.pp d pp_operand op
  | Add (d, a, op) -> Format.fprintf ppf "add %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Sub (d, a, op) -> Format.fprintf ppf "sub %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | And_ (d, a, op) -> Format.fprintf ppf "and %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Orr (d, a, op) -> Format.fprintf ppf "orr %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Eor (d, a, op) -> Format.fprintf ppf "eor %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Lsl (d, a, op) -> Format.fprintf ppf "lsl %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Lsr (d, a, op) -> Format.fprintf ppf "lsr %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Asr (d, a, op) -> Format.fprintf ppf "asr %a, %a, %a" Reg.pp d Reg.pp a pp_operand op
  | Ldr (d, addr) -> Format.fprintf ppf "ldr %a, %a" Reg.pp d pp_addressing addr
  | Str (s, addr) -> Format.fprintf ppf "str %a, %a" Reg.pp s pp_addressing addr
  | Cmp (a, op) -> Format.fprintf ppf "cmp %a, %a" Reg.pp a pp_operand op
  | B_cond (c, target) -> Format.fprintf ppf "b.%a L%d" pp_cond c target
  | B target -> Format.fprintf ppf "b L%d" target
  | Nop -> Format.pp_print_string ppf "nop"

let pp_program ppf program =
  let targets =
    Array.to_list program
    |> List.filter_map (function B t | B_cond (_, t) -> Some t | _ -> None)
  in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i instr ->
      if List.mem i targets then Format.fprintf ppf "L%d:@," i;
      Format.fprintf ppf "  %a@," pp_instr instr)
    program;
  if List.mem (Array.length program) targets then
    Format.fprintf ppf "L%d:@," (Array.length program);
  Format.fprintf ppf "@]"

let to_string program = Format.asprintf "%a" pp_program program
