(** Concrete architectural machine state: 31 general-purpose 64-bit
    registers, NZCV flags, and a sparse word-addressed memory.

    Memory granularity matches the rest of the reproduction: each address
    names one 64-bit cell (see DESIGN.md, "Memory model"). *)

type flags = { n : bool; z : bool; c : bool; v : bool }

type t

val create : unit -> t
(** Zeroed registers and flags, empty memory. *)

val copy : t -> t

val get_reg : t -> Reg.t -> int64
val set_reg : t -> Reg.t -> int64 -> unit
val get_flags : t -> flags
val set_flags : t -> flags -> unit

val load : t -> int64 -> int64
(** Unwritten cells read as zero. *)

val store : t -> int64 -> int64 -> unit
val mem_bindings : t -> (int64 * int64) list
(** Written cells, sorted by address. *)

val equal_arch : t -> t -> bool
(** Architectural equality: registers, flags and written memory agree
    (cells explicitly written with the default value count as unwritten). *)

val pp : Format.formatter -> t -> unit
