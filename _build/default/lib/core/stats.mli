(** Campaign statistics, mirroring the rows of Table 1 / Fig. 7. *)

type t = {
  programs : int;
  programs_with_counterexample : int;
  experiments : int;
  counterexamples : int;
  inconclusive : int;
  generation_time : Scamv_util.Summary.t;  (** per-test-case synthesis time *)
  execution_time : Scamv_util.Summary.t;  (** per-experiment run time *)
  time_to_first_counterexample : float option;  (** wall seconds, None = never *)
}

val empty : t

val record_program : t -> found_counterexample:bool -> t
val record_experiment :
  t ->
  verdict:Scamv_microarch.Executor.verdict ->
  gen_seconds:float ->
  exe_seconds:float ->
  elapsed:float ->
  t

val counterexample_rate : t -> float
val pp : Format.formatter -> t -> unit

val row : name:string -> t -> string list
(** Table row: name, programs, w/counterexample, experiments,
    counterexamples, inconclusive, avg gen (s), avg exe (s), TTC (s). *)

val header : string list
