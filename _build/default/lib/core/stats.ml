module Summary = Scamv_util.Summary
module Executor = Scamv_microarch.Executor

type t = {
  programs : int;
  programs_with_counterexample : int;
  experiments : int;
  counterexamples : int;
  inconclusive : int;
  generation_time : Summary.t;
  execution_time : Summary.t;
  time_to_first_counterexample : float option;
}

let empty =
  {
    programs = 0;
    programs_with_counterexample = 0;
    experiments = 0;
    counterexamples = 0;
    inconclusive = 0;
    generation_time = Summary.empty;
    execution_time = Summary.empty;
    time_to_first_counterexample = None;
  }

let record_program t ~found_counterexample =
  {
    t with
    programs = t.programs + 1;
    programs_with_counterexample =
      (t.programs_with_counterexample + if found_counterexample then 1 else 0);
  }

let record_experiment t ~verdict ~gen_seconds ~exe_seconds ~elapsed =
  let counterexample = verdict = Executor.Distinguishable in
  {
    t with
    experiments = t.experiments + 1;
    counterexamples = (t.counterexamples + if counterexample then 1 else 0);
    inconclusive =
      (t.inconclusive + if verdict = Executor.Inconclusive then 1 else 0);
    generation_time = Summary.add t.generation_time gen_seconds;
    execution_time = Summary.add t.execution_time exe_seconds;
    time_to_first_counterexample =
      (match t.time_to_first_counterexample with
      | Some _ as ttc -> ttc
      | None -> if counterexample then Some elapsed else None);
  }

let counterexample_rate t =
  if t.experiments = 0 then 0.0
  else float_of_int t.counterexamples /. float_of_int t.experiments

let header =
  [
    "campaign";
    "programs";
    "w/count.";
    "experiments";
    "counterex.";
    "inconcl.";
    "avg gen (s)";
    "avg exe (s)";
    "T.T.C. (s)";
  ]

let row ~name t =
  [
    name;
    string_of_int t.programs;
    string_of_int t.programs_with_counterexample;
    string_of_int t.experiments;
    string_of_int t.counterexamples;
    string_of_int t.inconclusive;
    Printf.sprintf "%.4f" (Summary.mean t.generation_time);
    Printf.sprintf "%.4f" (Summary.mean t.execution_time);
    (match t.time_to_first_counterexample with
    | None -> "-"
    | Some s -> Printf.sprintf "%.2f" s);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>programs: %d (with counterexample: %d)@,\
     experiments: %d, counterexamples: %d, inconclusive: %d@,\
     avg generation: %.4fs, avg execution: %.4fs@,\
     time to first counterexample: %s@]"
    t.programs t.programs_with_counterexample t.experiments t.counterexamples
    t.inconclusive
    (Summary.mean t.generation_time)
    (Summary.mean t.execution_time)
    (match t.time_to_first_counterexample with
    | None -> "-"
    | Some s -> Printf.sprintf "%.2fs" s)
