module Executor = Scamv_microarch.Executor

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;
  verdict : Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
}

type t = { mutable entries_rev : entry list; mutable count : int }

let create () = { entries_rev = []; count = 0 }

let record t e =
  t.entries_rev <- e :: t.entries_rev;
  t.count <- t.count + 1

let entries t = List.rev t.entries_rev
let length t = t.count

let counterexamples t =
  List.filter (fun e -> e.verdict = Executor.Distinguishable) (entries t)

let verdict_counts t =
  List.fold_left
    (fun (d, i, u) e ->
      match e.verdict with
      | Executor.Distinguishable -> (d + 1, i, u)
      | Executor.Indistinguishable -> (d, i + 1, u)
      | Executor.Inconclusive -> (d, i, u + 1))
    (0, 0, 0) (entries t)

let verdict_string = function
  | Executor.Distinguishable -> "distinguishable"
  | Executor.Indistinguishable -> "indistinguishable"
  | Executor.Inconclusive -> "inconclusive"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_string v)

let quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "campaign,program,test,template,path1,path2,verdict,gen_seconds,exe_seconds\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%d,%d,%s,%.6f,%.6f\n" (quote e.campaign)
           e.program_index e.test_index (quote e.template) (fst e.path_pair)
           (snd e.path_pair) (verdict_string e.verdict) e.generation_seconds
           e.execution_seconds))
    (entries t);
  Buffer.contents buf

let write_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
