lib/core/pipeline.ml: Lazy List Scamv_bir Scamv_isa Scamv_models Scamv_relation Scamv_smt Scamv_symbolic Scamv_util
