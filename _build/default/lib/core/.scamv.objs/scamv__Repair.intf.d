lib/core/repair.mli: Scamv_gen Scamv_models Stats
