lib/core/stats.mli: Format Scamv_microarch Scamv_util
