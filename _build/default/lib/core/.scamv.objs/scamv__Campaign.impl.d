lib/core/campaign.ml: Journal Option Pipeline Printf Scamv_gen Scamv_microarch Scamv_models Scamv_util Stats
