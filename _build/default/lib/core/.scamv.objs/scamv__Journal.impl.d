lib/core/journal.ml: Buffer Format Fun List Printf Scamv_microarch String
