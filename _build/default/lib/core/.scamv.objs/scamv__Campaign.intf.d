lib/core/campaign.mli: Journal Pipeline Scamv_gen Scamv_microarch Scamv_models Stats
