lib/core/pipeline.mli: Scamv_bir Scamv_isa Scamv_models Scamv_smt Scamv_symbolic
