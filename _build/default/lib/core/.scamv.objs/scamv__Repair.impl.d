lib/core/repair.ml: Campaign List Printf Scamv_bir Scamv_microarch Scamv_models Stats
