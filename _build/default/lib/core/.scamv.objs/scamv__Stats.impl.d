lib/core/stats.ml: Format Printf Scamv_microarch Scamv_util
