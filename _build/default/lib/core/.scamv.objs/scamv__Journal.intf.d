lib/core/journal.mli: Format Scamv_microarch
