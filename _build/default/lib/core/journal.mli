(** Experiment journal, the analogue of the artifact's EmbExp-Logs
    database (Sec. A.3): every executed experiment is recorded with its
    provenance and verdict, and campaigns can be exported for offline
    analysis. *)

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;  (** leaf indexes of the two states' paths *)
  verdict : Scamv_microarch.Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
}

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** In recording order. *)

val length : t -> int

val counterexamples : t -> entry list

val verdict_counts : t -> int * int * int
(** (distinguishable, indistinguishable, inconclusive). *)

val to_csv : t -> string
(** Header plus one row per entry; fields are comma-separated, names
    quoted. *)

val write_csv : t -> path:string -> unit

val pp_verdict : Format.formatter -> Scamv_microarch.Executor.verdict -> unit
