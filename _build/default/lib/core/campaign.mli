(** Campaign driver: generate programs from a template, generate test
    cases per program through the pipeline, execute every test case on the
    simulated platform, and accumulate Table-1-style statistics. *)

type config = {
  name : string;
  template : Scamv_gen.Templates.t Scamv_gen.Gen.t;
  setup : Scamv_models.Refinement.t;
  view : Scamv_microarch.Executor.view;
  programs : int;
  tests_per_program : int;
  seed : int64;
  executor : Scamv_microarch.Executor.config;
  pipeline : Scamv_models.Refinement.t -> Pipeline.config;
}

val make :
  name:string ->
  template:Scamv_gen.Templates.t Scamv_gen.Gen.t ->
  setup:Scamv_models.Refinement.t ->
  ?view:Scamv_microarch.Executor.view ->
  ?programs:int ->
  ?tests_per_program:int ->
  ?seed:int64 ->
  unit ->
  config

type outcome = {
  config_name : string;
  stats : Stats.t;
  wall_seconds : float;
}

val run : ?on_event:(string -> unit) -> ?journal:Journal.t -> config -> outcome
(** Runs the whole campaign.  [on_event] receives one-line progress
    messages (program counts, first counterexample, ...); every executed
    experiment is appended to [journal] when one is supplied. *)
