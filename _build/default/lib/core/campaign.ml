module Gen = Scamv_gen.Gen
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement
module Executor = Scamv_microarch.Executor
module Splitmix = Scamv_util.Splitmix
module Stopwatch = Scamv_util.Stopwatch

type config = {
  name : string;
  template : Templates.t Gen.t;
  setup : Refinement.t;
  view : Executor.view;
  programs : int;
  tests_per_program : int;
  seed : int64;
  executor : Executor.config;
  pipeline : Refinement.t -> Pipeline.config;
}

let make ~name ~template ~setup ?(view = Executor.Full_cache) ?(programs = 50)
    ?(tests_per_program = 30) ?(seed = 2021L) () =
  {
    name;
    template;
    setup;
    view;
    programs;
    tests_per_program;
    seed;
    executor = Executor.default_config ~view ();
    pipeline = Pipeline.default_config;
  }

type outcome = {
  config_name : string;
  stats : Stats.t;
  wall_seconds : float;
}

let run ?(on_event = fun _ -> ()) ?journal cfg =
  let watch = Stopwatch.start () in
  let stats = ref Stats.empty in
  let rng = ref (Splitmix.of_seed cfg.seed) in
  let pipeline_cfg = cfg.pipeline cfg.setup in
  for program_index = 0 to cfg.programs - 1 do
    let program_rng, rng' = Splitmix.split !rng in
    rng := rng';
    let { Templates.program; template_name }, program_rng =
      Gen.run cfg.template program_rng
    in
    let pipeline_seed, program_rng = Splitmix.next program_rng in
    let program_rng = ref program_rng in
    let session, prepare_seconds =
      Stopwatch.time (fun () -> Pipeline.prepare ~seed:pipeline_seed pipeline_cfg program)
    in
    let found = ref false in
    let continue_tests = ref true in
    let test_index = ref 0 in
    (* The per-program preparation cost (symbolic execution + relation
       synthesis) is charged to the first test case, matching how the
       paper reports average generation time per experiment. *)
    let carry_gen_cost = ref prepare_seconds in
    while !continue_tests && !test_index < cfg.tests_per_program do
      let tc_opt, gen_seconds = Stopwatch.time (fun () -> Pipeline.next_test_case session) in
      (match tc_opt with
      | None -> continue_tests := false
      | Some tc ->
        let experiment =
          {
            Executor.program;
            state1 = tc.Pipeline.state1;
            state2 = tc.Pipeline.state2;
            train = tc.Pipeline.train;
          }
        in
        let exp_seed, program_rng' = Splitmix.next !program_rng in
        program_rng := program_rng';
        let verdict, exe_seconds =
          Stopwatch.time (fun () -> Executor.run ~seed:exp_seed cfg.executor experiment)
        in
        let elapsed = Stopwatch.elapsed_s watch in
        let was_first =
          verdict = Executor.Distinguishable && (!stats).Stats.counterexamples = 0
        in
        let total_gen_seconds = gen_seconds +. !carry_gen_cost in
        stats :=
          Stats.record_experiment !stats ~verdict ~gen_seconds:total_gen_seconds
            ~exe_seconds ~elapsed;
        carry_gen_cost := 0.0;
        Option.iter
          (fun j ->
            Journal.record j
              {
                Journal.campaign = cfg.name;
                program_index;
                test_index = !test_index;
                template = template_name;
                path_pair = tc.Pipeline.pair;
                verdict;
                generation_seconds = total_gen_seconds;
                execution_seconds = exe_seconds;
              })
          journal;
        if verdict = Executor.Distinguishable then found := true;
        if was_first then
          on_event
            (Printf.sprintf "[%s] first counterexample after %.2fs (program %d, test %d)"
               cfg.name elapsed program_index !test_index));
      incr test_index
    done;
    stats := Stats.record_program !stats ~found_counterexample:!found;
    if (program_index + 1) mod 25 = 0 then
      on_event
        (Printf.sprintf "[%s] %d/%d programs, %d experiments, %d counterexamples"
           cfg.name (program_index + 1) cfg.programs (!stats).Stats.experiments
           (!stats).Stats.counterexamples)
  done;
  { config_name = cfg.name; stats = !stats; wall_seconds = Stopwatch.elapsed_s watch }
