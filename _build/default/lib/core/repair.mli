(** Automatic observation repair (the future-work direction of Sec. 8:
    "refine unsound observation models to automatically restore their
    soundness, e.g., by adding state observations").

    The repair loop searches the refinement lattice between the model
    under validation [M1] and a trusted sound over-approximation (here
    [Mspec], which Guarnieri et al. showed to be a valid
    over-approximation for branch-prediction-only microarchitectures):
    it validates the candidate that observes the first [k] transient
    loads of every mispredicted branch, increasing [k] each time testing
    finds a counterexample, and returns the weakest candidate for which
    the campaign finds none.

    The result is a per-workload *tailored* model in the spirit of
    Sec. 6.5: e.g. observing one transient load suffices for the
    dependent-load programs of Template C, while Template B needs two. *)

type candidate = {
  observed_transient_loads : int;  (** [k]; 0 = plain Mct *)
  setup : Scamv_models.Refinement.t;
      (** validation setup for this candidate: first [k] transient loads
          are part of the model (Base), the rest drive refinement *)
}

val candidate : window:int -> int -> candidate
(** The candidate observing the first [k] transient loads. *)

type step = {
  tried : candidate;
  stats : Stats.t;
  sound_so_far : bool;  (** no counterexample found by this campaign *)
  vacuous : bool;
      (** the campaign ran no experiments because the trusted model adds
          no observations over the candidate on this workload — the
          candidate is then as strong as the trusted bound itself *)
}

type outcome = {
  steps : step list;  (** in trial order *)
  repaired : candidate option;
      (** weakest candidate that validated, or [None] if even the
          strongest candidate (all transient loads observed) failed *)
}

val run :
  ?max_loads:int ->
  ?window:int ->
  ?programs:int ->
  ?tests_per_program:int ->
  ?seed:int64 ->
  template:Scamv_gen.Templates.t Scamv_gen.Gen.t ->
  unit ->
  outcome
(** Repair [Mct] for the workload described by [template].  [max_loads]
    bounds the lattice (default 4).  Soundness is judged by testing, as
    in the paper: absence of counterexamples is evidence, not proof. *)
