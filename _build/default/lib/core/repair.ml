module Refinement = Scamv_models.Refinement
module Speculation = Scamv_models.Speculation
module Catalog = Scamv_models.Catalog
module Obs = Scamv_bir.Obs
module Executor = Scamv_microarch.Executor

type candidate = {
  observed_transient_loads : int;
  setup : Refinement.t;
}

let candidate ~window k =
  let spec =
    {
      (Speculation.mspec ~window ()) with
      Speculation.load_tag =
        (fun i -> Some (if i < k then Obs.Base else Obs.Refined));
    }
  in
  let name =
    if k = 0 then "Mct vs Mspec (repair step 0)"
    else Printf.sprintf "Mct+%d transient loads vs Mspec (repair step %d)" k k
  in
  { observed_transient_loads = k; setup = Refinement.refine_with_spec ~base:Catalog.mct ~name spec }

type step = { tried : candidate; stats : Stats.t; sound_so_far : bool; vacuous : bool }
type outcome = { steps : step list; repaired : candidate option }

let run ?(max_loads = 4) ?(window = 8) ?(programs = 20) ?(tests_per_program = 20)
    ?(seed = 2021L) ~template () =
  let rec loop k steps =
    if k > max_loads then { steps = List.rev steps; repaired = None }
    else begin
      let cand = candidate ~window k in
      let cfg =
        Campaign.make
          ~name:(Printf.sprintf "repair k=%d" k)
          ~template ~setup:cand.setup ~view:Executor.Full_cache ~programs
          ~tests_per_program ~seed ()
      in
      let stats = (Campaign.run cfg).Campaign.stats in
      let sound_so_far = stats.Stats.counterexamples = 0 in
      let vacuous = sound_so_far && stats.Stats.experiments = 0 in
      let step = { tried = cand; stats; sound_so_far; vacuous } in
      if sound_so_far then { steps = List.rev (step :: steps); repaired = Some cand }
      else loop (k + 1) (step :: steps)
    end
  in
  loop 0 []
