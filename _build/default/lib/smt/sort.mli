(** Sorts of the QF_ABV-style term language used for path conditions,
    observation expressions and synthesized relations. *)

type t =
  | Bool  (** propositions *)
  | Bv of int  (** fixed-width bit vectors; width in [1, 64] *)
  | Mem  (** memories: arrays from 64-bit addresses to 64-bit words *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
