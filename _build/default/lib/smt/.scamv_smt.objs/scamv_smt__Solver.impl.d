lib/smt/solver.ml: Array Arrays Blaster List Model Option Sat Scamv_util Set Sort Stdlib String Term
