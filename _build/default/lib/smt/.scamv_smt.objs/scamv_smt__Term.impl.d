lib/smt/term.ml: Format Hashtbl Int64 List Scamv_util Set Sort Stdlib
