lib/smt/sat.ml: Array List Option Scamv_util
