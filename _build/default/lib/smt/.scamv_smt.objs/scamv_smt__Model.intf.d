lib/smt/model.mli: Format
