lib/smt/eval.mli: Model Term
