lib/smt/sort.ml: Format
