lib/smt/blaster.mli: Model Sat Sort Term
