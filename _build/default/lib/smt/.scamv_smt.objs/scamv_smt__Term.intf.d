lib/smt/term.mli: Format Sort
