lib/smt/solver.mli: Model Sort Term
