lib/smt/model.ml: Format Int64 List Map String
