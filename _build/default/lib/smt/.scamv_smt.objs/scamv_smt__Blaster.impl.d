lib/smt/blaster.ml: Array Hashtbl List Model Printf Sat Scamv_util Sort String Term
