lib/smt/eval.ml: Bool Int64 Model Scamv_util Sort Term
