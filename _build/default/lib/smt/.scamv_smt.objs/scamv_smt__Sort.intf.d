lib/smt/sort.mli: Format
