lib/smt/arrays.mli: Model Term
