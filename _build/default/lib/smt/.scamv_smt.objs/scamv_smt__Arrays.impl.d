lib/smt/arrays.ml: Eval List Map Model Printf Sort String Term
