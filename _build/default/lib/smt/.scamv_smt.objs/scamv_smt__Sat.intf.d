lib/smt/sat.mli:
