(** Satisfying assignments produced by the solver.

    A model assigns boolean/bit-vector values to variables and partial
    contents to memories.  Memory cells that were never read by the
    formula default to zero, matching how the evaluation platform
    initializes unconstrained memory. *)

type value = Bool of bool | Bv of int64 * int  (** value, width *)

type t

val empty : t
val add_var : t -> string -> value -> t
val add_mem_cell : t -> string -> addr:int64 -> value:int64 -> t

val find_var : t -> string -> value option
val bv_exn : t -> string -> int64
(** [bv_exn m x] is the bit-vector value of [x]; unassigned variables
    default to [0L] (they are unconstrained). *)

val bool_exn : t -> string -> bool
(** Boolean value of a variable, defaulting to [false]. *)

val mem_cells : t -> string -> (int64 * int64) list
(** Assigned cells of a memory, sorted by address. *)

val mem_lookup : t -> string -> int64 -> int64
(** Cell content, defaulting to [0L]. *)

val vars : t -> (string * value) list
val mems : t -> string list
val union : t -> t -> t
(** Right-biased union, used to merge sub-models. *)

val pp : Format.formatter -> t -> unit
