(** Reference interpreter for terms.

    Used (a) to cross-check the bit-blaster in property tests, and (b) to
    validate that enumerated models really satisfy the synthesized
    relations before they are turned into test cases. *)

val eval_bool : Model.t -> Term.t -> bool
(** Evaluate a Bool-sorted term.  Unassigned variables default to
    [false] / [0L] / empty memory. *)

val eval_bv : Model.t -> Term.t -> int64
(** Evaluate a Bv-sorted term; result is truncated to the term's width. *)
