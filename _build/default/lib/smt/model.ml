module String_map = Map.Make (String)
module Int64_map = Map.Make (Int64)

type value = Bool of bool | Bv of int64 * int

type t = {
  vars : value String_map.t;
  mems : int64 Int64_map.t String_map.t;
}

let empty = { vars = String_map.empty; mems = String_map.empty }
let add_var t x v = { t with vars = String_map.add x v t.vars }

let add_mem_cell t m ~addr ~value =
  let cells =
    match String_map.find_opt m t.mems with
    | None -> Int64_map.empty
    | Some c -> c
  in
  { t with mems = String_map.add m (Int64_map.add addr value cells) t.mems }

let find_var t x = String_map.find_opt x t.vars

let bv_exn t x =
  match find_var t x with
  | Some (Bv (v, _)) -> v
  | Some (Bool _) -> invalid_arg ("Model.bv_exn: boolean variable " ^ x)
  | None -> 0L

let bool_exn t x =
  match find_var t x with
  | Some (Bool b) -> b
  | Some (Bv _) -> invalid_arg ("Model.bool_exn: bitvector variable " ^ x)
  | None -> false

let mem_cells t m =
  match String_map.find_opt m t.mems with
  | None -> []
  | Some cells -> Int64_map.bindings cells

let mem_lookup t m addr =
  match String_map.find_opt m t.mems with
  | None -> 0L
  | Some cells -> ( match Int64_map.find_opt addr cells with None -> 0L | Some v -> v)

let vars t = String_map.bindings t.vars
let mems t = List.map fst (String_map.bindings t.mems)

let union a b =
  {
    vars = String_map.union (fun _ _ v -> Some v) a.vars b.vars;
    mems =
      String_map.union
        (fun _ ca cb -> Some (Int64_map.union (fun _ _ v -> Some v) ca cb))
        a.mems b.mems;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (x, v) ->
      match v with
      | Bool b -> Format.fprintf ppf "%s = %b@," x b
      | Bv (v, w) -> Format.fprintf ppf "%s = 0x%Lx:%d@," x v w)
    (vars t);
  List.iter
    (fun m ->
      List.iter
        (fun (a, v) -> Format.fprintf ppf "%s[0x%Lx] = 0x%Lx@," m a v)
        (mem_cells t m))
    (mems t);
  Format.fprintf ppf "@]"
