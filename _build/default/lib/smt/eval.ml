module Bits = Scamv_util.Bits

(* Memories evaluate to a lookup function so store overlays compose
   without materializing maps. *)
let rec eval_mem model (t : Term.t) : int64 -> int64 =
  match t with
  | Term.Var (m, Sort.Mem) -> fun addr -> Model.mem_lookup model m addr
  | Term.Store (m, a, v) ->
    let base = eval_mem model m in
    let a = eval_bv model a and v = eval_bv model v in
    fun addr -> if Int64.equal addr a then v else base addr
  | Term.Ite (c, a, b) ->
    if eval_bool model c then eval_mem model a else eval_mem model b
  | _ -> invalid_arg "Eval.eval_mem: not a memory term"

and eval_bool model (t : Term.t) : bool =
  match t with
  | Term.True -> true
  | Term.False -> false
  | Term.Var (x, Sort.Bool) -> Model.bool_exn model x
  | Term.Not a -> not (eval_bool model a)
  | Term.And (a, b) -> eval_bool model a && eval_bool model b
  | Term.Or (a, b) -> eval_bool model a || eval_bool model b
  | Term.Implies (a, b) -> (not (eval_bool model a)) || eval_bool model b
  | Term.Iff (a, b) -> Bool.equal (eval_bool model a) (eval_bool model b)
  | Term.Eq (a, b) -> (
    match Term.sort_of a with
    | Sort.Bool -> Bool.equal (eval_bool model a) (eval_bool model b)
    | Sort.Bv _ -> Int64.equal (eval_bv model a) (eval_bv model b)
    | Sort.Mem -> invalid_arg "Eval: memory equality")
  | Term.Ult (a, b) -> Bits.ult (eval_bv model a) (eval_bv model b)
  | Term.Ule (a, b) -> Bits.ule (eval_bv model a) (eval_bv model b)
  | Term.Slt (a, b) ->
    let w = width a in
    Bits.slt ~width:w (eval_bv model a) (eval_bv model b)
  | Term.Sle (a, b) ->
    let w = width a in
    not (Bits.slt ~width:w (eval_bv model b) (eval_bv model a))
  | Term.Ite (c, a, b) ->
    if eval_bool model c then eval_bool model a else eval_bool model b
  | _ -> invalid_arg "Eval.eval_bool: not a boolean term"

and width (t : Term.t) =
  match Term.sort_of t with
  | Sort.Bv w -> w
  | _ -> invalid_arg "Eval.width: not a bitvector"

and eval_bv model (t : Term.t) : int64 =
  match t with
  | Term.Var (x, Sort.Bv _) -> Bits.truncate (width t) (Model.bv_exn model x)
  | Term.Bv_const (v, _) -> v
  | Term.Bv_unop (Term.Neg, a) -> Bits.truncate (width t) (Int64.neg (eval_bv model a))
  | Term.Bv_unop (Term.Lognot, a) ->
    Bits.truncate (width t) (Int64.lognot (eval_bv model a))
  | Term.Bv_binop (op, a, b) ->
    let w = width a in
    let va = eval_bv model a and vb = eval_bv model b in
    eval_binop op w va vb
  | Term.Extract (hi, lo, a) -> Bits.extract ~hi ~lo (eval_bv model a)
  | Term.Concat (a, b) ->
    let wb = width b in
    Int64.logor (Int64.shift_left (eval_bv model a) wb) (eval_bv model b)
  | Term.Zero_extend (_, a) -> eval_bv model a
  | Term.Sign_extend (k, a) ->
    let w = width a in
    Bits.truncate (w + k) (Bits.sign_extend w (eval_bv model a))
  | Term.Ite (c, a, b) -> if eval_bool model c then eval_bv model a else eval_bv model b
  | Term.Select (m, a) -> eval_mem model m (eval_bv model a)
  | _ -> invalid_arg "Eval.eval_bv: not a bitvector term"

and eval_binop op w x y =
  match op with
  | Term.Add -> Bits.truncate w (Int64.add x y)
  | Term.Sub -> Bits.truncate w (Int64.sub x y)
  | Term.Mul -> Bits.truncate w (Int64.mul x y)
  | Term.Logand -> Int64.logand x y
  | Term.Logor -> Int64.logor x y
  | Term.Logxor -> Int64.logxor x y
  | Term.Shl ->
    if Bits.ult y (Int64.of_int w) then Bits.truncate w (Int64.shift_left x (Int64.to_int y))
    else 0L
  | Term.Lshr ->
    if Bits.ult y (Int64.of_int w) then Int64.shift_right_logical x (Int64.to_int y)
    else 0L
  | Term.Ashr ->
    let x_ext = Bits.sign_extend w x in
    if Bits.ult y (Int64.of_int w) then
      Bits.truncate w (Int64.shift_right x_ext (Int64.to_int y))
    else Bits.truncate w (Int64.shift_right x_ext 63)
