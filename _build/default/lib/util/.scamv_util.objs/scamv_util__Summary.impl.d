lib/util/summary.ml:
