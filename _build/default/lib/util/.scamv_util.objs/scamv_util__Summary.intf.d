lib/util/summary.mli:
