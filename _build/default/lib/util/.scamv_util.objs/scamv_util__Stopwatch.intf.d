lib/util/stopwatch.mli:
