lib/util/splitmix.mli:
