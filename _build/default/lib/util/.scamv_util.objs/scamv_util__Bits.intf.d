lib/util/bits.mli:
