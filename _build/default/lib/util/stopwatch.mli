(** Wall-clock timing for campaign statistics (generation time, execution
    time, time to first counterexample). *)

type t
(** A running stopwatch. *)

val start : unit -> t
(** Start measuring now. *)

val elapsed_s : t -> float
(** Seconds elapsed since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its duration in seconds. *)
