(* Splitmix64, after Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014).  The gamma of a split stream is
   derived from the parent stream, which gives statistical independence
   good enough for test-case generation. *)

type t = { seed : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.logor z 1L in
  (* Ensure enough bit flips between consecutive gammas. *)
  let n =
    Int64.logxor z (Int64.shift_right_logical z 1)
    |> fun v ->
    let rec popcount acc v =
      if Int64.equal v 0L then acc
      else popcount (acc + 1) Int64.(logand v (sub v 1L))
    in
    popcount 0 v
  in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let of_seed seed = { seed; gamma = golden_gamma }

let next g =
  let seed = Int64.add g.seed g.gamma in
  (mix64 seed, { g with seed })

let split g =
  let seed = Int64.add g.seed g.gamma in
  let seed' = Int64.add seed g.gamma in
  let child = { seed = mix64 seed; gamma = mix_gamma seed' } in
  (child, { g with seed = seed' })

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let v, g = next g in
  (* Keep 62 bits so the value fits in a non-negative native int. *)
  let v = Int64.to_int (Int64.shift_right_logical v 2) in
  (v mod bound, g)

let int_in g lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: empty range";
  let v, g = int g (hi - lo + 1) in
  (lo + v, g)

let bool g =
  let v, g = next g in
  (Int64.compare (Int64.logand v 1L) 0L <> 0, g)

let float g =
  let v, g = next g in
  let v53 = Int64.to_float (Int64.shift_right_logical v 11) in
  (v53 /. 9007199254740992.0, g)

let choose g = function
  | [] -> invalid_arg "Splitmix.choose: empty list"
  | xs ->
    let i, g = int g (List.length xs) in
    (List.nth xs i, g)

let shuffle g xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let g = ref g in
  for i = n - 1 downto 1 do
    let j, g' = int !g (i + 1) in
    g := g';
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  (Array.to_list a, !g)
