let mask w =
  if w < 0 || w > 64 then invalid_arg "Bits.mask"
  else if w = 64 then -1L
  else Int64.sub (Int64.shift_left 1L w) 1L

let truncate w v = Int64.logand v (mask w)

let bit v i = Int64.compare (Int64.logand (Int64.shift_right_logical v i) 1L) 0L <> 0

let set_bit v i b =
  if b then Int64.logor v (Int64.shift_left 1L i)
  else Int64.logand v (Int64.lognot (Int64.shift_left 1L i))

let sign_extend w v =
  if w <= 0 || w > 64 then invalid_arg "Bits.sign_extend"
  else if w = 64 then v
  else if bit v (w - 1) then Int64.logor v (Int64.lognot (mask w))
  else truncate w v

let extract ~hi ~lo v =
  if hi < lo || lo < 0 || hi > 63 then invalid_arg "Bits.extract";
  truncate (hi - lo + 1) (Int64.shift_right_logical v lo)

let ucompare a b = Int64.unsigned_compare a b
let ult a b = ucompare a b < 0
let ule a b = ucompare a b <= 0

let slt ~width a b =
  let a = sign_extend width (truncate width a)
  and b = sign_extend width (truncate width b) in
  Int64.compare a b < 0

let popcount v =
  let rec go acc v =
    if Int64.equal v 0L then acc else go (acc + 1) Int64.(logand v (sub v 1L))
  in
  go 0 v

let to_hex v = Printf.sprintf "0x%Lx" v
