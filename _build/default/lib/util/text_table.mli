(** Plain-text table rendering for the benchmark harness output (the rows
    of Table 1 and the Fig. 7 table). *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] renders an aligned ASCII table.  Every row must
    have the same arity as [header]. *)
