let render ~header ~rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter
    (fun r ->
      if List.length r <> arity then invalid_arg "Text_table.render: ragged row")
    rows;
  let widths = Array.make arity 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_row header;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf
