(** Bit-level helpers on [int64] words, used by the SMT bit-blaster, the
    ISA semantics and the cache model.  All operations treat values as
    unsigned 64-bit words unless stated otherwise. *)

val mask : int -> int64
(** [mask w] is the word with the low [w] bits set ([0 <= w <= 64]). *)

val truncate : int -> int64 -> int64
(** [truncate w v] keeps only the low [w] bits of [v]. *)

val bit : int64 -> int -> bool
(** [bit v i] is bit [i] of [v] (0 = least significant). *)

val set_bit : int64 -> int -> bool -> int64
(** [set_bit v i b] sets bit [i] of [v] to [b]. *)

val sign_extend : int -> int64 -> int64
(** [sign_extend w v] sign-extends the [w]-bit value [v] to 64 bits. *)

val extract : hi:int -> lo:int -> int64 -> int64
(** [extract ~hi ~lo v] is bits [hi..lo] of [v], right-aligned. *)

val ucompare : int64 -> int64 -> int
(** Unsigned comparison. *)

val ult : int64 -> int64 -> bool
(** Unsigned strictly-less-than. *)

val ule : int64 -> int64 -> bool
(** Unsigned less-or-equal. *)

val slt : width:int -> int64 -> int64 -> bool
(** Signed strictly-less-than at the given bit width. *)

val popcount : int64 -> int
(** Number of set bits. *)

val to_hex : int64 -> string
(** Hexadecimal rendering with [0x] prefix. *)
