(** Splittable pseudo-random number generator (splitmix64).

    All randomness in the reproduction flows from values of type {!t} so
    that campaigns are reproducible from a single seed.  The generator is
    purely functional: every operation returns the next generator state. *)

type t
(** Immutable generator state. *)

val of_seed : int64 -> t
(** [of_seed s] creates a generator from a 64-bit seed. *)

val next : t -> int64 * t
(** [next g] returns a uniformly distributed 64-bit value and the next
    state. *)

val split : t -> t * t
(** [split g] returns two statistically independent generators.  Used to
    give every program / test case / run its own stream. *)

val int : t -> int -> int * t
(** [int g bound] returns a uniform integer in [\[0, bound)].  [bound] must
    be positive. *)

val int_in : t -> int -> int -> int * t
(** [int_in g lo hi] returns a uniform integer in [\[lo, hi\]] inclusive. *)

val bool : t -> bool * t
(** Uniform boolean. *)

val float : t -> float * t
(** Uniform float in [\[0, 1)]. *)

val choose : t -> 'a list -> 'a * t
(** [choose g xs] picks a uniform element of the non-empty list [xs].
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list * t
(** Fisher-Yates shuffle. *)
