(** The observational models of the paper (Sec. 4).

    - {!mpc}: program-counter model, the path-coverage support model
      (Sec. 4.1.1).
    - {!mline}: cache-set-index model, the line-coverage support model
      (Sec. 4.1.2); observes the set index of every access.
    - {!mct}: constant-time model (Sec. 4.2.2): program counter plus every
      accessed address.
    - {!mpart}: cache-partitioning model (Sec. 4.2.1): addresses of
      accesses within the attacker-accessible region only.
    - {!mpart_refined}: its refinement [Mpart']: additionally the set
      index of accesses *outside* the region (the extra observations that
      guide the search towards prefetch-triggering states).
    - {!mspec}, {!mspec1}, {!mspec_straight_line}: speculative models
      (Sec. 4.2.2 and 6.5) built on {!Speculation}.
    - {!mfull} / {!mempty}: the trivially sound / trivially coarse
      extremes of the refinement order (Sec. 3). *)

type t = Model.t

val mpc : t
val mct : t
val mline : Scamv_isa.Platform.t -> t

(** Observes the *page index* of every access: the natural model of the
    TLB side channel (Sec. 2.3 lists TLB state among the channels the
    framework extends to).  Sound against a TLB-probing attacker but
    unsound against the cache channel, which resolves below page
    granularity — the demonstration workload of [examples/tlb_channel]. *)
val mpage : Scamv_isa.Platform.t -> t
val mpart : Scamv_isa.Platform.t -> Region.t -> t
val mpart_refined : Scamv_isa.Platform.t -> Region.t -> t
val mspec : ?window:int -> unit -> t
val mspec1 : ?window:int -> unit -> t
val mspec_straight_line : ?window:int -> unit -> t
val mfull : t
val mempty : t

val all_static : Scamv_isa.Platform.t -> Region.t -> t list
(** Every non-speculative model, for the documentation examples. *)
