(** Observational models as instrumentation recipes.

    A model is a set of ISA-level observation hooks plus an optional
    speculative instrumentation; {!annotate} produces the BIR program the
    symbolic engine runs (the "observation augmentation" phase).  Models
    compose: {!Refinement} builds the combined [M1 /\ not M2] programs. *)

type t = {
  name : string;
  description : string;
  hooks : tag:Scamv_bir.Obs.tag -> Scamv_bir.Lifter.hooks;
      (** the model's observations, emitted with the given tag *)
  spec : (tag:Scamv_bir.Obs.tag -> Speculation.config) option;
      (** speculative instrumentation, if the model observes transient
          behaviour *)
}

val annotate : ?tag:Scamv_bir.Obs.tag -> t -> Scamv_isa.Ast.program -> Scamv_bir.Program.t
(** Instrument a program with this model's observations only (default tag
    [Base]). *)

val merge_hooks : Scamv_bir.Lifter.hooks list -> Scamv_bir.Lifter.hooks
(** Concatenate the observations of several hook sets, in order. *)
