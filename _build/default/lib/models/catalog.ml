module Term = Scamv_smt.Term
module Obs = Scamv_bir.Obs
module Lifter = Scamv_bir.Lifter
module Vars = Scamv_bir.Vars
module Reg = Scamv_isa.Reg

type t = Model.t

let no_hooks ~tag:_ = Lifter.no_hooks

let pc_obs ~tag ~pc = Obs.make ~tag ~kind:"pc" [ Term.bv_const (Int64.of_int pc) 64 ]

let pc_hooks ~tag =
  { Lifter.no_hooks with Lifter.on_fetch = (fun ~pc -> [ pc_obs ~tag ~pc ]) }

let addr_hooks ~tag =
  let obs ~pc:_ ~addr = [ Obs.make ~tag ~kind:"load_addr" [ addr ] ] in
  { Lifter.no_hooks with Lifter.on_load = obs; on_store = obs }

let mpc =
  {
    Model.name = "Mpc";
    description = "observes the program counter of every instruction (path coverage)";
    hooks = pc_hooks;
    spec = None;
  }

let mct =
  {
    Model.name = "Mct";
    description = "constant-time model: program counter and every accessed address";
    hooks = (fun ~tag -> Model.merge_hooks [ pc_hooks ~tag; addr_hooks ~tag ]);
    spec = None;
  }

let mline platform =
  let obs ~tag ~pc:_ ~addr =
    [ Obs.make ~tag ~kind:"cache_line" [ Region.set_index_term platform addr ] ]
  in
  {
    Model.name = "Mline";
    description = "observes the cache set index of every access (line coverage)";
    hooks =
      (fun ~tag ->
        { Lifter.no_hooks with Lifter.on_load = obs ~tag; on_store = obs ~tag });
    spec = None;
  }

let mpage platform =
  let obs ~tag ~pc:_ ~addr =
    let page =
      Term.lshr addr (Term.bv_const (Int64.of_int platform.Scamv_isa.Platform.page_shift) 64)
    in
    [ Obs.make ~tag ~kind:"page" [ page ] ]
  in
  {
    Model.name = "Mpage";
    description = "observes the page index of every access (TLB channel)";
    hooks =
      (fun ~tag ->
        { Lifter.no_hooks with Lifter.on_load = obs ~tag; on_store = obs ~tag });
    spec = None;
  }

let mpart platform region =
  let obs ~tag ~pc:_ ~addr =
    [
      Obs.make ~tag ~kind:"ar_addr"
        ~cond:(Region.contains_term platform region addr)
        [ addr ];
    ]
  in
  {
    Model.name = "Mpart";
    description =
      "cache-partitioning model: addresses of accesses in the attacker region";
    hooks =
      (fun ~tag ->
        { Lifter.no_hooks with Lifter.on_load = obs ~tag; on_store = obs ~tag });
    spec = None;
  }

let mpart_refined platform region =
  (* The extra observations of Mpart' over Mpart: the cache set index of
     accesses outside the attacker region.  Requiring these to differ
     steers generation towards pairs whose hidden accesses land in
     different sets - the prerequisite for distinguishable prefetches. *)
  let obs ~tag ~pc:_ ~addr =
    [
      Obs.make ~tag ~kind:"non_ar_line"
        ~cond:(Term.not_ (Region.contains_term platform region addr))
        [ Region.set_index_term platform addr ];
    ]
  in
  {
    Model.name = "Mpart'";
    description = "refinement of Mpart: set indexes of accesses outside the region";
    hooks =
      (fun ~tag ->
        { Lifter.no_hooks with Lifter.on_load = obs ~tag; on_store = obs ~tag });
    spec = None;
  }

let mspec ?window () =
  {
    Model.name = "Mspec";
    description = "Mct plus all transient loads of mispredicted branches";
    hooks = mct.Model.hooks;
    spec =
      Some
        (fun ~tag ->
          let base = Speculation.mspec ?window () in
          { base with Speculation.load_tag = (fun _ -> Some tag) });
  }

let mspec1 ?window () =
  {
    Model.name = "Mspec1";
    description = "Mct plus the first transient load of mispredicted branches";
    hooks = mct.Model.hooks;
    spec =
      Some
        (fun ~tag ->
          let base = Speculation.mspec1 ?window () in
          {
            base with
            Speculation.load_tag = (fun i -> if i = 0 then Some tag else None);
          });
  }

let mspec_straight_line ?window () =
  {
    Model.name = "Mspec'";
    description = "Mct plus transient loads after unconditional direct branches";
    hooks = mct.Model.hooks;
    spec =
      Some
        (fun ~tag ->
          let base = Speculation.mspec_straight_line ?window () in
          { base with Speculation.load_tag = (fun _ -> Some tag) });
  }

let mfull =
  let fetch ~tag ~pc =
    let regs = List.map (fun r -> Vars.reg_term r) Reg.all in
    [ pc_obs ~tag ~pc; Obs.make ~tag ~kind:"regfile" regs ]
  in
  {
    Model.name = "Mfull";
    description =
      "observes the program counter and the whole register file: trivially sound";
    hooks =
      (fun ~tag ->
        Model.merge_hooks
          [
            { Lifter.no_hooks with Lifter.on_fetch = fetch ~tag };
            addr_hooks ~tag;
          ]);
    spec = None;
  }

let mempty =
  {
    Model.name = "Mempty";
    description = "observes nothing: all states equivalent";
    hooks = no_hooks;
    spec = None;
  }

let all_static platform region =
  [
    mpc;
    mct;
    mline platform;
    mpage platform;
    mpart platform region;
    mpart_refined platform region;
    mfull;
    mempty;
  ]
