module Term = Scamv_smt.Term
module Platform = Scamv_isa.Platform

type t = { first_set : int; last_set : int }

let make ~first_set ~last_set =
  if first_set < 0 || last_set < first_set then
    invalid_arg "Region.make: empty or negative range";
  { first_set; last_set }

let paper_unaligned (p : Platform.t) =
  make ~first_set:(p.set_count - 67) ~last_set:(p.set_count - 1)

let paper_page_aligned (p : Platform.t) =
  make ~first_set:(p.set_count - 64) ~last_set:(p.set_count - 1)

let set_index_term (p : Platform.t) addr =
  let bits = Platform.set_index_bits p in
  Term.extract ~hi:(p.line_shift + bits - 1) ~lo:p.line_shift addr

let contains_term p { first_set; last_set } addr =
  let bits = Platform.set_index_bits p in
  let line = set_index_term p addr in
  Term.and_
    (Term.ule (Term.bv_const (Int64.of_int first_set) bits) line)
    (Term.ule line (Term.bv_const (Int64.of_int last_set) bits))

let contains p { first_set; last_set } addr =
  let s = Platform.set_index p addr in
  first_set <= s && s <= last_set

let pp ppf { first_set; last_set } =
  Format.fprintf ppf "sets [%d..%d]" first_set last_set
