(** Attacker-accessible cache regions for the cache-coloring models
    (Sec. 4.2.1).  A region is a contiguous, inclusive range of cache set
    indexes; the predicate [AR(addr)] of the paper holds when the address
    maps into the region. *)

type t = { first_set : int; last_set : int }

val make : first_set:int -> last_set:int -> t
(** @raise Invalid_argument on an empty or negative range. *)

val paper_unaligned : Scamv_isa.Platform.t -> t
(** The region of Table 1 columns 1-2: the highest 67 set indexes
    (61..127), deliberately not page aligned. *)

val paper_page_aligned : Scamv_isa.Platform.t -> t
(** The region of Table 1 columns 3-4: the highest 64 set indexes
    (64..127), one page. *)

val set_index_term : Scamv_isa.Platform.t -> Scamv_smt.Term.t -> Scamv_smt.Term.t
(** Symbolic cache-set index of a 64-bit address term. *)

val contains_term : Scamv_isa.Platform.t -> t -> Scamv_smt.Term.t -> Scamv_smt.Term.t
(** Symbolic [AR(addr)]. *)

val contains : Scamv_isa.Platform.t -> t -> int64 -> bool
(** Concrete [AR(addr)]. *)

val pp : Format.formatter -> t -> unit
