module Lifter = Scamv_bir.Lifter
module Obs = Scamv_bir.Obs

type t = {
  name : string;
  description : string;
  hooks : tag:Obs.tag -> Lifter.hooks;
  spec : (tag:Obs.tag -> Speculation.config) option;
}

let merge_hooks hook_list =
  {
    Lifter.on_fetch = (fun ~pc -> List.concat_map (fun h -> h.Lifter.on_fetch ~pc) hook_list);
    on_load = (fun ~pc ~addr -> List.concat_map (fun h -> h.Lifter.on_load ~pc ~addr) hook_list);
    on_store = (fun ~pc ~addr -> List.concat_map (fun h -> h.Lifter.on_store ~pc ~addr) hook_list);
    on_branch =
      (fun ~pc ~cond -> List.concat_map (fun h -> h.Lifter.on_branch ~pc ~cond) hook_list);
  }

let annotate ?(tag = Obs.Base) model program =
  let bir = Lifter.lift ~hooks:(model.hooks ~tag) program in
  match model.spec with
  | None -> bir
  | Some spec -> Speculation.instrument (spec ~tag) program bir
