lib/models/refinement.mli: Model Region Scamv_bir Scamv_isa Speculation
