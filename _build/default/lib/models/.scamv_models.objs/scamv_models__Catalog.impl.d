lib/models/catalog.ml: Int64 List Model Region Scamv_bir Scamv_isa Scamv_smt Speculation
