lib/models/region.mli: Format Scamv_isa Scamv_smt
