lib/models/speculation.mli: Scamv_bir Scamv_isa
