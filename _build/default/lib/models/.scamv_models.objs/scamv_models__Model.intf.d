lib/models/model.mli: Scamv_bir Scamv_isa Speculation
