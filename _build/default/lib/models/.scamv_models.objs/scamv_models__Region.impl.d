lib/models/region.ml: Format Int64 Scamv_isa Scamv_smt
