lib/models/speculation.ml: Array List Map Scamv_bir Scamv_isa Scamv_smt String
