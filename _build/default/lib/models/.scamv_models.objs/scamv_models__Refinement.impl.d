lib/models/refinement.ml: Catalog List Model Option Printf Scamv_bir Speculation
