lib/models/catalog.mli: Model Region Scamv_isa
