lib/models/model.ml: List Scamv_bir Speculation
