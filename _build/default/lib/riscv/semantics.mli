(** Native RV64 reference semantics, used to differentially test the
    {!Translate} pass: running a RISC-V program here and running its
    translation on the AArch64-subset reference semantics must agree. *)

type state

val create : unit -> state
val get_reg : state -> Ast.reg -> int64
(** Reads of [x0] are always zero. *)

val set_reg : state -> Ast.reg -> int64 -> unit
(** Writes to [x0] are discarded. *)

val load : state -> int64 -> int64
val store : state -> int64 -> int64 -> unit
val mem_bindings : state -> (int64 * int64) list

val run : ?fuel:int -> Ast.program -> state -> unit
(** Execute from index 0 until the pc leaves the program.
    @raise Failure on fuel exhaustion. *)
