(** Translation from RV64 to the common AArch64-subset ISA — the
    "binary translator" a new guest architecture contributes to Scam-V
    (Sec. 2.3).  After translation, observation augmentation, symbolic
    execution, relation synthesis and the simulator all apply unchanged.

    Register convention: RISC-V [x1 .. x31] map to AArch64 [x0 .. x30];
    reads of the hardwired-zero [x0] become immediates, ALU writes to
    [x0] become no-ops.  RISC-V branches compare registers directly, so
    each branch becomes a [cmp]+[b.cond] pair (the guest has no flags to
    preserve); instruction indexes are remapped accordingly.

    A few RV64 idioms have no side-effect-faithful image in the target
    subset and are rejected: loads *to* [x0] (the memory access would
    need a scratch register), stores *of* [x0], [x0]-based addressing,
    register-amount shifts ([sll]/[srl]/[sra]; immediate shifts are
    supported), linking jumps ([jal] with [rd <> x0]), and [sub rd, x0,
    rd] (negation in place). *)

val map_reg : Ast.reg -> Scamv_isa.Reg.t
(** @raise Invalid_argument on [x0], which has no target register. *)

val translate : Ast.program -> (Scamv_isa.Ast.program, string) Stdlib.result

val machine_of_state : Semantics.state -> Scamv_isa.Machine.t
(** The AArch64 machine state corresponding to an RV64 state (registers
    remapped, memory shared). *)

val states_agree : Semantics.state -> Scamv_isa.Machine.t -> bool
(** Register-file (x1..x31 vs x0..x30) and memory agreement, for the
    differential translator tests. *)
