lib/riscv/semantics.ml: Array Ast Int64 Map
