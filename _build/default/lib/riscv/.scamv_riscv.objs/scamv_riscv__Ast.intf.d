lib/riscv/ast.mli: Format Stdlib
