lib/riscv/semantics.mli: Ast
