lib/riscv/ast.ml: Array Format List Printf
