lib/riscv/translate.ml: Array Ast Format Int64 List Scamv_isa Semantics
