lib/riscv/translate.mli: Ast Scamv_isa Semantics Stdlib
