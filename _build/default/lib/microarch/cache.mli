(** Set-associative L1 data cache with LRU replacement.

    Models the Cortex-A53 L1D (32 KiB: 128 sets x 4 ways x 64 B by
    default).  Only presence of lines matters for the attacker views used
    in the experiments; coherence and write policy are out of scope
    (transient and committed loads allocate, stores are ignored by the
    channel per Sec. 6.1's load-driven experiments). *)

type t

val create : Scamv_isa.Platform.t -> t
val reset : t -> unit

val access : t -> int64 -> [ `Hit | `Miss ]
(** Demand access to a byte address: reports hit/miss and allocates the
    line (LRU update on hit). *)

val fill : t -> int64 -> unit
(** Allocate a line without reporting (prefetch fill). *)

val flush_line : t -> int64 -> unit
(** Invalidate the line containing the address, if present. *)

val contains : t -> int64 -> bool

val snapshot : t -> (int * int64 list) list
(** Per-set contents: (set index, sorted line base addresses) for every
    non-empty set — the "TrustZone cache dump" of Sec. 6.1. *)

val snapshot_region : t -> first_set:int -> last_set:int -> (int * int64 list) list
(** Dump restricted to the attacker-accessible sets. *)

val equal_snapshot : (int * int64 list) list -> (int * int64 list) list -> bool
