module Platform = Scamv_isa.Platform

type t = {
  platform : Platform.t;
  entries : int;
  mutable pages : int64 list;  (* most recently used first *)
}

let create ?(entries = 10) platform =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  { platform; entries; pages = [] }

let reset t = t.pages <- []

let access t addr =
  let page = Platform.page_index t.platform addr in
  let present = List.exists (Int64.equal page) t.pages in
  let others = List.filter (fun p -> not (Int64.equal page p)) t.pages in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | p :: rest -> p :: take (n - 1) rest
  in
  t.pages <- page :: take (t.entries - 1) others;
  if present then `Hit else `Miss

let contains t addr =
  let page = Platform.page_index t.platform addr in
  List.exists (Int64.equal page) t.pages

let snapshot t = List.sort Int64.unsigned_compare t.pages
