(** Pattern-history-table branch predictor: 2-bit saturating counters
    indexed by the branch's program counter (Sec. 4.2.2).  Counters start
    at "weakly not taken", so untrained branches predict not-taken. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 256). *)

val reset : t -> unit
val predict : t -> int -> bool
val update : t -> int -> taken:bool -> unit
val counter : t -> int -> int
(** Raw counter value (0..3) of the entry a pc maps to, for tests. *)
