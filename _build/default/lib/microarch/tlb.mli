(** Data micro-TLB: fully associative, LRU, page granularity.

    Models the Cortex-A53 10-entry data micro-TLB.  The TLB is a second
    side channel (Sec. 2.3 lists TLB state among the channels Scam-V can
    be extended to): two executions touching the same cache lines can
    still be distinguished by which *pages* they walked. *)

type t

val create : ?entries:int -> Scamv_isa.Platform.t -> t
(** [entries] defaults to 10 (the A53 data micro-TLB). *)

val reset : t -> unit

val access : t -> int64 -> [ `Hit | `Miss ]
(** Translate a byte address: LRU-touches (and allocates) its page. *)

val contains : t -> int64 -> bool
(** Whether the page of the address is currently resident. *)

val snapshot : t -> int64 list
(** Resident page numbers, sorted — the attacker's TLB-probing view. *)
