type t = { counters : int array; mask : int }

let create ?(entries = 256) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Predictor.create: entries must be a positive power of two";
  { counters = Array.make entries 1 (* weakly not taken *); mask = entries - 1 }

let reset t = Array.fill t.counters 0 (Array.length t.counters) 1
let slot t pc = pc land t.mask
let predict t pc = t.counters.(slot t pc) >= 2

let update t pc ~taken =
  let i = slot t pc in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

let counter t pc = t.counters.(slot t pc)
