module Platform = Scamv_isa.Platform
module Splitmix = Scamv_util.Splitmix

type t = {
  platform : Platform.t;
  threshold : int;
  fire_prob : float;
  mutable last : int64 option;
  mutable stride : int64;
  mutable streak : int;  (* number of consecutive accesses with this stride *)
}

let create ?(threshold = 3) ?(fire_prob = 0.97) platform =
  if threshold < 2 then invalid_arg "Prefetcher.create: threshold must be >= 2";
  { platform; threshold; fire_prob; last = None; stride = 0L; streak = 1 }

let reset t =
  t.last <- None;
  t.stride <- 0L;
  t.streak <- 1

let threshold t = t.threshold

let observe t ~rng addr =
  let fire_target =
    match t.last with
    | None ->
      t.streak <- 1;
      None
    | Some prev ->
      let stride = Int64.sub addr prev in
      if Int64.equal stride 0L then None (* same address: stream unchanged *)
      else begin
        if Int64.equal stride t.stride then t.streak <- t.streak + 1
        else begin
          t.stride <- stride;
          t.streak <- 2
        end;
        if t.streak >= t.threshold then begin
          let next = Int64.add addr t.stride in
          (* The A53 prefetcher does not cross page boundaries. *)
          if
            Int64.equal
              (Platform.page_index t.platform next)
              (Platform.page_index t.platform addr)
          then Some next
          else None
        end
        else None
      end
  in
  t.last <- Some addr;
  match fire_target with
  | None -> None
  | Some next ->
    (* Prefetch issue is timing-sensitive on the real core. *)
    let p, rng' = Splitmix.float !rng in
    rng := rng';
    if p < t.fire_prob then Some next else None
