(** Flush+Reload measurement primitive (Sec. 2.1), used by the SiSCloak
    end-to-end attack demonstration (Sec. 6.4) instead of the privileged
    cache dump: the attacker flushes a line, lets the victim run, then
    times a reload using the cycle counter (PMC). *)

type t

val create : ?seed:int64 -> Core.config -> t

val core : t -> Core.t
(** The core shared between attacker and victim. *)

val flush : t -> int64 -> unit

val reload_time : t -> int64 -> int
(** Timed access in cycles; the access allocates the line (as a real
    reload would). *)

val hit_cycles : int
val miss_cycles : int

val was_cached : t -> int64 -> bool
(** [reload_time] compared against the hit/miss threshold. *)
