module Platform = Scamv_isa.Platform

(* Each set is a list of line base addresses, most recently used first,
   length bounded by the way count. *)
type t = {
  platform : Platform.t;
  sets : int64 list array;
}

let create platform = { platform; sets = Array.make platform.Platform.set_count [] }
let reset t = Array.fill t.sets 0 (Array.length t.sets) []

let set_of t addr = Platform.set_index t.platform addr

let touch t addr ~demand =
  let line = Platform.line_base t.platform addr in
  let idx = set_of t addr in
  let ways = t.platform.Platform.way_count in
  let present = List.exists (Int64.equal line) t.sets.(idx) in
  let without = List.filter (fun l -> not (Int64.equal line l)) t.sets.(idx) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.sets.(idx) <- line :: take (ways - 1) without;
  ignore demand;
  if present then `Hit else `Miss

let access t addr = touch t addr ~demand:true
let fill t addr = ignore (touch t addr ~demand:false)

let flush_line t addr =
  let line = Platform.line_base t.platform addr in
  let idx = set_of t addr in
  t.sets.(idx) <- List.filter (fun l -> not (Int64.equal line l)) t.sets.(idx)

let contains t addr =
  let line = Platform.line_base t.platform addr in
  List.exists (Int64.equal line) t.sets.(set_of t addr)

let snapshot_range t lo hi =
  let out = ref [] in
  for idx = hi downto lo do
    match t.sets.(idx) with
    | [] -> ()
    | lines -> out := (idx, List.sort Int64.unsigned_compare lines) :: !out
  done;
  !out

let snapshot t = snapshot_range t 0 (Array.length t.sets - 1)

let snapshot_region t ~first_set ~last_set =
  let hi = min last_set (Array.length t.sets - 1) in
  let lo = max 0 first_set in
  snapshot_range t lo hi

let equal_snapshot a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ia, la) (ib, lb) ->
         ia = ib && List.length la = List.length lb && List.for_all2 Int64.equal la lb)
       a b
