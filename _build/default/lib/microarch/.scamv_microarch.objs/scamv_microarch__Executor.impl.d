lib/microarch/executor.ml: Cache Core Int64 List Scamv_isa Scamv_util Tlb
