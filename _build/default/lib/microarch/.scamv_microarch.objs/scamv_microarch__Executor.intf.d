lib/microarch/executor.mli: Core Scamv_isa
