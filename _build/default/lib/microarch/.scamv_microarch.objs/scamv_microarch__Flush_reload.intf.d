lib/microarch/flush_reload.mli: Core
