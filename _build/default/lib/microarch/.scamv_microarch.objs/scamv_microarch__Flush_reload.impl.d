lib/microarch/flush_reload.ml: Cache Core
