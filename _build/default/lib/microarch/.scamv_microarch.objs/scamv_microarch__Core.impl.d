lib/microarch/core.ml: Array Cache Hashtbl Int64 List Predictor Prefetcher Scamv_isa Scamv_util Tlb
