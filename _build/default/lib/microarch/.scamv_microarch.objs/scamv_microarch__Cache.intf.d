lib/microarch/cache.mli: Scamv_isa
