lib/microarch/prefetcher.mli: Scamv_isa Scamv_util
