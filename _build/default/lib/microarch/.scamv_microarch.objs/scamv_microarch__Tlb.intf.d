lib/microarch/tlb.mli: Scamv_isa
