lib/microarch/core.mli: Cache Predictor Scamv_isa Tlb
