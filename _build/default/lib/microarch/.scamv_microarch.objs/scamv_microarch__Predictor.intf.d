lib/microarch/predictor.mli:
