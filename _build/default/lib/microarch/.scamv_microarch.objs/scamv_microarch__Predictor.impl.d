lib/microarch/predictor.ml: Array
