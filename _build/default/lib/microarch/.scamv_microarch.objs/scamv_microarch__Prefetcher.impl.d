lib/microarch/prefetcher.ml: Int64 Scamv_isa Scamv_util
