lib/microarch/tlb.ml: Int64 List Scamv_isa
