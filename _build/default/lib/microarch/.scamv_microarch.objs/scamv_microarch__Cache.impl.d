lib/microarch/cache.ml: Array Int64 List Scamv_isa
