(** Stride data prefetcher.

    The Cortex-A53 prefetcher activates once at least [threshold]
    (default 3, the processor's default setting per Sec. 6.1) consecutive
    loads access equidistant addresses, and then prefetches the next
    address of the stream — but never across a page boundary, the
    property the page-aligned cache-coloring experiment of Sec. 6.2
    depends on.

    Prefetch issue is probabilistic ([fire_prob], default 0.97): the real
    prefetcher is timing-sensitive, and this is what makes
    prefetch-dependent experiments occasionally inconclusive with the
    same distribution as in the paper (see DESIGN.md). *)

type t

val create :
  ?threshold:int -> ?fire_prob:float -> Scamv_isa.Platform.t -> t

val reset : t -> unit

val observe : t -> rng:Scamv_util.Splitmix.t ref -> int64 -> int64 option
(** Feed a demand-access address; returns the address to prefetch when the
    stream detector fires. *)

val threshold : t -> int
