(** Symbolic execution of BIR programs (the "symbolic execution" phase of
    the Scam-V pipeline, Sec. 2.3).

    The program is executed with symbolic inputs; every feasible-looking
    path yields a terminating symbolic state: the path condition [pσ] and
    the list of symbolic observations [lσ], all expressed over the initial
    program variables. *)

type leaf = {
  path_cond : Scamv_smt.Term.t;
      (** condition on the initial state for this path *)
  obs : Scamv_bir.Obs.t list;
      (** observations in emission order, over initial variables *)
  trace : int list;  (** block ids visited, entry first *)
}

exception Step_limit_exceeded

val execute : ?max_steps:int -> Scamv_bir.Program.t -> leaf list
(** All paths, in depth-first order (then-branch first).  Paths whose
    condition simplifies to [false] syntactically are pruned; remaining
    conditions may still be unsatisfiable (the SMT solver decides later).

    @raise Step_limit_exceeded when a path exceeds [max_steps] blocks
    (default 4096), which indicates a cyclic program. *)

val concrete_obs :
  Scamv_smt.Model.t -> leaf -> (Scamv_bir.Obs.tag * string * int64 list) list
(** Evaluate a leaf's observation list under a concrete input valuation,
    dropping observations whose condition is false: the observation trace
    the model predicts for that input.  Used by tests and by the
    test-case validator. *)

val pp_leaf : Format.formatter -> leaf -> unit
