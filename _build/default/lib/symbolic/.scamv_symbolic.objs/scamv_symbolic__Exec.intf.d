lib/symbolic/exec.mli: Format Scamv_bir Scamv_smt
