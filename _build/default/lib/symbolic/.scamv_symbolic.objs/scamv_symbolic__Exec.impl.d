lib/symbolic/exec.ml: Format List Map Scamv_bir Scamv_smt String
