module Term = Scamv_smt.Term
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval
module Program = Scamv_bir.Program
module Obs = Scamv_bir.Obs
module String_map = Map.Make (String)

type leaf = { path_cond : Term.t; obs : Obs.t list; trace : int list }

exception Step_limit_exceeded

(* The environment maps written variables to their symbolic values; an
   unwritten variable denotes itself (an input). *)
let substitute env term =
  Term.subst (fun name _sort -> String_map.find_opt name env) term

let execute ?(max_steps = 4096) program =
  let leaves = ref [] in
  let rec go block_id env path_cond obs_rev trace_rev steps =
    if steps > max_steps then raise Step_limit_exceeded;
    let b = Program.block program block_id in
    let trace_rev = block_id :: trace_rev in
    let env, obs_rev =
      List.fold_left
        (fun (env, obs_rev) stmt ->
          match stmt with
          | Program.Assign (x, e) -> (String_map.add x (substitute env e) env, obs_rev)
          | Program.Observe o -> (env, Obs.map_terms (substitute env) o :: obs_rev))
        (env, obs_rev) b.Program.stmts
    in
    match b.Program.term with
    | Program.Halt ->
      leaves :=
        { path_cond; obs = List.rev obs_rev; trace = List.rev trace_rev } :: !leaves
    | Program.Jmp next -> go next env path_cond obs_rev trace_rev (steps + 1)
    | Program.Cjmp (c, then_id, else_id) ->
      let c = substitute env c in
      let explore cond target =
        match Term.and_ path_cond cond with
        | Term.False -> ()
        | pc -> go target env pc obs_rev trace_rev (steps + 1)
      in
      explore c then_id;
      explore (Term.not_ c) else_id
  in
  go (Program.entry program) String_map.empty Term.tt [] [] 0;
  List.rev !leaves

let concrete_obs model leaf =
  List.filter_map
    (fun (o : Obs.t) ->
      if Eval.eval_bool model o.cond then
        Some (o.tag, o.kind, List.map (Eval.eval_bv model) o.values)
      else None)
    leaf.obs

let pp_leaf ppf { path_cond; obs; trace } =
  Format.fprintf ppf "@[<v>path: %a@,trace: %a@,"
    Term.pp path_cond
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    trace;
  List.iter (fun o -> Format.fprintf ppf "%a@," Obs.pp o) obs;
  Format.fprintf ppf "@]"
