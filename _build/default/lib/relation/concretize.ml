module Model = Scamv_smt.Model
module Machine = Scamv_isa.Machine
module Reg = Scamv_isa.Reg
module Vars = Scamv_bir.Vars

let machine_of_model ~suffix model =
  let m = Machine.create () in
  List.iter
    (fun r ->
      match Model.find_var model (Vars.reg r ^ suffix) with
      | Some (Model.Bv (v, _)) -> Machine.set_reg m r v
      | Some (Model.Bool _) | None -> ())
    Reg.all;
  let flag name = Model.bool_exn model (name ^ suffix) in
  Machine.set_flags m
    {
      Machine.n = flag Vars.flag_n;
      z = flag Vars.flag_z;
      c = flag Vars.flag_c;
      v = flag Vars.flag_v;
    };
  List.iter
    (fun (addr, value) -> Machine.store m addr value)
    (Model.mem_cells model (Vars.mem_name ^ suffix));
  m

let test_states model =
  ( machine_of_model ~suffix:Synth.suffix1 model,
    machine_of_model ~suffix:Synth.suffix2 model )
