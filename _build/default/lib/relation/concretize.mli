(** Turning SMT models into concrete machine states (the "generate test
    case" step).  A model assigns the suffixed variables of one or both
    states; this module reads one suffix back into an architectural
    {!Scamv_isa.Machine.t}: registers, flags, and the memory cells the
    relation constrained (everything else is zero, matching the platform
    module's memory initialization). *)

val machine_of_model : suffix:string -> Scamv_smt.Model.t -> Scamv_isa.Machine.t

val test_states :
  Scamv_smt.Model.t -> Scamv_isa.Machine.t * Scamv_isa.Machine.t
(** Both states of a test case (suffixes ["_1"] and ["_2"]). *)
