(** Branch misprediction training (Sec. 5.3).

    For a test-case pair taking path [p], the predictor must be trained to
    predict the *other* direction, so the measured runs misspeculate.  A
    training state is a satisfying assignment of a different path
    condition [p' <> p], found with the SMT solver. *)

val training_states :
  platform:Scamv_isa.Platform.t ->
  leaves:Scamv_symbolic.Exec.leaf list ->
  pair:int * int ->
  Scamv_isa.Machine.t list
(** Training inputs for a test case whose states take the paths of the
    given leaf pair: one state per satisfiable path whose trace differs
    from both leaves' traces (deduplicated by trace).  Empty when the
    program has a single path (no branch to train). *)
