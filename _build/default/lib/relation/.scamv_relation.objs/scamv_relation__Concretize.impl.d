lib/relation/concretize.ml: List Scamv_bir Scamv_isa Scamv_smt Synth
