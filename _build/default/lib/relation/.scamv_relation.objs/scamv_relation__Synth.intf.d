lib/relation/synth.mli: Scamv_isa Scamv_smt Scamv_symbolic
