lib/relation/training.mli: Scamv_isa Scamv_symbolic
