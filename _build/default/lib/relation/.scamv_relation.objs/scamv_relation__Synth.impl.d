lib/relation/synth.ml: Array Fun Int64 List Printf Scamv_bir Scamv_isa Scamv_smt Scamv_symbolic Set Stdlib String
