lib/relation/concretize.mli: Scamv_isa Scamv_smt
