lib/relation/training.ml: Array Concretize Hashtbl List Scamv_smt Scamv_symbolic Synth
