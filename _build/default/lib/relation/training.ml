module Term = Scamv_smt.Term
module Solver = Scamv_smt.Solver
module Exec = Scamv_symbolic.Exec

let training_states ~platform ~leaves ~pair:(i, j) =
  let arr = Array.of_list leaves in
  let trace1 = arr.(i).Exec.trace and trace2 = arr.(j).Exec.trace in
  let seen = Hashtbl.create 4 in
  Hashtbl.add seen trace1 ();
  if not (Hashtbl.mem seen trace2) then Hashtbl.add seen trace2 ();
  List.filter_map
    (fun (leaf : Exec.leaf) ->
      if Hashtbl.mem seen leaf.Exec.trace then None
      else begin
        Hashtbl.add seen leaf.Exec.trace ();
        let rename = Term.rename (fun v -> v ^ Synth.suffix_train) in
        let assertions =
          rename leaf.Exec.path_cond
          :: List.map rename
               (Synth.range_constraints_of_leaf platform leaf)
        in
        match Solver.solve assertions with
        | Solver.Sat model ->
          Some (Concretize.machine_of_model ~suffix:Synth.suffix_train model)
        | Solver.Unsat -> None
      end)
    leaves
