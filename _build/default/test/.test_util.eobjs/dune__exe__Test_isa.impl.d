test/test_isa.ml: Alcotest Array Bool Int64 List QCheck QCheck_alcotest Scamv_isa String
