test/test_riscv.ml: Alcotest Array Int64 QCheck QCheck_alcotest Scamv Scamv_isa Scamv_microarch Scamv_models Scamv_riscv Scamv_util
