test/test_microarch.ml: Alcotest Int64 List QCheck QCheck_alcotest Scamv_gen Scamv_isa Scamv_microarch Scamv_util
