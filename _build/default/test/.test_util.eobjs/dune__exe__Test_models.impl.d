test/test_models.ml: Alcotest Bool Int64 List Printf QCheck QCheck_alcotest Scamv_bir Scamv_isa Scamv_models Scamv_smt Scamv_symbolic
