test/test_pipeline.ml: Alcotest Format Hashtbl List Scamv Scamv_gen Scamv_isa Scamv_microarch Scamv_models
