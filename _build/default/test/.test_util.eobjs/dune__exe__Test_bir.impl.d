test/test_bir.ml: Alcotest Format Int64 List QCheck QCheck_alcotest Scamv_bir Scamv_gen Scamv_isa Scamv_models Scamv_smt Scamv_symbolic Scamv_util
