test/test_gen.ml: Alcotest Array Int64 List Option QCheck QCheck_alcotest Scamv_gen Scamv_isa
