test/test_relation.ml: Alcotest Bool Int64 List Option Scamv_bir Scamv_isa Scamv_models Scamv_relation Scamv_smt Scamv_symbolic String
