test/test_extensions.ml: Alcotest Fun Int64 List Scamv Scamv_bir Scamv_gen Scamv_isa Scamv_microarch Scamv_models Scamv_smt Scamv_symbolic String
