test/test_bir.mli:
