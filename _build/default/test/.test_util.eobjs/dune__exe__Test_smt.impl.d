test/test_smt.ml: Alcotest Array Bool Format Hashtbl Int64 List QCheck QCheck_alcotest Scamv_smt Scamv_util
