module T = Scamv_smt.Term
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval
module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Platform = Scamv_isa.Platform
module Obs = Scamv_bir.Obs
module Lifter = Scamv_bir.Lifter
module Exec = Scamv_symbolic.Exec
module Mdl = Scamv_models.Model
module Catalog = Scamv_models.Catalog
module Region = Scamv_models.Region
module Refinement = Scamv_models.Refinement
module Speculation = Scamv_models.Speculation

let x = Reg.x
let platform = Platform.cortex_a53
let reg r = Ast.Reg r
let addr base offset = { Ast.base; offset; scale = 0 }

let obs_of_kind kind bir =
  Exec.execute bir
  |> List.concat_map (fun (l : Exec.leaf) -> l.Exec.obs)
  |> List.filter (fun (o : Obs.t) -> o.Obs.kind = kind)

(* ---- Region ---- *)

let test_region_bounds () =
  let r = Region.paper_unaligned platform in
  Alcotest.(check Alcotest.int) "first" 61 r.Region.first_set;
  Alcotest.(check Alcotest.int) "last" 127 r.Region.last_set;
  let pa = Region.paper_page_aligned platform in
  Alcotest.(check Alcotest.int) "page-aligned first" 64 pa.Region.first_set;
  Alcotest.check_raises "empty range"
    (Invalid_argument "Region.make: empty or negative range") (fun () ->
      ignore (Region.make ~first_set:5 ~last_set:4))

let test_region_concrete_membership () =
  let r = Region.make ~first_set:64 ~last_set:127 in
  Alcotest.(check bool) "set 0 outside" false (Region.contains platform r 0L);
  (* Set 64 begins at byte 64*64 = 4096 within an 8 KiB stripe. *)
  Alcotest.(check bool) "set 64 inside" true (Region.contains platform r 4096L);
  Alcotest.(check bool) "set 127 inside" true (Region.contains platform r 8128L);
  Alcotest.(check bool) "wraps to set 0" false (Region.contains platform r 8192L)

let prop_region_term_matches_concrete =
  QCheck.Test.make ~name:"symbolic AR(addr) agrees with concrete membership" ~count:500
    QCheck.int64 (fun a ->
      let r = Region.paper_unaligned platform in
      let model = Model.add_var Model.empty "a" (Model.Bv (a, 64)) in
      let sym = Eval.eval_bool model (Region.contains_term platform r (T.bv_var "a" 64)) in
      Bool.equal sym (Region.contains platform r a))

let prop_set_index_term_matches_concrete =
  QCheck.Test.make ~name:"symbolic set index agrees with Platform.set_index" ~count:500
    QCheck.int64 (fun a ->
      let model = Model.add_var Model.empty "a" (Model.Bv (a, 64)) in
      let sym = Eval.eval_bv model (Region.set_index_term platform (T.bv_var "a" 64)) in
      Int64.to_int sym = Platform.set_index platform a)

(* ---- Catalog models produce the right observations ---- *)

let straightline_load = [| Ast.Ldr (x 1, addr (x 0) (reg (x 2))) |]

let test_mpc_observes_pc_only () =
  let bir = Mdl.annotate Catalog.mpc straightline_load in
  Alcotest.(check Alcotest.int) "one pc obs" 1 (List.length (obs_of_kind "pc" bir));
  Alcotest.(check Alcotest.int) "no addr obs" 0 (List.length (obs_of_kind "load_addr" bir))

let test_mct_observes_pc_and_addr () =
  let bir = Mdl.annotate Catalog.mct straightline_load in
  Alcotest.(check Alcotest.int) "pc obs" 1 (List.length (obs_of_kind "pc" bir));
  Alcotest.(check Alcotest.int) "addr obs" 1 (List.length (obs_of_kind "load_addr" bir))

let test_mline_observes_set_index () =
  let bir = Mdl.annotate (Catalog.mline platform) straightline_load in
  match obs_of_kind "cache_line" bir with
  | [ o ] -> (
    match List.map T.sort_of o.Obs.values with
    | [ Scamv_smt.Sort.Bv 7 ] -> ()
    | _ -> Alcotest.fail "expected a 7-bit set index")
  | _ -> Alcotest.fail "expected one cache_line observation"

let test_mpart_conditional_observation () =
  let r = Region.paper_unaligned platform in
  let bir = Mdl.annotate (Catalog.mpart platform r) straightline_load in
  match obs_of_kind "ar_addr" bir with
  | [ o ] ->
    (* Inside the region the observation fires, outside it does not. *)
    let inside = Int64.add platform.Platform.mem_base (Int64.of_int (61 * 64)) in
    let outside = platform.Platform.mem_base in
    let check_at a expected =
      let model =
        Model.empty
        |> fun m ->
        Model.add_var m "x0" (Model.Bv (a, 64))
        |> fun m -> Model.add_var m "x2" (Model.Bv (0L, 64))
      in
      Alcotest.(check bool)
        (Printf.sprintf "cond at 0x%Lx" a)
        expected
        (Eval.eval_bool model o.Obs.cond)
    in
    check_at inside true;
    check_at outside false
  | _ -> Alcotest.fail "expected one conditional observation"

let test_mpart_refined_complement () =
  let r = Region.paper_unaligned platform in
  let bir = Mdl.annotate (Catalog.mpart_refined platform r) straightline_load in
  match obs_of_kind "non_ar_line" bir with
  | [ o ] ->
    let model =
      Model.empty
      |> fun m ->
      Model.add_var m "x0" (Model.Bv (platform.Platform.mem_base, 64))
      |> fun m -> Model.add_var m "x2" (Model.Bv (0L, 64))
    in
    Alcotest.(check bool) "fires outside AR" true (Eval.eval_bool model o.Obs.cond)
  | _ -> Alcotest.fail "expected one observation"

let test_mfull_observes_registers () =
  let bir = Mdl.annotate Catalog.mfull straightline_load in
  match obs_of_kind "regfile" bir with
  | [ o ] -> Alcotest.(check Alcotest.int) "31 registers" 31 (List.length o.Obs.values)
  | _ -> Alcotest.fail "expected one regfile observation"

let test_mempty_observes_nothing () =
  let bir = Mdl.annotate Catalog.mempty straightline_load in
  let all = Exec.execute bir |> List.concat_map (fun (l : Exec.leaf) -> l.Exec.obs) in
  let non_platform = List.filter (fun (o : Obs.t) -> o.Obs.tag <> Obs.Platform) all in
  Alcotest.(check Alcotest.int) "nothing observed" 0 (List.length non_platform)

let test_merge_hooks_concatenates () =
  let h1 = Catalog.mpc.Mdl.hooks ~tag:Obs.Base in
  let h2 = Catalog.mct.Mdl.hooks ~tag:Obs.Base in
  let merged = Mdl.merge_hooks [ h1; h2 ] in
  let obs = merged.Lifter.on_fetch ~pc:3 in
  Alcotest.(check Alcotest.int) "both models' fetch observations" 2 (List.length obs)

(* ---- Speculation configs ---- *)

let test_speculation_configs () =
  let mspec = Speculation.mspec () in
  Alcotest.(check bool) "mspec observes all" true
    (mspec.Speculation.load_tag 0 = Some Obs.Refined
    && mspec.Speculation.load_tag 5 = Some Obs.Refined);
  let mspec1 = Speculation.mspec1 () in
  Alcotest.(check bool) "mspec1 first is base" true
    (mspec1.Speculation.load_tag 0 = Some Obs.Base
    && mspec1.Speculation.load_tag 1 = Some Obs.Refined);
  Alcotest.(check bool) "straight-line instruments uncond" true
    (Speculation.mspec_straight_line ()).Speculation.instrument_uncond;
  Alcotest.(check bool) "mspec leaves uncond alone" false mspec.Speculation.instrument_uncond

let test_speculation_window_bounds_inlining () =
  (* With a window of 1, only the first wrong-path instruction is
     shadowed, so the second load yields no observation. *)
  let program =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Ldr (x 8, addr (x 7) (reg (x 9)));
    |]
  in
  let count window =
    let cfg =
      { (Speculation.mspec ()) with Speculation.max_instrs = window }
    in
    let bir = Speculation.instrument cfg program (Lifter.lift program) in
    List.length (obs_of_kind Speculation.spec_load_kind bir)
  in
  Alcotest.(check Alcotest.int) "window 1: one load" 1 (count 1);
  Alcotest.(check Alcotest.int) "window 8: both loads" 2 (count 8);
  Alcotest.(check Alcotest.int) "window 0: nothing" 0 (count 0)

let test_speculation_shadow_names () =
  (* Shadow statements must only assign shadow variables. *)
  let program =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Add (x 7, x 6, Ast.Imm 1L);
    |]
  in
  let bir = Speculation.instrument (Speculation.mspec ()) program (Lifter.lift program) in
  let stub_blocks =
    Scamv_bir.Program.blocks bir
    |> List.filter (fun (b : Scamv_bir.Program.block) -> b.Scamv_bir.Program.id > 4)
  in
  Alcotest.(check bool) "stub blocks exist" true (stub_blocks <> []);
  List.iter
    (fun (b : Scamv_bir.Program.block) ->
      List.iter
        (function
          | Scamv_bir.Program.Assign (v, _) ->
            Alcotest.(check bool) ("shadow assign " ^ v) true (Scamv_bir.Vars.is_shadow v)
          | Scamv_bir.Program.Observe _ -> ())
        b.Scamv_bir.Program.stmts)
    stub_blocks

(* ---- Refinement setups ---- *)

let test_refinement_names () =
  Alcotest.(check bool) "unguided has no refinement" false
    (Refinement.has_refinement Refinement.mct_unguided);
  Alcotest.(check bool) "mct-vs-mspec refined" true
    (Refinement.has_refinement (Refinement.mct_vs_mspec ()));
  let r = Region.paper_unaligned platform in
  let setup = Refinement.mpart_vs_mpart' platform r in
  Alcotest.(check string) "base name" "Mpart" setup.Refinement.base_name;
  Alcotest.(check (list string)) "line coverage on by default" [ "Mline" ]
    setup.Refinement.coverage_names

let test_refine_with_model_rejects_speculative () =
  Alcotest.(check bool) "speculative refined model rejected" true
    (try
       ignore
         (Refinement.refine_with_model ~base:Catalog.mct ~refined:(Catalog.mspec ()) ());
       false
     with Invalid_argument _ -> true)

let test_platform_constraints_always_present () =
  (* Every setup automatically observes accessed addresses for the
     platform range constraints. *)
  let bir = Refinement.annotate Refinement.mct_unguided straightline_load in
  Alcotest.(check Alcotest.int) "platform obs" 1
    (List.length (obs_of_kind "platform_addr" bir))

let () =
  Alcotest.run "scamv_models"
    [
      ( "region",
        [
          Alcotest.test_case "bounds" `Quick test_region_bounds;
          Alcotest.test_case "concrete membership" `Quick test_region_concrete_membership;
          QCheck_alcotest.to_alcotest prop_region_term_matches_concrete;
          QCheck_alcotest.to_alcotest prop_set_index_term_matches_concrete;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "mpc" `Quick test_mpc_observes_pc_only;
          Alcotest.test_case "mct" `Quick test_mct_observes_pc_and_addr;
          Alcotest.test_case "mline" `Quick test_mline_observes_set_index;
          Alcotest.test_case "mpart conditional" `Quick test_mpart_conditional_observation;
          Alcotest.test_case "mpart' complement" `Quick test_mpart_refined_complement;
          Alcotest.test_case "mfull" `Quick test_mfull_observes_registers;
          Alcotest.test_case "mempty" `Quick test_mempty_observes_nothing;
          Alcotest.test_case "merge_hooks" `Quick test_merge_hooks_concatenates;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "configs" `Quick test_speculation_configs;
          Alcotest.test_case "window bounds inlining" `Quick
            test_speculation_window_bounds_inlining;
          Alcotest.test_case "shadow names" `Quick test_speculation_shadow_names;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "names" `Quick test_refinement_names;
          Alcotest.test_case "rejects speculative model" `Quick
            test_refine_with_model_rejects_speculative;
          Alcotest.test_case "platform constraints" `Quick
            test_platform_constraints_always_present;
        ] );
    ]
