module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Semantics = Scamv_isa.Semantics
module Platform = Scamv_isa.Platform

let x = Reg.x
let imm v = Ast.Imm v
let reg r = Ast.Reg r
let addr ?(scale = 0) base offset = { Ast.base; offset; scale }

let run_program ?machine program =
  let m = match machine with Some m -> m | None -> Machine.create () in
  let trace = Semantics.run (Array.of_list program) m in
  (m, trace)

(* ---- Reg ---- *)

let test_reg_bounds () =
  Alcotest.(check string) "name" "x7" (Reg.name (x 7));
  Alcotest.(check Alcotest.int) "count" 31 Reg.count;
  Alcotest.check_raises "x31 rejected"
    (Invalid_argument "Reg.x: register index out of range") (fun () -> ignore (x 31))

(* ---- ALU semantics ---- *)

let test_mov_add_sub () =
  let m, _ =
    run_program
      [
        Ast.Mov (x 0, imm 10L);
        Ast.Add (x 1, x 0, imm 5L);
        Ast.Sub (x 2, x 1, reg (x 0));
      ]
  in
  Alcotest.(check int64) "x1" 15L (Machine.get_reg m (x 1));
  Alcotest.(check int64) "x2" 5L (Machine.get_reg m (x 2))

let test_logic_ops () =
  let m, _ =
    run_program
      [
        Ast.Mov (x 0, imm 0xF0L);
        Ast.Mov (x 1, imm 0xFFL);
        Ast.And_ (x 2, x 0, reg (x 1));
        Ast.Orr (x 3, x 0, imm 0x0FL);
        Ast.Eor (x 4, x 0, reg (x 1));
      ]
  in
  Alcotest.(check int64) "and" 0xF0L (Machine.get_reg m (x 2));
  Alcotest.(check int64) "orr" 0xFFL (Machine.get_reg m (x 3));
  Alcotest.(check int64) "eor" 0x0FL (Machine.get_reg m (x 4))

let test_shifts () =
  let m, _ =
    run_program
      [
        Ast.Mov (x 0, imm 0x80L);
        Ast.Lsl (x 1, x 0, imm 4L);
        Ast.Lsr (x 2, x 0, imm 3L);
        Ast.Mov (x 3, imm (-8L));
        Ast.Asr (x 4, x 3, imm 1L);
        Ast.Lsl (x 5, x 0, imm 100L);
      ]
  in
  Alcotest.(check int64) "lsl" 0x800L (Machine.get_reg m (x 1));
  Alcotest.(check int64) "lsr" 0x10L (Machine.get_reg m (x 2));
  Alcotest.(check int64) "asr negative" (-4L) (Machine.get_reg m (x 4));
  Alcotest.(check int64) "oversized shift" 0L (Machine.get_reg m (x 5))

(* ---- memory ---- *)

let test_load_store () =
  let m, trace =
    run_program
      [
        Ast.Mov (x 0, imm 0x1000L);
        Ast.Mov (x 1, imm 42L);
        Ast.Str (x 1, addr (x 0) (imm 8L));
        Ast.Ldr (x 2, addr (x 0) (imm 8L));
      ]
  in
  Alcotest.(check int64) "loaded" 42L (Machine.get_reg m (x 2));
  let loads = List.filter (function Semantics.Load _ -> true | _ -> false) trace in
  let stores = List.filter (function Semantics.Store _ -> true | _ -> false) trace in
  Alcotest.(check Alcotest.int) "one load" 1 (List.length loads);
  Alcotest.(check Alcotest.int) "one store" 1 (List.length stores)

let test_scaled_addressing () =
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x1000L;
  Machine.set_reg m (x 1) 4L;
  Machine.store m 0x1020L 7L;
  let _, _ = run_program ~machine:m [ Ast.Ldr (x 2, addr ~scale:3 (x 0) (reg (x 1))) ] in
  Alcotest.(check int64) "x2 = mem[x0 + (x1 << 3)]" 7L (Machine.get_reg m (x 2))

let test_uninitialized_memory_zero () =
  let m, _ = run_program [ Ast.Mov (x 0, imm 0x5000L); Ast.Ldr (x 1, addr (x 0) (imm 0L)) ] in
  Alcotest.(check int64) "unwritten reads zero" 0L (Machine.get_reg m (x 1))

(* ---- flags and branches ---- *)

let test_cmp_flags_equal () =
  let m, _ = run_program [ Ast.Mov (x 0, imm 5L); Ast.Cmp (x 0, imm 5L) ] in
  let f = Machine.get_flags m in
  Alcotest.(check bool) "z" true f.Machine.z;
  Alcotest.(check bool) "c (no borrow)" true f.Machine.c;
  Alcotest.(check bool) "n" false f.Machine.n

let test_cmp_flags_unsigned_borrow () =
  let m, _ = run_program [ Ast.Mov (x 0, imm 3L); Ast.Cmp (x 0, imm 5L) ] in
  let f = Machine.get_flags m in
  Alcotest.(check bool) "c clear on borrow" false f.Machine.c;
  Alcotest.(check bool) "n set" true f.Machine.n

let test_cmp_signed_overflow () =
  (* min_int - 1 overflows: N and V differ semantics *)
  let m = Machine.create () in
  Machine.set_reg m (x 0) Int64.min_int;
  let _, _ = run_program ~machine:m [ Ast.Cmp (x 0, imm 1L) ] in
  let f = Machine.get_flags m in
  Alcotest.(check bool) "v set" true f.Machine.v;
  (* lt means N <> V; min_int < 1 signed *)
  Alcotest.(check bool) "lt holds" true (Semantics.eval_cond f Ast.Lt)

let all_conds = [ Ast.Eq; Ast.Ne; Ast.Hs; Ast.Lo; Ast.Hi; Ast.Ls; Ast.Ge; Ast.Lt; Ast.Gt; Ast.Le ]

let prop_cond_semantics =
  QCheck.Test.make ~name:"condition codes match integer comparisons" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let f = Semantics.flags_of_cmp a b in
      List.for_all
        (fun c ->
          let expected =
            match c with
            | Ast.Eq -> Int64.equal a b
            | Ast.Ne -> not (Int64.equal a b)
            | Ast.Hs -> Int64.unsigned_compare a b >= 0
            | Ast.Lo -> Int64.unsigned_compare a b < 0
            | Ast.Hi -> Int64.unsigned_compare a b > 0
            | Ast.Ls -> Int64.unsigned_compare a b <= 0
            | Ast.Ge -> Int64.compare a b >= 0
            | Ast.Lt -> Int64.compare a b < 0
            | Ast.Gt -> Int64.compare a b > 0
            | Ast.Le -> Int64.compare a b <= 0
          in
          Bool.equal (Semantics.eval_cond f c) expected)
        all_conds)

let test_branch_taken () =
  let m, trace =
    run_program
      [
        Ast.Mov (x 0, imm 1L);
        Ast.Cmp (x 0, imm 1L);
        Ast.B_cond (Ast.Eq, 4);
        Ast.Mov (x 1, imm 99L) (* skipped *);
        Ast.Mov (x 2, imm 7L);
      ]
  in
  Alcotest.(check int64) "skipped" 0L (Machine.get_reg m (x 1));
  Alcotest.(check int64) "executed" 7L (Machine.get_reg m (x 2));
  let taken =
    List.exists
      (function Semantics.Branch { taken = true; _ } -> true | _ -> false)
      trace
  in
  Alcotest.(check bool) "branch taken event" true taken

let test_branch_not_taken () =
  let m, _ =
    run_program
      [
        Ast.Mov (x 0, imm 1L);
        Ast.Cmp (x 0, imm 2L);
        Ast.B_cond (Ast.Eq, 4);
        Ast.Mov (x 1, imm 99L);
      ]
  in
  Alcotest.(check int64) "fallthrough executed" 99L (Machine.get_reg m (x 1))

let test_unconditional_branch () =
  let m, _ =
    run_program [ Ast.B 2; Ast.Mov (x 0, imm 1L) (* dead *); Ast.Mov (x 1, imm 2L) ]
  in
  Alcotest.(check int64) "dead code skipped" 0L (Machine.get_reg m (x 0));
  Alcotest.(check int64) "target executed" 2L (Machine.get_reg m (x 1))

let test_fuel_exhaustion () =
  Alcotest.check_raises "infinite loop detected"
    (Failure "Semantics.run: fuel exhausted (cyclic program?)") (fun () ->
      ignore (Semantics.run ~fuel:100 [| Ast.B 0 |] (Machine.create ())))

let test_negate_cond_involutive () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "double negation" true
        (Ast.negate_cond (Ast.negate_cond c) = c))
    all_conds

let prop_negate_cond_complements =
  QCheck.Test.make ~name:"negated condition is the complement" ~count:200
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let f = Semantics.flags_of_cmp a b in
      List.for_all
        (fun c ->
          Semantics.eval_cond f c <> Semantics.eval_cond f (Ast.negate_cond c))
        all_conds)

(* ---- validate / successors / pp ---- *)

let test_validate () =
  Alcotest.(check bool) "valid" true
    (Ast.validate [| Ast.B 1; Ast.Nop |] = Ok ());
  Alcotest.(check bool) "target = len ok" true (Ast.validate [| Ast.B 1 |] = Ok ());
  Alcotest.(check bool) "out of range" true
    (match Ast.validate [| Ast.B 5 |] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "bad scale" true
    (match Ast.validate [| Ast.Ldr (x 0, addr ~scale:7 (x 1) (imm 0L)) |] with
    | Error _ -> true
    | Ok () -> false)

let test_successors () =
  let p = [| Ast.Cmp (x 0, imm 0L); Ast.B_cond (Ast.Eq, 3); Ast.Nop; Ast.B 0 |] in
  Alcotest.(check (list Alcotest.int)) "linear" [ 1 ] (Ast.successors p 0);
  Alcotest.(check (list Alcotest.int)) "cond" [ 2; 3 ] (Ast.successors p 1);
  Alcotest.(check (list Alcotest.int)) "uncond" [ 0 ] (Ast.successors p 3)

let test_pretty_print () =
  let p = [| Ast.Ldr (x 2, addr (x 0) (reg (x 1))); Ast.B_cond (Ast.Lo, 2) |] in
  let s = Ast.to_string p in
  Alcotest.(check bool) "mentions ldr" true (String.length s > 0);
  Alcotest.(check bool) "mentions label" true
    (let rec has i =
       i + 2 <= String.length s && (String.sub s i 2 = "L2" || has (i + 1))
     in
     has 0)

(* ---- machine ---- *)

let test_machine_copy_isolated () =
  let m = Machine.create () in
  Machine.set_reg m (x 0) 5L;
  Machine.store m 0x10L 1L;
  let m' = Machine.copy m in
  Machine.set_reg m' (x 0) 6L;
  Machine.store m' 0x10L 2L;
  Alcotest.(check int64) "original reg" 5L (Machine.get_reg m (x 0));
  Alcotest.(check int64) "original mem" 1L (Machine.load m 0x10L)

let test_machine_equal_arch () =
  let a = Machine.create () and b = Machine.create () in
  Alcotest.(check bool) "fresh equal" true (Machine.equal_arch a b);
  Machine.set_reg a (x 3) 1L;
  Alcotest.(check bool) "reg diff" false (Machine.equal_arch a b);
  Machine.set_reg b (x 3) 1L;
  Machine.store a 0x20L 0L;
  (* storing the default value is architecturally invisible *)
  Alcotest.(check bool) "zero store invisible" true (Machine.equal_arch a b)

(* ---- platform ---- *)

let test_platform_set_index () =
  let p = Platform.cortex_a53 in
  Alcotest.(check Alcotest.int) "addr 0" 0 (Platform.set_index p 0L);
  Alcotest.(check Alcotest.int) "one line up" 1 (Platform.set_index p 64L);
  Alcotest.(check Alcotest.int) "wraps at 128 sets" 0 (Platform.set_index p 8192L);
  Alcotest.(check Alcotest.int) "set bits" 7 (Platform.set_index_bits p)

let test_platform_pages () =
  let p = Platform.cortex_a53 in
  Alcotest.(check int64) "page 0" 0L (Platform.page_index p 100L);
  Alcotest.(check int64) "page 1" 1L (Platform.page_index p 4096L);
  Alcotest.(check int64) "line base" 0x1000L (Platform.line_base p 0x103FL)

let test_platform_range () =
  let p = Platform.cortex_a53 in
  Alcotest.(check bool) "base in range" true (Platform.in_memory_range p p.Platform.mem_base);
  Alcotest.(check bool) "below" false
    (Platform.in_memory_range p (Int64.sub p.Platform.mem_base 1L));
  Alcotest.(check bool) "end excluded" false
    (Platform.in_memory_range p (Int64.add p.Platform.mem_base p.Platform.mem_size))

let () =
  Alcotest.run "scamv_isa"
    [
      ("reg", [ Alcotest.test_case "bounds" `Quick test_reg_bounds ]);
      ( "alu",
        [
          Alcotest.test_case "mov/add/sub" `Quick test_mov_add_sub;
          Alcotest.test_case "logic" `Quick test_logic_ops;
          Alcotest.test_case "shifts" `Quick test_shifts;
        ] );
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_load_store;
          Alcotest.test_case "scaled addressing" `Quick test_scaled_addressing;
          Alcotest.test_case "uninitialized zero" `Quick test_uninitialized_memory_zero;
        ] );
      ( "flags+branches",
        [
          Alcotest.test_case "cmp equal" `Quick test_cmp_flags_equal;
          Alcotest.test_case "cmp borrow" `Quick test_cmp_flags_unsigned_borrow;
          Alcotest.test_case "cmp signed overflow" `Quick test_cmp_signed_overflow;
          QCheck_alcotest.to_alcotest prop_cond_semantics;
          Alcotest.test_case "branch taken" `Quick test_branch_taken;
          Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
          Alcotest.test_case "unconditional" `Quick test_unconditional_branch;
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "negate_cond involutive" `Quick test_negate_cond_involutive;
          QCheck_alcotest.to_alcotest prop_negate_cond_complements;
        ] );
      ( "program",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "pretty print" `Quick test_pretty_print;
        ] );
      ( "machine",
        [
          Alcotest.test_case "copy isolation" `Quick test_machine_copy_isolated;
          Alcotest.test_case "equal_arch" `Quick test_machine_equal_arch;
        ] );
      ( "platform",
        [
          Alcotest.test_case "set index" `Quick test_platform_set_index;
          Alcotest.test_case "pages" `Quick test_platform_pages;
          Alcotest.test_case "memory range" `Quick test_platform_range;
        ] );
    ]
