module Bits = Scamv_util.Bits
module Splitmix = Scamv_util.Splitmix
module Summary = Scamv_util.Summary
module Text_table = Scamv_util.Text_table

let check = Alcotest.check
let int64 = Alcotest.int64

(* ---- Bits ---- *)

let test_mask () =
  check int64 "mask 0" 0L (Bits.mask 0);
  check int64 "mask 1" 1L (Bits.mask 1);
  check int64 "mask 8" 0xFFL (Bits.mask 8);
  check int64 "mask 63" Int64.max_int (Bits.mask 63);
  check int64 "mask 64" (-1L) (Bits.mask 64)

let test_truncate () =
  check int64 "truncate 8" 0x34L (Bits.truncate 8 0x1234L);
  check int64 "truncate 64 id" (-1L) (Bits.truncate 64 (-1L));
  check int64 "truncate 1" 1L (Bits.truncate 1 0xFFL)

let test_bit_ops () =
  Alcotest.(check bool) "bit 0 of 1" true (Bits.bit 1L 0);
  Alcotest.(check bool) "bit 1 of 1" false (Bits.bit 1L 1);
  Alcotest.(check bool) "bit 63 of -1" true (Bits.bit (-1L) 63);
  check int64 "set bit" 5L (Bits.set_bit 1L 2 true);
  check int64 "clear bit" 1L (Bits.set_bit 5L 2 false)

let test_sign_extend () =
  check int64 "sext 8 of 0x80" (-128L) (Bits.sign_extend 8 0x80L);
  check int64 "sext 8 of 0x7F" 0x7FL (Bits.sign_extend 8 0x7FL);
  check int64 "sext 64 id" (-1L) (Bits.sign_extend 64 (-1L));
  check int64 "sext 1 of 1" (-1L) (Bits.sign_extend 1 1L)

let test_extract () =
  check int64 "extract nibble" 0x3L (Bits.extract ~hi:7 ~lo:4 0x34L);
  check int64 "extract lsb" 0x34L (Bits.extract ~hi:7 ~lo:0 0x1234L);
  check int64 "extract msb" 1L (Bits.extract ~hi:63 ~lo:63 (-1L))

let test_unsigned_compare () =
  Alcotest.(check bool) "ult simple" true (Bits.ult 1L 2L);
  Alcotest.(check bool) "ult wraparound" true (Bits.ult 1L (-1L));
  Alcotest.(check bool) "ult not refl" false (Bits.ult 5L 5L);
  Alcotest.(check bool) "ule refl" true (Bits.ule 5L 5L);
  Alcotest.(check bool) "slt negative" true (Bits.slt ~width:64 (-1L) 0L);
  Alcotest.(check bool) "slt width 8" true (Bits.slt ~width:8 0x80L 0x7FL)

let test_popcount () =
  Alcotest.(check Alcotest.int) "popcount 0" 0 (Bits.popcount 0L);
  Alcotest.(check Alcotest.int) "popcount -1" 64 (Bits.popcount (-1L));
  Alcotest.(check Alcotest.int) "popcount 0b1011" 3 (Bits.popcount 0b1011L)

(* ---- Splitmix ---- *)

let test_rng_deterministic () =
  let g1 = Splitmix.of_seed 42L and g2 = Splitmix.of_seed 42L in
  let v1, _ = Splitmix.next g1 and v2, _ = Splitmix.next g2 in
  check int64 "same seed, same value" v1 v2

let test_rng_seed_sensitivity () =
  let v1, _ = Splitmix.next (Splitmix.of_seed 1L) in
  let v2, _ = Splitmix.next (Splitmix.of_seed 2L) in
  Alcotest.(check bool) "different seeds differ" true (not (Int64.equal v1 v2))

let test_rng_int_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int !g 17 in
    g := g';
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int_in !g (-5) 5 in
    g := g';
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independence () =
  let a, b = Splitmix.split (Splitmix.of_seed 9L) in
  let va, _ = Splitmix.next a and vb, _ = Splitmix.next b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal va vb))

let test_rng_choose () =
  let v, _ = Splitmix.choose (Splitmix.of_seed 3L) [ "only" ] in
  Alcotest.(check string) "singleton choose" "only" v;
  Alcotest.check_raises "empty choose" (Invalid_argument "Splitmix.choose: empty list")
    (fun () -> ignore (Splitmix.choose (Splitmix.of_seed 3L) []))

let test_rng_shuffle_permutation () =
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys, _ = Splitmix.shuffle (Splitmix.of_seed 11L) xs in
  Alcotest.(check (list Alcotest.int)) "same multiset" xs (List.sort compare ys)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float stays in [0,1)" ~count:500 QCheck.int64 (fun seed ->
      let v, _ = Splitmix.float (Splitmix.of_seed seed) in
      v >= 0.0 && v < 1.0)

(* ---- Summary ---- *)

let test_summary_empty () =
  Alcotest.(check Alcotest.int) "count" 0 (Summary.count Summary.empty);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Summary.mean Summary.empty)

let test_summary_accumulate () =
  let s = List.fold_left Summary.add Summary.empty [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check Alcotest.int) "count" 3 (Summary.count s);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Summary.total s);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Summary.max_value s)

(* ---- Text_table ---- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let s =
    Text_table.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "1"; "2" ] ]
  in
  Alcotest.(check bool) "contains header" true (contains_substring s "bb");
  Alcotest.(check bool) "contains cell" true (contains_substring s "xxx")

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Text_table.render: ragged row")
    (fun () -> ignore (Text_table.render ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ]))

let () =
  Alcotest.run "scamv_util"
    [
      ( "bits",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "bit get/set" `Quick test_bit_ops;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "popcount" `Quick test_popcount;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_float_range;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "accumulate" `Quick test_summary_accumulate;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
        ] );
    ]
