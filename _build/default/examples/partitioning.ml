(* Fig. 3: how observational models partition the input state space.

   The running example's inputs are restricted to a small concrete domain
   and grouped by the observation trace each model predicts, reproducing
   the three panels of Fig. 3:

   (a) the model under validation M1 (= Mct) induces many fine classes;
   (b) the supporting model Mpc induces two coarse classes (the paths);
   (c) the refined model M2 (= Mspec) splits each M1 class further — test
       cases are drawn from the same M1 class but different M2 classes.

   Run with:  dune exec examples/partitioning.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Model = Scamv_smt.Model
module Obs = Scamv_bir.Obs
module Exec = Scamv_symbolic.Exec
module Vars = Scamv_bir.Vars
module Refinement = Scamv_models.Refinement
module Catalog = Scamv_models.Catalog

let x = Reg.x

let running_example =
  [|
    Ast.Ldr (x 2, { Ast.base = x 0; offset = Ast.Imm 0L; scale = 0 });
    Ast.Add (x 1, x 1, Ast.Imm 1L);
    Ast.Cmp (x 0, Ast.Reg (x 1));
    Ast.B_cond (Ast.Hs, 5);
    Ast.Ldr (x 3, { Ast.base = x 2; offset = Ast.Imm 0L; scale = 0 });
  |]

(* Concrete input domain: x0, x1 in [0, 7], mem[x0] in {0, 64}. *)
let domain =
  List.concat_map
    (fun x0 ->
      List.concat_map
        (fun x1 ->
          List.map
            (fun cell -> (Int64.of_int x0, Int64.of_int x1, Int64.of_int cell))
            [ 0; 64 ])
        (List.init 8 Fun.id))
    (List.init 8 Fun.id)

let model_of_input (x0, x1, cell) =
  Model.empty
  |> fun m ->
  Model.add_var m (Vars.reg (x 0)) (Model.Bv (x0, 64))
  |> fun m ->
  Model.add_var m (Vars.reg (x 1)) (Model.Bv (x1, 64))
  |> fun m -> Model.add_mem_cell m Vars.mem_name ~addr:x0 ~value:cell

(* Group the domain by the (filtered) observation trace a model predicts. *)
let classes_of bir ~keep =
  let leaves = Exec.execute bir in
  let table = Hashtbl.create 64 in
  List.iter
    (fun input ->
      let model = model_of_input input in
      let leaf =
        List.find
          (fun (l : Exec.leaf) -> Scamv_smt.Eval.eval_bool model l.Exec.path_cond)
          leaves
      in
      let trace =
        Exec.concrete_obs model leaf |> List.filter (fun (tag, _, _) -> keep tag)
      in
      let members = try Hashtbl.find table trace with Not_found -> [] in
      Hashtbl.replace table trace (input :: members))
    domain;
  table

let report name table =
  let classes = Hashtbl.fold (fun _ members acc -> List.length members :: acc) table [] in
  let sorted = List.sort compare classes in
  Format.printf "%-38s %4d classes, sizes: min %d / max %d@." name
    (Hashtbl.length table)
    (List.hd sorted)
    (List.hd (List.rev sorted))

let () =
  Format.printf "Input domain: %d states (x0, x1 in [0,7], mem[x0] in {0,64})@.@."
    (List.length domain);

  (* (b) Supporting model Mpc: path coverage, two classes. *)
  let bir_pc = Scamv_models.Model.annotate Catalog.mpc running_example in
  report "(b) Mpc (supporting, path coverage)" (classes_of bir_pc ~keep:(fun t -> t = Obs.Base));

  (* (a) Model under validation Mct. *)
  let bir_ct = Scamv_models.Model.annotate Catalog.mct running_example in
  report "(a) Mct (model under validation)" (classes_of bir_ct ~keep:(fun t -> t = Obs.Base));

  (* (c) Refined model Mspec = Mct + transient loads. *)
  let setup = Refinement.mct_vs_mspec () in
  let bir_spec = Refinement.annotate setup running_example in
  report "(c) Mspec (refined: Mct + transient)"
    (classes_of bir_spec ~keep:(fun t -> t = Obs.Base || t = Obs.Refined));

  Format.printf
    "@.Refinement-guided search draws the two states of a test case from@.\
     the same (a)-class but different (c)-classes; the extra (c)-splits@.\
     are exactly the transiently accessed addresses.@.";

  (* Show one concrete refined split: two inputs, same Mct class,
     different Mspec class. *)
  let bir = bir_spec in
  let leaves = Exec.execute bir in
  let trace keep input =
    let model = model_of_input input in
    let leaf =
      List.find (fun (l : Exec.leaf) -> Scamv_smt.Eval.eval_bool model l.Exec.path_cond) leaves
    in
    Exec.concrete_obs model leaf |> List.filter (fun (t, _, _) -> keep t)
  in
  let i1 = (4L, 1L, 0L) and i2 = (4L, 1L, 64L) in
  let base t = trace (fun tag -> tag = Obs.Base) t in
  let refined t = trace (fun tag -> tag = Obs.Refined) t in
  let show (x0, x1, c) = Printf.sprintf "(x0=%Ld, x1=%Ld, mem[x0]=%Ld)" x0 x1 c in
  Format.printf "@.example pair: %s vs %s@." (show i1) (show i2);
  Format.printf "  same Mct observations:    %b@." (base i1 = base i2);
  Format.printf "  same Mspec observations:  %b@." (refined i1 = refined i2)
