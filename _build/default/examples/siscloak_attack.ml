(* SiSCloak end-to-end (Sec. 6.4, Fig. 6): a real Flush+Reload attack on
   the simulated Cortex-A53 that recovers a secret through a *single*
   speculative load — the vulnerability Scam-V exposed.

   Two victims are attacked:
   - variant 1 (Fig. 6, middle column): Spectre-PHT with the first load
     anticipated before the bounds check;
   - variant 2 (Fig. 6, right column): the classification bit of an array
     element is checked in a branch whose misprediction leaks the element.

   Run with:  dune exec examples/siscloak_attack.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Core = Scamv_microarch.Core
module Flush_reload = Scamv_microarch.Flush_reload
module Platform = Scamv_isa.Platform

let x = Reg.x
let a_base = 0x8000_0000L (* array A *)
let b_base = 0x8010_0000L (* probe array B *)
let line = 64L

(* Fig. 6 (middle): ldr x2,[#A+x0]; cmp x0,x1; b.hs end; ldr x4,[#B+x2].
   x10 = #A, x11 = #B. *)
let victim_variant1 =
  [|
    Ast.Ldr (x 2, { Ast.base = x 10; offset = Ast.Reg (x 0); scale = 0 });
    Ast.Cmp (x 0, Ast.Reg (x 1));
    Ast.B_cond (Ast.Hs, 4);
    Ast.Ldr (x 4, { Ast.base = x 11; offset = Ast.Reg (x 2); scale = 0 });
  |]

(* Fig. 6 (right): the element's top bit classifies it as public/secret;
   the load is guarded by that bit.  tst is modelled with and+cmp. *)
let victim_variant2 =
  [|
    Ast.Ldr (x 2, { Ast.base = x 10; offset = Ast.Reg (x 0); scale = 0 });
    Ast.And_ (x 3, x 2, Ast.Imm 0x8000_0000L);
    Ast.Cmp (x 3, Ast.Imm 0L);
    Ast.B_cond (Ast.Ne, 5) (* secret element: skip the load *);
    Ast.Ldr (x 4, { Ast.base = x 11; offset = Ast.Reg (x 2); scale = 0 });
  |]

(* The attacker probes one B line per candidate value. *)
let recover_secret fr victim ~train_input ~attack_input ~setup_memory ~candidates =
  let core = Flush_reload.core fr in
  (* 1. Train the predictor with benign inputs. *)
  for _ = 1 to 5 do
    let m = Machine.create () in
    setup_memory m;
    Machine.set_reg m (x 0) train_input;
    ignore (Core.run core victim m)
  done;
  (* 2. Flush the probe lines. *)
  List.iter (fun c -> Flush_reload.flush fr (Int64.add b_base c)) candidates;
  (* 3. Victim runs once with the malicious input. *)
  let m = Machine.create () in
  setup_memory m;
  Machine.set_reg m (x 0) attack_input;
  ignore (Core.run core victim m);
  (* 4. Reload: the cached line reveals the secret. *)
  List.find_opt (fun c -> Flush_reload.was_cached fr (Int64.add b_base c)) candidates

let quiet = { Core.cortex_a53 with Core.mispredict_noise = 0.0 }

let attack_variant1 secret =
  let fr = Flush_reload.create quiet in
  let setup_memory m =
    Machine.set_reg m (x 10) a_base;
    Machine.set_reg m (x 11) b_base;
    Machine.set_reg m (x 1) 0x100L (* size of A *);
    (* In-bounds elements are small public values. *)
    Machine.store m (Int64.add a_base 0x10L) 0L;
    (* The secret sits beyond the bounds of A, scaled to line granularity. *)
    Machine.store m (Int64.add a_base 0x200L) (Int64.mul secret line)
  in
  let candidates = List.init 16 (fun i -> Int64.mul (Int64.of_int i) line) in
  recover_secret fr victim_variant1 ~train_input:0x10L ~attack_input:0x200L
    ~setup_memory ~candidates

let attack_variant2 secret =
  let fr = Flush_reload.create quiet in
  let setup_memory m =
    Machine.set_reg m (x 10) a_base;
    Machine.set_reg m (x 11) b_base;
    (* Public element at index 0x10 (top bit clear). *)
    Machine.store m (Int64.add a_base 0x10L) 0L;
    (* Confidential element: top bit set marks it secret; low bits are the
       secret payload. *)
    Machine.store m (Int64.add a_base 0x300L)
      (Int64.logor 0x8000_0000L (Int64.mul secret line))
  in
  let candidates =
    (* The transient probe address includes the classification bit. *)
    List.init 16 (fun i -> Int64.logor 0x8000_0000L (Int64.mul (Int64.of_int i) line))
  in
  recover_secret fr victim_variant2 ~train_input:0x10L ~attack_input:0x300L
    ~setup_memory ~candidates
  |> Option.map (fun c -> Int64.logand c (Int64.lognot 0x8000_0000L))

let run_attack name attack =
  Format.printf "@.=== %s ===@." name;
  let secrets = [ 3L; 7L; 11L; 14L ] in
  let ok = ref 0 in
  List.iter
    (fun secret ->
      match attack secret with
      | Some leaked when Int64.equal leaked (Int64.mul secret line) ->
        incr ok;
        Format.printf "secret %Ld: recovered (probe line 0x%Lx)@." secret leaked
      | Some leaked -> Format.printf "secret %Ld: WRONG recovery 0x%Lx@." secret leaked
      | None -> Format.printf "secret %Ld: nothing leaked@." secret)
    secrets;
  Format.printf "%d/%d secrets recovered@." !ok (List.length secrets)

let () =
  Format.printf
    "SiSCloak: a single speculative load on the Cortex-A53 leaks data@.";
  Format.printf "through the cache despite the absence of speculative forwarding.@.";
  run_attack "Variant 1: anticipated load before the bounds check" attack_variant1;
  run_attack "Variant 2: classification bit stored in the array" attack_variant2;
  (* Negative control: with speculation disabled (window 0), the attack
     recovers nothing — the leak is purely speculative. *)
  Format.printf "@.=== Negative control: speculation disabled ===@.";
  let no_spec = { quiet with Core.spec_window = 0 } in
  let fr = Flush_reload.create no_spec in
  let setup_memory m =
    Machine.set_reg m (x 10) a_base;
    Machine.set_reg m (x 11) b_base;
    Machine.set_reg m (x 1) 0x100L;
    Machine.store m (Int64.add a_base 0x10L) 0L;
    Machine.store m (Int64.add a_base 0x200L) (Int64.mul 7L line)
  in
  let candidates = List.init 16 (fun i -> Int64.mul (Int64.of_int i) line) in
  (match
     recover_secret fr victim_variant1 ~train_input:0x10L ~attack_input:0x200L
       ~setup_memory ~candidates
   with
  | None -> Format.printf "nothing leaked, as expected@."
  | Some c -> Format.printf "UNEXPECTED leak of 0x%Lx@." c)
