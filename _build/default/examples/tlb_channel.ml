(* Extending Scam-V to a new side channel (Sec. 2.3: "To analyze a new
   channel (e.g., caused by TLB state ...) it is necessary to implement a
   new module for augmenting input programs with the relevant
   observations and to extend the test case executor to measure the
   channel").

   This example does exactly that for the data micro-TLB:
   - the new observation module is Mpage (page index of every access);
   - the new executor measurement is the Tlb_state attacker view.

   The cross-validation matrix shows how soundness is channel-relative:

                      | TLB attacker | cache attacker
     Mpage (pages)    |    sound     |   UNSOUND
     Mct  (addresses) |    sound     |    sound

   and that the unsoundness of Mpage against the cache is found quickly
   with Mline refinement (same pages, different sets) but not unguided.

   Run with:  dune exec examples/tlb_channel.exe *)

module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Templates = Scamv_gen.Templates
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let platform = Platform.cortex_a53

let run name setup view =
  let cfg =
    Campaign.make ~name ~template:Templates.stride ~setup ~view ~programs:15
      ~tests_per_program:25 ~seed:5L ()
  in
  let s = (Campaign.run cfg).Campaign.stats in
  Format.printf "%-42s experiments=%4d counterexamples=%4d@." name s.Stats.experiments
    s.Stats.counterexamples;
  s.Stats.counterexamples

let () =
  Format.printf "Cross-validating page- and address-granular models against@.";
  Format.printf "the TLB and cache attacker views (stride workload):@.@.";
  let mpage_tlb = run "Mpage vs TLB attacker (refined by Mline)"
      (Refinement.mpage_vs_mline platform) Executor.Tlb_state in
  let mpage_cache = run "Mpage vs cache attacker (refined by Mline)"
      (Refinement.mpage_vs_mline platform) Executor.Full_cache in
  let mpage_cache_unguided =
    run "Mpage vs cache attacker (unguided)" (Refinement.mpage_unguided platform)
      Executor.Full_cache
  in
  let mct_tlb = run "Mct vs TLB attacker (unguided)" Refinement.mct_unguided
      Executor.Tlb_state in
  Format.printf "@.";
  if mpage_tlb = 0 then
    Format.printf "Mpage is (tested-)sound for the TLB channel: same pages => same TLB.@.";
  if mpage_cache > 0 then
    Format.printf
      "Mpage is UNSOUND for the cache channel: the refined search found %d@.\
       state pairs touching identical pages but different cache sets.@."
      mpage_cache;
  if mpage_cache_unguided = 0 then
    Format.printf
      "Unguided search found none of them - observation refinement is what@.\
       makes the cross-channel gap visible, as in the paper's experiments.@.";
  if mct_tlb = 0 then
    Format.printf "Mct remains sound for the TLB channel (addresses determine pages).@."
