(* Automatic model repair (the future work of Sec. 8): starting from the
   constant-time model Mct, observations are added until validation stops
   finding counterexamples, yielding the weakest tested-sound model for a
   workload.

   The search rediscovers the scope-of-speculation analysis of Sec. 6.5
   automatically:
   - Template C (causally dependent loads) is repaired by observing ONE
     transient load (= Mspec1): the A53 cannot forward a speculative load
     result into a dependent load.
   - Template B (independent loads) needs TWO: when the branch resolves
     late, the A53 issues a second independent transient load.

   Run with:  dune exec examples/model_repair.exe *)

module Repair = Scamv.Repair
module Stats = Scamv.Stats

let describe name template ~programs =
  Format.printf "@.=== Repairing Mct for %s ===@." name;
  let outcome = Repair.run ~programs ~tests_per_program:15 ~template () in
  List.iter
    (fun (s : Repair.step) ->
      let k = s.Repair.tried.Repair.observed_transient_loads in
      Format.printf "  candidate k=%d (%s): %d counterexamples in %d experiments -> %s@."
        k
        (if k = 0 then "Mct" else if k = 1 then "Mspec1" else Printf.sprintf "Mspec%d" k)
        s.Repair.stats.Stats.counterexamples s.Repair.stats.Stats.experiments
        (if s.Repair.vacuous then
           "validated vacuously (subsumes the trusted model on this workload)"
         else if s.Repair.sound_so_far then "validated"
         else "unsound, strengthening")
    )
    outcome.Repair.steps;
  match outcome.Repair.repaired with
  | Some c ->
    Format.printf "  repaired model observes the first %d transient load(s)@."
      c.Repair.observed_transient_loads
  | None -> Format.printf "  no candidate validated (widen the lattice?)@."

let () =
  Format.printf
    "Model repair: adding transient-load observations to Mct until@.\
     relational testing stops finding counterexamples.@.";
  describe "Template C (dependent transient loads)" Scamv_gen.Templates.template_c
    ~programs:8;
  describe "Template B (independent transient loads)" Scamv_gen.Templates.template_b
    ~programs:40;
  describe "Template A (single guarded load)" Scamv_gen.Templates.template_a ~programs:20;
  Format.printf
    "@.The repaired models are exactly the per-microarchitecture tailored@.\
     models the paper argues for in Sec. 6.5: coarser than full Mspec,@.\
     so fewer programs are falsely rejected, yet sound on this core.@."
