(* Sound models are per-microarchitecture (Sec. 6.5: "Speculation can
   cause different leakage on different microarchitectures ... it is
   therefore useful to test observational models that are tailored for a
   specific architecture").

   Two demonstrations on two simulated cores:

   1. The tailored model Mspec1 (one transient load observed) validates
      on the Cortex-A53 for the dependent-load programs of Template C —
      but the SAME model is invalidated within seconds on an out-of-order
      core with speculative forwarding, where the dependent second load
      issues (the classic Spectre-PHT microarchitecture).

   2. The classic Spectre-PHT gadget (both loads inside the mispredicted
      branch, Fig. 6 left) leaks nothing on the A53 — confirming ARM's
      claim, Sec. 6.5 — but leaks the secret on the forwarding core.

   Run with:  dune exec examples/microarch_matters.exe *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Core = Scamv_microarch.Core
module Executor = Scamv_microarch.Executor
module Flush_reload = Scamv_microarch.Flush_reload
module Refinement = Scamv_models.Refinement
module Templates = Scamv_gen.Templates
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let x = Reg.x

let validate_mspec1_on core_cfg name =
  let cfg =
    Campaign.make ~name ~template:Templates.template_c
      ~setup:(Refinement.mspec1_vs_mspec ()) ~view:Executor.Full_cache ~programs:8
      ~tests_per_program:25 ()
  in
  let cfg =
    {
      cfg with
      Campaign.executor = { cfg.Campaign.executor with Executor.core = core_cfg };
    }
  in
  let s = (Campaign.run cfg).Campaign.stats in
  Format.printf "  %-22s %4d experiments, %4d counterexamples -> Mspec1 %s@." name
    s.Stats.experiments s.Stats.counterexamples
    (if s.Stats.counterexamples = 0 then "validated" else "INVALIDATED");
  s.Stats.counterexamples

(* Fig. 6 (left): the classic Spectre-PHT gadget, both loads guarded. *)
let spectre_pht =
  [|
    Ast.Cmp (x 0, Ast.Reg (x 1));
    Ast.B_cond (Ast.Hs, 4);
    Ast.Ldr (x 2, { Ast.base = x 10; offset = Ast.Reg (x 0); scale = 0 });
    Ast.Ldr (x 4, { Ast.base = x 11; offset = Ast.Reg (x 2); scale = 0 });
  |]

let a_base = 0x8000_0000L
let b_base = 0x8010_0000L
let line = 64L

let spectre_attack core_cfg secret =
  let fr = Flush_reload.create { core_cfg with Core.mispredict_noise = 0.0 } in
  let core = Flush_reload.core fr in
  let setup m input =
    Machine.set_reg m (x 10) a_base;
    Machine.set_reg m (x 11) b_base;
    Machine.set_reg m (x 1) 0x100L (* bound *);
    Machine.set_reg m (x 0) input;
    Machine.store m (Int64.add a_base 0x10L) 0L;
    Machine.store m (Int64.add a_base 0x300L) (Int64.mul secret line)
  in
  for _ = 1 to 5 do
    let m = Machine.create () in
    setup m 0x10L;
    ignore (Core.run core spectre_pht m)
  done;
  let candidates = List.init 16 (fun i -> Int64.mul (Int64.of_int i) line) in
  List.iter (fun c -> Flush_reload.flush fr (Int64.add b_base c)) candidates;
  let m = Machine.create () in
  setup m 0x300L (* out of bounds *);
  ignore (Core.run core spectre_pht m);
  List.find_opt (fun c -> Flush_reload.was_cached fr (Int64.add b_base c)) candidates

let () =
  Format.printf "=== Validating Mspec1 (first-transient-load model) on template C ===@.";
  let a53 = validate_mspec1_on Core.cortex_a53 "Cortex-A53" in
  let ooo = validate_mspec1_on Core.out_of_order "out-of-order core" in
  if a53 = 0 && ooo > 0 then
    Format.printf
      "  => the tailored model is sound on the A53 but NOT transferable to@.\
      \    a core with speculative forwarding.@.";

  Format.printf "@.=== Classic Spectre-PHT gadget (Fig. 6, left) ===@.";
  let try_on name cfg =
    match spectre_attack cfg 11L with
    | Some probe when Int64.equal probe (Int64.mul 11L line) ->
      Format.printf "  %-22s secret RECOVERED via dependent transient load@." name
    | Some probe -> Format.printf "  %-22s spurious probe hit 0x%Lx@." name probe
    | None -> Format.printf "  %-22s nothing leaked@." name
  in
  try_on "Cortex-A53" Core.cortex_a53;
  try_on "out-of-order core" Core.out_of_order;
  Format.printf
    "@.The A53 is immune to the classic gadget (the dependent load cannot@.\
     issue), matching ARM's claim validated in Sec. 6.5 - yet it still@.\
     leaks through SiSCloak's single anticipated load (see@.\
     examples/siscloak_attack.exe).@."
