examples/siscloak_attack.ml: Format Int64 List Option Scamv_isa Scamv_microarch
