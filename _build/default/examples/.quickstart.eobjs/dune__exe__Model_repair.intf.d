examples/model_repair.mli:
