examples/riscv_frontend.ml: Format Printf Scamv Scamv_gen Scamv_isa Scamv_microarch Scamv_models Scamv_riscv
