examples/model_repair.ml: Format List Printf Scamv Scamv_gen
