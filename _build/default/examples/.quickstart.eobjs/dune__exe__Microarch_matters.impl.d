examples/microarch_matters.ml: Format Int64 List Scamv Scamv_gen Scamv_isa Scamv_microarch Scamv_models
