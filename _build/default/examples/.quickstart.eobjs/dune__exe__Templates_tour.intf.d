examples/templates_tour.mli:
