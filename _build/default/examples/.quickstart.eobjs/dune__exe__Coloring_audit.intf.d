examples/coloring_audit.mli:
