examples/partitioning.mli:
