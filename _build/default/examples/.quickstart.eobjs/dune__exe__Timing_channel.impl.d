examples/timing_channel.ml: Format Scamv Scamv_gen Scamv_isa Scamv_microarch Scamv_models
