examples/coloring_audit.ml: Format Int64 Scamv Scamv_gen Scamv_isa Scamv_microarch Scamv_models
