examples/partitioning.ml: Format Fun Hashtbl Int64 List Printf Scamv_bir Scamv_isa Scamv_models Scamv_smt Scamv_symbolic
