examples/siscloak_attack.mli:
