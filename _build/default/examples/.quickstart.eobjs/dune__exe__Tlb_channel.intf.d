examples/tlb_channel.mli:
