examples/quickstart.ml: Format Int64 List Scamv Scamv_bir Scamv_isa Scamv_microarch Scamv_models Scamv_symbolic
