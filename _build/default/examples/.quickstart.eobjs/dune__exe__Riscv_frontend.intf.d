examples/riscv_frontend.mli:
