examples/quickstart.mli:
