examples/templates_tour.ml: Format Int64 List Scamv_bir Scamv_gen Scamv_isa Scamv_models
