examples/microarch_matters.mli:
