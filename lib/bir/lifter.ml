module Term = Scamv_smt.Term

type hooks = {
  on_fetch : pc:int -> Obs.t list;
  on_load : pc:int -> addr:Term.t -> Obs.t list;
  on_store : pc:int -> addr:Term.t -> Obs.t list;
  on_branch : pc:int -> cond:Term.t -> Obs.t list;
}

let no_hooks =
  {
    on_fetch = (fun ~pc:_ -> []);
    on_load = (fun ~pc:_ ~addr:_ -> []);
    on_store = (fun ~pc:_ ~addr:_ -> []);
    on_branch = (fun ~pc:_ ~cond:_ -> []);
  }

(* Re-exported lowerings: the AArch64 pieces moved into [Arch] with the
   descriptor, but the speculation instrumentation and existing callers
   still reach them through this module. *)
let operand_term = Arch.operand_term
let address_term = Arch.address_term
let cond_term = Arch.cond_term
let instr_assigns = Arch.instr_assigns

let lift_validated ~hooks arch program =
  (match arch.Arch.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Lifter.lift: " ^ msg));
  let len = Array.length program in
  let lift_instr pc instr =
    let observes obs = List.map (fun o -> Program.Observe o) obs in
    let { Arch.assigns; access; control } = arch.Arch.lift_instr ~pc instr in
    let assigns = List.map (fun (x, e) -> Program.Assign (x, e)) assigns in
    let fetch_obs = observes (hooks.on_fetch ~pc) in
    let access_obs =
      match access with
      | Arch.No_access -> []
      | Arch.Load addr -> observes (hooks.on_load ~pc ~addr)
      | Arch.Store addr -> observes (hooks.on_store ~pc ~addr)
    in
    match control with
    | Arch.Fallthrough ->
      {
        Program.id = pc;
        stmts = fetch_obs @ access_obs @ assigns;
        term = Program.Jmp (pc + 1);
      }
    | Arch.Jump target ->
      (* A link write (e.g. RV64 [jal]) still assigns on the taken edge. *)
      let stmts =
        fetch_obs @ access_obs @ observes (hooks.on_branch ~pc ~cond:Term.tt) @ assigns
      in
      { Program.id = pc; stmts; term = Program.Jmp (min target len) }
    | Arch.Cond_jump (cond, target) ->
      let stmts = fetch_obs @ access_obs @ observes (hooks.on_branch ~pc ~cond) @ assigns in
      { Program.id = pc; stmts; term = Program.Cjmp (cond, min target len, pc + 1) }
  in
  let body = Array.to_list (Array.mapi lift_instr program) in
  let halt_block = { Program.id = len; stmts = []; term = Program.Halt } in
  Program.make ~entry:0 (body @ [ halt_block ])

let lift_arch ?(hooks = no_hooks) arch program =
  Scamv_telemetry.Collector.span "lift" (fun () -> lift_validated ~hooks arch program)

let lift ?hooks program = lift_arch ?hooks Arch.aarch64 program
