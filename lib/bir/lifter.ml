module Term = Scamv_smt.Term
module Ast = Scamv_isa.Ast

type hooks = {
  on_fetch : pc:int -> Obs.t list;
  on_load : pc:int -> addr:Term.t -> Obs.t list;
  on_store : pc:int -> addr:Term.t -> Obs.t list;
  on_branch : pc:int -> cond:Term.t -> Obs.t list;
}

let no_hooks =
  {
    on_fetch = (fun ~pc:_ -> []);
    on_load = (fun ~pc:_ ~addr:_ -> []);
    on_store = (fun ~pc:_ ~addr:_ -> []);
    on_branch = (fun ~pc:_ ~cond:_ -> []);
  }

let operand_term = function
  | Ast.Reg r -> Vars.reg_term r
  | Ast.Imm v -> Term.bv_const v 64

let address_term { Ast.base; offset; scale } =
  Term.add (Vars.reg_term base)
    (Term.shl (operand_term offset) (Term.bv_const (Int64.of_int scale) 64))

let cond_term c =
  let nf = Vars.flag_term Vars.flag_n
  and zf = Vars.flag_term Vars.flag_z
  and cf = Vars.flag_term Vars.flag_c
  and vf = Vars.flag_term Vars.flag_v in
  match c with
  | Ast.Eq -> zf
  | Ast.Ne -> Term.not_ zf
  | Ast.Hs -> cf
  | Ast.Lo -> Term.not_ cf
  | Ast.Hi -> Term.and_ cf (Term.not_ zf)
  | Ast.Ls -> Term.or_ (Term.not_ cf) zf
  | Ast.Ge -> Term.iff nf vf
  | Ast.Lt -> Term.not_ (Term.iff nf vf)
  | Ast.Gt -> Term.and_ (Term.not_ zf) (Term.iff nf vf)
  | Ast.Le -> Term.or_ zf (Term.not_ (Term.iff nf vf))

let alu_term op a b =
  match op with
  | `Add -> Term.add a b
  | `Sub -> Term.sub a b
  | `And -> Term.logand a b
  | `Orr -> Term.logor a b
  | `Eor -> Term.logxor a b
  | `Lsl -> Term.shl a b
  | `Lsr -> Term.lshr a b
  | `Asr -> Term.ashr a b

let msb e = Term.eq (Term.extract ~hi:63 ~lo:63 e) (Term.bv_one 1)

let cmp_assigns a_term b_term =
  let result = Term.sub a_term b_term in
  [
    (Vars.flag_n, msb result);
    (Vars.flag_z, Term.eq result (Term.bv_zero 64));
    (Vars.flag_c, Term.ule b_term a_term);
    (Vars.flag_v, msb (Term.logand (Term.logxor a_term b_term) (Term.logxor a_term result)));
  ]

let instr_assigns = function
  | Ast.Nop | Ast.B _ | Ast.B_cond _ -> []
  | Ast.Mov (d, op) -> [ (Vars.reg d, operand_term op) ]
  | Ast.Add (d, a, op) -> [ (Vars.reg d, alu_term `Add (Vars.reg_term a) (operand_term op)) ]
  | Ast.Sub (d, a, op) -> [ (Vars.reg d, alu_term `Sub (Vars.reg_term a) (operand_term op)) ]
  | Ast.And_ (d, a, op) -> [ (Vars.reg d, alu_term `And (Vars.reg_term a) (operand_term op)) ]
  | Ast.Orr (d, a, op) -> [ (Vars.reg d, alu_term `Orr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Eor (d, a, op) -> [ (Vars.reg d, alu_term `Eor (Vars.reg_term a) (operand_term op)) ]
  | Ast.Lsl (d, a, op) -> [ (Vars.reg d, alu_term `Lsl (Vars.reg_term a) (operand_term op)) ]
  | Ast.Lsr (d, a, op) -> [ (Vars.reg d, alu_term `Lsr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Asr (d, a, op) -> [ (Vars.reg d, alu_term `Asr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Ldr (d, addr) -> [ (Vars.reg d, Term.select Vars.mem_term (address_term addr)) ]
  | Ast.Str (s, addr) ->
    [ (Vars.mem_name, Term.store Vars.mem_term (address_term addr) (Vars.reg_term s)) ]
  | Ast.Cmp (a, op) -> cmp_assigns (Vars.reg_term a) (operand_term op)

let lift_validated ~hooks program =
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Lifter.lift: " ^ msg));
  let len = Array.length program in
  let lift_instr pc instr =
    let observes obs = List.map (fun o -> Program.Observe o) obs in
    let assigns = List.map (fun (x, e) -> Program.Assign (x, e)) (instr_assigns instr) in
    let fetch_obs = observes (hooks.on_fetch ~pc) in
    match instr with
    | Ast.Ldr (_, addr) ->
      let stmts = fetch_obs @ observes (hooks.on_load ~pc ~addr:(address_term addr)) @ assigns in
      { Program.id = pc; stmts; term = Program.Jmp (pc + 1) }
    | Ast.Str (_, addr) ->
      let stmts = fetch_obs @ observes (hooks.on_store ~pc ~addr:(address_term addr)) @ assigns in
      { Program.id = pc; stmts; term = Program.Jmp (pc + 1) }
    | Ast.B target ->
      let stmts = fetch_obs @ observes (hooks.on_branch ~pc ~cond:Term.tt) in
      { Program.id = pc; stmts; term = Program.Jmp (min target len) }
    | Ast.B_cond (c, target) ->
      let cond = cond_term c in
      let stmts = fetch_obs @ observes (hooks.on_branch ~pc ~cond) in
      { Program.id = pc; stmts; term = Program.Cjmp (cond, min target len, pc + 1) }
    | Ast.Nop | Ast.Mov _ | Ast.Add _ | Ast.Sub _ | Ast.And_ _ | Ast.Orr _
    | Ast.Eor _ | Ast.Lsl _ | Ast.Lsr _ | Ast.Asr _ | Ast.Cmp _ ->
      { Program.id = pc; stmts = fetch_obs @ assigns; term = Program.Jmp (pc + 1) }
  in
  let body = Array.to_list (Array.mapi lift_instr program) in
  let halt_block = { Program.id = len; stmts = []; term = Program.Halt } in
  Program.make ~entry:0 (body @ [ halt_block ])

let lift ?(hooks = no_hooks) program =
  Scamv_telemetry.Collector.span "lift" (fun () -> lift_validated ~hooks program)
