module Term = Scamv_smt.Term
module Ast = Scamv_isa.Ast

type access = No_access | Load of Term.t | Store of Term.t
type control = Fallthrough | Jump of int | Cond_jump of Term.t * int

type lifted = {
  assigns : (string * Term.t) list;
  access : access;
  control : control;
}

type 'i t = {
  name : string;
  registers : string list;
  has_flags : bool;
  validate : 'i array -> (unit, string) result;
  lift_instr : pc:int -> 'i -> lifted;
  pp_instr : Format.formatter -> 'i -> unit;
}

let is_load l = match l.access with Load _ -> true | _ -> false
let is_branch l = match l.control with Fallthrough -> false | _ -> true

(* ---- AArch64: the flag-based discipline of [Scamv_isa.Ast] ---- *)

let operand_term = function
  | Ast.Reg r -> Vars.reg_term r
  | Ast.Imm v -> Term.bv_const v 64

let address_term { Ast.base; offset; scale } =
  Term.add (Vars.reg_term base)
    (Term.shl (operand_term offset) (Term.bv_const (Int64.of_int scale) 64))

let cond_term c =
  let nf = Vars.flag_term Vars.flag_n
  and zf = Vars.flag_term Vars.flag_z
  and cf = Vars.flag_term Vars.flag_c
  and vf = Vars.flag_term Vars.flag_v in
  match c with
  | Ast.Eq -> zf
  | Ast.Ne -> Term.not_ zf
  | Ast.Hs -> cf
  | Ast.Lo -> Term.not_ cf
  | Ast.Hi -> Term.and_ cf (Term.not_ zf)
  | Ast.Ls -> Term.or_ (Term.not_ cf) zf
  | Ast.Ge -> Term.iff nf vf
  | Ast.Lt -> Term.not_ (Term.iff nf vf)
  | Ast.Gt -> Term.and_ (Term.not_ zf) (Term.iff nf vf)
  | Ast.Le -> Term.or_ zf (Term.not_ (Term.iff nf vf))

let alu_term op a b =
  match op with
  | `Add -> Term.add a b
  | `Sub -> Term.sub a b
  | `And -> Term.logand a b
  | `Orr -> Term.logor a b
  | `Eor -> Term.logxor a b
  | `Lsl -> Term.shl a b
  | `Lsr -> Term.lshr a b
  | `Asr -> Term.ashr a b

let msb e = Term.eq (Term.extract ~hi:63 ~lo:63 e) (Term.bv_one 1)

let cmp_assigns a_term b_term =
  let result = Term.sub a_term b_term in
  [
    (Vars.flag_n, msb result);
    (Vars.flag_z, Term.eq result (Term.bv_zero 64));
    (Vars.flag_c, Term.ule b_term a_term);
    (Vars.flag_v, msb (Term.logand (Term.logxor a_term b_term) (Term.logxor a_term result)));
  ]

let instr_assigns = function
  | Ast.Nop | Ast.B _ | Ast.B_cond _ -> []
  | Ast.Mov (d, op) -> [ (Vars.reg d, operand_term op) ]
  | Ast.Add (d, a, op) -> [ (Vars.reg d, alu_term `Add (Vars.reg_term a) (operand_term op)) ]
  | Ast.Sub (d, a, op) -> [ (Vars.reg d, alu_term `Sub (Vars.reg_term a) (operand_term op)) ]
  | Ast.And_ (d, a, op) -> [ (Vars.reg d, alu_term `And (Vars.reg_term a) (operand_term op)) ]
  | Ast.Orr (d, a, op) -> [ (Vars.reg d, alu_term `Orr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Eor (d, a, op) -> [ (Vars.reg d, alu_term `Eor (Vars.reg_term a) (operand_term op)) ]
  | Ast.Lsl (d, a, op) -> [ (Vars.reg d, alu_term `Lsl (Vars.reg_term a) (operand_term op)) ]
  | Ast.Lsr (d, a, op) -> [ (Vars.reg d, alu_term `Lsr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Asr (d, a, op) -> [ (Vars.reg d, alu_term `Asr (Vars.reg_term a) (operand_term op)) ]
  | Ast.Ldr (d, addr) -> [ (Vars.reg d, Term.select Vars.mem_term (address_term addr)) ]
  | Ast.Str (s, addr) ->
    [ (Vars.mem_name, Term.store Vars.mem_term (address_term addr) (Vars.reg_term s)) ]
  | Ast.Cmp (a, op) -> cmp_assigns (Vars.reg_term a) (operand_term op)

let aarch64_lift_instr ~pc:_ instr =
  let access =
    match instr with
    | Ast.Ldr (_, addr) -> Load (address_term addr)
    | Ast.Str (_, addr) -> Store (address_term addr)
    | _ -> No_access
  in
  let control =
    match instr with
    | Ast.B target -> Jump target
    | Ast.B_cond (c, target) -> Cond_jump (cond_term c, target)
    | _ -> Fallthrough
  in
  { assigns = instr_assigns instr; access; control }

let aarch64 =
  {
    name = "aarch64";
    registers = List.map Vars.reg Scamv_isa.Reg.all;
    has_flags = true;
    validate = Ast.validate;
    lift_instr = aarch64_lift_instr;
    pp_instr = Ast.pp_instr;
  }
