(** Lifting ISA programs to BIR.

    The lifter produces one block per instruction (block id = instruction
    index) plus a halt block, and invokes observation hooks at the points
    observational models care about: instruction fetch, data loads, data
    stores, and branch resolutions.  The hook results are inserted as
    [Observe] statements, realizing the "observation augmentation" phase
    of the Scam-V pipeline (Fig. 1).

    The lifter itself is architecture-parametric: everything instruction-
    set specific comes from an {!Arch.t} descriptor, so a new guest
    architecture plugs in at this layer with models, symbolic execution
    and relation synthesis unchanged. *)

type hooks = {
  on_fetch : pc:int -> Obs.t list;
  on_load : pc:int -> addr:Scamv_smt.Term.t -> Obs.t list;
  on_store : pc:int -> addr:Scamv_smt.Term.t -> Obs.t list;
  on_branch : pc:int -> cond:Scamv_smt.Term.t -> Obs.t list;
      (** [cond] is the taken condition over the canonical variables
          ([Term.tt] for unconditional branches). *)
}

val no_hooks : hooks
(** Produce no observations (the bare architectural model). *)

val operand_term : Scamv_isa.Ast.operand -> Scamv_smt.Term.t
val address_term : Scamv_isa.Ast.addressing -> Scamv_smt.Term.t
(** Address expression over the canonical register variables. *)

val cond_term : Scamv_isa.Ast.cond -> Scamv_smt.Term.t
(** Condition-code predicate over the canonical flag variables. *)

val instr_assigns : Scamv_isa.Ast.instr -> (string * Scamv_smt.Term.t) list
(** The state updates of one instruction over canonical variables, in
    order.  Branches and nop yield no assignments.  Reused by the
    speculation instrumentation with shadow renaming.

    These four are the AArch64 lowerings of {!Arch.aarch64}, re-exported
    for compatibility. *)

val lift_arch : ?hooks:hooks -> 'i Arch.t -> 'i array -> Program.t
(** Lift a program of any described architecture.
    @raise Invalid_argument if the descriptor's validation rejects the
    program. *)

val lift : ?hooks:hooks -> Scamv_isa.Ast.program -> Program.t
(** [lift_arch Arch.aarch64].
    @raise Invalid_argument if {!Scamv_isa.Ast.validate} rejects the
    program. *)
