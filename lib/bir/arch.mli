(** Architecture descriptors: everything the generic lifter (and the
    speculation instrumentation built on top of it) needs to know about a
    guest ISA, bundled as a first-class value.

    The paper's claim (Sec. 2.3) is that a new guest architecture plugs
    into Scam-V at the lifter, with observation augmentation, relation
    synthesis and the platform applying unchanged.  A descriptor captures
    that plug point: the canonical BIR register variables, program
    validation, and the per-instruction lowering to assignments plus a
    memory-access shape and a control shape.  {!Lifter.lift_arch} turns a
    descriptor and a program into observed BIR;
    {!Scamv_models.Speculation} reuses the same lowering to build shadow
    wrong-path slices for any architecture. *)

type access =
  | No_access
  | Load of Scamv_smt.Term.t  (** address over canonical variables *)
  | Store of Scamv_smt.Term.t

type control =
  | Fallthrough
  | Jump of int  (** unconditional, instruction-index target *)
  | Cond_jump of Scamv_smt.Term.t * int
      (** taken condition over canonical variables, and taken target;
          fall-through is the next instruction *)

type lifted = {
  assigns : (string * Scamv_smt.Term.t) list;
      (** state updates over canonical variables, in order *)
  access : access;
  control : control;
}

type 'i t = {
  name : string;  (** e.g. ["aarch64"], ["riscv"] *)
  registers : string list;
      (** canonical BIR register variable names, in machine-slot order *)
  has_flags : bool;
      (** whether the architecture keeps NZCV-style flag variables (the
          compare discipline); compare-and-branch ISAs have none *)
  validate : 'i array -> (unit, string) result;
  lift_instr : pc:int -> 'i -> lifted;
      (** the complete architectural semantics of one instruction *)
  pp_instr : Format.formatter -> 'i -> unit;
}

val is_load : lifted -> bool
val is_branch : lifted -> bool
(** [is_branch l] holds when control is not {!Fallthrough}. *)

(** {1 AArch64 lowering}

    The flag-based compare discipline of {!Scamv_isa.Ast}, exposed pieceweise
    because the speculation instrumentation and tests reuse the individual
    lowerings. *)

val operand_term : Scamv_isa.Ast.operand -> Scamv_smt.Term.t

val address_term : Scamv_isa.Ast.addressing -> Scamv_smt.Term.t
(** Address expression over the canonical register variables. *)

val cond_term : Scamv_isa.Ast.cond -> Scamv_smt.Term.t
(** Condition-code predicate over the canonical flag variables. *)

val instr_assigns : Scamv_isa.Ast.instr -> (string * Scamv_smt.Term.t) list
(** The state updates of one instruction over canonical variables, in
    order.  Branches and nop yield no assignments. *)

val aarch64 : Scamv_isa.Ast.instr t
