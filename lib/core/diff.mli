(** Differential cross-ISA campaigns: the same (template, setup, seed)
    run on both guest ISAs, with per-path-pair verdict comparison.

    Scam-V's multi-architecture claim (Sec. 2.3) is that the validation
    methodology is ISA-independent; a differential campaign probes the
    places where it is not.  Both sides share the campaign seed and the
    campaign engine's determinism discipline, so the run — including the
    {!Scamv.Journal.event.Diverged} events it appends after the two
    campaigns — is byte-reproducible and independent of [jobs].

    A side's verdict for a (program, path pair) is the {e strongest} over
    its test cases (distinguishable > inconclusive > indistinguishable):
    one distinguishable test case falsifies the pair no matter how many
    indistinguishable ones surround it.  A divergence is a pair both
    sides explored whose strongest verdicts differ — e.g. AArch64's
    flag-latency speculation window admitting transient loads the RV64
    compare-and-branch discipline does not. *)

type outcome = {
  name : string;
  aarch64 : Campaign.outcome;
  riscv : Campaign.outcome;
  divergences : Journal.event list;
      (** [Diverged] events, sorted by (program, pair) *)
  compared_pairs : int;  (** (program, pair) keys present on both sides *)
  unmatched_pairs : int;  (** keys explored by exactly one side *)
  stats : Stats.t;
      (** both sides' statistics merged, divergences recorded *)
}

val run :
  ?on_event:(string -> unit) ->
  ?on_record:(Journal.event -> unit) ->
  ?journal:Journal.t ->
  ?pool:Scamv_util.Pool.t ->
  ?jobs:int ->
  name:string ->
  template:string ->
  setup:Scamv_models.Refinement.t ->
  ?view:Scamv_microarch.Executor.view ->
  ?programs:int ->
  ?tests_per_program:int ->
  ?seed:int64 ->
  ?sat_budget:Scamv_smt.Sat.budget ->
  ?portfolio:int ->
  ?clock:Scamv_util.Stopwatch.clock ->
  ?cancel:Scamv_util.Deadline.t ->
  unit ->
  outcome
(** Run the AArch64 side, then the RISC-V side, then compare.  [template]
    is a {!Scamv_gen.Templates.by_name} name, instantiated per ISA.  The
    two campaigns are named ["<name> [aarch64]"] and ["<name> [riscv]"];
    their rows (and then the [Diverged] events) all land in [journal] and
    stream through [on_record], in that order.  Telemetry counters
    [diff.compared_pairs], [diff.unmatched_pairs] and [diff.divergences]
    are added to the ambient collector.
    @raise Invalid_argument on an unknown template name. *)
