module Solver = Scamv_smt.Solver
module Model = Scamv_smt.Model
module Exec = Scamv_symbolic.Exec
module Synth = Scamv_relation.Synth
module Training = Scamv_relation.Training
module Concretize = Scamv_relation.Concretize
module Refinement = Scamv_models.Refinement
module Isa = Scamv_arch.Isa
module Splitmix = Scamv_util.Splitmix
module Deadline = Scamv_util.Deadline
module Chaos = Scamv_util.Chaos
module Tm = Scamv_telemetry.Collector

type config = {
  setup : Refinement.t;
  isa : Isa.t;
  platform : Scamv_isa.Platform.t;
  diversify : bool;
  max_steps : int;
  budget : Scamv_smt.Sat.budget option;
  chaos : Chaos.t option;
  portfolio : int;
      (* number of solver configurations to try per pair (>= 1); only
         consulted when a session exhausts its SAT budget *)
}

let default_config ?(isa = Isa.Aarch64) setup =
  {
    setup;
    isa;
    platform = Scamv_isa.Platform.cortex_a53;
    diversify = Refinement.has_refinement setup;
    max_steps = 4096;
    budget = None;
    chaos = None;
    portfolio = 1;
  }

type test_case = {
  pair : int * int;
  state1 : Scamv_isa.Machine.t;
  state2 : Scamv_isa.Machine.t;
  train : Scamv_isa.Machine.t list;
  model : Model.t;
}

type pair_session = {
  pair : int * int;
  mutable session : Solver.session;
  mutable config_index : int;  (* portfolio rank of [session] *)
  rebuild : int -> Solver.session;
      (* fresh session over the same assertions under the portfolio
         configuration of the given rank (shares the program's blast
         graph); used by the budget-exhaustion rescue *)
  training : Scamv_isa.Machine.t list Lazy.t;
}

type t = {
  cfg : config;
  seed : int64;  (* prepare seed: keys the chaos site below *)
  isa_program : Isa.program;
  bir_program : Scamv_bir.Program.t;
  leaf_list : Exec.leaf list;
  mutable queue : pair_session list;  (* round-robin of live sessions *)
  mutable quarantined_rev : ((int * int) * string) list;
}

(* Per-ISA dispatch: the architecture descriptor is indexed by its
   instruction type, so the existential is opened here, once per entry
   point, and everything downstream is descriptor-generic. *)

let annotate setup = function
  | Isa.Aarch64_program p -> Refinement.annotate_arch setup Scamv_bir.Arch.aarch64 p
  | Isa.Riscv_program p -> Refinement.annotate_arch setup Scamv_riscv.Lift.arch p

let machine_of_model isa =
  match isa with
  | Isa.Aarch64 -> Concretize.machine_of_model_arch ~arch:Scamv_bir.Arch.aarch64
  | Isa.Riscv -> Concretize.machine_of_model_arch ~arch:Scamv_riscv.Lift.arch

let test_states isa model =
  match isa with
  | Isa.Aarch64 -> Concretize.test_states_arch ~arch:Scamv_bir.Arch.aarch64 model
  | Isa.Riscv -> Concretize.test_states_arch ~arch:Scamv_riscv.Lift.arch model

let prepare ?(seed = 0L) cfg isa_program =
  Tm.span "prepare" (fun () ->
  if not (Isa.equal cfg.isa (Isa.of_program isa_program)) then
    invalid_arg
      (Printf.sprintf "Pipeline.prepare: config is for %s but the program is %s"
         (Isa.to_string cfg.isa)
         (Isa.to_string (Isa.of_program isa_program)));
  (* Deadline polls at the phase boundaries: each phase below can run for
     seconds on a pathological program, and an ambient token expired by
     the previous phase (or program) must stop the next one from
     starting. *)
  Deadline.poll ();
  let bir_program =
    (* The lifter records its own nested "lift" span. *)
    Tm.span "annotate" (fun () -> annotate cfg.setup isa_program)
  in
  Deadline.poll ();
  let leaf_list =
    Tm.span "symexec" (fun () -> Exec.execute ~max_steps:cfg.max_steps bir_program)
  in
  Deadline.poll ();
  let synth_cfg =
    {
      Synth.platform = cfg.platform;
      require_refined_difference = Refinement.has_refinement cfg.setup;
    }
  in
  let pairs = Synth.compatible_pairs leaf_list in
  let rng = ref (Splitmix.of_seed seed) in
  (* One blast graph per program: every enumeration session and training
     solve below shares it, so structurally equal sub-terms (path
     conditions, observation equalities) are folded into circuit nodes
     once per program instead of once per pair.  The graph is mutable and
     unsynchronized, which is safe here because a pipeline instance —
     sessions, training cache and all — lives on a single domain. *)
  let graph = Scamv_smt.Blaster.new_graph () in
  let tcache =
    Training.prepare ~graph ~machine_of_model:(machine_of_model cfg.isa)
      ~platform:cfg.platform ~leaves:leaf_list ()
  in
  let sessions =
    Tm.span "synth" (fun () ->
    let prepared = Synth.prepare synth_cfg leaf_list in
    List.filter_map
      (fun pair ->
        match Synth.pair_relation_prepared prepared pair with
        | None -> None
        | Some relation ->
          let pair_seed, rng' = Splitmix.next !rng in
          rng := rng';
          (* Coverage observations, when present, define the blocking set:
             successive models then come from different classes of the
             supporting model (Sec. 4.1).  Unguided generation blocks on
             register inputs only (the original register-enumeration
             behaviour); refined generation without coverage blocks on
             everything the relation mentions. *)
          let track =
            match relation.Synth.coverage_track with
            | _ :: _ as t -> Some t
            | [] ->
              if Refinement.has_refinement cfg.setup then None
              else Some relation.Synth.register_track
          in
          let build rank =
            let pc = Scamv_smt.Portfolio.config rank in
            let seed = Scamv_smt.Portfolio.seed_for pc pair_seed in
            let default_phase = pc.Scamv_smt.Portfolio.default_phase in
            let restart_base = pc.Scamv_smt.Portfolio.restart_base in
            if Refinement.has_refinement cfg.setup then begin
              (* Refinement chain: assert the candidate relation
                 (M1-equivalence) first, then extend the same live session
                 with what refinement adds.  The extension reuses the
                 candidate's blasted structure and solver state instead of
                 re-blasting the whole relation — the reuse shows up as
                 [smt.incremental_reuse_hits]. *)
              let s =
                Solver.make_session ~default_phase ~restart_base
                  ?budget:cfg.budget ~seed ~graph
                  relation.Synth.candidate_assertions
              in
              Solver.extend ?track s relation.Synth.refinement_assertions
            end
            else
              Solver.make_session ~default_phase ~restart_base ?track
                ?budget:cfg.budget ~seed ~graph relation.Synth.assertions
          in
          let session = build 0 in
          let training = lazy (Training.states tcache ~pair) in
          Some { pair; session; config_index = 0; rebuild = build; training })
      pairs)
  in
  Tm.add "campaign.path_pairs" (List.length sessions);
  if cfg.portfolio > 1 then begin
    (* Register the portfolio counters up front so exports show them at
       zero for campaigns where the baseline never exhausts its budget. *)
    Tm.add "portfolio.races" 0;
    for c = 0 to cfg.portfolio - 1 do
      Tm.add (Printf.sprintf "portfolio.wins.%d" c) 0
    done
  end;
  { cfg; seed; isa_program; bir_program; leaf_list; queue = sessions;
    quarantined_rev = [] })

let program t = t.isa_program
let bir t = t.bir_program
let leaves t = t.leaf_list
let pair_count t = List.length t.queue
let quarantined t = List.rev t.quarantined_rev

type progress =
  | Case of test_case
  | Quarantined of { pair : int * int; reason : string }
  | Crashed of { reason : string }
  | Exhausted

(* Chaos site "solver.budget": pretend this pair's enumeration session
   just blew its SAT budget.  Keyed on (prepare seed, pair), so the
   decision is per-pair, schedule-independent, and identical across jobs
   levels and resume boundaries. *)
let chaos_budget_exhausted t ps =
  match t.cfg.chaos with
  | None -> false
  | Some c ->
    let p1, p2 = ps.pair in
    let key = Int64.logxor t.seed (Int64.of_int ((p1 * 8191) + p2)) in
    let hit = Chaos.roll c ~site:"solver.budget" ~key in
    if hit then Tm.incr "chaos.injections";
    hit

(* Portfolio rescue: the baseline configuration ran out of SAT budget on
   this pair, so try the challenger configurations in rank order.  Each
   challenger is a fresh session over the same assertions (sharing the
   program's blast graph, so re-blasting is cheap) with the already-
   enumerated models replayed as blocking clauses; the first one that
   answers within the same per-call budget takes over the pair.  The
   whole race is deterministic — budget exhaustion is a pure function of
   the query, the challenger table is fixed, and ranks are tried in
   order — so campaign artifacts stay byte-identical across jobs levels,
   and across portfolio sizes wherever the baseline never loses. *)
let rescue t ps =
  if t.cfg.portfolio <= 1 then None
  else begin
    Tm.incr "portfolio.races";
    let blocked = Solver.blocked_models ps.session in
    let rec attempt rank =
      if rank >= t.cfg.portfolio then None
      else begin
        let session =
          Tm.span "portfolio"
            ~args:[ ("config", string_of_int rank) ]
            (fun () ->
              let s = ps.rebuild rank in
              List.iter (Solver.block_model s) blocked;
              s)
        in
        match Solver.next_model ~diversify:t.cfg.diversify session with
        | Solver.Budget_exceeded -> attempt (rank + 1)
        | outcome ->
          (* The challenger takes over the pair; its wins are counted per
             model by [emit_case]. *)
          ps.session <- session;
          ps.config_index <- rank;
          Some outcome
      end
    in
    attempt 1
  end

let rec advance t =
  Deadline.poll ();
  match t.queue with
  | [] -> Exhausted
  | ps :: rest when chaos_budget_exhausted t ps ->
    let reason = "chaos: injected SAT budget exhaustion" in
    t.queue <- rest;
    t.quarantined_rev <- (ps.pair, reason) :: t.quarantined_rev;
    Quarantined { pair = ps.pair; reason }
  | ps :: rest -> (
    match
      Tm.span "enumerate"
        ~args:
          [ ("pair", Printf.sprintf "%d,%d" (fst ps.pair) (snd ps.pair)) ]
        (fun () -> Solver.next_model ~diversify:t.cfg.diversify ps.session)
    with
    | Solver.Exhausted ->
      t.queue <- rest;
      advance t
    | Solver.Budget_exceeded -> (
      match rescue t ps with
      | Some (Solver.Model model) -> emit_case t ps rest model
      | Some Solver.Exhausted ->
        (* A challenger proved within budget that no further model
           exists: a definitive answer, not a failure. *)
        t.queue <- rest;
        advance t
      | Some Solver.Budget_exceeded | None ->
        (* A hard path pair even for the whole portfolio: drop it from
           the round-robin queue so it cannot stall the rest of the
           program's enumeration, and remember why. *)
        let reason =
          Printf.sprintf "SAT budget exceeded after %d model(s) (%s%s)"
            (Solver.models_found ps.session)
            (match t.cfg.budget with
            | None -> "unlimited"
            | Some b -> Format.asprintf "%a" Scamv_smt.Sat.pp_budget b)
            (if t.cfg.portfolio > 1 then
               Printf.sprintf ", portfolio of %d" t.cfg.portfolio
             else "")
        in
        t.queue <- rest;
        t.quarantined_rev <- (ps.pair, reason) :: t.quarantined_rev;
        Quarantined { pair = ps.pair; reason })
    | Solver.Model model -> emit_case t ps rest model)

and emit_case t ps rest model =
  if t.cfg.portfolio > 1 then
    Tm.incr (Printf.sprintf "portfolio.wins.%d" ps.config_index);
  t.queue <- rest @ [ ps ];
  let state1, state2 = test_states t.cfg.isa model in
  Case { pair = ps.pair; state1; state2; train = Lazy.force ps.training; model }

(* Deadline expiry anywhere under enumeration — the SAT search, blasting a
   training query, forcing the training states — surfaces here as a
   [Crashed] progress value rather than an exception: the caller treats it
   like any other terminal outcome for the program (the solver rewound its
   own trail before raising, so the sessions stay intact). *)
let next_test_case t =
  try advance t with Deadline.Expired reason -> Crashed { reason }
