(** Experiment journal, the analogue of the artifact's EmbExp-Logs
    database (Sec. A.3): every executed experiment is recorded with its
    provenance and verdict, along with the campaign's fault events
    (quarantined path pairs, failed programs).  A journal can persist
    itself incrementally to disk as a CSV and be loaded back, which is the
    basis of campaign checkpoint/resume.

    Thread-safety: a journal buffers records and owns an output channel
    with no internal locking.  In a parallel campaign it is only ever
    touched from the {e consuming} (calling) domain — worker domains
    return event lists that {!Campaign.run} merges in program order — so
    no synchronization is needed and the CSV byte stream is identical to a
    single-domain run. *)

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;  (** leaf indexes of the two states' paths *)
  verdict : Scamv_microarch.Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
  retries : int;  (** executor attempts beyond the first (see {!Retry}) *)
  faults : int;  (** injected faults observed across all attempts *)
}

type event =
  | Experiment of entry
  | Quarantined of {
      campaign : string;
      program_index : int;
      pair : int * int;
      reason : string;
    }  (** a path pair dropped because its SAT budget ran out *)
  | Program_failed of { campaign : string; program_index : int; reason : string }
      (** a program abandoned after an exception in any pipeline stage *)

val event_program_index : event -> int

type t

val create : ?path:string -> unit -> t
(** [create ~path ()] persists every recorded event to [path] as it
    happens (CSV, one flushed line per event), so a killed campaign leaves
    a loadable checkpoint behind.  The file is only created/truncated when
    the first event is recorded — loading a resume checkpoint from the
    same path before recording is safe. *)

val record : t -> entry -> unit
val record_event : t -> event -> unit

val close : t -> unit
(** Close the persistence channel, if any (records are flushed eagerly, so
    this is only needed to release the descriptor). *)

val events : t -> event list
(** All events, in recording order. *)

val entries : t -> entry list
(** Experiment entries only, in recording order. *)

val length : t -> int
(** Number of experiment entries. *)

val counterexamples : t -> entry list

val verdict_counts : t -> int * int * int
(** (distinguishable, indistinguishable, inconclusive). *)

val to_csv : t -> string
(** Header plus one row per event; fields are comma-separated, free-form
    strings (campaign, template, reason) quoted. *)

val write_csv : t -> path:string -> unit

exception Parse_error of string

val of_csv : string -> t
(** Parse a journal back from {!to_csv} output.  Quoting of embedded
    commas, double quotes and newlines round-trips.
    @raise Parse_error on malformed input. *)

val read_csv : path:string -> t
(** Load a journal CSV from disk. *)

val pp_verdict : Format.formatter -> Scamv_microarch.Executor.verdict -> unit
