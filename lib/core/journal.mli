(** Experiment journal, the analogue of the artifact's EmbExp-Logs
    database (Sec. A.3): every executed experiment is recorded with its
    provenance and verdict, along with the campaign's fault events
    (quarantined path pairs, failed programs, crashed workers).  A journal
    persists itself incrementally to disk and can be loaded back, which is
    the basis of campaign checkpoint/resume.

    On-disk format (v2): a magic first line, then one framed record per
    event — [R <length> <crc32>\n<csv-row>\n].  The length prefix and
    checksum make a torn or corrupted tail {e detectable}: {!load} keeps
    the longest clean prefix and reports what it dropped, so a campaign
    SIGKILLed mid-write still leaves a usable checkpoint (see DESIGN.md,
    "Failure domains and supervision").  v1 plain-CSV checkpoints (the
    {!to_csv}/{!write_csv} snapshot format) are still read transparently.

    Thread-safety: a journal buffers records and owns an output channel
    with no internal locking.  In a parallel campaign it is only ever
    touched from the {e consuming} (calling) domain — worker domains
    return event lists that {!Campaign.run} merges in program order — so
    no synchronization is needed and the journal byte stream is identical
    to a single-domain run. *)

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;  (** leaf indexes of the two states' paths *)
  verdict : Scamv_microarch.Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
  retries : int;  (** executor attempts beyond the first (see {!Retry}) *)
  faults : int;  (** injected faults observed across all attempts *)
  isa : Scamv_arch.Isa.t;
      (** guest ISA the experiment ran on.  On disk the ISA is a 14th CSV
          column appended only for non-AArch64 rows: AArch64 rows keep the
          historical 13-field bytes, and 13-field rows load as
          [Aarch64] — old journals remain readable and byte-stable. *)
}

type event =
  | Experiment of entry
  | Quarantined of {
      campaign : string;
      program_index : int;
      pair : int * int;
      reason : string;
    }  (** a path pair dropped because its SAT budget ran out *)
  | Program_failed of { campaign : string; program_index : int; reason : string }
      (** a program abandoned after an exception in any pipeline stage *)
  | Crashed of { campaign : string; program_index : int; reason : string }
      (** a program lost to a supervised failure: a worker-domain crash
          (respawned by the pool) or an expired deadline *)
  | Diverged of {
      campaign : string;
      program_index : int;
      pair : int * int;
      aarch64 : Scamv_microarch.Executor.verdict;
      riscv : Scamv_microarch.Executor.verdict;
    }
      (** a differential campaign found the two ISAs disagreeing on a path
          pair's verdict (see {!Diff}).  In CSV the AArch64 verdict
          occupies the verdict column and the RISC-V verdict the reason
          column. *)

val event_program_index : event -> int

type t

val create : ?path:string -> ?chaos:Scamv_util.Chaos.t -> unit -> t
(** [create ~path ()] persists every recorded event to [path] as it
    happens (one framed, checksummed, flushed record per event), so a
    killed campaign leaves a loadable checkpoint behind.  The file is only
    created/truncated when the first event is recorded — loading a resume
    checkpoint from the same path before recording is safe.

    [chaos] arms the write-fault injection sites ["journal.poison"]
    (corrupt a record's checksum in place) and ["journal.delay"] (withhold
    a record from the channel until the next undelayed write), keyed by
    record index so the final bytes are schedule-independent. *)

val record : t -> entry -> unit
val record_event : t -> event -> unit

val close : t -> unit
(** Flush any chaos-delayed records and close the persistence channel, if
    any. *)

val events : t -> event list
(** All events, in recording order. *)

val entries : t -> entry list
(** Experiment entries only, in recording order. *)

val length : t -> int
(** Number of experiment entries. *)

val counterexamples : t -> entry list

val verdict_counts : t -> int * int * int
(** (distinguishable, indistinguishable, inconclusive). *)

val event_to_json : event -> Scamv_util.Json.t
(** One JSON object per event (fixed field order), the validation
    service's wire rendering: [Scamv_util.Json.to_string] of this value is
    a pure function of the event, so a server-streamed campaign can be
    checked byte-for-byte against a batch run's journal. *)

val to_csv : t -> string
(** v1 snapshot: header plus one CSV row per event; fields are
    comma-separated, free-form strings (campaign, template, reason)
    quoted. *)

val to_journal_string : t -> string
(** v2 snapshot: magic line plus one framed, checksummed record per
    event — the same bytes incremental persistence writes. *)

val write_csv : t -> path:string -> unit
(** Atomic checkpoint (temp file + rename) of {!to_csv}: a crash mid-write
    leaves either the previous complete file or the new one, never a torn
    hybrid. *)

val write_journal : t -> path:string -> unit
(** Atomic checkpoint of {!to_journal_string}. *)

exception Parse_error of string

val of_csv : string -> t
(** Parse a v1 CSV journal back from {!to_csv} output.  Quoting of
    embedded commas, double quotes and newlines round-trips.
    @raise Parse_error on malformed input. *)

val of_string : string -> t
(** Strict parse of either format (auto-detected by the magic line).
    @raise Parse_error on any malformation, including a torn v2 tail. *)

val read_csv : path:string -> t
(** Load a journal (either format) from disk, strictly. *)

type recovery = {
  records : int;  (** clean records recovered *)
  dropped_bytes : int;  (** torn/corrupt tail bytes dropped (0 = clean) *)
}

val of_string_tolerant : string -> t * recovery
(** Tolerant parse: for v2 content, keep the longest clean prefix of
    framed records and drop the rest — a truncated final record, a flipped
    checksum byte, or an empty file all yield a usable journal.  The scan
    stops at the {e first} damaged record (no skipping forward): once one
    record is suspect nothing after it is trusted, and resume only needs a
    clean prefix.  v1 content is parsed strictly (it is only ever written
    atomically, so there is no torn tail to tolerate).
    @raise Parse_error only for malformed v1 content. *)

val load : path:string -> t * recovery
(** {!of_string_tolerant} on a file — the [--resume] entry point. *)

val pp_verdict : Format.formatter -> Scamv_microarch.Executor.verdict -> unit

val verdict_string : Scamv_microarch.Executor.verdict -> string
(** The CSV/JSON verdict word: ["distinguishable"] /
    ["indistinguishable"] / ["inconclusive"]. *)
