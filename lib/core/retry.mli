(** Retry policy with majority-vote verdict aggregation and escalating,
    deterministically jittered backoff.

    Real campaigns re-run flaky experiments: a measurement dropped by the
    board or perturbed by noise yields [Inconclusive], and only repeated
    agreement is trusted.  [execute] runs an experiment up to
    [max_attempts] times, stopping early once one conclusive verdict has
    [confirm] votes, and aggregates by majority; persistent disagreement
    (or no conclusive attempt at all) downgrades to [Inconclusive]. *)

type backoff = {
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** escalation factor per further retry (>= 1) *)
  max_delay : float;  (** cap on any single delay *)
  jitter : float;
      (** jitter fraction in [0, 1]: the delay is scaled by a seeded
          uniform draw from [[1 - jitter, 1]]; [0] disables jitter *)
}

val backoff :
  ?base_delay:float ->
  ?multiplier:float ->
  ?max_delay:float ->
  ?jitter:float ->
  unit ->
  backoff
(** Defaults: 50ms base, doubling, 5s cap, 25% jitter.
    @raise Invalid_argument on out-of-range fields. *)

val backoff_delay : backoff -> seed:int64 -> attempt:int -> float
(** Delay before retry [attempt] (counting from 1).  A {e pure function}
    of (backoff, seed, attempt): the jitter draw uses a throwaway stream
    keyed on (seed, attempt), so schedules are reproducible per seed and
    independent of any other randomness — the property the qcheck suite
    pins down. *)

val backoff_schedule : backoff -> seed:int64 -> attempts:int -> float list
(** The first [attempts] delays, i.e.
    [[backoff_delay ~attempt:1; ...; backoff_delay ~attempt:attempts]]. *)

type policy = {
  max_attempts : int;  (** hard cap on executions per experiment (>= 1) *)
  confirm : int;
      (** votes needed to accept a conclusive verdict early; [1] trusts
          the first conclusive attempt (retrying only on noise), higher
          values demand independent agreement *)
  attempt_budget : int;
      (** total cost units available; attempt [i] (0-based) costs [2^i],
          so the budget admits roughly [log2 attempt_budget] attempts —
          an exponential brake on persistently noisy experiments *)
  backoff : backoff option;
      (** spacing between attempts; [None] (the default) retries
          immediately, the historical behaviour *)
}

val default : policy
(** One attempt, no retries: the behaviour of a noise-free campaign. *)

val make :
  ?max_attempts:int ->
  ?confirm:int ->
  ?attempt_budget:int ->
  ?backoff:backoff ->
  unit ->
  policy
(** @raise Invalid_argument if any count field is below 1. *)

type outcome = {
  verdict : Scamv_microarch.Executor.verdict;  (** the aggregated verdict *)
  attempts : int;  (** executions actually performed (>= 1) *)
  retries : int;  (** [attempts - 1] *)
  faults : int;  (** total injected faults observed across attempts *)
  backoff_seconds : float;  (** total backoff delay requested *)
}

val execute :
  ?seed:int64 ->
  ?sleep:(float -> unit) ->
  policy ->
  (attempt:int -> Scamv_microarch.Executor.verdict * int) ->
  outcome
(** [execute policy run] calls [run ~attempt:i] (with [i] counting from 0)
    until a verdict is confirmed or attempts/budget run out.  [run] returns
    the attempt's verdict and its injected-fault count.

    When [policy.backoff] is set, [sleep] (default: no-op, so tests and
    deterministic campaigns never block) is called before each retry with
    the delay {!backoff_delay} computes from [seed] — pass [Unix.sleepf]
    for real spacing in service use. *)
