(** Retry policy with majority-vote verdict aggregation.

    Real campaigns re-run flaky experiments: a measurement dropped by the
    board or perturbed by noise yields [Inconclusive], and only repeated
    agreement is trusted.  [execute] runs an experiment up to
    [max_attempts] times, stopping early once one conclusive verdict has
    [confirm] votes, and aggregates by majority; persistent disagreement
    (or no conclusive attempt at all) downgrades to [Inconclusive]. *)

type policy = {
  max_attempts : int;  (** hard cap on executions per experiment (>= 1) *)
  confirm : int;
      (** votes needed to accept a conclusive verdict early; [1] trusts
          the first conclusive attempt (retrying only on noise), higher
          values demand independent agreement *)
  attempt_budget : int;
      (** total cost units available; attempt [i] (0-based) costs [2^i],
          so the budget admits roughly [log2 attempt_budget] attempts —
          an exponential brake on persistently noisy experiments *)
}

val default : policy
(** One attempt, no retries: the behaviour of a noise-free campaign. *)

val make : ?max_attempts:int -> ?confirm:int -> ?attempt_budget:int -> unit -> policy
(** @raise Invalid_argument if any field is below 1. *)

type outcome = {
  verdict : Scamv_microarch.Executor.verdict;  (** the aggregated verdict *)
  attempts : int;  (** executions actually performed (>= 1) *)
  retries : int;  (** [attempts - 1] *)
  faults : int;  (** total injected faults observed across attempts *)
}

val execute :
  policy -> (attempt:int -> Scamv_microarch.Executor.verdict * int) -> outcome
(** [execute policy run] calls [run ~attempt:i] (with [i] counting from 0)
    until a verdict is confirmed or attempts/budget run out.  [run] returns
    the attempt's verdict and its injected-fault count. *)
