(** Campaign statistics, mirroring the rows of Table 1 / Fig. 7. *)

type t = {
  programs : int;
  programs_with_counterexample : int;
  experiments : int;
  counterexamples : int;
  inconclusive : int;
  skipped_programs : int;
      (** programs abandoned after an exception in prepare/generate/execute *)
  crashed_programs : int;
      (** programs lost to a supervised failure: a worker-domain crash or
          an expired deadline (see {!Scamv_util.Deadline}) *)
  budget_exceeded : int;  (** path pairs quarantined by the SAT budget *)
  retries : int;  (** extra executor attempts beyond the first *)
  faults_observed : int;  (** injected faults seen across all experiments *)
  divergences : int;
      (** path pairs where a differential campaign's two ISAs disagreed on
          the verdict (see {!Diff}); always 0 for single-ISA campaigns *)
  generation_time : Scamv_util.Summary.t;  (** per-test-case synthesis time *)
  execution_time : Scamv_util.Summary.t;  (** per-experiment run time *)
  time_to_first_counterexample : float option;  (** wall seconds, None = never *)
}

val empty : t

val record_program : t -> found_counterexample:bool -> t

val record_skipped_program : t -> t
(** A program whose generation or execution failed and was abandoned
    (pair this with {!record_program} so [programs] still counts it). *)

val record_crashed_program : t -> t
(** A program lost to a worker crash or deadline expiry (pair this with
    {!record_program} so [programs] still counts it). *)

val record_quarantine : t -> t
(** A path pair dropped because its SAT budget ran out. *)

val record_divergence : t -> t
(** A cross-ISA verdict divergence found by a differential campaign. *)

val record_experiment :
  t ->
  verdict:Scamv_microarch.Executor.verdict ->
  ?retries:int ->
  ?faults:int ->
  gen_seconds:float ->
  exe_seconds:float ->
  elapsed:float ->
  unit ->
  t

val merge : t -> t -> t
(** Pure merge of two disjoint sub-campaigns' statistics: counts add,
    timing summaries merge, and the earlier time-to-first-counterexample
    wins (both operands are assumed to measure elapsed time against the
    same campaign clock).  [empty] is the identity; merge is associative
    and commutative, so per-worker statistics buffers can be combined in
    any grouping. *)

val counterexample_rate : t -> float
val pp : Format.formatter -> t -> unit

val row : name:string -> t -> string list
(** Table row: name, programs, w/counterexample, experiments,
    counterexamples, inconclusive, avg gen (s), avg exe (s), TTC (s). *)

val header : string list
