module Summary = Scamv_util.Summary
module Executor = Scamv_microarch.Executor

type t = {
  programs : int;
  programs_with_counterexample : int;
  experiments : int;
  counterexamples : int;
  inconclusive : int;
  skipped_programs : int;
  crashed_programs : int;
  budget_exceeded : int;
  retries : int;
  faults_observed : int;
  divergences : int;
  generation_time : Summary.t;
  execution_time : Summary.t;
  time_to_first_counterexample : float option;
}

let empty =
  {
    programs = 0;
    programs_with_counterexample = 0;
    experiments = 0;
    counterexamples = 0;
    inconclusive = 0;
    skipped_programs = 0;
    crashed_programs = 0;
    budget_exceeded = 0;
    retries = 0;
    faults_observed = 0;
    divergences = 0;
    generation_time = Summary.empty;
    execution_time = Summary.empty;
    time_to_first_counterexample = None;
  }

let record_program t ~found_counterexample =
  {
    t with
    programs = t.programs + 1;
    programs_with_counterexample =
      (t.programs_with_counterexample + if found_counterexample then 1 else 0);
  }

let record_skipped_program t = { t with skipped_programs = t.skipped_programs + 1 }
let record_crashed_program t = { t with crashed_programs = t.crashed_programs + 1 }
let record_quarantine t = { t with budget_exceeded = t.budget_exceeded + 1 }
let record_divergence t = { t with divergences = t.divergences + 1 }

let record_experiment t ~verdict ?(retries = 0) ?(faults = 0) ~gen_seconds
    ~exe_seconds ~elapsed () =
  let counterexample = verdict = Executor.Distinguishable in
  {
    t with
    experiments = t.experiments + 1;
    counterexamples = (t.counterexamples + if counterexample then 1 else 0);
    inconclusive =
      (t.inconclusive + if verdict = Executor.Inconclusive then 1 else 0);
    retries = t.retries + retries;
    faults_observed = t.faults_observed + faults;
    generation_time = Summary.add t.generation_time gen_seconds;
    execution_time = Summary.add t.execution_time exe_seconds;
    time_to_first_counterexample =
      (match t.time_to_first_counterexample with
      | Some _ as ttc -> ttc
      | None -> if counterexample then Some elapsed else None);
  }

let merge a b =
  {
    programs = a.programs + b.programs;
    programs_with_counterexample =
      a.programs_with_counterexample + b.programs_with_counterexample;
    experiments = a.experiments + b.experiments;
    counterexamples = a.counterexamples + b.counterexamples;
    inconclusive = a.inconclusive + b.inconclusive;
    skipped_programs = a.skipped_programs + b.skipped_programs;
    crashed_programs = a.crashed_programs + b.crashed_programs;
    budget_exceeded = a.budget_exceeded + b.budget_exceeded;
    retries = a.retries + b.retries;
    faults_observed = a.faults_observed + b.faults_observed;
    divergences = a.divergences + b.divergences;
    generation_time = Summary.merge a.generation_time b.generation_time;
    execution_time = Summary.merge a.execution_time b.execution_time;
    time_to_first_counterexample =
      (match (a.time_to_first_counterexample, b.time_to_first_counterexample) with
      | Some x, Some y -> Some (min x y)
      | (Some _ as t), None | None, (Some _ as t) -> t
      | None, None -> None);
  }

let counterexample_rate t =
  if t.experiments = 0 then 0.0
  else float_of_int t.counterexamples /. float_of_int t.experiments

let header =
  [
    "campaign";
    "programs";
    "w/count.";
    "experiments";
    "counterex.";
    "inconcl.";
    "skipped";
    "crashed";
    "budget";
    "retries";
    "faults";
    "avg gen (s)";
    "avg exe (s)";
    "T.T.C. (s)";
  ]

let row ~name t =
  [
    name;
    string_of_int t.programs;
    string_of_int t.programs_with_counterexample;
    string_of_int t.experiments;
    string_of_int t.counterexamples;
    string_of_int t.inconclusive;
    string_of_int t.skipped_programs;
    string_of_int t.crashed_programs;
    string_of_int t.budget_exceeded;
    string_of_int t.retries;
    string_of_int t.faults_observed;
    Printf.sprintf "%.4f" (Summary.mean t.generation_time);
    Printf.sprintf "%.4f" (Summary.mean t.execution_time);
    (match t.time_to_first_counterexample with
    | None -> "-"
    | Some s -> Printf.sprintf "%.2f" s);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>programs: %d (with counterexample: %d, skipped: %d, crashed: %d)@,\
     experiments: %d, counterexamples: %d, inconclusive: %d@,\
     quarantined path pairs: %d, retries: %d, faults observed: %d@,\
     avg generation: %.4fs, avg execution: %.4fs@,\
     time to first counterexample: %s%s@]"
    t.programs t.programs_with_counterexample t.skipped_programs
    t.crashed_programs t.experiments
    t.counterexamples t.inconclusive t.budget_exceeded t.retries
    t.faults_observed
    (Summary.mean t.generation_time)
    (Summary.mean t.execution_time)
    (match t.time_to_first_counterexample with
    | None -> "-"
    | Some s -> Printf.sprintf "%.2fs" s)
    (if t.divergences > 0 then
       Printf.sprintf "\ncross-ISA divergences: %d" t.divergences
     else "")
