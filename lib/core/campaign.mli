(** Fault-tolerant campaign driver: generate programs from a template,
    generate test cases per program through the pipeline, execute every
    test case on the simulated platform, and accumulate Table-1-style
    statistics.

    The driver is built for long, noisy runs: any exception in a
    per-program stage is captured as a recorded failure rather than a
    crash, hard path pairs are quarantined when their SAT budget runs out,
    flaky experiments are retried under a majority-vote policy, and a
    persistently journaled campaign can be resumed after being killed.

    Campaigns are embarrassingly parallel — each generated program is an
    independent synthesize→solve→run→compare unit — and {!run} exploits
    that through a deterministic Domain pool ({!Scamv_util.Pool}): with
    [~jobs:n] the per-program pipelines run on [n] domains while journal
    rows, statistics and progress events are merged strictly in program
    order, so every observable output is identical to a [~jobs:1] run
    under the same seed (see DESIGN.md Sec. 6). *)

type config = {
  name : string;
  isa : Scamv_arch.Isa.t;
      (** guest ISA: stamps every journal row and selects the pipeline's
          lifting/concretization architecture.  Must match the programs
          the template generates. *)
  template : Scamv_gen.Templates.t Scamv_gen.Gen.t;
  setup : Scamv_models.Refinement.t;
  view : Scamv_microarch.Executor.view;
  programs : int;
  tests_per_program : int;
  seed : int64;
  executor : Scamv_microarch.Executor.config;
  pipeline : Scamv_models.Refinement.t -> Pipeline.config;
  sat_budget : Scamv_smt.Sat.budget option;
      (** per-SAT-call caps for every enumeration session; overrides the
          pipeline config's budget when set *)
  portfolio : int;
      (** solver portfolio size (>= 1); see {!Pipeline.config.portfolio}.
          With no [sat_budget] the baseline configuration never exhausts,
          so campaign artifacts are identical for every size *)
  retry : Retry.policy;  (** executor retry/majority-vote policy *)
  faults : Scamv_microarch.Faults.config option;
      (** board-noise fault injection, applied to every executor run *)
  deadline : Scamv_util.Deadline.spec option;
      (** per-program deadline: [Conflicts n] is the deterministic virtual
          deadline (byte-identical output across [jobs] levels),
          [Wall_seconds s] the wall-clock watchdog for service use; expiry
          records the program as crashed and the campaign continues *)
  chaos : Scamv_util.Chaos.t option;
      (** deterministic fault injector arming the worker-kill,
          journal-write and solver-budget chaos sites (share the same
          value with {!Journal.create} so journal sites fire too) *)
  clock : Scamv_util.Stopwatch.clock;
      (** time source for all measured durations;
          {!Scamv_util.Stopwatch.frozen} makes every timing field 0 and
          campaign output fully deterministic (used by the
          reproducibility tests) *)
  cancel : Scamv_util.Deadline.t option;
      (** campaign-level cooperative cancel token (the validation
          service's [DELETE /campaigns/:id]): once another thread calls
          {!Scamv_util.Deadline.cancel} on it, in-flight programs stop at
          their next poll and every remaining program is recorded as
          crashed with reason ["campaign cancelled"] — the campaign
          drains quickly but still returns a complete, journaled
          outcome.  When no per-program [deadline] is set the token goes
          ambient inside workers, so even a long SAT enumeration is
          interrupted at its next conflict. *)
}

val make :
  name:string ->
  ?isa:Scamv_arch.Isa.t ->
  template:Scamv_gen.Templates.t Scamv_gen.Gen.t ->
  setup:Scamv_models.Refinement.t ->
  ?view:Scamv_microarch.Executor.view ->
  ?programs:int ->
  ?tests_per_program:int ->
  ?seed:int64 ->
  ?sat_budget:Scamv_smt.Sat.budget ->
  ?portfolio:int ->
  ?retry:Retry.policy ->
  ?faults:Scamv_microarch.Faults.config ->
  ?deadline:Scamv_util.Deadline.spec ->
  ?chaos:Scamv_util.Chaos.t ->
  ?clock:Scamv_util.Stopwatch.clock ->
  ?cancel:Scamv_util.Deadline.t ->
  unit ->
  config

type outcome = {
  config_name : string;
  stats : Stats.t;
  wall_seconds : float;
  pool_width : int;
      (** worker count the campaign actually ran with (the supplied
          pool's size, or the resolved [jobs]) — schedule metadata, kept
          out of [telemetry] so exports stay byte-identical across
          [jobs] levels *)
  telemetry : Scamv_telemetry.Collector.report;
      (** merged metrics and spans from every executed program (in program
          order) plus the campaign-level spans.  Per-program collectors are
          installed inside the workers, so SAT/SMT, lifter, executor and
          pipeline instrumentation all land here; under
          {!Scamv_util.Stopwatch.frozen} the report (and everything
          {!Scamv_telemetry.Export} derives from it) is byte-identical
          across [jobs] levels.  Programs replayed from a resume journal
          were not re-executed and contribute no telemetry. *)
}

val run :
  ?on_event:(string -> unit) ->
  ?on_record:(Journal.event -> unit) ->
  ?journal:Journal.t ->
  ?resume:string ->
  ?pool:Scamv_util.Pool.t ->
  ?jobs:int ->
  config ->
  outcome
(** Runs the whole campaign.  [on_event] receives one-line progress
    messages (program counts, first counterexample, quarantines,
    failures, ...); every event is appended to [journal] when one is
    supplied.

    [on_record] is the incremental record hook the validation service
    streams from: it receives every {!Journal.event} — including events
    replayed from a [resume] journal — on the calling domain, in program
    order, at the moment the event is merged (i.e. as each program
    completes, not at campaign end).  The sequence of events delivered to
    [on_record] is exactly the sequence recorded into [journal].

    [pool] runs the per-program pipelines on a persistent
    {!Scamv_util.Pool} instead of spawning domains for this call; the
    pool's size then plays the role of [jobs].  Campaign artifacts are
    identical either way — the service uses this to share one warmed-up
    pool across many campaigns.

    [jobs] (default [1]) is the number of worker domains running program
    pipelines concurrently; [0] means all cores
    ({!Scamv_util.Pool.default_jobs}).  Each program consumes a dedicated
    RNG stream split off the campaign seed in program order, and completed
    programs are merged in program order on the calling domain, so journal
    contents, checkpoint prefixes, final statistics and the sequence of
    [on_event] lines do not depend on [jobs]; only the timing *values*
    (seconds columns, time to first counterexample) reflect the actual
    schedule.  [on_event] and [journal] are only ever touched from the
    calling domain.

    [resume] names a journal written by an earlier (killed) run of the
    same configuration: programs that completed there are replayed into
    the statistics (and re-recorded into [journal]) instead of re-executed,
    and the campaign continues from the first program not known to have
    finished.  The journal is loaded {e tolerantly} ({!Journal.load}): a
    torn or corrupted tail — a SIGKILL mid-write, a chaos-poisoned
    record — is dropped, reported through [on_event] and counted in the
    [journal.recovered_records] telemetry, and the affected program is
    simply re-run.  Because all per-program randomness is split off the
    campaign seed up front, a resumed run produces final statistics
    identical to an uninterrupted one.

    Supervision: a worker-domain crash (chaos kill, stack overflow) is
    captured by {!Scamv_util.Pool.run_supervised} — the domain is
    respawned ([pool.restarts] telemetry), the lost program is recorded as
    a {!Journal.Crashed} event and counted in
    {!Stats.t.crashed_programs}, and the campaign continues.  Deadline
    expiry ([deadline.hits] telemetry) ends only the affected program.
    [Out_of_memory] and [Sys.Break] still abort the whole campaign. *)
