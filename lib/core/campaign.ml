module Gen = Scamv_gen.Gen
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement
module Executor = Scamv_microarch.Executor
module Faults = Scamv_microarch.Faults
module Sat = Scamv_smt.Sat
module Splitmix = Scamv_util.Splitmix
module Stopwatch = Scamv_util.Stopwatch
module Pool = Scamv_util.Pool
module Deadline = Scamv_util.Deadline
module Chaos = Scamv_util.Chaos
module Collector = Scamv_telemetry.Collector
module Isa = Scamv_arch.Isa

type config = {
  name : string;
  isa : Isa.t;
  template : Templates.t Gen.t;
  setup : Refinement.t;
  view : Executor.view;
  programs : int;
  tests_per_program : int;
  seed : int64;
  executor : Executor.config;
  pipeline : Refinement.t -> Pipeline.config;
  sat_budget : Sat.budget option;
  portfolio : int;
  retry : Retry.policy;
  faults : Faults.config option;
  deadline : Deadline.spec option;
  chaos : Chaos.t option;
  clock : Stopwatch.clock;
  cancel : Deadline.t option;
}

let make ~name ?(isa = Isa.Aarch64) ~template ~setup
    ?(view = Executor.Full_cache) ?(programs = 50)
    ?(tests_per_program = 30) ?(seed = 2021L) ?sat_budget ?(portfolio = 1)
    ?(retry = Retry.default) ?faults ?deadline ?chaos
    ?(clock = Stopwatch.wall) ?cancel () =
  if portfolio < 1 then invalid_arg "Campaign.make: portfolio must be >= 1";
  {
    name;
    isa;
    template;
    setup;
    view;
    programs;
    tests_per_program;
    seed;
    executor = Executor.default_config ~view ();
    pipeline = Pipeline.default_config;
    sat_budget;
    portfolio;
    retry;
    faults;
    deadline;
    chaos;
    clock;
    cancel;
  }

type outcome = {
  config_name : string;
  stats : Stats.t;
  wall_seconds : float;
  pool_width : int;
  telemetry : Collector.report;
}

(* ---- checkpoint/resume ----

   A journal written with incremental persistence doubles as a checkpoint:
   every event of every program is on disk the moment it happens.  On
   resume we treat a program as completed iff a *later* program has
   started (its events appear in the journal) — the last program seen may
   have been interrupted mid-flight, so it is re-run from scratch.  All
   per-program randomness is split off the campaign stream before the
   program runs, so re-running it reproduces exactly the events the
   interrupted run would have produced, and the final statistics match an
   uninterrupted campaign. *)

let load_checkpoint path =
  if not (Sys.file_exists path) then (0, [], None)
  else begin
    (* Tolerant load: a SIGKILLed campaign can leave a torn or
       chaos-poisoned record at the tail.  The loader keeps the longest
       clean prefix; whatever it dropped belonged to the last program
       seen, which is re-run anyway. *)
    let j, recovery = Journal.load ~path in
    let events = Journal.events j in
    let restart =
      List.fold_left (fun m ev -> max m (Journal.event_program_index ev)) (-1) events
    in
    if restart < 0 then (0, [], Some recovery)
    else
      ( restart,
        List.filter (fun ev -> Journal.event_program_index ev < restart) events,
        Some recovery )
  end

let replay stats journal watch ~on_record events =
  List.iter
    (fun ev ->
      Option.iter (fun j -> Journal.record_event j ev) journal;
      on_record ev;
      match ev with
      | Journal.Experiment e ->
        stats :=
          Stats.record_experiment !stats ~verdict:e.Journal.verdict
            ~retries:e.Journal.retries ~faults:e.Journal.faults
            ~gen_seconds:e.Journal.generation_seconds
            ~exe_seconds:e.Journal.execution_seconds
            ~elapsed:(Stopwatch.elapsed_s watch) ()
      | Journal.Quarantined _ -> stats := Stats.record_quarantine !stats
      | Journal.Program_failed _ -> stats := Stats.record_skipped_program !stats
      | Journal.Crashed _ -> stats := Stats.record_crashed_program !stats
      | Journal.Diverged _ -> stats := Stats.record_divergence !stats)
    events

(* ---- per-program pipeline (worker side) ----

   One program's whole synthesize→solve→run→compare unit, exactly as the
   sequential engine ran it, except that journal/stats/progress effects are
   buffered as an ordered event list instead of applied directly: workers
   run on pool domains and must not touch shared state (see Pool).  Every
   source of randomness is drawn from [program_rng], a stream split off the
   campaign seed in program order before any program runs, so the returned
   events depend only on (config, campaign seed, program index) — never on
   scheduling. *)

let run_program cfg pipeline_cfg ~program_index program_rng :
    Journal.event list * Collector.report =
  let events_rev = ref [] in
  let emit ev = events_rev := ev :: !events_rev in
  (* Each program gets its own collector (workers must not share mutable
     state across domains; see Pool): instrumented code anywhere below —
     solver, lifter, executor — records into it via the ambient API, and
     the frozen report is merged consumer-side in program order. *)
  let collector =
    Collector.create ~clock:cfg.clock ~track:(program_index + 1) ()
  in
  (* One deadline token per program: a virtual (conflict-count) deadline
     gives every program the same work allowance regardless of scheduling,
     and a wall-clock one bounds each program's real time.  The token is
     ambient for the whole program body, so the SAT search, the blaster
     and the pipeline all poll it. *)
  let deadline =
    Option.map (fun spec -> Deadline.create ~clock:cfg.clock spec) cfg.deadline
  in
  (* Campaign-level cooperative cancel (the service's DELETE): when no
     per-program deadline claims the ambient slot, the cancel token itself
     goes ambient so the SAT search and blaster poll it and an in-flight
     program stops mid-enumeration; either way the test-case loop below
     checks it at every iteration. *)
  let with_deadline f =
    match (deadline, cfg.cancel) with
    | Some d, _ -> Deadline.with_current d f
    | None, Some c -> Deadline.with_current c f
    | None, None -> f ()
  in
  let cancelled () =
    match cfg.cancel with Some c -> Deadline.expired c | None -> false
  in
  (* Any exception in any stage — generation, symbolic execution, relation
     synthesis, SMT enumeration, execution — abandons this program with a
     recorded failure instead of killing the campaign: one pathological
     program must not cost hours of results. *)
  Collector.with_current collector (fun () ->
  Collector.span "program" ~args:[ ("index", string_of_int program_index) ]
  @@ fun () ->
  with_deadline @@ fun () ->
  (try
     if cancelled () then raise (Deadline.Expired "campaign cancelled");
     let { Templates.program; template_name }, program_rng =
       Collector.span "generate" (fun () -> Gen.run cfg.template program_rng)
     in
     let pipeline_seed, program_rng = Splitmix.next program_rng in
     let program_rng = ref program_rng in
     let session, prepare_seconds =
       Stopwatch.time ~clock:cfg.clock (fun () ->
           Pipeline.prepare ~seed:pipeline_seed pipeline_cfg program)
     in
     let continue_tests = ref true in
     let test_index = ref 0 in
     (* The per-program preparation cost (symbolic execution + relation
        synthesis) is charged to the first test case, matching how the
        paper reports average generation time per experiment. *)
     let carry_gen_cost = ref prepare_seconds in
     while !continue_tests && !test_index < cfg.tests_per_program do
       if cancelled () then raise (Deadline.Expired "campaign cancelled");
       let step, gen_seconds =
         Stopwatch.time ~clock:cfg.clock (fun () -> Pipeline.next_test_case session)
       in
       match step with
       | Pipeline.Exhausted -> continue_tests := false
       | Pipeline.Crashed { reason } ->
         (* The program's deadline expired mid-enumeration: record what
            was lost and stop drawing test cases — everything produced so
            far stays in the event buffer. *)
         let reason = if cancelled () then "campaign cancelled" else reason in
         Collector.incr "deadline.hits";
         continue_tests := false;
         emit (Journal.Crashed { campaign = cfg.name; program_index; reason })
       | Pipeline.Quarantined { pair; reason } ->
         (* The pair is out of the queue; its generation time is carried
            into the next successful test case.  No test slot is
            consumed. *)
         carry_gen_cost := !carry_gen_cost +. gen_seconds;
         Collector.incr "campaign.quarantined";
         emit
           (Journal.Quarantined
              { campaign = cfg.name; program_index; pair; reason })
       | Pipeline.Case tc ->
         let experiment =
           {
             Executor.program;
             state1 = tc.Pipeline.state1;
             state2 = tc.Pipeline.state2;
             train = tc.Pipeline.train;
           }
         in
         let retry_outcome, exe_seconds =
           Stopwatch.time ~clock:cfg.clock (fun () ->
               Collector.span "execute"
                 ~args:[ ("test", string_of_int !test_index) ]
                 (fun () ->
                   Retry.execute cfg.retry (fun ~attempt:_ ->
                       let exp_seed, program_rng' = Splitmix.next !program_rng in
                       program_rng := program_rng';
                       Executor.run_observed ~seed:exp_seed ?faults:cfg.faults
                         cfg.executor experiment)))
         in
         let total_gen_seconds = gen_seconds +. !carry_gen_cost in
         carry_gen_cost := 0.0;
         (* Phase histograms mirror the generation/execution columns of the
            statistics exactly (same per-experiment values), so the bench
            harness can read phase totals from the registry. *)
         Collector.observe "phase.generation.seconds" total_gen_seconds;
         Collector.observe "phase.execution.seconds" exe_seconds;
         Collector.incr "campaign.experiments";
         Collector.add "campaign.retries" retry_outcome.Retry.retries;
         if retry_outcome.Retry.verdict = Executor.Distinguishable then
           Collector.incr "campaign.counterexamples";
         emit
           (Journal.Experiment
              {
                Journal.campaign = cfg.name;
                program_index;
                test_index = !test_index;
                template = template_name;
                path_pair = tc.Pipeline.pair;
                verdict = retry_outcome.Retry.verdict;
                generation_seconds = total_gen_seconds;
                execution_seconds = exe_seconds;
                retries = retry_outcome.Retry.retries;
                faults = retry_outcome.Retry.faults;
                isa = cfg.isa;
              });
         incr test_index
     done
   with
  | (Stack_overflow | Out_of_memory | Sys.Break) as fatal ->
    (* Resource exhaustion of the whole process and user interrupts must
       not be swallowed as per-program noise.  (Stack_overflow is then
       classified as a worker crash by the supervised pool: the program is
       recorded as crashed and the campaign continues.) *)
    raise fatal
  | Deadline.Expired reason ->
    (* Expiry surfacing outside the pipeline's own handler — during
       prepare, blasting, or a phase boundary poll.  A campaign-level
       cancel travels the same path; its reason is normalized so the
       journal reads the same wherever cancellation was observed. *)
    let reason = if cancelled () then "campaign cancelled" else reason in
    Collector.incr "deadline.hits";
    emit (Journal.Crashed { campaign = cfg.name; program_index; reason })
  | exn ->
    Collector.incr "campaign.program_failures";
    emit
      (Journal.Program_failed
         { campaign = cfg.name; program_index; reason = Printexc.to_string exn })));
  (List.rev !events_rev, Collector.report collector)

(* ---- merge (consumer side) ----

   Fold one completed program's event buffer into the journal, statistics
   and progress stream.  The pool delivers buffers in program order, so
   everything observable — journal CSV bytes, checkpoint prefixes, final
   statistics, progress lines — is identical whatever [jobs] was. *)

let merge_program cfg ~on_event ~on_record ~journal ~watch ~stats ~program_index
    events =
  let found = ref false in
  List.iter
    (fun ev ->
      Option.iter (fun j -> Journal.record_event j ev) journal;
      on_record ev;
      match ev with
      | Journal.Experiment e ->
        let verdict = e.Journal.verdict in
        let was_first =
          verdict = Executor.Distinguishable && (!stats).Stats.counterexamples = 0
        in
        let elapsed = Stopwatch.elapsed_s watch in
        stats :=
          Stats.record_experiment !stats ~verdict ~retries:e.Journal.retries
            ~faults:e.Journal.faults ~gen_seconds:e.Journal.generation_seconds
            ~exe_seconds:e.Journal.execution_seconds ~elapsed ();
        if verdict = Executor.Distinguishable then found := true;
        if was_first then
          on_event
            (Printf.sprintf
               "[%s] first counterexample after %.2fs (program %d, test %d)"
               cfg.name elapsed program_index e.Journal.test_index)
      | Journal.Quarantined { pair; reason; _ } ->
        stats := Stats.record_quarantine !stats;
        on_event
          (Printf.sprintf "[%s] program %d: quarantined path pair (%d,%d): %s"
             cfg.name program_index (fst pair) (snd pair) reason)
      | Journal.Program_failed { reason; _ } ->
        stats := Stats.record_skipped_program !stats;
        on_event
          (Printf.sprintf "[%s] program %d failed: %s" cfg.name program_index reason)
      | Journal.Crashed { reason; _ } ->
        stats := Stats.record_crashed_program !stats;
        on_event
          (Printf.sprintf "[%s] program %d crashed: %s" cfg.name program_index
             reason)
      | Journal.Diverged { pair; aarch64; riscv; _ } ->
        stats := Stats.record_divergence !stats;
        on_event
          (Printf.sprintf
             "[%s] program %d: cross-ISA divergence on path pair (%d,%d): aarch64=%s riscv=%s"
             cfg.name program_index (fst pair) (snd pair)
             (Journal.verdict_string aarch64) (Journal.verdict_string riscv)))
    events;
  stats := Stats.record_program !stats ~found_counterexample:!found;
  if (program_index + 1) mod 25 = 0 then
    on_event
      (Printf.sprintf "[%s] %d/%d programs, %d experiments, %d counterexamples"
         cfg.name (program_index + 1) cfg.programs (!stats).Stats.experiments
         (!stats).Stats.counterexamples)

let run ?(on_event = fun _ -> ()) ?(on_record = fun (_ : Journal.event) -> ())
    ?journal ?resume ?pool ?(jobs = 1) cfg =
  (* When a persistent pool is supplied (the validation service runs every
     campaign on one long-lived pool), its size plays the role of [jobs];
     determinism is unaffected because the batch protocol is identical. *)
  let jobs =
    match pool with Some p -> Pool.size p | None -> Pool.resolve_jobs jobs
  in
  let watch = Stopwatch.start ~clock:cfg.clock () in
  let stats = ref Stats.empty in
  let pipeline_cfg =
    let pc = { (cfg.pipeline cfg.setup) with Pipeline.isa = cfg.isa } in
    let pc =
      match cfg.sat_budget with
      | None -> pc
      | Some b -> { pc with Pipeline.budget = Some b }
    in
    { pc with Pipeline.chaos = cfg.chaos; Pipeline.portfolio = cfg.portfolio }
  in
  (* Split one RNG stream per program off the campaign seed, in program
     order, before anything runs: program i's randomness is a pure function
     of (seed, i), independent of resume points and worker scheduling. *)
  let streams =
    let rng = ref (Splitmix.of_seed cfg.seed) in
    Array.init cfg.programs (fun _ ->
        let stream, rng' = Splitmix.split !rng in
        rng := rng';
        stream)
  in
  let start_index, replayed, recovery =
    match resume with
    | None -> (0, [], None)
    | Some path -> load_checkpoint path
  in
  (match recovery with
  | Some { Journal.records; dropped_bytes } when dropped_bytes > 0 ->
    on_event
      (Printf.sprintf
         "[%s] resume journal had a damaged tail: kept %d clean record(s), dropped %d byte(s)"
         cfg.name records dropped_bytes)
  | _ -> ());
  let start_index = min start_index cfg.programs in
  if start_index > 0 then begin
    replay stats journal watch ~on_record replayed;
    for i = 0 to start_index - 1 do
      let found =
        List.exists
          (function
            | Journal.Experiment e ->
              e.Journal.program_index = i && e.Journal.verdict = Executor.Distinguishable
            | _ -> false)
          replayed
      in
      stats := Stats.record_program !stats ~found_counterexample:found
    done;
    on_event
      (Printf.sprintf "[%s] resumed at program %d (%d events replayed)" cfg.name
         start_index (List.length replayed))
  end;
  (* Campaign-level spans (track 0) live in their own collector on the
     calling domain; per-program reports arrive with the event buffers and
     are accumulated here in program order.  Replayed (resumed) programs
     were not re-executed, so they contribute no telemetry. *)
  let campaign_collector = Collector.create ~clock:cfg.clock ~track:0 () in
  let reports_rev = ref [] in
  (* Supervision policy: an exception that escapes run_program's own
     net — an injected chaos kill, a stack overflow — is a worker-domain
     crash.  The pool respawns the domain; here the lost program becomes a
     Crashed journal event feeding the normal quarantine/stats path, and
     the campaign carries on.  Whole-process conditions stay fatal. *)
  let worker_fatal = function
    | Chaos.Killed _ | Stack_overflow -> true
    | _ -> false
  in
  Collector.with_current campaign_collector (fun () ->
      Collector.span "campaign" ~args:[ ("name", cfg.name) ] (fun () ->
          (match recovery with
          | Some { Journal.records; dropped_bytes } ->
            Collector.add "journal.recovered_records" records;
            if dropped_bytes > 0 then Collector.incr "journal.recovered_tails"
          | None -> ());
          let tasks = cfg.programs - start_index in
          let on_restart _ = Collector.incr "pool.restarts" in
          let worker k =
            let program_index = start_index + k in
            (* Chaos site "pool.worker": simulate a worker-domain crash
               before this program runs.  Keyed by program index, so the
               set of killed programs is independent of jobs level and
               resume point. *)
            (match cfg.chaos with
            | Some c ->
              Chaos.kill c ~site:"pool.worker" ~key:(Int64.of_int program_index)
            | None -> ());
            run_program cfg pipeline_cfg ~program_index streams.(program_index)
          in
          let consume k result =
            let program_index = start_index + k in
            match result with
            | Ok (events, report) ->
              reports_rev := report :: !reports_rev;
              merge_program cfg ~on_event ~on_record ~journal ~watch ~stats
                ~program_index events
            | Error { Pool.exn = (Out_of_memory | Sys.Break) as fatal; backtrace }
              ->
              (* Whole-process conditions abort the campaign (the
                 journal holds a resumable checkpoint). *)
              Printexc.raise_with_backtrace fatal backtrace
            | Error { Pool.exn; _ } ->
              (match exn with
              | Chaos.Killed _ -> Collector.incr "chaos.injections"
              | _ -> ());
              let reason =
                match exn with
                | Chaos.Killed site ->
                  Printf.sprintf "worker killed by chaos injection (%s)" site
                | exn -> "worker crashed: " ^ Printexc.to_string exn
              in
              merge_program cfg ~on_event ~on_record ~journal ~watch ~stats
                ~program_index
                [ Journal.Crashed { campaign = cfg.name; program_index; reason } ]
          in
          match pool with
          | Some p ->
            Pool.exec p ~tasks ~fatal:worker_fatal ~on_restart ~worker ~consume ()
          | None ->
            Pool.run_supervised ~jobs ~tasks ~fatal:worker_fatal ~on_restart
              ~worker ~consume ()));
  let telemetry =
    List.fold_left Collector.merge_reports
      (Collector.report campaign_collector)
      (List.rev !reports_rev)
  in
  {
    config_name = cfg.name;
    stats = !stats;
    wall_seconds = Stopwatch.elapsed_s watch;
    pool_width = jobs;
    telemetry;
  }
