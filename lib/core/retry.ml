module Executor = Scamv_microarch.Executor
module Splitmix = Scamv_util.Splitmix

(* Retry with majority voting, the software analogue of the paper's
   practice of re-running flaky experiments on the boards.  Attempt costs
   grow exponentially (attempt i costs 2^i units) so a persistently noisy
   experiment cannot eat a campaign's time the way an honest retry loop
   would: the budget admits ~log2(budget) attempts, not budget attempts. *)

(* ---- escalating backoff with deterministic seeded jitter ----

   Retrying against a shared flaky resource (a board farm, a service)
   wants spacing between attempts, and jitter so simultaneous campaigns
   don't retry in lockstep.  The jitter here is *seeded*, not ambient
   randomness: the delay for (policy, seed, attempt) is a pure function,
   so a retry schedule is reproducible from the campaign seed — the same
   property every other random choice in the reproduction has. *)

type backoff = {
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let backoff ?(base_delay = 0.05) ?(multiplier = 2.0) ?(max_delay = 5.0)
    ?(jitter = 0.25) () =
  if base_delay < 0.0 then invalid_arg "Retry.backoff: base_delay must be >= 0";
  if multiplier < 1.0 then invalid_arg "Retry.backoff: multiplier must be >= 1";
  if max_delay < base_delay then
    invalid_arg "Retry.backoff: max_delay must be >= base_delay";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Retry.backoff: jitter must be in [0, 1]";
  { base_delay; multiplier; max_delay; jitter }

let golden = 0x9E3779B97F4A7C15L

let backoff_delay b ~seed ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_delay: attempt must be >= 1";
  let raw = b.base_delay *. (b.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw b.max_delay in
  if b.jitter = 0.0 then capped
  else begin
    (* One throwaway stream per (seed, attempt): the draw is independent
       of how many other draws happened, like Chaos decisions. *)
    let mixed = Int64.add seed (Int64.mul (Int64.of_int attempt) golden) in
    let u, _ = Splitmix.float (Splitmix.of_seed mixed) in
    capped *. (1.0 -. b.jitter +. (b.jitter *. u))
  end

let backoff_schedule b ~seed ~attempts =
  if attempts < 0 then invalid_arg "Retry.backoff_schedule: attempts must be >= 0";
  List.init attempts (fun i -> backoff_delay b ~seed ~attempt:(i + 1))

type policy = {
  max_attempts : int;
  confirm : int;
  attempt_budget : int;
  backoff : backoff option;
}

let default =
  { max_attempts = 1; confirm = 1; attempt_budget = max_int; backoff = None }

let make ?(max_attempts = 1) ?(confirm = 1) ?(attempt_budget = max_int)
    ?backoff () =
  if max_attempts < 1 then invalid_arg "Retry.make: max_attempts must be >= 1";
  if confirm < 1 then invalid_arg "Retry.make: confirm must be >= 1";
  if attempt_budget < 1 then invalid_arg "Retry.make: attempt_budget must be >= 1";
  { max_attempts; confirm; attempt_budget; backoff }

type outcome = {
  verdict : Executor.verdict;
  attempts : int;
  retries : int;
  faults : int;
  backoff_seconds : float;
}

let execute ?(seed = 0L) ?(sleep = fun (_ : float) -> ()) policy run =
  let dist = ref 0 and indist = ref 0 and inconclusive = ref 0 in
  let attempts = ref 0 in
  let faults = ref 0 in
  let cost = ref 0 in
  let slept = ref 0.0 in
  let confirmed () = !dist >= policy.confirm || !indist >= policy.confirm in
  let affordable () =
    (* The first attempt is always allowed; attempt i costs 2^i units. *)
    !attempts = 0
    ||
    let next_cost = 1 lsl min !attempts 62 in
    !cost + next_cost <= policy.attempt_budget
  in
  while (not (confirmed ())) && !attempts < policy.max_attempts && affordable () do
    (match policy.backoff with
    | Some b when !attempts > 0 ->
      let d = backoff_delay b ~seed ~attempt:!attempts in
      slept := !slept +. d;
      sleep d
    | _ -> ());
    cost := !cost + (1 lsl min !attempts 62);
    let verdict, fault_count = run ~attempt:!attempts in
    incr attempts;
    faults := !faults + fault_count;
    match verdict with
    | Executor.Distinguishable -> incr dist
    | Executor.Indistinguishable -> incr indist
    | Executor.Inconclusive -> incr inconclusive
  done;
  (* Majority vote over the conclusive attempts; persistent disagreement
     (or nothing conclusive at all) downgrades to Inconclusive. *)
  let verdict =
    if !dist > !indist then Executor.Distinguishable
    else if !indist > !dist then Executor.Indistinguishable
    else Executor.Inconclusive
  in
  {
    verdict;
    attempts = !attempts;
    retries = max 0 (!attempts - 1);
    faults = !faults;
    backoff_seconds = !slept;
  }
