module Executor = Scamv_microarch.Executor

(* Retry with majority voting, the software analogue of the paper's
   practice of re-running flaky experiments on the boards.  Attempt costs
   grow exponentially (attempt i costs 2^i units) so a persistently noisy
   experiment cannot eat a campaign's time the way an honest retry loop
   would: the budget admits ~log2(budget) attempts, not budget attempts. *)

type policy = {
  max_attempts : int;
  confirm : int;
  attempt_budget : int;
}

let default = { max_attempts = 1; confirm = 1; attempt_budget = max_int }

let make ?(max_attempts = 1) ?(confirm = 1) ?(attempt_budget = max_int) () =
  if max_attempts < 1 then invalid_arg "Retry.make: max_attempts must be >= 1";
  if confirm < 1 then invalid_arg "Retry.make: confirm must be >= 1";
  if attempt_budget < 1 then invalid_arg "Retry.make: attempt_budget must be >= 1";
  { max_attempts; confirm; attempt_budget }

type outcome = {
  verdict : Executor.verdict;
  attempts : int;
  retries : int;
  faults : int;
}

let execute policy run =
  let dist = ref 0 and indist = ref 0 and inconclusive = ref 0 in
  let attempts = ref 0 in
  let faults = ref 0 in
  let cost = ref 0 in
  let confirmed () = !dist >= policy.confirm || !indist >= policy.confirm in
  let affordable () =
    (* The first attempt is always allowed; attempt i costs 2^i units. *)
    !attempts = 0
    ||
    let next_cost = 1 lsl min !attempts 62 in
    !cost + next_cost <= policy.attempt_budget
  in
  while (not (confirmed ())) && !attempts < policy.max_attempts && affordable () do
    cost := !cost + (1 lsl min !attempts 62);
    let verdict, fault_count = run ~attempt:!attempts in
    incr attempts;
    faults := !faults + fault_count;
    match verdict with
    | Executor.Distinguishable -> incr dist
    | Executor.Indistinguishable -> incr indist
    | Executor.Inconclusive -> incr inconclusive
  done;
  (* Majority vote over the conclusive attempts; persistent disagreement
     (or nothing conclusive at all) downgrades to Inconclusive. *)
  let verdict =
    if !dist > !indist then Executor.Distinguishable
    else if !indist > !dist then Executor.Indistinguishable
    else Executor.Inconclusive
  in
  { verdict; attempts = !attempts; retries = max 0 (!attempts - 1); faults = !faults }
