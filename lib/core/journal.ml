module Executor = Scamv_microarch.Executor
module Isa = Scamv_arch.Isa
module Crc32 = Scamv_util.Crc32
module Chaos = Scamv_util.Chaos

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;
  verdict : Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
  retries : int;
  faults : int;
  isa : Isa.t;
}

type event =
  | Experiment of entry
  | Quarantined of {
      campaign : string;
      program_index : int;
      pair : int * int;
      reason : string;
    }
  | Program_failed of { campaign : string; program_index : int; reason : string }
  | Crashed of { campaign : string; program_index : int; reason : string }
  | Diverged of {
      campaign : string;
      program_index : int;
      pair : int * int;
      aarch64 : Executor.verdict;
      riscv : Executor.verdict;
    }

let event_program_index = function
  | Experiment e -> e.program_index
  | Quarantined q -> q.program_index
  | Program_failed f -> f.program_index
  | Crashed c -> c.program_index
  | Diverged d -> d.program_index

type t = {
  mutable events_rev : event list;
  mutable count : int;  (* experiments only *)
  path : string option;
  chaos : Chaos.t option;
  mutable persisted : int;  (* records framed so far (chaos keying) *)
  pending : Buffer.t;  (* frames withheld by an injected write delay *)
  mutable oc : out_channel option;  (* opened lazily on first record *)
}

let create ?path ?chaos () =
  {
    events_rev = [];
    count = 0;
    path;
    chaos;
    persisted = 0;
    pending = Buffer.create 256;
    oc = None;
  }

(* ---- CSV row rendering ---- *)

let verdict_string = function
  | Executor.Distinguishable -> "distinguishable"
  | Executor.Indistinguishable -> "indistinguishable"
  | Executor.Inconclusive -> "inconclusive"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_string v)

let quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let csv_header =
  "campaign,kind,program,test,template,path1,path2,verdict,gen_seconds,exe_seconds,retries,faults,reason\n"

let event_row ev =
  match ev with
  | Experiment e ->
    (* The ISA rides in a 14th column appended only for non-AArch64 rows,
       so every journal ever written before the column existed — and every
       AArch64 row written after — keeps the exact same 13-field bytes. *)
    let isa_suffix =
      match e.isa with Isa.Aarch64 -> "" | isa -> "," ^ Isa.to_string isa
    in
    Printf.sprintf "%s,experiment,%d,%d,%s,%d,%d,%s,%.6f,%.6f,%d,%d,%s\n"
      (quote e.campaign) e.program_index e.test_index (quote e.template)
      (fst e.path_pair) (snd e.path_pair) (verdict_string e.verdict)
      e.generation_seconds e.execution_seconds e.retries e.faults isa_suffix
  | Quarantined q ->
    Printf.sprintf "%s,quarantined,%d,,,%d,%d,,,,,,%s\n" (quote q.campaign)
      q.program_index (fst q.pair) (snd q.pair) (quote q.reason)
  | Program_failed f ->
    Printf.sprintf "%s,program-failed,%d,,,,,,,,,,%s\n" (quote f.campaign)
      f.program_index (quote f.reason)
  | Crashed c ->
    Printf.sprintf "%s,crashed,%d,,,,,,,,,,%s\n" (quote c.campaign)
      c.program_index (quote c.reason)
  | Diverged d ->
    (* The AArch64 verdict takes the verdict column; the RISC-V verdict
       rides in the reason column (both render as verdict words). *)
    Printf.sprintf "%s,diverged,%d,,,%d,%d,%s,,,,,%s\n" (quote d.campaign)
      d.program_index (fst d.pair) (snd d.pair) (verdict_string d.aarch64)
      (verdict_string d.riscv)

(* ---- v2 on-disk framing ----

   The incremental on-disk format frames each CSV row (sans trailing
   newline) as

     R <payload-length> <crc32-hex>\n<payload>\n

   after a magic first line.  Length prefix and checksum make a torn or
   corrupted tail detectable: the loader keeps the longest clean prefix of
   records and reports what it dropped, instead of failing to parse — the
   property [--resume] relies on after a mid-write kill. *)

let magic = "scamv-journal v2"

let frame ?(corrupt_crc = false) payload =
  let crc = Crc32.string payload in
  let crc = if corrupt_crc then crc lxor 0xFF else crc in
  Printf.sprintf "R %d %s\n%s\n" (String.length payload) (Crc32.to_hex crc)
    payload

let event_payload ev =
  let row = event_row ev in
  (* rows always end in '\n'; the frame supplies its own terminator *)
  String.sub row 0 (String.length row - 1)

(* ---- recording (with optional append-to-disk persistence) ---- *)

let persist t ev =
  match t.path with
  | None -> ()
  | Some path ->
    let oc =
      match t.oc with
      | Some oc -> oc
      | None ->
        (* Lazy open: the file is only (re)created once something is
           actually recorded, so a resume source named as the output path
           is read in full before being truncated. *)
        let oc = open_out_bin path in
        output_string oc (magic ^ "\n");
        t.oc <- Some oc;
        oc
    in
    let index = Int64.of_int t.persisted in
    t.persisted <- t.persisted + 1;
    let injected site =
      match t.chaos with
      | None -> false
      | Some c ->
        let hit = Chaos.roll c ~site ~key:index in
        if hit then Scamv_telemetry.Collector.incr "chaos.injections";
        hit
    in
    (* Chaos: poison corrupts this record's checksum in place (recovery
       must drop it and everything after it); delay withholds the frame
       from the channel until the next undelayed record, widening the
       torn-tail window a crash can hit.  Neither changes the bytes a
       surviving run eventually writes, so chaos journals stay
       byte-identical across jobs levels. *)
    let corrupt_crc = injected "journal.poison" in
    Buffer.add_string t.pending (frame ~corrupt_crc (event_payload ev));
    if not (injected "journal.delay") then begin
      Buffer.output_buffer oc t.pending;
      Buffer.clear t.pending;
      flush oc
    end

let record_event t ev =
  t.events_rev <- ev :: t.events_rev;
  (match ev with Experiment _ -> t.count <- t.count + 1 | _ -> ());
  persist t ev

let record t e = record_event t (Experiment e)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    if Buffer.length t.pending > 0 then begin
      Buffer.output_buffer oc t.pending;
      Buffer.clear t.pending
    end;
    close_out oc;
    t.oc <- None

let events t = List.rev t.events_rev

let entries t =
  List.filter_map (function Experiment e -> Some e | _ -> None) (events t)

let length t = t.count

let counterexamples t =
  List.filter (fun e -> e.verdict = Executor.Distinguishable) (entries t)

let verdict_counts t =
  List.fold_left
    (fun (d, i, u) e ->
      match e.verdict with
      | Executor.Distinguishable -> (d + 1, i, u)
      | Executor.Indistinguishable -> (d, i + 1, u)
      | Executor.Inconclusive -> (d, i, u + 1))
    (0, 0, 0) (entries t)

(* ---- JSON rendering (the service wire format) ----

   One JSON object per event, field order fixed, every number integral or
   printed via the Json emitter — so the rendered bytes are a pure
   function of the event and the validation service can assert that a
   streamed campaign is byte-identical to a batch run by comparing these
   strings directly. *)

let event_to_json ev =
  let module J = Scamv_util.Json in
  match ev with
  | Experiment e ->
    J.Obj
      ([
        ("kind", J.Str "experiment");
        ("campaign", J.Str e.campaign);
        ("program", J.Num (float_of_int e.program_index));
        ("test", J.Num (float_of_int e.test_index));
        ("template", J.Str e.template);
        ("path1", J.Num (float_of_int (fst e.path_pair)));
        ("path2", J.Num (float_of_int (snd e.path_pair)));
        ("verdict", J.Str (verdict_string e.verdict));
        ("gen_seconds", J.Num e.generation_seconds);
        ("exe_seconds", J.Num e.execution_seconds);
        ("retries", J.Num (float_of_int e.retries));
        ("faults", J.Num (float_of_int e.faults));
      ]
      (* appended last so AArch64 streams keep their historical bytes *)
      @ (match e.isa with
        | Isa.Aarch64 -> []
        | isa -> [ ("isa", J.Str (Isa.to_string isa)) ]))
  | Quarantined q ->
    J.Obj
      [
        ("kind", J.Str "quarantined");
        ("campaign", J.Str q.campaign);
        ("program", J.Num (float_of_int q.program_index));
        ("path1", J.Num (float_of_int (fst q.pair)));
        ("path2", J.Num (float_of_int (snd q.pair)));
        ("reason", J.Str q.reason);
      ]
  | Program_failed f ->
    J.Obj
      [
        ("kind", J.Str "program-failed");
        ("campaign", J.Str f.campaign);
        ("program", J.Num (float_of_int f.program_index));
        ("reason", J.Str f.reason);
      ]
  | Crashed c ->
    J.Obj
      [
        ("kind", J.Str "crashed");
        ("campaign", J.Str c.campaign);
        ("program", J.Num (float_of_int c.program_index));
        ("reason", J.Str c.reason);
      ]
  | Diverged d ->
    J.Obj
      [
        ("kind", J.Str "diverged");
        ("campaign", J.Str d.campaign);
        ("program", J.Num (float_of_int d.program_index));
        ("path1", J.Num (float_of_int (fst d.pair)));
        ("path2", J.Num (float_of_int (snd d.pair)));
        ("aarch64", J.Str (verdict_string d.aarch64));
        ("riscv", J.Str (verdict_string d.riscv));
      ]

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  List.iter (fun ev -> Buffer.add_string buf (event_row ev)) (events t);
  Buffer.contents buf

let to_journal_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ "\n");
  List.iter (fun ev -> Buffer.add_string buf (frame (event_payload ev))) (events t);
  Buffer.contents buf

(* Checkpoints are written atomically: the content lands in a temp file in
   the destination directory and is renamed over the target, so a crash
   mid-checkpoint leaves either the old complete file or the new one,
   never a torn hybrid. *)
let write_atomic ~path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".scamv-journal" ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      Sys.rename tmp path)

let write_csv t ~path = write_atomic ~path (to_csv t)
let write_journal t ~path = write_atomic ~path (to_journal_string t)

(* ---- parsing ---- *)

exception Parse_error of string

(* Quote-aware record splitter: fields may be double-quoted, with [""] as
   the escaped quote; quoted fields may contain commas and newlines. *)
let parse_records content =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 64 in
  let n = String.length content in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = content.[!i] in
    (if !in_quotes then
       match c with
       | '"' ->
         if !i + 1 < n && content.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       | c -> Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' -> flush_field ()
       | '\n' -> flush_record ()
       | '\r' -> ()
       | c -> Buffer.add_char buf c);
    incr i
  done;
  if !in_quotes then raise (Parse_error "unterminated quoted field");
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let verdict_of_string = function
  | "distinguishable" -> Executor.Distinguishable
  | "indistinguishable" -> Executor.Indistinguishable
  | "inconclusive" -> Executor.Inconclusive
  | s -> raise (Parse_error ("unknown verdict: " ^ s))

let int_field name s =
  try int_of_string s
  with _ -> raise (Parse_error (Printf.sprintf "field %s: bad integer %S" name s))

let float_field name s =
  try float_of_string s
  with _ -> raise (Parse_error (Printf.sprintf "field %s: bad float %S" name s))

let event_of_fields fields =
  (* A 14th field, when present, names the guest ISA; 13-field rows are
     the historical format and mean AArch64. *)
  let fields, isa =
    match fields with
    | [ _; _; _; _; _; _; _; _; _; _; _; _; _; isa_s ] ->
      (List.filteri (fun i _ -> i < 13) fields,
       (match Isa.of_string isa_s with
       | Ok isa -> isa
       | Error msg -> raise (Parse_error msg)))
    | _ -> (fields, Isa.Aarch64)
  in
  match fields with
  | [
      campaign; kind; program; test; template; path1; path2; verdict; gen; exe;
      retries; faults; reason;
    ] -> (
    let program_index = int_field "program" program in
    match kind with
    | "experiment" ->
      Experiment
        {
          campaign;
          program_index;
          test_index = int_field "test" test;
          template;
          path_pair = (int_field "path1" path1, int_field "path2" path2);
          verdict = verdict_of_string verdict;
          generation_seconds = float_field "gen_seconds" gen;
          execution_seconds = float_field "exe_seconds" exe;
          retries = (if retries = "" then 0 else int_field "retries" retries);
          faults = (if faults = "" then 0 else int_field "faults" faults);
          isa;
        }
    | "quarantined" ->
      Quarantined
        {
          campaign;
          program_index;
          pair = (int_field "path1" path1, int_field "path2" path2);
          reason;
        }
    | "diverged" ->
      Diverged
        {
          campaign;
          program_index;
          pair = (int_field "path1" path1, int_field "path2" path2);
          aarch64 = verdict_of_string verdict;
          riscv = verdict_of_string reason;
        }
    | "program-failed" -> Program_failed { campaign; program_index; reason }
    | "crashed" -> Crashed { campaign; program_index; reason }
    | k -> raise (Parse_error ("unknown event kind: " ^ k)))
  | fields ->
    raise
      (Parse_error
         (Printf.sprintf "expected 13 fields, got %d" (List.length fields)))

let of_csv content =
  let t = create () in
  (match parse_records content with
  | [] -> ()
  | header :: rows ->
    (match header with
    | "campaign" :: "kind" :: _ -> ()
    | _ -> raise (Parse_error "missing journal CSV header"));
    List.iter
      (fun fields ->
        (* Tolerate a trailing blank record from a final newline. *)
        match fields with [ "" ] | [] -> () | _ -> record_event t (event_of_fields fields))
      rows);
  t

(* ---- v2 parsing with tail recovery ---- *)

type recovery = { records : int; dropped_bytes : int }

let is_v2 content =
  let m = magic ^ "\n" in
  String.length content >= String.length m
  && String.sub content 0 (String.length m) = m

(* Parse the longest clean prefix of framed records.  Any structural or
   checksum failure stops the scan — deliberately without skipping forward:
   once one record is suspect, nothing after it can be trusted to align,
   and resume semantics only need a clean prefix (the campaign re-runs
   everything from the first damaged program). *)
let parse_v2 content =
  let t = create () in
  let n = String.length content in
  let pos = ref (String.length magic + 1) in
  let records = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !pos < n do
    let record_ok =
      match String.index_from_opt content !pos '\n' with
      | None -> None
      | Some nl -> (
        let header = String.sub content !pos (nl - !pos) in
        match Scanf.sscanf_opt header "R %d %x%!" (fun len crc -> (len, crc)) with
        | None -> None
        | Some (len, crc) ->
          let start = nl + 1 in
          if len < 0 || start + len >= n || content.[start + len] <> '\n' then
            None
          else
            let payload = String.sub content start len in
            if Crc32.string payload <> crc then None
            else begin
              match parse_records (payload ^ "\n") with
              | exception Parse_error _ -> None
              | [ fields ] -> (
                match event_of_fields fields with
                | ev -> Some (ev, start + len + 1)
                | exception Parse_error _ -> None)
              | _ -> None
            end)
    in
    match record_ok with
    | Some (ev, next_pos) ->
      record_event t ev;
      incr records;
      pos := next_pos
    | None -> stopped := true
  done;
  (t, { records = !records; dropped_bytes = n - !pos })

let of_string content =
  if is_v2 content then begin
    let t, recovery = parse_v2 content in
    if recovery.dropped_bytes > 0 then
      raise
        (Parse_error
           (Printf.sprintf "corrupt journal tail: %d trailing byte(s) after %d clean record(s)"
              recovery.dropped_bytes recovery.records));
    t
  end
  else of_csv content

let of_string_tolerant content =
  if is_v2 content then parse_v2 content
  else
    (* v1 CSV checkpoints are only ever written atomically and completely
       (write_csv), so there is no torn tail to recover from: parse
       strictly and report a clean recovery. *)
    let t = of_csv content in
    (t, { records = List.length (events t); dropped_bytes = 0 })

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_csv ~path = of_string (read_file path)
let load ~path = of_string_tolerant (read_file path)
