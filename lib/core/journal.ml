module Executor = Scamv_microarch.Executor

type entry = {
  campaign : string;
  program_index : int;
  test_index : int;
  template : string;
  path_pair : int * int;
  verdict : Executor.verdict;
  generation_seconds : float;
  execution_seconds : float;
  retries : int;
  faults : int;
}

type event =
  | Experiment of entry
  | Quarantined of {
      campaign : string;
      program_index : int;
      pair : int * int;
      reason : string;
    }
  | Program_failed of { campaign : string; program_index : int; reason : string }

let event_program_index = function
  | Experiment e -> e.program_index
  | Quarantined q -> q.program_index
  | Program_failed f -> f.program_index

type t = {
  mutable events_rev : event list;
  mutable count : int;  (* experiments only *)
  path : string option;
  mutable oc : out_channel option;  (* opened lazily on first record *)
}

let create ?path () = { events_rev = []; count = 0; path; oc = None }

(* ---- CSV writing ---- *)

let verdict_string = function
  | Executor.Distinguishable -> "distinguishable"
  | Executor.Indistinguishable -> "indistinguishable"
  | Executor.Inconclusive -> "inconclusive"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_string v)

let quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let csv_header =
  "campaign,kind,program,test,template,path1,path2,verdict,gen_seconds,exe_seconds,retries,faults,reason\n"

let event_row ev =
  match ev with
  | Experiment e ->
    Printf.sprintf "%s,experiment,%d,%d,%s,%d,%d,%s,%.6f,%.6f,%d,%d,\n"
      (quote e.campaign) e.program_index e.test_index (quote e.template)
      (fst e.path_pair) (snd e.path_pair) (verdict_string e.verdict)
      e.generation_seconds e.execution_seconds e.retries e.faults
  | Quarantined q ->
    Printf.sprintf "%s,quarantined,%d,,,%d,%d,,,,,,%s\n" (quote q.campaign)
      q.program_index (fst q.pair) (snd q.pair) (quote q.reason)
  | Program_failed f ->
    Printf.sprintf "%s,program-failed,%d,,,,,,,,,,%s\n" (quote f.campaign)
      f.program_index (quote f.reason)

(* ---- recording (with optional append-to-disk persistence) ---- *)

let persist t ev =
  match t.path with
  | None -> ()
  | Some path ->
    let oc =
      match t.oc with
      | Some oc -> oc
      | None ->
        (* Lazy open: the file is only (re)created once something is
           actually recorded, so a resume source named as the output path
           is read in full before being truncated. *)
        let oc = open_out path in
        output_string oc csv_header;
        t.oc <- Some oc;
        oc
    in
    output_string oc (event_row ev);
    flush oc

let record_event t ev =
  t.events_rev <- ev :: t.events_rev;
  (match ev with Experiment _ -> t.count <- t.count + 1 | _ -> ());
  persist t ev

let record t e = record_event t (Experiment e)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out oc;
    t.oc <- None

let events t = List.rev t.events_rev

let entries t =
  List.filter_map (function Experiment e -> Some e | _ -> None) (events t)

let length t = t.count

let counterexamples t =
  List.filter (fun e -> e.verdict = Executor.Distinguishable) (entries t)

let verdict_counts t =
  List.fold_left
    (fun (d, i, u) e ->
      match e.verdict with
      | Executor.Distinguishable -> (d + 1, i, u)
      | Executor.Indistinguishable -> (d, i + 1, u)
      | Executor.Inconclusive -> (d, i, u + 1))
    (0, 0, 0) (entries t)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  List.iter (fun ev -> Buffer.add_string buf (event_row ev)) (events t);
  Buffer.contents buf

let write_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

(* ---- CSV parsing ---- *)

exception Parse_error of string

(* Quote-aware record splitter: fields may be double-quoted, with [""] as
   the escaped quote; quoted fields may contain commas and newlines. *)
let parse_records content =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 64 in
  let n = String.length content in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = content.[!i] in
    (if !in_quotes then
       match c with
       | '"' ->
         if !i + 1 < n && content.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       | c -> Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' -> flush_field ()
       | '\n' -> flush_record ()
       | '\r' -> ()
       | c -> Buffer.add_char buf c);
    incr i
  done;
  if !in_quotes then raise (Parse_error "unterminated quoted field");
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let verdict_of_string = function
  | "distinguishable" -> Executor.Distinguishable
  | "indistinguishable" -> Executor.Indistinguishable
  | "inconclusive" -> Executor.Inconclusive
  | s -> raise (Parse_error ("unknown verdict: " ^ s))

let int_field name s =
  try int_of_string s
  with _ -> raise (Parse_error (Printf.sprintf "field %s: bad integer %S" name s))

let float_field name s =
  try float_of_string s
  with _ -> raise (Parse_error (Printf.sprintf "field %s: bad float %S" name s))

let event_of_fields = function
  | [
      campaign; kind; program; test; template; path1; path2; verdict; gen; exe;
      retries; faults; reason;
    ] -> (
    let program_index = int_field "program" program in
    match kind with
    | "experiment" ->
      Experiment
        {
          campaign;
          program_index;
          test_index = int_field "test" test;
          template;
          path_pair = (int_field "path1" path1, int_field "path2" path2);
          verdict = verdict_of_string verdict;
          generation_seconds = float_field "gen_seconds" gen;
          execution_seconds = float_field "exe_seconds" exe;
          retries = (if retries = "" then 0 else int_field "retries" retries);
          faults = (if faults = "" then 0 else int_field "faults" faults);
        }
    | "quarantined" ->
      Quarantined
        {
          campaign;
          program_index;
          pair = (int_field "path1" path1, int_field "path2" path2);
          reason;
        }
    | "program-failed" -> Program_failed { campaign; program_index; reason }
    | k -> raise (Parse_error ("unknown event kind: " ^ k)))
  | fields ->
    raise
      (Parse_error
         (Printf.sprintf "expected 13 fields, got %d" (List.length fields)))

let of_csv content =
  let t = create () in
  (match parse_records content with
  | [] -> ()
  | header :: rows ->
    (match header with
    | "campaign" :: "kind" :: _ -> ()
    | _ -> raise (Parse_error "missing journal CSV header"));
    List.iter
      (fun fields ->
        (* Tolerate a trailing blank record from a final newline. *)
        match fields with [ "" ] | [] -> () | _ -> record_event t (event_of_fields fields))
      rows);
  t

let read_csv ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
