(** The Scam-V test-case generation pipeline (Fig. 1):

    program -> observation augmentation -> symbolic execution ->
    relation synthesis -> SMT model enumeration -> test case.

    Symbolic execution and relation synthesis run once per program and are
    cached; only model enumeration runs per test case (the caching
    optimization of Sec. 5).  Path pairs are explored round-robin
    (Sec. 5.4), and each pair keeps its own SMT enumeration session. *)

type config = {
  setup : Scamv_models.Refinement.t;
  isa : Scamv_arch.Isa.t;
      (** guest ISA this pipeline lifts and concretizes for; must match
          the programs handed to {!prepare} *)
  platform : Scamv_isa.Platform.t;
  diversify : bool;
      (** randomize solver phases between enumerated models, spreading
          test cases across the state space *)
  max_steps : int;  (** symbolic execution step bound *)
  budget : Scamv_smt.Sat.budget option;
      (** per-SAT-call resource caps for every path pair's enumeration
          session; a pair that exceeds them is quarantined *)
  chaos : Scamv_util.Chaos.t option;
      (** fault injector arming the ["solver.budget"] site: a chaos-chosen
          path pair reports budget exhaustion and is quarantined *)
  portfolio : int;
      (** number of {!Scamv_smt.Portfolio} configurations to try per
          path pair (>= 1; 1 = no portfolio).  Only consulted when the
          baseline configuration exhausts its SAT budget: challengers are
          tried in rank order over the same assertions (with already-
          enumerated models re-blocked), and the first to answer takes
          the pair over.  Counted as [portfolio.races] /
          [portfolio.wins.<rank>]. *)
}

val default_config : ?isa:Scamv_arch.Isa.t -> Scamv_models.Refinement.t -> config
(** [isa] defaults to [Aarch64]. *)

type test_case = {
  pair : int * int;  (** leaf indexes of the two states' paths *)
  state1 : Scamv_isa.Machine.t;
  state2 : Scamv_isa.Machine.t;
  train : Scamv_isa.Machine.t list;
  model : Scamv_smt.Model.t;  (** the raw satisfying assignment *)
}

type t
(** Cached per-program generation state. *)

val prepare : ?seed:int64 -> config -> Scamv_arch.Isa.program -> t
(** Annotate, symbolically execute, synthesize the per-pair relations and
    open the enumeration sessions.
    @raise Invalid_argument when the program's ISA differs from
    [config.isa]. *)

val program : t -> Scamv_arch.Isa.program
val bir : t -> Scamv_bir.Program.t
val leaves : t -> Scamv_symbolic.Exec.leaf list
val pair_count : t -> int
(** Number of path pairs that can produce test cases. *)

val quarantined : t -> ((int * int) * string) list
(** Path pairs dropped from the round-robin queue because their SMT
    session blew its budget, with the recorded reason, oldest first. *)

type progress =
  | Case of test_case
  | Quarantined of { pair : int * int; reason : string }
      (** this path pair just blew its SAT budget and was removed from the
          queue; further calls continue with the remaining pairs *)
  | Crashed of { reason : string }
      (** the ambient {!Scamv_util.Deadline} expired during enumeration;
          the program should be abandoned (solver state was rewound, so
          the sessions are intact if the caller insists on continuing) *)
  | Exhausted  (** every session is exhausted (or quarantined) *)

val next_test_case : t -> progress
(** The next test case, drawn from the path-pair sessions in round-robin
    order.  Polls the ambient {!Scamv_util.Deadline} token: expiry — at
    the call boundary or anywhere inside the SAT search — is returned as
    {!Crashed}, never raised. *)
