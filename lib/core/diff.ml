module Gen = Scamv_gen.Gen
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement
module Executor = Scamv_microarch.Executor
module Sat = Scamv_smt.Sat
module Stopwatch = Scamv_util.Stopwatch
module Isa = Scamv_arch.Isa
module Tm = Scamv_telemetry.Collector

(* A differential campaign runs the *same* (template, setup, seed,
   parameters) on both guest ISAs and compares what the platform said,
   path pair by path pair.  Both sides are fully deterministic on their
   own (same campaign engine, same seed discipline), so the comparison —
   and the Diverged events it appends — is a pure function of the
   configuration, whatever [jobs] was. *)

type outcome = {
  name : string;
  aarch64 : Campaign.outcome;
  riscv : Campaign.outcome;
  divergences : Journal.event list;
  compared_pairs : int;
  unmatched_pairs : int;
  stats : Stats.t;
}

(* Per (program, path pair), the side's verdict is the *strongest* over
   its test cases: one distinguishable test case makes the pair a
   counterexample no matter how many indistinguishable ones surround it
   (the paper's notion of a falsified pair), and inconclusive outranks
   indistinguishable because it withholds judgement. *)
let rank = function
  | Executor.Distinguishable -> 2
  | Executor.Inconclusive -> 1
  | Executor.Indistinguishable -> 0

let strongest a b = if rank a >= rank b then a else b

let pair_verdicts events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Journal.Experiment e ->
        let key = (e.Journal.program_index, e.Journal.path_pair) in
        let v =
          match Hashtbl.find_opt tbl key with
          | None -> e.Journal.verdict
          | Some v -> strongest v e.Journal.verdict
        in
        Hashtbl.replace tbl key v
      | _ -> ())
    events;
  tbl

let side_name name isa = Printf.sprintf "%s [%s]" name (Isa.to_string isa)

let run ?(on_event = fun _ -> ()) ?(on_record = fun (_ : Journal.event) -> ())
    ?journal ?pool ?(jobs = 1) ~name ~template ~setup
    ?(view = Executor.Full_cache) ?(programs = 20) ?(tests_per_program = 10)
    ?(seed = 2021L) ?sat_budget ?(portfolio = 1) ?(clock = Stopwatch.wall)
    ?cancel () =
  let side isa =
    let cfg =
      Campaign.make ~name:(side_name name isa) ~isa
        ~template:(Templates.by_name ~isa template)
        ~setup ~view ~programs ~tests_per_program ~seed ?sat_budget ~portfolio
        ~clock ?cancel ()
    in
    let events_rev = ref [] in
    let on_record ev =
      events_rev := ev :: !events_rev;
      on_record ev
    in
    let outcome = Campaign.run ~on_event ~on_record ?journal ?pool ~jobs cfg in
    (outcome, List.rev !events_rev)
  in
  let a_outcome, a_events = side Isa.Aarch64 in
  let r_outcome, r_events = side Isa.Riscv in
  let a_verdicts = pair_verdicts a_events in
  let r_verdicts = pair_verdicts r_events in
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let shared, a_only =
    List.partition (fun k -> Hashtbl.mem r_verdicts k) (keys a_verdicts)
  in
  let r_only = List.filter (fun k -> not (Hashtbl.mem a_verdicts k)) (keys r_verdicts) in
  let shared = List.sort compare shared in
  let divergences =
    List.filter_map
      (fun ((program_index, pair) as key) ->
        let va = Hashtbl.find a_verdicts key in
        let vr = Hashtbl.find r_verdicts key in
        if va = vr then None
        else
          Some (Journal.Diverged { campaign = name; program_index; pair;
                                   aarch64 = va; riscv = vr }))
      shared
  in
  List.iter
    (fun ev ->
      Option.iter (fun j -> Journal.record_event j ev) journal;
      on_record ev;
      match ev with
      | Journal.Diverged { program_index; pair; aarch64; riscv; _ } ->
        on_event
          (Printf.sprintf
             "[%s] program %d path pair (%d,%d): aarch64=%s riscv=%s" name
             program_index (fst pair) (snd pair)
             (Journal.verdict_string aarch64)
             (Journal.verdict_string riscv))
      | _ -> ())
    divergences;
  let compared_pairs = List.length shared in
  let unmatched_pairs = List.length a_only + List.length r_only in
  Tm.add "diff.compared_pairs" compared_pairs;
  Tm.add "diff.unmatched_pairs" unmatched_pairs;
  Tm.add "diff.divergences" (List.length divergences);
  let stats =
    List.fold_left
      (fun s _ -> Stats.record_divergence s)
      (Stats.merge a_outcome.Campaign.stats r_outcome.Campaign.stats)
      divergences
  in
  on_event
    (Printf.sprintf
       "[%s] compared %d path pair(s) across ISAs: %d divergence(s), %d unmatched"
       name compared_pairs (List.length divergences) unmatched_pairs);
  {
    name;
    aarch64 = a_outcome;
    riscv = r_outcome;
    divergences;
    compared_pairs;
    unmatched_pairs;
    stats;
  }
