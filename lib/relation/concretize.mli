(** Turning SMT models into concrete machine states (the "generate test
    case" step).  A model assigns the suffixed variables of one or both
    states; this module reads one suffix back into an architectural
    {!Scamv_isa.Machine.t}: registers, flags (for flag architectures),
    and the memory cells the relation constrained (everything else is
    zero, matching the platform module's memory initialization).

    The architecture descriptor supplies the canonical register variable
    names in machine-slot order, so the same machine representation backs
    every guest ISA (RV64 x[k] occupies slot k-1). *)

val machine_of_model_arch :
  arch:'i Scamv_bir.Arch.t -> suffix:string -> Scamv_smt.Model.t -> Scamv_isa.Machine.t

val machine_of_model : suffix:string -> Scamv_smt.Model.t -> Scamv_isa.Machine.t
(** [machine_of_model_arch ~arch:Arch.aarch64]. *)

val test_states_arch :
  arch:'i Scamv_bir.Arch.t ->
  Scamv_smt.Model.t ->
  Scamv_isa.Machine.t * Scamv_isa.Machine.t

val test_states :
  Scamv_smt.Model.t -> Scamv_isa.Machine.t * Scamv_isa.Machine.t
(** Both states of a test case (suffixes ["_1"] and ["_2"]). *)
