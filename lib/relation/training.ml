module Term = Scamv_smt.Term
module Solver = Scamv_smt.Solver
module Exec = Scamv_symbolic.Exec

(* Training states are pair-independent: the state solved for a leaf
   depends only on that leaf's (renamed) path condition and range
   constraints.  What depends on the pair is merely *which* leaves
   qualify — those whose trace differs from both of the pair's traces.
   The cache therefore solves once per distinct trace (lazily, so a
   program whose test cases all come from one pair never solves for
   paths it does not train) and each pair filters the shared results. *)

type cache = {
  traces : int list array;  (* per leaf index *)
  groups : (int list * Scamv_isa.Machine.t option Lazy.t) list;
      (* one entry per distinct trace, in first-occurrence order *)
}

let prepare ?graph ?(machine_of_model = Concretize.machine_of_model) ~platform
    ~leaves () =
  let traces = Array.of_list (List.map (fun (l : Exec.leaf) -> l.Exec.trace) leaves) in
  let seen = Hashtbl.create 8 in
  let groups =
    List.filter_map
      (fun (leaf : Exec.leaf) ->
        if Hashtbl.mem seen leaf.Exec.trace then None
        else begin
          Hashtbl.add seen leaf.Exec.trace ();
          let state =
            lazy
              (let rename = Term.rename (fun v -> v ^ Synth.suffix_train) in
               let assertions =
                 rename leaf.Exec.path_cond
                 :: List.map rename (Synth.range_constraints_of_leaf platform leaf)
               in
               match Solver.solve ?graph assertions with
               | Solver.Sat model ->
                 Some (machine_of_model ~suffix:Synth.suffix_train model)
               | Solver.Unsat -> None)
          in
          Some (leaf.Exec.trace, state)
        end)
      leaves
  in
  { traces; groups }

let trace_equal = List.equal Int.equal

let states cache ~pair:(i, j) =
  let t1 = cache.traces.(i) and t2 = cache.traces.(j) in
  List.filter_map
    (fun (tr, state) ->
      if trace_equal tr t1 || trace_equal tr t2 then None else Lazy.force state)
    cache.groups

let training_states ~platform ~leaves ~pair = states (prepare ~platform ~leaves ()) ~pair
