(** Relation synthesis (Sec. 2.3, Eq. 1, and the optimizations of
    Sec. 5.2/5.4).

    Given the symbolic leaves of an instrumented program, this module
    builds, per pair of execution paths, the formula whose models are test
    cases: two input states (suffixes ["_1"] / ["_2"]) that

    - satisfy the two path conditions,
    - produce equal [Base] observation lists ([M1]-equivalence),
    - and, when refinement is on, differ in some [Refined] observation
      ([M2]-distinctness),

    together with the platform well-formedness constraints (every accessed
    address inside the experiment memory region) and a state-distinctness
    condition (two bit-identical states are never a useful test case).

    Splitting the relation by path pair is the optimization of Sec. 5.4:
    each formula covers one conjunct of Eq. 1, and the pipeline explores
    path pairs round-robin. *)

type config = {
  platform : Scamv_isa.Platform.t;
  require_refined_difference : bool;
      (** [true] = refinement-guided generation ([s1 ~M1 s2 /\ s1 !~M2 s2]);
          [false] = unguided generation from plain [M1]-equivalence *)
}

val suffix1 : string
val suffix2 : string
val suffix_train : string

type pair_relation = {
  leaf1 : int;  (** index into the leaf list *)
  leaf2 : int;
  assertions : Scamv_smt.Term.t list;
  candidate_assertions : Scamv_smt.Term.t list;
      (** the candidate relation: both path conditions plus base-
          observation equality (M1-equivalence) — the prefix of
          [assertions] shared by every refinement of this pair *)
  refinement_assertions : Scamv_smt.Term.t list;
      (** what refinement adds on top of the candidate: refined-
          observation distinctness, range constraints and coverage
          definitions.  [candidate_assertions @ refinement_assertions]
          is exactly [assertions], so an incremental solver session can
          assert the candidate once and {!Scamv_smt.Solver.extend} it
          with this list instead of re-blasting the whole relation *)
  coverage_track : (string * Scamv_smt.Sort.t) list;
      (** fresh variables equated to the coverage observations; when
          non-empty the enumeration session should block on exactly
          these, which walks the supporting model's equivalence classes *)
  register_track : (string * Scamv_smt.Sort.t) list;
      (** register and flag inputs of the relation; unguided enumeration
          blocks on these (memory contents are left to solver defaults,
          as in the original register-only Scam-V pipeline) *)
}

val compatible_pairs : Scamv_symbolic.Exec.leaf list -> (int * int) list
(** Path pairs whose [Base] observation lists are structurally compatible
    (same length, kinds and arities) — the only pairs whose conjunct of
    Eq. 1 is not trivially false.  Ordered diagonal-first ((0,0), (1,1),
    ..., then mixed pairs). *)

type prepared
(** Pair-independent per-leaf data (path conditions, observations and
    range constraints renamed with both state suffixes), hoisted out of
    the per-pair loop: a program with [n] leaves yields O(n^2) pairs, so
    renaming per pair would redo the same term construction quadratically
    often — and would defeat the blaster's term-identity caches with
    freshly allocated copies. *)

val prepare : config -> Scamv_symbolic.Exec.leaf list -> prepared

val pair_relation_prepared : prepared -> int * int -> pair_relation option
(** [None] when the pair cannot yield test cases (structurally
    incompatible base observations, or refinement required but the pair
    has no refined observations). *)

val pair_relation :
  config -> Scamv_symbolic.Exec.leaf list -> int * int -> pair_relation option
(** One-shot [pair_relation_prepared (prepare config leaves)].  Prefer the
    prepared form when iterating over many pairs of the same program. *)

val full_equivalence : config -> Scamv_symbolic.Exec.leaf list -> Scamv_smt.Term.t
(** The monolithic Eq. 1 relation over all path pairs (without coverage or
    platform constraints) — kept for the ablation benchmark comparing it
    against the per-pair split. *)

val in_range : Scamv_isa.Platform.t -> Scamv_smt.Term.t -> Scamv_smt.Term.t
(** Address-in-experiment-region predicate. *)

val range_constraints_of_leaf :
  Scamv_isa.Platform.t -> Scamv_symbolic.Exec.leaf -> Scamv_smt.Term.t list
(** The well-formedness constraints of one path, over canonical (unsuffixed)
    variables; used when solving for predictor-training states. *)
