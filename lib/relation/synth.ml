module Term = Scamv_smt.Term
module Sort = Scamv_smt.Sort
module Obs = Scamv_bir.Obs
module Exec = Scamv_symbolic.Exec
module Platform = Scamv_isa.Platform

type config = {
  platform : Platform.t;
  require_refined_difference : bool;
}

let suffix1 = "_1"
let suffix2 = "_2"
let suffix_train = "_t"

type pair_relation = {
  leaf1 : int;
  leaf2 : int;
  assertions : Term.t list;
  candidate_assertions : Term.t list;
  refinement_assertions : Term.t list;
  coverage_track : (string * Sort.t) list;
  register_track : (string * Sort.t) list;
}

let rename_obs suffix o = Obs.map_terms (Term.rename (fun v -> v ^ suffix)) o
let rename_term suffix t = Term.rename (fun v -> v ^ suffix) t

let by_tag tag obs = List.filter (fun (o : Obs.t) -> o.Obs.tag = tag) obs

let widths_of (o : Obs.t) =
  List.map
    (fun v -> match Term.sort_of v with Sort.Bv w -> w | _ -> -1)
    o.Obs.values

(* Two observation lists are structurally compatible when they can be
   compared position by position. *)
let compatible obs1 obs2 =
  List.length obs1 = List.length obs2
  && List.for_all2
       (fun (a : Obs.t) (b : Obs.t) ->
         String.equal a.Obs.kind b.Obs.kind && widths_of a = widths_of b)
       obs1 obs2

let compatible_pairs leaves =
  let leaves = Array.of_list leaves in
  let n = Array.length leaves in
  let base i = by_tag Obs.Base leaves.(i).Exec.obs in
  let diagonal = ref [] and mixed = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if compatible (base i) (base j) then
        if i = j then diagonal := (i, i) :: !diagonal
        else if i < j then mixed := (i, j) :: !mixed
  (* (j, i) is symmetric to (i, j); exploring one orientation suffices *)
    done
  done;
  !diagonal @ !mixed

(* Pointwise equality of two (renamed) observations: the conditions must
   agree, and when they fire the values must agree — exactly the shape of
   the Mpart relation displayed in Sec. 4.2.1. *)
let obs_equal (o1 : Obs.t) (o2 : Obs.t) =
  let values_eq = Term.and_l (List.map2 Term.eq o1.Obs.values o2.Obs.values) in
  Term.and_ (Term.iff o1.Obs.cond o2.Obs.cond) (Term.implies o1.Obs.cond values_eq)

let obs_list_equal obs1 obs2 =
  if not (compatible obs1 obs2) then Term.ff
  else Term.and_l (List.map2 obs_equal obs1 obs2)

(* Negation of pointwise equality, for the refined observations: either
   the conditions disagree, or both fire with different values. *)
let obs_differ (o1 : Obs.t) (o2 : Obs.t) =
  let values_neq = Term.or_l (List.map2 Term.neq o1.Obs.values o2.Obs.values) in
  Term.or_
    (Term.not_ (Term.iff o1.Obs.cond o2.Obs.cond))
    (Term.and_l [ o1.Obs.cond; o2.Obs.cond; values_neq ])

let obs_list_differ obs1 obs2 =
  if not (compatible obs1 obs2) then Term.tt
  else Term.or_l (List.map2 obs_differ obs1 obs2)

let in_range (p : Platform.t) addr =
  Term.and_
    (Term.ule (Term.bv_const p.Platform.mem_base 64) addr)
    (Term.ult addr (Term.bv_const (Int64.add p.Platform.mem_base p.Platform.mem_size) 64))

let range_constraints platform obs =
  List.concat_map
    (fun (o : Obs.t) ->
      List.map (fun v -> Term.implies o.Obs.cond (in_range platform v)) o.Obs.values)
    (by_tag Obs.Platform obs)

let range_constraints_of_leaf platform (leaf : Exec.leaf) =
  range_constraints platform leaf.Exec.obs

(* Input variables the relation mentions, restricted to registers and
   flags.  Unguided enumeration blocks on exactly these (the original
   Scam-V pipeline enumerated register assignments; memory completion is
   left to the solver's defaults), so unguided test cases naturally come
   out "too similar" in the paper's sense — the refined relation is what
   forces a difference that matters. *)
let register_inputs assertions =
  let module S = Set.Make (struct
    type t = string * Sort.t

    (* Same order as [Stdlib.compare] on this pair type, but monomorphic:
       name first, then sort. *)
    let compare (x1, s1) (x2, s2) =
      let c = String.compare x1 x2 in
      if c <> 0 then c else Sort.compare s1 s2
  end) in
  List.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc (name, sort) ->
          match sort with Sort.Mem -> acc | Sort.Bv _ | Sort.Bool -> S.add (name, sort) acc)
        acc (Term.free_vars t))
    S.empty assertions
  |> S.elements

(* Per-leaf data whose construction is pair-independent: renaming a leaf's
   path condition, observations and range constraints with the two state
   suffixes.  [prepare] hoists this out of the per-pair loop — a program
   with [n] leaves yields up to [n*(n+1)/2] pairs, and re-renaming each
   leaf per pair both burns time and hands the blaster freshly-allocated
   (though structurally equal) terms for every pair. *)
type prepared_leaf = {
  obs1 : Obs.t list;  (* all observations, renamed with [suffix1] *)
  obs2 : Obs.t list;
  path1 : Term.t;
  path2 : Term.t;
  range1 : Term.t list;  (* range constraints, renamed with [suffix1] *)
  range2 : Term.t list;
}

type prepared = { p_cfg : config; p_leaves : prepared_leaf array }

let prepare config leaves =
  let prep (leaf : Exec.leaf) =
    let range = range_constraints config.platform leaf.Exec.obs in
    {
      obs1 = List.map (rename_obs suffix1) leaf.Exec.obs;
      obs2 = List.map (rename_obs suffix2) leaf.Exec.obs;
      path1 = rename_term suffix1 leaf.Exec.path_cond;
      path2 = rename_term suffix2 leaf.Exec.path_cond;
      range1 = List.map (rename_term suffix1) range;
      range2 = List.map (rename_term suffix2) range;
    }
  in
  { p_cfg = config; p_leaves = Array.of_list (List.map prep leaves) }

let pair_relation_prepared { p_cfg = config; p_leaves } (i, j) =
  let leaf1 = p_leaves.(i) and leaf2 = p_leaves.(j) in
  let obs1 = leaf1.obs1 in
  let obs2 = leaf2.obs2 in
  let base_eq = obs_list_equal (by_tag Obs.Base obs1) (by_tag Obs.Base obs2) in
  if Term.equal base_eq Term.ff then None
  else begin
    let refined1 = by_tag Obs.Refined obs1 and refined2 = by_tag Obs.Refined obs2 in
    let refined_req =
      if config.require_refined_difference then
        if refined1 = [] && refined2 = [] then None
        else Some (obs_list_differ refined1 refined2)
      else Some Term.tt
    in
    match refined_req with
    | None -> None
    | Some refined_differ ->
      if Term.equal refined_differ Term.ff then None
      else begin
        let coverage =
          List.mapi
            (fun k (o : Obs.t) -> (Printf.sprintf "cov!%d" k, o))
            (by_tag Obs.Coverage obs1 @ by_tag Obs.Coverage obs2)
        in
        let coverage_defs =
          List.concat_map
            (fun (name, (o : Obs.t)) ->
              List.mapi
                (fun v_idx v ->
                  match Term.sort_of v with
                  | Sort.Bv w ->
                    Term.eq (Term.bv_var (Printf.sprintf "%s!%d" name v_idx) w) v
                  | _ -> Term.tt)
                o.Obs.values)
            coverage
        in
        let coverage_track =
          List.concat_map
            (fun (name, (o : Obs.t)) ->
              List.mapi
                (fun v_idx v ->
                  match Term.sort_of v with
                  | Sort.Bv w -> Some (Printf.sprintf "%s!%d" name v_idx, Sort.Bv w)
                  | _ -> None)
                o.Obs.values
              |> List.filter_map Fun.id)
            coverage
        in
        (* The candidate/refinement split mirrors the refinement chain:
           path conditions plus base-observation equality are the
           candidate relation (M1-equivalence), everything the refinement
           step adds — refined-observation distinctness, platform range
           constraints, coverage definitions — extends it.  Concatenated
           they must reproduce [assertions] exactly (same order), so a
           session built by [make_session candidate] + [extend refinement]
           asserts the same formulas as a one-shot session. *)
        let candidate_assertions = [ leaf1.path1; leaf2.path2; base_eq ] in
        let refinement_assertions =
          (refined_differ :: leaf1.range1) @ leaf2.range2 @ coverage_defs
        in
        let assertions = candidate_assertions @ refinement_assertions in
        Some
          {
            leaf1 = i;
            leaf2 = j;
            assertions;
            candidate_assertions;
            refinement_assertions;
            coverage_track;
            register_track = register_inputs assertions;
          }
      end
  end

let pair_relation config leaves pair = pair_relation_prepared (prepare config leaves) pair

let full_equivalence config leaves =
  ignore config;
  let conjunct (l1 : Exec.leaf) (l2 : Exec.leaf) =
    let p1 = rename_term suffix1 l1.Exec.path_cond in
    let p2 = rename_term suffix2 l2.Exec.path_cond in
    let base1 = List.map (rename_obs suffix1) (by_tag Obs.Base l1.Exec.obs) in
    let base2 = List.map (rename_obs suffix2) (by_tag Obs.Base l2.Exec.obs) in
    Term.implies (Term.and_ p1 p2) (obs_list_equal base1 base2)
  in
  Term.and_l (List.concat_map (fun l1 -> List.map (conjunct l1) leaves) leaves)
