module Model = Scamv_smt.Model
module Machine = Scamv_isa.Machine
module Reg = Scamv_isa.Reg
module Arch = Scamv_bir.Arch
module Vars = Scamv_bir.Vars

(* The i-th canonical register variable of the descriptor fills machine
   slot i; flag variables exist only for flag architectures (reading them
   through [bool_exn] on a compare-and-branch ISA would raise). *)
let machine_of_model_arch ~arch ~suffix model =
  let m = Machine.create () in
  List.iteri
    (fun slot name ->
      match Model.find_var model (name ^ suffix) with
      | Some (Model.Bv (v, _)) -> Machine.set_reg m (Reg.x slot) v
      | Some (Model.Bool _) | None -> ())
    arch.Arch.registers;
  if arch.Arch.has_flags then begin
    let flag name = Model.bool_exn model (name ^ suffix) in
    Machine.set_flags m
      {
        Machine.n = flag Vars.flag_n;
        z = flag Vars.flag_z;
        c = flag Vars.flag_c;
        v = flag Vars.flag_v;
      }
  end;
  List.iter
    (fun (addr, value) -> Machine.store m addr value)
    (Model.mem_cells model (Vars.mem_name ^ suffix));
  m

let machine_of_model ~suffix model =
  machine_of_model_arch ~arch:Arch.aarch64 ~suffix model

let test_states_arch ~arch model =
  ( machine_of_model_arch ~arch ~suffix:Synth.suffix1 model,
    machine_of_model_arch ~arch ~suffix:Synth.suffix2 model )

let test_states model = test_states_arch ~arch:Arch.aarch64 model
