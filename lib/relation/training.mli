(** Branch misprediction training (Sec. 5.3).

    For a test-case pair taking path [p], the predictor must be trained to
    predict the *other* direction, so the measured runs misspeculate.  A
    training state is a satisfying assignment of a different path
    condition [p' <> p], found with the SMT solver.

    A training state depends only on the leaf it is solved from, not on
    the test-case pair — so the per-program {!cache} solves lazily once
    per distinct trace and every pair filters the shared results, instead
    of re-solving the same path conditions for each of the O(n^2) pairs. *)

type cache
(** Per-program memo of training states, one lazily-solved entry per
    distinct trace.  Domain-confined, like the solver sessions it wraps. *)

val prepare :
  ?graph:Scamv_smt.Blaster.graph ->
  ?machine_of_model:
    (suffix:string -> Scamv_smt.Model.t -> Scamv_isa.Machine.t) ->
  platform:Scamv_isa.Platform.t ->
  leaves:Scamv_symbolic.Exec.leaf list ->
  unit ->
  cache
(** Build the (lazy) cache; no solving happens until {!states} demands an
    entry.  [graph] is the program's shared blast graph, letting the
    training solves reuse circuit nodes already built for the enumeration
    sessions (path conditions share structure across suffixes).
    [machine_of_model] concretizes a solved training model (default
    {!Concretize.machine_of_model}; pass the arch-specific one for
    non-AArch64 guests). *)

val states : cache -> pair:int * int -> Scamv_isa.Machine.t list

val training_states :
  platform:Scamv_isa.Platform.t ->
  leaves:Scamv_symbolic.Exec.leaf list ->
  pair:int * int ->
  Scamv_isa.Machine.t list
(** Training inputs for a test case whose states take the paths of the
    given leaf pair: one state per satisfiable path whose trace differs
    from both leaves' traces (deduplicated by trace).  Empty when the
    program has a single path (no branch to train).  One-shot form of
    {!prepare}/{!states} for callers outside the pipeline. *)
