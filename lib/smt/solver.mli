(** Top-level SMT interface: QF_ABV satisfiability and model enumeration.

    This module plays the role Z3 plays in the original Scam-V pipeline
    (Sec. 5.2): relation formulas come in, concrete register/memory
    valuations (test cases) come out.

    Thread-safety: enumeration sessions wrap a mutable {!Blaster} context
    and are {e domain-confined} — create, use and discard a session within
    a single domain.  Parallel campaigns get their parallelism by running
    whole per-program pipelines (each with its own session) on separate
    domains; nothing in this module is shared between them. *)

type result = Sat of Model.t | Unsat

exception Solver_invariant of string
(** An internal enumeration invariant was violated (e.g. the lexicographic
    minimizer could not restore a model it had just pinned).  Unlike a bare
    [assert] this survives [-noassert] builds and carries a description, so
    the campaign fault-capture layer can record it as a per-program failure
    instead of the process dying. *)

type model_result =
  | Model of Model.t
  | Exhausted  (** no further distinct model exists *)
  | Budget_exceeded
      (** the session's SAT budget ran out before this call could decide;
          the session stays usable but the caller should quarantine it *)

val solve :
  ?seed:int64 -> ?default_phase:bool -> ?graph:Blaster.graph -> Term.t list -> result
(** One-shot satisfiability of the conjunction of the given formulas.
    The returned model assigns every variable occurring in the formulas,
    including partial memory contents for every address the formulas
    read.  [graph] as in {!make_session}. *)

type session
(** An enumeration session over a fixed set of assertions. *)

val make_session :
  ?seed:int64 ->
  ?default_phase:bool ->
  ?restart_base:int ->
  ?track:(string * Sort.t) list ->
  ?budget:Sat.budget ->
  ?graph:Blaster.graph ->
  Term.t list ->
  session
(** [make_session fs] prepares enumeration of models of [/\ fs].
    The session holds one live SAT state for its whole life: enumeration
    blocking clauses live in a pushed scope (see {!extend}) and the model
    minimizer's per-bit pins are assumptions over that state, so no query
    ever re-blasts or re-solves from scratch.

    [restart_base] is forwarded to {!Sat.create}; portfolio
    configurations use it to vary the restart series.

    [track] lists the variables over which models must differ (default:
    every free variable of [fs], with memories tracked through the cells
    they read).  Tracking matters: the paper enumerates *distinct test
    cases*, i.e. assignments that differ on program-visible state.

    [budget] bounds every underlying SAT call of this session (including
    the per-bit calls of the model minimizer); when it is exceeded,
    {!next_model} reports [Budget_exceeded].

    [graph] is a shared {!Blaster.graph}: sessions of the same program
    pass one graph so the bit-blaster reuses hash-consed circuit nodes
    (and hence the folding work) across candidate relations and
    enumeration sessions, reported as [smt.blast_cache_cross_hits].  The
    graph and all its sessions must stay on one domain. *)

val next_model : ?diversify:bool -> session -> model_result
(** Next model, [Exhausted] when the space is empty, or [Budget_exceeded]
    when the session budget ran out mid-search.  With [diversify] the
    solver randomizes decision phases first, spreading consecutive models
    across the state space instead of walking it in lexicographic order
    (used by the refinement-guided campaigns). *)

val push : session -> unit
(** Open a retractable scope on the session's SAT state ({!Sat.push}):
    clauses asserted until the matching {!pop} — including blocking
    clauses of models enumerated meanwhile — are retracted together. *)

val pop : session -> unit
(** Close the innermost scope opened by {!push}.  Learnt knowledge,
    activities and phases survive; only the scope's clauses are retired. *)

val solve_assuming : session -> Term.t list -> model_result
(** [solve_assuming s assumptions] decides satisfiability of the
    session's assertions (including accumulated blocking clauses) under
    the given boolean terms, without asserting them: the terms are
    blasted once and passed to the SAT core as assumption literals, so
    repeated calls with varying assumptions reuse one live state.
    [Exhausted] here means "unsatisfiable under these assumptions" — the
    session itself remains usable and is not marked exhausted. *)

val extend : ?track:(string * Sort.t) list -> session -> Term.t list -> session
(** [extend s fs] conjoins further assertions onto the live session —
    the refinement-chain step: a candidate relation's session becomes the
    refined relation's session without re-blasting or re-solving what the
    two share.  Blocking clauses accumulated by enumeration of the
    previous assertions are retracted (they blocked models of the {e old}
    relation); CNF, learnt clauses, variable activities and saved phases
    carry over.  Array elimination continues against the session's read
    table, adding exactly the cross-batch consistency conditions.
    [track] replaces the tracked-variable set (default: the old set
    merged with the new formulas' free variables).  Cache hits while
    blasting the extension are flushed as [smt.incremental_reuse_hits].
    Returns the same (mutated) session for chaining. *)

val blocked_models : session -> Model.t list
(** Raw input valuations blocked by this session's enumeration so far,
    oldest first.  Feeding them to {!block_model} on a second session
    over the same assertions reproduces the enumeration frontier — the
    handoff a portfolio challenger needs to continue where a budget-
    exhausted configuration stopped. *)

val block_model : session -> Model.t -> unit
(** Assert the blocking clause for one raw valuation (an element of
    another session's {!blocked_models}) and count it as a found model,
    so a challenger session never re-enumerates a handed-over model. *)

val models_found : session -> int

val stats : session -> int * int * int
(** (conflicts, decisions, propagations) of the underlying SAT solver. *)

val var_count : session -> int
(** Number of SAT variables allocated (inputs + gates). *)
