(** Top-level SMT interface: QF_ABV satisfiability and model enumeration.

    This module plays the role Z3 plays in the original Scam-V pipeline
    (Sec. 5.2): relation formulas come in, concrete register/memory
    valuations (test cases) come out.

    Thread-safety: enumeration sessions wrap a mutable {!Blaster} context
    and are {e domain-confined} — create, use and discard a session within
    a single domain.  Parallel campaigns get their parallelism by running
    whole per-program pipelines (each with its own session) on separate
    domains; nothing in this module is shared between them. *)

type result = Sat of Model.t | Unsat

exception Solver_invariant of string
(** An internal enumeration invariant was violated (e.g. the lexicographic
    minimizer could not restore a model it had just pinned).  Unlike a bare
    [assert] this survives [-noassert] builds and carries a description, so
    the campaign fault-capture layer can record it as a per-program failure
    instead of the process dying. *)

type model_result =
  | Model of Model.t
  | Exhausted  (** no further distinct model exists *)
  | Budget_exceeded
      (** the session's SAT budget ran out before this call could decide;
          the session stays usable but the caller should quarantine it *)

val solve :
  ?seed:int64 -> ?default_phase:bool -> ?graph:Blaster.graph -> Term.t list -> result
(** One-shot satisfiability of the conjunction of the given formulas.
    The returned model assigns every variable occurring in the formulas,
    including partial memory contents for every address the formulas
    read.  [graph] as in {!make_session}. *)

type session
(** An enumeration session over a fixed set of assertions. *)

val make_session :
  ?seed:int64 ->
  ?default_phase:bool ->
  ?track:(string * Sort.t) list ->
  ?budget:Sat.budget ->
  ?graph:Blaster.graph ->
  Term.t list ->
  session
(** [make_session fs] prepares enumeration of models of [/\ fs].

    [track] lists the variables over which models must differ (default:
    every free variable of [fs], with memories tracked through the cells
    they read).  Tracking matters: the paper enumerates *distinct test
    cases*, i.e. assignments that differ on program-visible state.

    [budget] bounds every underlying SAT call of this session (including
    the per-bit calls of the model minimizer); when it is exceeded,
    {!next_model} reports [Budget_exceeded].

    [graph] is a shared {!Blaster.graph}: sessions of the same program
    pass one graph so the bit-blaster reuses hash-consed circuit nodes
    (and hence the folding work) across candidate relations and
    enumeration sessions, reported as [smt.blast_cache_cross_hits].  The
    graph and all its sessions must stay on one domain. *)

val next_model : ?diversify:bool -> session -> model_result
(** Next model, [Exhausted] when the space is empty, or [Budget_exceeded]
    when the session budget ran out mid-search.  With [diversify] the
    solver randomizes decision phases first, spreading consecutive models
    across the state space instead of walking it in lexicographic order
    (used by the refinement-guided campaigns). *)

val models_found : session -> int

val stats : session -> int * int * int
(** (conflicts, decisions, propagations) of the underlying SAT solver. *)

val var_count : session -> int
(** Number of SAT variables allocated (inputs + gates). *)
