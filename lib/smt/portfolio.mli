(** Deterministic solver-configuration portfolio.

    A portfolio of size [k] is the configurations [config 0] ..
    [config (k-1)]: seeded variations of the SAT solver's restart
    series, default decision polarity and RNG stream.  Ranking is by
    index — config 0 is the exact baseline configuration, so a
    portfolio of size 1 is the plain solver, and campaign artifacts only
    depend on [k] where the baseline ran out of budget and a challenger
    answered instead.  Everything here is a pure function of
    [(index, seed)], which is what keeps portfolio campaigns
    byte-identical across [--jobs] levels and resume points. *)

type config = {
  index : int;  (** rank; lower index wins ties *)
  default_phase : bool;  (** {!Sat.create}'s [default_phase] *)
  restart_base : int;  (** {!Sat.create}'s [restart_base] *)
}

val baseline : config
(** [config 0]: the solver's stock configuration. *)

val config : int -> config
(** Configuration at a rank.  Total for every non-negative index.
    @raise Invalid_argument on a negative index. *)

val seed_for : config -> int64 -> int64
(** Session seed for a configuration, derived from the seed the baseline
    session uses.  [seed_for baseline s = s]; challenger streams are
    decorrelated from the baseline's and from each other. *)
