(* A portfolio configuration is a pure function of its index: no state,
   no randomness source beyond the seed derivation below, so every
   worker, jobs level and resume point sees the same configuration
   table.  Config 0 is the exact baseline the solver runs without a
   portfolio — its answers (and hence every campaign artifact produced
   while config 0 keeps winning) are identical whether a portfolio is
   enabled or not. *)

type config = { index : int; default_phase : bool; restart_base : int }

let baseline = { index = 0; default_phase = false; restart_base = 100 }

(* Challenger table: vary the restart series and the default decision
   polarity.  Short restarts attack queries where the baseline's luby
   series commits too long to a bad prefix; [default_phase = true]
   inverts the all-zeros bias, which helps exactly the instances whose
   models are far from lexicographic-minimum.  The table repeats with a
   different restart base after 6 entries, so any portfolio size is
   well-defined. *)
let challenger_bases = [| 40; 150; 70; 220; 25; 300 |]

let config i =
  if i < 0 then invalid_arg "Portfolio.config: negative index"
  else if i = 0 then baseline
  else
    {
      index = i;
      default_phase = i land 1 = 1;
      restart_base = challenger_bases.((i - 1) mod Array.length challenger_bases);
    }

(* Golden-ratio increment of splitmix64; one [next] step decorrelates the
   challenger streams from the baseline stream and from each other. *)
let seed_for cfg base_seed =
  if cfg.index = 0 then base_seed
  else
    let mixed =
      Int64.logxor base_seed
        (Int64.mul (Int64.of_int cfg.index) 0x9E3779B97F4A7C15L)
    in
    fst (Scamv_util.Splitmix.next (Scamv_util.Splitmix.of_seed mixed))
