(** Memory (array) elimination by Ackermann expansion.

    The {!Term} smart constructors already push [select] through [store]
    chains, so every select reaching this module reads a memory variable
    directly.  Each distinct read [select m a] becomes a fresh bit-vector
    variable; functional consistency is enforced by the side conditions
    [a_i = a_j => r_i = r_j] for every pair of reads on the same memory. *)

type read = {
  mem_name : string;  (** which memory variable is read *)
  addr : Term.t;  (** the (rewritten, array-free) address term *)
  var_name : string;  (** the fresh 64-bit variable holding the value *)
}

type result = {
  formulas : Term.t list;  (** array-free rewrites of the input formulas *)
  side_conditions : Term.t list;  (** Ackermann consistency constraints *)
  reads : read list;  (** read table for model reconstruction *)
}

type state
(** Mutable elimination state: the read table and naming counter.  Holding
    on to it lets an incremental solver session eliminate further formula
    batches with consistent read naming and exactly the missing
    cross-batch consistency conditions. *)

val new_state : unit -> state

val eliminate_into : state -> Term.t list -> result
(** [eliminate_into st fs] rewrites one more batch of formulas against
    [st].  Reads introduced by earlier batches are reused (same variable
    names); [result.side_conditions] contains only the consistency pairs
    involving at least one read that is new in this batch, and
    [result.reads] lists {e all} reads accumulated so far.  On a fresh
    state this is exactly {!eliminate}. *)

val eliminate : Term.t list -> result
(** [eliminate fs] removes all memory operations from [fs].
    @raise Term.Sort_error if a formula compares memories for equality. *)

val recover_memories : Model.t -> read list -> Model.t
(** [recover_memories m reads] evaluates every read address under [m] and
    installs the corresponding cells into the model's memories, then drops
    the internal read variables. *)
