(** CDCL SAT solver (two-watched literals with blocker literals, 1UIP
    clause learning, VSIDS activities, Luby restarts, phase saving,
    LBD-guided clause-database reduction, root-level simplification).

    This is the decision core under the bit-blaster; it replaces the Z3
    backend of the original Scam-V pipeline.  The solver is incremental in
    the sense needed for model enumeration: clauses (e.g. blocking
    clauses) can be added between [solve] calls, and learnt knowledge
    persists across calls.

    Internals (see DESIGN.md "Solver internals and performance"): clauses
    live in a single growable int arena and are referenced by offset;
    watch lists are flat int vectors of (clause, blocker) pairs compacted
    in place by propagation, so the hot path performs no list allocation.
    Learnt clauses carry an LBD score (Audemard & Simon) and a recency
    activity; every ~2000 conflicts the learnt database is reduced,
    keeping glue clauses (LBD <= 2) and locked clauses and deleting the
    worse half of the rest.  Between enumeration solves, once the level-0
    trail has grown, the clause set is simplified against it (satisfied
    clauses deleted, false literals stripped).

    Thread-safety: a solver instance is mutable and {e domain-confined} —
    it must only ever be used from the domain that created it.  Parallel
    campaigns create one solver per enumeration session inside each
    worker.  This module holds {e no} cross-domain state: work counters
    live per instance, and every [solve] call additionally flushes its
    deltas ([sat.conflicts], [sat.decisions], [sat.propagations],
    [sat.restarts], [sat.learned], [sat.deleted], [sat.queries],
    [sat.assumption_solves], [sat.budget_exhausted], the
    [sat.conflicts_per_query] histogram and the [sat.lbd] histogram of
    freshly learnt clauses) to the domain's current
    {!Scamv_telemetry.Collector}, where the campaign merges them in
    program order.  {!push}/{!pop} additionally count [sat.pushes] and
    [sat.pops]. *)

type t

type lit = int
(** Literal encoding: variable [v >= 1] yields positive literal [2*v] and
    negative literal [2*v + 1]. *)

val pos : int -> lit
(** Positive literal of a variable. *)

val neg_of_var : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

val create : ?seed:int64 -> ?default_phase:bool -> ?restart_base:int -> unit -> t
(** [create ()] makes an empty solver.  [default_phase] is the polarity
    tried first for unassigned variables (default [false], which yields
    zeros-first models similar to Z3 default models).  [seed] enables a
    small random component in branching to diversify enumerated models.
    [restart_base] (default [100]) scales the Luby restart series —
    conflicts allowed before the [n]th restart are
    [restart_base * luby n]; portfolio configurations vary it to
    diversify search trajectories. *)

val new_var : t -> int
(** Allocate a fresh variable. *)

val num_vars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause over existing variables.  Adding the empty clause (or a
    clause falsified at level 0) makes the instance permanently UNSAT.
    Inside an open {!push} scope the clause is guarded by the innermost
    scope's selector literal, so {!pop} retracts it. *)

val push : t -> unit
(** Open a retractable scope: clauses added until the matching {!pop} are
    guarded by a fresh selector variable that every subsequent [solve]
    assumes.  Scopes nest.  Trail, activities, saved phases and learnt
    clauses are shared with the enclosing state — nothing is copied. *)

val pop : t -> unit
(** Close the innermost scope: its clauses are permanently satisfied by a
    selector unit (and physically removed by the next root-level
    simplification).  Learnt clauses derived under the scope mention the
    selector's negation, so they remain sound and are simplified away
    rather than unlearned — knowledge from sibling scopes persists.
    Raises [Invalid_argument] with no open scope. *)

val num_scopes : t -> int
(** Number of currently open {!push} scopes. *)

type outcome = Sat | Unsat | Unknown
(** Three-valued solve result.  [Unknown] means a resource budget was
    exhausted before the search finished: the instance is neither proved
    satisfiable nor unsatisfiable, and the solver remains usable. *)

type budget = {
  max_conflicts : int option;
  max_decisions : int option;
  max_propagations : int option;
}
(** Per-call resource caps.  Each cap bounds the work done by one [solve]
    call (deltas over the solver's cumulative counters), so a long-lived
    enumeration session gets a fresh allowance on every call. *)

val unlimited : budget

val budget :
  ?conflicts:int -> ?decisions:int -> ?propagations:int -> unit -> budget
(** Budget smart constructor; omitted dimensions are uncapped. *)

val pp_budget : Format.formatter -> budget -> unit

val solve :
  ?assumptions:lit array -> ?n_assumptions:int -> ?budget:budget -> t -> outcome
(** [solve t] returns [Sat] iff the clause set is satisfiable; when
    [Sat], {!value} reads the satisfying assignment.

    [assumptions] are literals asserted as the first decisions: an [Unsat]
    result under assumptions means "unsatisfiable together with the
    assumptions" and leaves the solver usable (only a conflict at decision
    level zero marks the instance permanently UNSAT).  Used by the
    lexicographic model minimizer.  [n_assumptions] restricts the call to
    the first [n] entries of [assumptions], so an incremental caller can
    keep one growable prefix array and extend it in place between calls
    instead of rebuilding an array per query.  Open {!push} scopes
    contribute their selector literals ahead of the caller's assumptions.

    Assumption-trail reuse: consecutive calls keep the longest shared
    prefix of assumption decision levels on the trail instead of
    rewinding to level 0, so a caller that only extends (or replaces the
    tail of) its assumption sequence pays for re-propagating the changed
    suffix alone.  Adding a clause between calls invalidates the kept
    prefix automatically.

    [budget] caps the conflicts/decisions/propagations this call may
    spend; when a cap is hit the call stops with [Unknown], the trail is
    rewound, and the solver (including all learnt clauses) stays usable —
    a later call with a larger budget resumes from the accumulated
    knowledge.

    Cooperative cancellation: the search charges the ambient
    {!Scamv_util.Deadline} token (when one is installed) one unit per
    conflict and checks it at the loop head.  Expiry rewinds the trail and
    flushes telemetry exactly like an out-of-budget stop, then raises
    {!Scamv_util.Deadline.Expired} — the solver object stays reusable. *)

val value : t -> int -> bool
(** Value of a variable in the last satisfying assignment.
    Only meaningful after [solve] returned [true]. *)

val root_value : t -> int -> int
(** [root_value t v] is [1] ([-1]) if [v] is forced true (false) at
    decision level 0 — i.e. in every model — and [0] otherwise.  Lets the
    model minimizer skip bits whose value is no longer free. *)

val randomize_phases : t -> int64 -> unit
(** Re-seed saved phases randomly; used by diversified enumeration. *)

val reset_phases : t -> unit
(** Forget saved phases, restoring the default polarity.  Model
    enumeration calls this before every non-diversified solve so each
    model is re-derived near-minimal (like Z3 default models) instead of
    drifting with the previous assignment. *)

val nudge_activity : t -> int -> float -> unit
(** Add a small initial activity to a variable (before solving), biasing
    the branching order.  The bit-blaster gives the high bits of input
    words slightly more activity than the low bits, so enumeration flips
    low bits first and produces small-difference models like Z3's default
    model completion. *)

val stats_conflicts : t -> int
(** Total conflicts so far, for the micro-benchmarks. *)

val stats_decisions : t -> int
val stats_propagations : t -> int

val stats_restarts : t -> int
(** Luby restarts performed so far.  Campaign-wide solver work totals are
    no longer read from a process global: the benchmark harness sums the
    per-query deltas that [solve] flushes into the telemetry registry. *)

val stats_learned : t -> int
(** Clauses learnt over the instance's lifetime. *)

val stats_deleted : t -> int
(** Learnt/problem clauses deleted by clause-DB reduction and root-level
    simplification over the instance's lifetime. *)
