(* CDCL in the MiniSat tradition.  Data layout: variables are integers
   starting at 1; literal l of variable v is 2*v (positive) or 2*v+1
   (negative).

   Clauses live in a single growable int arena (MiniSat's ClauseAllocator):
   a clause reference [cref] is the offset of its header word.  Layout:

     ca.(c)              header: size lsl 2 | learned lsl 1 | deleted
     ca.(c+1)            LBD            (learned clauses only)
     ca.(c+2)            activity       (learned clauses only)
     ca.(c+k)...         literals       (k = 3 learned, 1 problem)

   The first two literals of every clause are watched.  Watch lists are
   flat int vectors of (cref, blocker) pairs: the blocker is the other
   watched literal at attach time, so the satisfied-clause fast path
   touches only the watch vector, never the clause (MiniSat's blocker
   optimisation).  Propagation compacts the vector in place — no list
   allocation on the hot path.

   Deleted clauses are only marked (header bit 0); their watchers are
   dropped lazily by propagation and their arena words leak until the
   instance dies, which is bounded by the clause-DB reduction keeping the
   learned set small.  The trail records assignments in order; [reason]
   links each implied variable to its asserting cref for conflict
   analysis. *)

type lit = int

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type cref = int

let cr_null : cref = -1

(* Assignment: 0 = unassigned, 1 = true, -1 = false (per variable). *)
type t = {
  mutable nvars : int;
  mutable assign : int array;  (* var -> -1/0/1 *)
  mutable level : int array;  (* var -> decision level *)
  mutable reason : int array;  (* var -> implying cref, or cr_null *)
  mutable phase : bool array;  (* var -> saved phase *)
  mutable activity : float array;  (* var -> VSIDS activity *)
  (* Clause arena. *)
  mutable ca : int array;
  mutable ca_size : int;
  (* Watch lists: per literal, interleaved (cref, blocker) pairs. *)
  mutable w_data : int array array;
  mutable w_size : int array;
  mutable trail : int array;  (* literal trail *)
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail sizes at decision points *)
  mutable trail_lim_size : int;
  mutable qhead : int;  (* propagation pointer *)
  (* Clause index vectors (crefs); deleted entries are swept lazily. *)
  mutable clauses : int array;  (* problem clauses *)
  mutable n_clauses : int;
  mutable learnts : int array;  (* learned clauses *)
  mutable n_learnts : int;
  mutable unsat : bool;  (* empty/contradictory clause seen *)
  mutable var_inc : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned_total : int;  (* clauses learned over the instance's life *)
  mutable deleted_total : int;  (* clauses deleted by reduce/simplify *)
  mutable next_reduce : int;  (* conflict count triggering the next reduce *)
  mutable reduce_count : int;
  mutable simp_trail : int;  (* level-0 trail size at the last simplify *)
  (* Scope selectors: clauses added inside [push]/[pop] are guarded by the
     innermost selector literal; [solve] assumes every open selector, and
     [pop] retires one with a permanent unit. *)
  mutable scope_lits : int array;
  mutable n_scopes : int;
  (* Effective-assumption scratch (selectors ++ caller assumptions) and a
     copy of the previous query's sequence, enabling assumption-trail
     reuse: the longest shared prefix of decision levels survives between
     consecutive solves instead of being rebuilt. *)
  mutable eff : int array;
  mutable prev_assum : int array;
  mutable n_prev : int;
  restart_base : int;  (* conflicts per Luby restart unit *)
  mutable rng : Scamv_util.Splitmix.t;
  mutable random_branch_freq : float;
  mutable rnd_countdown : int;
      (* deterministic decisions left until the next random-branch trial:
         sampled geometrically from [random_branch_freq], so the RNG is
         touched once per ~1/freq decisions instead of on every decision *)
  default_phase : bool;
  (* Order heap: binary max-heap on activity. *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable next_zero : int;
      (* ascending-id decision cursor over zero-activity variables: every
         unassigned zero-activity variable has id >= next_zero *)
  mutable seen : bool array;  (* scratch for conflict analysis *)
  mutable level_stamp : int array;  (* scratch for LBD computation *)
  mutable stamp : int;
  (* LBD histogram (clamped at [lbd_buckets - 1]) with a flush watermark,
     so [solve] can report per-query deltas to telemetry. *)
  lbd_hist : int array;
  lbd_flushed : int array;
}

let lbd_buckets = 33

(* Root-level simplification is worth a full watch rebuild only once a
   meaningful batch of new level-0 facts has accumulated; rebuilding on
   every learnt unit costs more than the propagation it saves. *)
let simplify_threshold = 32

let create ?seed ?(default_phase = false) ?(restart_base = 100) () =
  let cap = 16 in
  {
    nvars = 0;
    assign = Array.make cap 0;
    level = Array.make cap 0;
    reason = Array.make cap cr_null;
    phase = Array.make cap default_phase;
    activity = Array.make cap 0.0;
    ca = Array.make 1024 0;
    ca_size = 0;
    w_data = Array.make (2 * cap) [||];
    w_size = Array.make (2 * cap) 0;
    trail = Array.make cap 0;
    trail_size = 0;
    trail_lim = Array.make cap 0;
    trail_lim_size = 0;
    qhead = 0;
    clauses = Array.make 64 0;
    n_clauses = 0;
    learnts = Array.make 64 0;
    n_learnts = 0;
    unsat = false;
    var_inc = 1.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned_total = 0;
    deleted_total = 0;
    next_reduce = 2000;
    reduce_count = 0;
    simp_trail = 0;
    scope_lits = Array.make 4 0;
    n_scopes = 0;
    eff = Array.make 16 0;
    prev_assum = Array.make 16 0;
    n_prev = 0;
    restart_base;
    rng = Scamv_util.Splitmix.of_seed (Option.value seed ~default:0L);
    random_branch_freq = (match seed with None -> 0.0 | Some _ -> 0.02);
    rnd_countdown = 0;
    default_phase;
    heap = Array.make cap 0;
    heap_size = 0;
    heap_pos = Array.make cap (-1);
    next_zero = 1;
    seen = Array.make cap false;
    level_stamp = Array.make cap 0;
    stamp = 0;
    lbd_hist = Array.make lbd_buckets 0;
    lbd_flushed = Array.make lbd_buckets 0;
  }

let num_vars t = t.nvars
let stats_conflicts t = t.conflicts
let stats_decisions t = t.decisions
let stats_propagations t = t.propagations
let stats_restarts t = t.restarts
let stats_learned t = t.learned_total
let stats_deleted t = t.deleted_total

(* ---- clause arena accessors ---- *)

let cl_size t c = t.ca.(c) lsr 2
let cl_learned t c = t.ca.(c) land 2 <> 0
let cl_deleted t c = t.ca.(c) land 1 <> 0
let cl_delete t c = t.ca.(c) <- t.ca.(c) lor 1
let cl_base t c = c + 1 + (t.ca.(c) land 2)  (* +2 extra header words iff learned *)
let cl_lbd t c = t.ca.(c + 1)
let cl_set_lbd t c lbd = t.ca.(c + 1) <- lbd
let cl_act t c = t.ca.(c + 2)
let cl_set_act t c a = t.ca.(c + 2) <- a
let cl_set_size t c n = t.ca.(c) <- (n lsl 2) lor (t.ca.(c) land 3)

(* ---- dynamic growth ---- *)

let grow_arr a n fill =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let ensure_var_cap t n =
  t.assign <- grow_arr t.assign (n + 1) 0;
  t.level <- grow_arr t.level (n + 1) 0;
  t.reason <- grow_arr t.reason (n + 1) cr_null;
  t.phase <- grow_arr t.phase (n + 1) t.default_phase;
  t.activity <- grow_arr t.activity (n + 1) 0.0;
  t.w_data <- grow_arr t.w_data (2 * (n + 1)) [||];
  t.w_size <- grow_arr t.w_size (2 * (n + 1)) 0;
  t.trail <- grow_arr t.trail (n + 1) 0;
  t.trail_lim <- grow_arr t.trail_lim (n + 1) 0;
  t.heap <- grow_arr t.heap (n + 1) 0;
  t.heap_pos <- grow_arr t.heap_pos (n + 1) (-1);
  t.seen <- grow_arr t.seen (n + 1) false;
  t.level_stamp <- grow_arr t.level_stamp (n + 2) 0

(* ---- order heap ---- *)

(* Equal activities tie-break on variable id: variables are created in
   circuit topological order by the blaster, and branching low-id-first
   on untouched variables approximates the old per-solve heap refill
   (which re-inserted variables in creation order) without its O(nvars)
   cost per query. *)
let heap_less t a b =
  t.activity.(a) > t.activity.(b) || (t.activity.(a) = t.activity.(b) && a < b)

let rec heap_sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      t.heap_pos.(t.heap.(i)) <- i;
      t.heap_pos.(t.heap.(p)) <- p;
      heap_sift_up t p
    end
  end

let rec heap_sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!best);
    t.heap.(!best) <- tmp;
    t.heap_pos.(t.heap.(i)) <- i;
    t.heap_pos.(t.heap.(!best)) <- !best;
    heap_sift_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_sift_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_sift_down t 0
  end;
  v

let heap_update t v = if t.heap_pos.(v) >= 0 then heap_sift_up t t.heap_pos.(v)

(* ---- variables ---- *)

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  ensure_var_cap t v;
  t.assign.(v) <- 0;
  t.activity.(v) <- 0.0;
  (* Zero-activity variables are served by the decision cursor, not the
     heap (see [pick_branch_var]); the heap only ever holds variables
     whose activity has become positive. *)
  t.heap_pos.(v) <- -1;
  v

let lit_value t l =
  let a = t.assign.(l lsr 1) in
  if a = 0 then 0 else if l land 1 = 0 then a else -a

let decision_level t = t.trail_lim_size

let value t v = t.assign.(v) = 1

let root_value t v =
  if t.assign.(v) <> 0 && t.level.(v) = 0 then t.assign.(v) else 0

(* ---- activity ---- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  (* Conflict analysis only bumps assigned variables, so a variable that
     just became positive-activity need not enter the heap here: it is
     inserted when [cancel_until] unassigns it. *)
  heap_update t v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* ---- assignment / trail ---- *)

let enqueue t l reason =
  t.propagations <- t.propagations + 1;
  let v = var_of l in
  t.assign.(v) <- (if is_pos l then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    (* trail_lim.(k) is the trail size at the moment level k+1 started. *)
    let sz = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto sz do
      let v = var_of t.trail.(i) in
      t.assign.(v) <- 0;
      t.reason.(v) <- cr_null;
      (* Freed positive-activity variables go back on the heap; freed
         zero-activity variables only need the decision cursor rewound so
         it can see them again. *)
      if t.activity.(v) > 0.0 then heap_insert t v
      else if v < t.next_zero then t.next_zero <- v
    done;
    t.trail_size <- sz;
    t.qhead <- sz;
    t.trail_lim_size <- lvl
  end

(* ---- watches ---- *)

let push_watch t l cref blocker =
  let data = t.w_data.(l) in
  let sz = t.w_size.(l) in
  let data =
    if sz + 2 > Array.length data then begin
      let data' = Array.make (max 4 (2 * Array.length data)) 0 in
      Array.blit data 0 data' 0 sz;
      t.w_data.(l) <- data';
      data'
    end
    else data
  in
  data.(sz) <- cref;
  data.(sz + 1) <- blocker;
  t.w_size.(l) <- sz + 2

let attach_clause t c =
  let base = cl_base t c in
  let l0 = t.ca.(base) and l1 = t.ca.(base + 1) in
  push_watch t (negate l0) c l1;
  push_watch t (negate l1) c l0

(* ---- clause allocation ---- *)

let ca_alloc t words =
  if t.ca_size + words > Array.length t.ca then begin
    let cap = max (t.ca_size + words) (2 * Array.length t.ca) in
    let ca' = Array.make cap 0 in
    Array.blit t.ca 0 ca' 0 t.ca_size;
    t.ca <- ca'
  end;
  let c = t.ca_size in
  t.ca_size <- t.ca_size + words;
  c

let push_cref arr n c =
  let arr = grow_arr arr (n + 1) 0 in
  arr.(n) <- c;
  arr

(* Allocate a clause from an array of literals; attaches nothing. *)
let alloc_clause t ~learned lits =
  let n = Array.length lits in
  let extra = if learned then 2 else 0 in
  let c = ca_alloc t (1 + extra + n) in
  t.ca.(c) <- (n lsl 2) lor (if learned then 2 else 0);
  if learned then begin
    t.ca.(c + 1) <- 0;
    t.ca.(c + 2) <- 0
  end;
  let base = c + 1 + extra in
  Array.blit lits 0 t.ca base n;
  c

(* ---- propagation ---- *)

(* Propagate all pending assignments; returns the conflicting cref or
   [cr_null].  The watch vector of the triggering literal is compacted in
   place: no allocation per visited clause. *)
let propagate t : cref =
  let conflict = ref cr_null in
  while !conflict = cr_null && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    (* l became true; visit clauses watching ~l, stored under index l. *)
    let false_lit = negate l in
    let data = t.w_data.(l) in
    let n = t.w_size.(l) in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = data.(!i) in
      let blocker = data.(!i + 1) in
      (* Blocker fast path: if the cached other literal is already true
         the clause needs no work at all. *)
      if lit_value t blocker = 1 then begin
        data.(!j) <- c;
        data.(!j + 1) <- blocker;
        j := !j + 2;
        i := !i + 2
      end
      else if cl_deleted t c then
        (* Lazily drop watchers of deleted clauses. *)
        i := !i + 2
      else begin
        let base = cl_base t c in
        (* Ensure the false literal is at position 1. *)
        if t.ca.(base) = false_lit then begin
          t.ca.(base) <- t.ca.(base + 1);
          t.ca.(base + 1) <- false_lit
        end;
        let first = t.ca.(base) in
        if first <> blocker && lit_value t first = 1 then begin
          (* Satisfied by the other watched literal: keep, refresh blocker. *)
          data.(!j) <- c;
          data.(!j + 1) <- first;
          j := !j + 2;
          i := !i + 2
        end
        else begin
          (* Look for a new literal to watch. *)
          let size = cl_size t c in
          let k = ref 2 in
          while !k < size && lit_value t t.ca.(base + !k) = -1 do
            incr k
          done;
          if !k < size then begin
            (* Move the watch: this watcher leaves l's list. *)
            t.ca.(base + 1) <- t.ca.(base + !k);
            t.ca.(base + !k) <- false_lit;
            push_watch t (negate t.ca.(base + 1)) c first;
            i := !i + 2
          end
          else if lit_value t first = -1 then begin
            (* Conflict: keep this watcher and the unvisited suffix. *)
            data.(!j) <- c;
            data.(!j + 1) <- blocker;
            j := !j + 2;
            i := !i + 2;
            while !i < n do
              data.(!j) <- data.(!i);
              j := !j + 1;
              i := !i + 1
            done;
            conflict := c
          end
          else begin
            (* Unit: keep the watcher and propagate [first]. *)
            data.(!j) <- c;
            data.(!j + 1) <- first;
            j := !j + 2;
            i := !i + 2;
            enqueue t first c
          end
        end
      end
    done;
    t.w_size.(l) <- !j
  done;
  !conflict

let add_clause_raw t lits =
  (* Normalize against root (level-0) assignments only, so clauses can be
     added at any decision level: a model-blocking clause asserted between
     enumeration draws rewinds the trail just past its two deepest
     falsified literals instead of to the root, and the next solve resumes
     the search descent instead of rebuilding it. *)
  if not t.unsat then begin
    let lits = List.sort_uniq compare lits in
    (* After sorting, the two literals of one variable are adjacent. *)
    let rec has_adjacent_negation = function
      | a :: (b :: _ as rest) -> b = a + 1 && a land 1 = 0 || has_adjacent_negation rest
      | _ -> false
    in
    let root_lit l =
      let a = root_value t (l lsr 1) in
      if a = 0 then 0 else if l land 1 = 0 then a else -a
    in
    let tautology =
      has_adjacent_negation lits || List.exists (fun l -> root_lit l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> root_lit l <> -1) lits in
      match lits with
      | [] -> t.unsat <- true
      | [ l ] -> (
        (* Units must enter the root trail: rewind and propagate. *)
        cancel_until t 0;
        ignore (propagate t);
        match lit_value t l with
        | 1 -> ()
        | -1 -> t.unsat <- true
        | _ ->
          enqueue t l cr_null;
          if propagate t <> cr_null then t.unsat <- true)
      | _ :: _ :: _ ->
        let arr = Array.of_list lits in
        let n = Array.length arr in
        (* The watch invariant needs two non-falsified literals: if the
           current assignment leaves fewer, rewind past the deepest
           falsifying levels (their literals survived the root filter, so
           those levels are >= 1 and the target stays >= 0). *)
        let non_false = ref 0 in
        for i = 0 to n - 1 do
          if lit_value t arr.(i) <> -1 then incr non_false
        done;
        if !non_false < 2 then begin
          let l1 = ref 0 and l2 = ref 0 in
          for i = 0 to n - 1 do
            if lit_value t arr.(i) = -1 then begin
              let lv = t.level.(arr.(i) lsr 1) in
              if lv > !l1 then begin
                l2 := !l1;
                l1 := lv
              end
              else if lv > !l2 then l2 := lv
            end
          done;
          cancel_until t ((if !non_false = 1 then !l1 else !l2) - 1)
        end;
        (* Watch two non-falsified literals. *)
        let w = ref 0 in
        let i = ref 0 in
        while !w < 2 && !i < n do
          if lit_value t arr.(!i) <> -1 then begin
            let tmp = arr.(!w) in
            arr.(!w) <- arr.(!i);
            arr.(!i) <- tmp;
            incr w
          end;
          incr i
        done;
        let c = alloc_clause t ~learned:false arr in
        attach_clause t c;
        t.clauses <- push_cref t.clauses t.n_clauses c;
        t.n_clauses <- t.n_clauses + 1
    end
  end

(* Clauses added under an open scope carry the innermost selector's
   negation as a guard: they only bite while [solve] assumes the selector,
   and [pop]'s permanent unit satisfies them all at once. *)
let add_clause t lits =
  if t.n_scopes = 0 then add_clause_raw t lits
  else add_clause_raw t (negate t.scope_lits.(t.n_scopes - 1) :: lits)

let push t =
  let s = pos (new_var t) in
  t.scope_lits <- grow_arr t.scope_lits (t.n_scopes + 1) 0;
  t.scope_lits.(t.n_scopes) <- s;
  t.n_scopes <- t.n_scopes + 1;
  Scamv_telemetry.Collector.incr "sat.pushes"

let pop t =
  if t.n_scopes = 0 then invalid_arg "Sat.pop: no open scope";
  let s = t.scope_lits.(t.n_scopes - 1) in
  t.n_scopes <- t.n_scopes - 1;
  (* Retire the scope with a permanent (unguarded) unit: every clause
     guarded by [s] is satisfied from here on and stripped by the next
     root-level simplification; learnt clauses mentioning [negate s] stay
     sound because the unit subsumes that literal. *)
  add_clause_raw t [ negate s ];
  Scamv_telemetry.Collector.incr "sat.pops"

let num_scopes t = t.n_scopes

(* ---- conflict analysis (first UIP) ---- *)

let analyze t confl =
  let learnt = ref [] in
  let seen = t.seen in
  let touched = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  (* 0 encodes "undefined" before the first iteration *)
  let idx = ref (t.trail_size - 1) in
  let btlevel = ref 0 in
  let confl = ref confl in
  let first = ref true in
  let continue_loop = ref true in
  while !continue_loop do
    if !confl <> cr_null then begin
      let c = !confl in
      (* Recency counts as clause activity: bump every learned clause that
         participates in an analysis, so reduction keeps the useful ones. *)
      if cl_learned t c then cl_set_act t c (cl_act t c + 1);
      let base = cl_base t c in
      let size = cl_size t c in
      let start = if !first then 0 else 1 in
      for i = start to size - 1 do
        let q = t.ca.(base + i) in
        let v = var_of q in
        if (not seen.(v)) && t.level.(v) > 0 then begin
          seen.(v) <- true;
          touched := v :: !touched;
          var_bump t v;
          if t.level.(v) >= decision_level t then incr counter
          else begin
            learnt := q :: !learnt;
            if t.level.(v) > !btlevel then btlevel := t.level.(v)
          end
        end
      done
    end;
    first := false;
    (* Select next literal to look at (walk trail backwards). *)
    let rec next_seen i = if seen.(var_of t.trail.(i)) then i else next_seen (i - 1) in
    idx := next_seen !idx;
    p := t.trail.(!idx);
    let v = var_of !p in
    confl := t.reason.(v);
    seen.(v) <- false;
    idx := !idx - 1;
    decr counter;
    if !counter = 0 then continue_loop := false
  done;
  List.iter (fun v -> seen.(v) <- false) !touched;
  (negate !p :: !learnt, !btlevel)

(* Literal-blocks-distance: number of distinct decision levels among the
   literals of a learnt clause (Audemard & Simon).  Low-LBD ("glue")
   clauses are the ones clause-DB reduction must keep. *)
let compute_lbd t lits =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let lbd = ref 0 in
  Array.iter
    (fun l ->
      let lvl = t.level.(var_of l) in
      if lvl > 0 && t.level_stamp.(lvl) <> stamp then begin
        t.level_stamp.(lvl) <- stamp;
        incr lbd
      end)
    lits;
  !lbd

(* ---- clause DB reduction ---- *)

let locked t c =
  let l0 = t.ca.(cl_base t c) in
  lit_value t l0 = 1 && t.reason.(var_of l0) = c

(* Keep glue clauses (LBD <= 2) and locked clauses; of the rest, delete
   the worse half — higher LBD first, then lower activity, then older. *)
let reduce_db t =
  let cands = ref [] in
  let kept = ref [] in
  for i = t.n_learnts - 1 downto 0 do
    let c = t.learnts.(i) in
    if not (cl_deleted t c) then
      if cl_lbd t c <= 2 || locked t c then kept := c :: !kept
      else cands := c :: !cands
  done;
  let cands =
    List.sort
      (fun a b ->
        let la = cl_lbd t a and lb = cl_lbd t b in
        if la <> lb then compare la lb
        else
          let aa = cl_act t a and ab = cl_act t b in
          if aa <> ab then compare ab aa else compare b a)
      !cands
  in
  let n_keep = (List.length cands + 1) / 2 in
  let survivors = ref (List.rev !kept) in
  List.iteri
    (fun i c ->
      if i < n_keep then survivors := c :: !survivors
      else begin
        cl_delete t c;
        t.deleted_total <- t.deleted_total + 1
      end)
    cands;
  (* Rebuild the learnt vector (order is irrelevant for search; keep it
     deterministic) and decay activities so recency keeps mattering. *)
  t.n_learnts <- 0;
  List.iter
    (fun c ->
      cl_set_act t c (cl_act t c / 2);
      t.learnts <- push_cref t.learnts t.n_learnts c;
      t.n_learnts <- t.n_learnts + 1)
    (List.rev !survivors)

(* ---- root-level simplification ---- *)

(* At decision level 0, once the root trail has grown since the last call
   (blocking clauses and learnt units accumulate between enumeration
   solves): delete clauses satisfied at level 0, strip false literals from
   the rest, and rebuild the watch lists.  Precondition: decision level 0
   and propagation complete without conflict. *)
let simplify t =
  let new_units = ref [] in
  (* Root assignments are permanent; their reasons are never dereferenced
     (analysis stops at level 0), so drop the crefs before deleting the
     clauses they might point at. *)
  for i = 0 to t.trail_size - 1 do
    t.reason.(var_of t.trail.(i)) <- cr_null
  done;
  let sweep_vec arr n =
    for i = 0 to n - 1 do
      let c = arr.(i) in
      if not (cl_deleted t c) then begin
        let base = cl_base t c in
        let size = cl_size t c in
        let satisfied = ref false in
        let k = ref 0 in
        while (not !satisfied) && !k < size do
          if lit_value t t.ca.(base + !k) = 1 then satisfied := true;
          incr k
        done;
        if !satisfied then begin
          cl_delete t c;
          t.deleted_total <- t.deleted_total + 1
        end
        else begin
          (* Strip false literals in place. *)
          let j = ref 0 in
          for k = 0 to size - 1 do
            let l = t.ca.(base + k) in
            if lit_value t l = 0 then begin
              t.ca.(base + !j) <- l;
              incr j
            end
          done;
          if !j < size then begin
            cl_set_size t c !j;
            if !j = 1 then begin
              new_units := t.ca.(base) :: !new_units;
              cl_delete t c;
              t.deleted_total <- t.deleted_total + 1
            end
            else if !j = 0 then t.unsat <- true
          end
        end
      end
    done
  in
  sweep_vec t.clauses t.n_clauses;
  sweep_vec t.learnts t.n_learnts;
  (* Compact the clause vectors. *)
  let compact arr n =
    let j = ref 0 in
    for i = 0 to n - 1 do
      if not (cl_deleted t arr.(i)) then begin
        arr.(!j) <- arr.(i);
        incr j
      end
    done;
    !j
  in
  t.n_clauses <- compact t.clauses t.n_clauses;
  t.n_learnts <- compact t.learnts t.n_learnts;
  (* Rebuild every watch list from the surviving clauses. *)
  Array.fill t.w_size 0 (Array.length t.w_size) 0;
  for i = 0 to t.n_clauses - 1 do
    attach_clause t t.clauses.(i)
  done;
  for i = 0 to t.n_learnts - 1 do
    attach_clause t t.learnts.(i)
  done;
  (* Enqueue literals of clauses that shrank to units, then settle. *)
  List.iter
    (fun l ->
      match lit_value t l with
      | 0 -> enqueue t l cr_null
      | -1 -> t.unsat <- true
      | _ -> ())
    !new_units;
  if (not t.unsat) && propagate t <> cr_null then t.unsat <- true;
  t.simp_trail <- t.trail_size

(* ---- search ---- *)

(* Branching rule: highest activity first, ties broken by lowest variable
   id.  The heap holds exactly the positive-activity variables (a small
   minority: nudged input bits plus conflict-bumped variables), so any
   unassigned heap variable outranks every zero-activity one.  The
   zero-activity majority — Tseitin internals, in circuit topological
   order by construction — is served by [next_zero], an ascending-id
   cursor that [solve] rewinds per query and [cancel_until] rewinds on
   backtracking.  This keeps a decision O(1) amortised instead of heap
   pops through thousands of propagation-assigned variables, which
   dominated solve time in the enumeration workload. *)
let pick_branch_var t =
  let random_pick () =
    if t.heap_size = 0 then -1
    else begin
      let i, rng = Scamv_util.Splitmix.int t.rng t.heap_size in
      t.rng <- rng;
      let v = t.heap.(i) in
      if t.assign.(v) = 0 then v else -1
    end
  in
  let v =
    if t.random_branch_freq > 0.0 then
      if t.rnd_countdown > 0 then begin
        t.rnd_countdown <- t.rnd_countdown - 1;
        -1
      end
      else begin
        (* Sample the gap to the next random branch geometrically: one
           RNG draw covers ~1/freq deterministic decisions. *)
        let u, rng = Scamv_util.Splitmix.float t.rng in
        t.rng <- rng;
        let gap =
          int_of_float (log (max u 1e-12) /. log (1.0 -. t.random_branch_freq))
        in
        t.rnd_countdown <- gap;
        random_pick ()
      end
    else -1
  in
  if v > 0 then v
  else begin
    let rec pop () =
      if t.heap_size = 0 then -1
      else begin
        let v = heap_pop t in
        if t.assign.(v) = 0 then v else pop ()
      end
    in
    let v = pop () in
    if v > 0 then v
    else begin
      let n = t.nvars in
      let rec scan z =
        if z > n then -1
        else if t.assign.(z) = 0 && t.activity.(z) = 0.0 then begin
          t.next_zero <- z + 1;
          z
        end
        else scan (z + 1)
      in
      let z = scan t.next_zero in
      if z > 0 then z else (t.next_zero <- n + 1; -1)
    end
  end

(* Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let rec order k = if (1 lsl k) - 1 >= i then k else order (k + 1) in
  let k = order 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1) else luby (i - (1 lsl (k - 1)) + 1)

let push_level t =
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

type outcome = Sat | Unsat | Unknown

type budget = {
  max_conflicts : int option;
  max_decisions : int option;
  max_propagations : int option;
}

let unlimited =
  { max_conflicts = None; max_decisions = None; max_propagations = None }

let budget ?conflicts ?decisions ?propagations () =
  {
    max_conflicts = conflicts;
    max_decisions = decisions;
    max_propagations = propagations;
  }

let pp_budget ppf b =
  let field name = function None -> [] | Some n -> [ Printf.sprintf "%s<=%d" name n ] in
  let parts =
    field "conflicts" b.max_conflicts
    @ field "decisions" b.max_decisions
    @ field "propagations" b.max_propagations
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | _ -> String.concat "," parts)

let solve ?(assumptions = [||]) ?n_assumptions ?(budget = unlimited) t =
  let n_assumptions =
    match n_assumptions with
    | None -> Array.length assumptions
    | Some n -> min n (Array.length assumptions)
  in
  if t.unsat then Unsat
  else begin
    (* Telemetry is flushed once per query as counter deltas — never from
       the inner search loop — so instrumentation stays off the hot path
       and is a no-op when no collector is installed. *)
    let c0 = t.conflicts
    and d0 = t.decisions
    and p0 = t.propagations
    and r0 = t.restarts
    and learned0 = t.learned_total
    and deleted0 = t.deleted_total in
    let finish ?(interrupted = false) outcome =
      let dc = t.conflicts - c0 in
      Scamv_telemetry.Collector.add "sat.conflicts" dc;
      Scamv_telemetry.Collector.add "sat.decisions" (t.decisions - d0);
      Scamv_telemetry.Collector.add "sat.propagations" (t.propagations - p0);
      Scamv_telemetry.Collector.add "sat.restarts" (t.restarts - r0);
      Scamv_telemetry.Collector.add "sat.learned" (t.learned_total - learned0);
      Scamv_telemetry.Collector.add "sat.deleted" (t.deleted_total - deleted0);
      Scamv_telemetry.Collector.incr "sat.queries";
      (if interrupted then
         Scamv_telemetry.Collector.incr "sat.deadline_interrupts"
       else if outcome = Unknown then
         Scamv_telemetry.Collector.incr "sat.budget_exhausted");
      Scamv_telemetry.Collector.observe "sat.conflicts_per_query"
        (float_of_int dc);
      (* LBD histogram of the clauses learned by this query. *)
      for b = 0 to lbd_buckets - 1 do
        let d = t.lbd_hist.(b) - t.lbd_flushed.(b) in
        if d > 0 then begin
          Scamv_telemetry.Collector.observe_n "sat.lbd" (float_of_int b) d;
          t.lbd_flushed.(b) <- t.lbd_hist.(b)
        end
      done;
      outcome
    in
    (* Budgets are per-call: the caps apply to the work done by this
       [solve], not to the cumulative counters of the solver's life. *)
    let limit base = function None -> max_int | Some n -> base + n in
    let conflict_limit = limit t.conflicts budget.max_conflicts in
    let decision_limit = limit t.decisions budget.max_decisions in
    let propagation_limit = limit t.propagations budget.max_propagations in
    let over_budget () =
      t.conflicts > conflict_limit
      || t.decisions > decision_limit
      || t.propagations > propagation_limit
    in
    (* Cooperative cancellation: capture the ambient deadline token once
       per query, charge it one unit per conflict, and check it beside the
       budget at the loop head.  Expiry exits the search like an
       out-of-budget stop (trail rewound, telemetry flushed) and then
       raises, so the solver object stays reusable. *)
    let deadline = Scamv_util.Deadline.current () in
    let deadline_hit = ref false in
    let deadline_expired () =
      match deadline with
      | None -> false
      | Some d -> Scamv_util.Deadline.expired d
    in
    (* Effective assumption sequence: open scope selectors (push order)
       then the caller's assumptions, materialized into solver-owned
       scratch so repeated queries allocate nothing. *)
    let total = t.n_scopes + n_assumptions in
    t.eff <- grow_arr t.eff total 0;
    Array.blit t.scope_lits 0 t.eff 0 t.n_scopes;
    Array.blit assumptions 0 t.eff t.n_scopes n_assumptions;
    if total > 0 then Scamv_telemetry.Collector.incr "sat.assumption_solves";
    (* Assumption-trail reuse: the previous query left one decision level
       per assumption (levels 0..n_prev-1, empty when already implied),
       fully propagated.  Keep the longest prefix that this query assumes
       again and rewind only past it — consecutive minimizer pin queries
       differ in their last assumption only, so re-propagation becomes
       O(1) instead of O(pins).  Any [add_clause] in between rewinds
       itself just far enough for its watch invariant, which bounds
       [keep] soundly via [decision_level].  When every assumption of
       this query was already decided in the kept prefix, the deeper
       levels — search decisions of the previous query, or stale
       assumptions it no longer makes — are kept too: they act as plain
       decisions that conflict analysis pops on demand, so enumeration
       resumes next to the model it just blocked instead of re-descending
       from the root. *)
    let keep =
      let lim = min (min (decision_level t) total) t.n_prev in
      let k = ref 0 in
      while !k < lim && t.prev_assum.(!k) = t.eff.(!k) do
        incr k
      done;
      if !k = total then decision_level t else !k
    in
    cancel_until t keep;
    t.prev_assum <- grow_arr t.prev_assum total 0;
    Array.blit t.eff 0 t.prev_assum 0 total;
    t.n_prev <- total;
    (* Decision order state is O(1) to rewind per query: positive-activity
       variables stay on the heap across queries ([new_var] and
       [cancel_until] maintain it), and the zero-activity cursor restarts
       from the lowest id — so unlike the previous revision there is no
       O(nvars) heap refill per query, which matters when enumeration
       issues thousands of queries against the same instance. *)
    t.next_zero <- 1;
    (* Root propagation and simplification only apply from a clean trail;
       with a kept assumption prefix the trail is already settled (nothing
       was added since, or [keep] would be 0) and the search loop handles
       any conflict at its own level. *)
    if decision_level t = 0 && propagate t <> cr_null then begin
      t.unsat <- true;
      finish Unsat
    end
    else begin
      (* Between enumeration solves the root trail only grows (blocking
         clauses, learnt units): strip the clause DB against it once. *)
      if decision_level t = 0 && t.trail_size > t.simp_trail + simplify_threshold
      then simplify t;
      if t.unsat then finish Unsat
      else begin
        let restart_num = ref 0 in
        let result = ref None in
        while !result = None do
          incr restart_num;
          let restart_budget = t.restart_base * luby !restart_num in
          let local_conflicts = ref 0 in
          let restart = ref false in
          while !result = None && not !restart do
            if over_budget () then result := Some Unknown
            else if deadline_expired () then begin
              deadline_hit := true;
              result := Some Unknown
            end
            else begin
              let confl = propagate t in
              if confl <> cr_null then begin
                t.conflicts <- t.conflicts + 1;
                (match deadline with
                | Some d -> Scamv_util.Deadline.tick d 1
                | None -> ());
                incr local_conflicts;
                if decision_level t = 0 then begin
                  t.unsat <- true;
                  result := Some Unsat
                end
                else begin
                  let learnt, btlevel = analyze t confl in
                  cancel_until t btlevel;
                  (match learnt with
                  | [] -> t.unsat <- true
                  | [ l ] -> enqueue t l cr_null
                  | l :: _ ->
                    let lits = Array.of_list learnt in
                    (* Watch the asserting literal and a literal from the
                       backtrack level, so the watches are the last
                       literals to be unassigned on further backtracks. *)
                    let best = ref 1 in
                    for k = 2 to Array.length lits - 1 do
                      if t.level.(var_of lits.(k)) > t.level.(var_of lits.(!best))
                      then best := k
                    done;
                    let tmp = lits.(1) in
                    lits.(1) <- lits.(!best);
                    lits.(!best) <- tmp;
                    let lbd = compute_lbd t lits in
                    let c = alloc_clause t ~learned:true lits in
                    cl_set_lbd t c lbd;
                    attach_clause t c;
                    t.learnts <- push_cref t.learnts t.n_learnts c;
                    t.n_learnts <- t.n_learnts + 1;
                    t.learned_total <- t.learned_total + 1;
                    t.lbd_hist.(min lbd (lbd_buckets - 1)) <-
                      t.lbd_hist.(min lbd (lbd_buckets - 1)) + 1;
                    enqueue t l c);
                  var_decay t;
                  if !local_conflicts >= restart_budget then restart := true
                end
              end
              else if decision_level t < total then begin
                (* Assert the next assumption as a decision.  A falsified
                   assumption means unsatisfiable *under these assumptions*
                   only; the clause set itself stays usable. *)
                let a = t.eff.(decision_level t) in
                match lit_value t a with
                | -1 -> result := Some Unsat
                | 1 -> push_level t (* already implied: empty level *)
                | _ ->
                  push_level t;
                  enqueue t a cr_null
              end
              else begin
                let v = pick_branch_var t in
                if v < 0 then result := Some Sat
                else begin
                  t.decisions <- t.decisions + 1;
                  push_level t;
                  let l = if t.phase.(v) then pos v else neg_of_var v in
                  enqueue t l cr_null
                end
              end
            end
          done;
          if !restart then begin
            t.restarts <- t.restarts + 1;
            cancel_until t 0;
            (* Periodic clause-DB reduction, scheduled on conflicts and
               applied at restart boundaries (trail is clean). *)
            if t.conflicts >= t.next_reduce then begin
              reduce_db t;
              t.reduce_count <- t.reduce_count + 1;
              t.next_reduce <- t.conflicts + 2000 + (300 * t.reduce_count)
            end
          end
        done;
        (* An out-of-budget stop leaves a partial trail; rewind it so the
           solver is immediately reusable (e.g. with a larger budget). *)
        if !result = Some Unknown then cancel_until t 0;
        if !deadline_hit then begin
          ignore (finish ~interrupted:true Unknown : outcome);
          match deadline with
          | Some d -> raise (Scamv_util.Deadline.Expired (Scamv_util.Deadline.describe d))
          | None -> assert false
        end
        else finish (Option.get !result)
      end
    end
  end

let nudge_activity t v amount =
  t.activity.(v) <- t.activity.(v) +. amount;
  (* The variable just became positive-activity: it now belongs on the
     heap (the zero-activity cursor will skip it from here on). *)
  if t.assign.(v) = 0 then heap_insert t v else heap_update t v

let reset_phases t = Array.fill t.phase 0 (Array.length t.phase) t.default_phase

let randomize_phases t seed =
  let rng = ref (Scamv_util.Splitmix.of_seed seed) in
  for v = 1 to t.nvars do
    let b, r = Scamv_util.Splitmix.bool !rng in
    rng := r;
    t.phase.(v) <- b
  done
