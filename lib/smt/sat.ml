(* CDCL in the MiniSat tradition.  Data layout: variables are integers
   starting at 1; literal l of variable v is 2*v (positive) or 2*v+1
   (negative).  Clauses are int arrays whose first two literals are
   watched.  The trail records assignments in order; `reason` links each
   implied variable to its asserting clause for conflict analysis. *)

type lit = int

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type clause = int array

(* Assignment: 0 = unassigned, 1 = true, -1 = false (per variable). *)
type t = {
  mutable nvars : int;
  mutable assign : int array;  (* var -> -1/0/1 *)
  mutable level : int array;  (* var -> decision level *)
  mutable reason : clause option array;  (* var -> implying clause *)
  mutable phase : bool array;  (* var -> saved phase *)
  mutable activity : float array;  (* var -> VSIDS activity *)
  mutable watches : clause list array;  (* lit -> watching clauses *)
  mutable trail : int array;  (* literal trail *)
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail sizes at decision points *)
  mutable trail_lim_size : int;
  mutable qhead : int;  (* propagation pointer *)
  mutable clauses : clause list;  (* original + learned, for re-solving *)
  mutable unsat : bool;  (* empty/contradictory clause seen *)
  mutable var_inc : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable rng : Scamv_util.Splitmix.t;
  mutable random_branch_freq : float;
  default_phase : bool;
  (* Order heap: binary max-heap on activity. *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable seen : bool array;  (* scratch for conflict analysis *)
}

let create ?seed ?(default_phase = false) () =
  let cap = 16 in
  {
    nvars = 0;
    assign = Array.make cap 0;
    level = Array.make cap 0;
    reason = Array.make cap None;
    phase = Array.make cap default_phase;
    activity = Array.make cap 0.0;
    watches = Array.make (2 * cap) [];
    trail = Array.make cap 0;
    trail_size = 0;
    trail_lim = Array.make cap 0;
    trail_lim_size = 0;
    qhead = 0;
    clauses = [];
    unsat = false;
    var_inc = 1.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    rng = Scamv_util.Splitmix.of_seed (Option.value seed ~default:0L);
    random_branch_freq = (match seed with None -> 0.0 | Some _ -> 0.02);
    default_phase;
    heap = Array.make cap 0;
    heap_size = 0;
    heap_pos = Array.make cap (-1);
    seen = Array.make cap false;
  }

let num_vars t = t.nvars
let stats_conflicts t = t.conflicts
let stats_decisions t = t.decisions
let stats_propagations t = t.propagations
let stats_restarts t = t.restarts

(* ---- dynamic growth ---- *)

let grow_arr a n fill =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let ensure_var_cap t n =
  t.assign <- grow_arr t.assign (n + 1) 0;
  t.level <- grow_arr t.level (n + 1) 0;
  t.reason <- grow_arr t.reason (n + 1) None;
  t.phase <- grow_arr t.phase (n + 1) t.default_phase;
  t.activity <- grow_arr t.activity (n + 1) 0.0;
  t.watches <- grow_arr t.watches (2 * (n + 1)) [];
  t.trail <- grow_arr t.trail (n + 1) 0;
  t.trail_lim <- grow_arr t.trail_lim (n + 1) 0;
  t.heap <- grow_arr t.heap (n + 1) 0;
  t.heap_pos <- grow_arr t.heap_pos (n + 1) (-1);
  t.seen <- grow_arr t.seen (n + 1) false

(* ---- order heap ---- *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let rec heap_sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      t.heap_pos.(t.heap.(i)) <- i;
      t.heap_pos.(t.heap.(p)) <- p;
      heap_sift_up t p
    end
  end

let rec heap_sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!best);
    t.heap.(!best) <- tmp;
    t.heap_pos.(t.heap.(i)) <- i;
    t.heap_pos.(t.heap.(!best)) <- !best;
    heap_sift_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_sift_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_sift_down t 0
  end;
  v

let heap_update t v = if t.heap_pos.(v) >= 0 then heap_sift_up t t.heap_pos.(v)

(* ---- variables ---- *)

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  ensure_var_cap t v;
  t.assign.(v) <- 0;
  t.activity.(v) <- 0.0;
  t.heap_pos.(v) <- -1;
  heap_insert t v;
  v

let lit_value t l =
  let a = t.assign.(var_of l) in
  if a = 0 then 0 else if is_pos l then a else -a

let decision_level t = t.trail_lim_size

(* ---- activity ---- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_update t v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* ---- assignment / trail ---- *)

let enqueue t l reason =
  t.propagations <- t.propagations + 1;
  let v = var_of l in
  t.assign.(v) <- (if is_pos l then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    (* trail_lim.(k) is the trail size at the moment level k+1 started. *)
    let sz = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto sz do
      let v = var_of t.trail.(i) in
      t.assign.(v) <- 0;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_size <- sz;
    t.qhead <- sz;
    t.trail_lim_size <- lvl
  end

(* ---- clauses ---- *)

let watch t l c = t.watches.(l) <- c :: t.watches.(l)

let attach_clause t c =
  watch t (negate c.(0)) c;
  watch t (negate c.(1)) c

(* Propagate all pending assignments; returns the conflicting clause if a
   conflict is found. *)
let propagate t : clause option =
  let conflict = ref None in
  while !conflict = None && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    (* l became true; visit clauses watching ~l via index l. *)
    let false_lit = negate l in
    let ws = t.watches.(l) in
    t.watches.(l) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest ->
        (* Blocker-style satisfaction check: if the *other* watched
           literal is already true the clause needs no work at all — keep
           watching without touching the clause array.  This is the
           common case on the hot path, so it pays to do it before the
           position-1 normalization swap. *)
        let other = if c.(0) = false_lit then c.(1) else c.(0) in
        if lit_value t other = 1 then begin
          t.watches.(l) <- c :: t.watches.(l);
          go rest
        end
        else begin
          (* Ensure the false literal is at position 1. *)
          if c.(0) = false_lit then begin
            c.(0) <- c.(1);
            c.(1) <- false_lit
          end;
          (* Look for a new literal to watch. *)
          let n = Array.length c in
          let k = ref 2 in
          while !k < n && lit_value t c.(!k) = -1 do
            incr k
          done;
          if !k < n then begin
            c.(1) <- c.(!k);
            c.(!k) <- false_lit;
            watch t (negate c.(1)) c;
            go rest
          end
          else if lit_value t c.(0) = -1 then begin
            (* Conflict: splice the unvisited suffix back into the watch
               list in one pass and stop. *)
            t.watches.(l) <- List.rev_append rest (c :: t.watches.(l));
            conflict := Some c
          end
          else begin
            (* Unit: propagate c.(0). *)
            t.watches.(l) <- c :: t.watches.(l);
            enqueue t c.(0) (Some c);
            go rest
          end
        end
    in
    go ws
  done;
  !conflict

let add_clause t lits =
  (* Normalize: drop duplicate/false-at-level-0 literals, detect tautology
     and already-true clauses.  Must be called at decision level 0. *)
  cancel_until t 0;
  ignore (propagate t);
  if not t.unsat then begin
    let lits = List.sort_uniq compare lits in
    (* After sorting, the two literals of one variable are adjacent. *)
    let rec has_adjacent_negation = function
      | a :: (b :: _ as rest) -> b = a + 1 && a land 1 = 0 || has_adjacent_negation rest
      | _ -> false
    in
    let tautology =
      has_adjacent_negation lits || List.exists (fun l -> lit_value t l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value t l <> -1) lits in
      match lits with
      | [] -> t.unsat <- true
      | [ l ] ->
        enqueue t l None;
        if propagate t <> None then t.unsat <- true
      | _ ->
        let c = Array.of_list lits in
        attach_clause t c;
        t.clauses <- c :: t.clauses
    end
  end

(* ---- conflict analysis (first UIP) ---- *)

let analyze t confl =
  let learnt = ref [] in
  let seen = t.seen in
  let touched = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  (* 0 encodes "undefined" before the first iteration *)
  let idx = ref (t.trail_size - 1) in
  let btlevel = ref 0 in
  let confl = ref (Some confl) in
  let first = ref true in
  let continue_loop = ref true in
  while !continue_loop do
    (match !confl with
    | None -> ()
    | Some c ->
      let start = if !first then 0 else 1 in
      for i = start to Array.length c - 1 do
        let q = c.(i) in
        let v = var_of q in
        if (not seen.(v)) && t.level.(v) > 0 then begin
          seen.(v) <- true;
          touched := v :: !touched;
          var_bump t v;
          if t.level.(v) >= decision_level t then incr counter
          else begin
            learnt := q :: !learnt;
            if t.level.(v) > !btlevel then btlevel := t.level.(v)
          end
        end
      done);
    first := false;
    (* Select next literal to look at (walk trail backwards). *)
    let rec next_seen i = if seen.(var_of t.trail.(i)) then i else next_seen (i - 1) in
    idx := next_seen !idx;
    p := t.trail.(!idx);
    let v = var_of !p in
    confl := t.reason.(v);
    seen.(v) <- false;
    idx := !idx - 1;
    decr counter;
    if !counter = 0 then continue_loop := false
  done;
  List.iter (fun v -> seen.(v) <- false) !touched;
  (negate !p :: !learnt, !btlevel)

(* ---- search ---- *)

let pick_branch_var t =
  let use_random, rng = Scamv_util.Splitmix.float t.rng in
  t.rng <- rng;
  let random_pick () =
    if t.heap_size = 0 then -1
    else begin
      let i, rng = Scamv_util.Splitmix.int t.rng t.heap_size in
      t.rng <- rng;
      let v = t.heap.(i) in
      if t.assign.(v) = 0 then v else -1
    end
  in
  let v =
    if t.random_branch_freq > 0.0 && use_random < t.random_branch_freq then random_pick ()
    else -1
  in
  if v > 0 then v
  else begin
    let rec pop () =
      if t.heap_size = 0 then -1
      else begin
        let v = heap_pop t in
        if t.assign.(v) = 0 then v else pop ()
      end
    in
    pop ()
  end

(* Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let rec order k = if (1 lsl k) - 1 >= i then k else order (k + 1) in
  let k = order 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1) else luby (i - (1 lsl (k - 1)) + 1)

let push_level t =
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

type outcome = Sat | Unsat | Unknown

type budget = {
  max_conflicts : int option;
  max_decisions : int option;
  max_propagations : int option;
}

let unlimited =
  { max_conflicts = None; max_decisions = None; max_propagations = None }

let budget ?conflicts ?decisions ?propagations () =
  {
    max_conflicts = conflicts;
    max_decisions = decisions;
    max_propagations = propagations;
  }

let pp_budget ppf b =
  let field name = function None -> [] | Some n -> [ Printf.sprintf "%s<=%d" name n ] in
  let parts =
    field "conflicts" b.max_conflicts
    @ field "decisions" b.max_decisions
    @ field "propagations" b.max_propagations
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | _ -> String.concat "," parts)

let solve ?(assumptions = [||]) ?(budget = unlimited) t =
  if t.unsat then Unsat
  else begin
    (* Telemetry is flushed once per query as counter deltas — never from
       the inner search loop — so instrumentation stays off the hot path
       and is a no-op when no collector is installed. *)
    let c0 = t.conflicts
    and d0 = t.decisions
    and p0 = t.propagations
    and r0 = t.restarts in
    let finish outcome =
      let dc = t.conflicts - c0 in
      Scamv_telemetry.Collector.add "sat.conflicts" dc;
      Scamv_telemetry.Collector.add "sat.decisions" (t.decisions - d0);
      Scamv_telemetry.Collector.add "sat.propagations" (t.propagations - p0);
      Scamv_telemetry.Collector.add "sat.restarts" (t.restarts - r0);
      Scamv_telemetry.Collector.incr "sat.queries";
      (if outcome = Unknown then
         Scamv_telemetry.Collector.incr "sat.budget_exhausted");
      Scamv_telemetry.Collector.observe "sat.conflicts_per_query"
        (float_of_int dc);
      outcome
    in
    (* Budgets are per-call: the caps apply to the work done by this
       [solve], not to the cumulative counters of the solver's life. *)
    let limit base = function None -> max_int | Some n -> base + n in
    let conflict_limit = limit t.conflicts budget.max_conflicts in
    let decision_limit = limit t.decisions budget.max_decisions in
    let propagation_limit = limit t.propagations budget.max_propagations in
    let over_budget () =
      t.conflicts > conflict_limit
      || t.decisions > decision_limit
      || t.propagations > propagation_limit
    in
    cancel_until t 0;
    (* Refill the heap with all unassigned vars (fresh solve). *)
    for v = 1 to t.nvars do
      if t.assign.(v) = 0 then heap_insert t v
    done;
    if propagate t <> None then begin
      t.unsat <- true;
      finish Unsat
    end
    else begin
      let restart_num = ref 0 in
      let result = ref None in
      while !result = None do
        incr restart_num;
        let restart_budget = 100 * luby !restart_num in
        let local_conflicts = ref 0 in
        let restart = ref false in
        while !result = None && not !restart do
          if over_budget () then result := Some Unknown
          else
            match propagate t with
            | Some confl ->
              t.conflicts <- t.conflicts + 1;
              incr local_conflicts;
              if decision_level t = 0 then begin
                t.unsat <- true;
                result := Some Unsat
              end
              else begin
                let learnt, btlevel = analyze t confl in
                cancel_until t btlevel;
                (match learnt with
                | [] -> t.unsat <- true
                | [ l ] ->
                  enqueue t l None
                | l :: _ ->
                  let c = Array.of_list learnt in
                  attach_clause t c;
                  t.clauses <- c :: t.clauses;
                  enqueue t l (Some c));
                var_decay t;
                if !local_conflicts >= restart_budget then restart := true
              end
            | None ->
              if decision_level t < Array.length assumptions then begin
                (* Assert the next assumption as a decision.  A falsified
                   assumption means unsatisfiable *under these assumptions*
                   only; the clause set itself stays usable. *)
                let a = assumptions.(decision_level t) in
                match lit_value t a with
                | -1 -> result := Some Unsat
                | 1 -> push_level t (* already implied: empty level *)
                | _ ->
                  push_level t;
                  enqueue t a None
              end
              else begin
                let v = pick_branch_var t in
                if v < 0 then result := Some Sat
                else begin
                  t.decisions <- t.decisions + 1;
                  push_level t;
                  let l = if t.phase.(v) then pos v else neg_of_var v in
                  enqueue t l None
                end
              end
        done;
        if !restart then begin
          t.restarts <- t.restarts + 1;
          cancel_until t 0
        end
      done;
      (* An out-of-budget stop leaves a partial trail; rewind it so the
         solver is immediately reusable (e.g. with a larger budget). *)
      if !result = Some Unknown then cancel_until t 0;
      finish (Option.get !result)
    end
  end

let value t v = t.assign.(v) = 1

let nudge_activity t v amount =
  t.activity.(v) <- t.activity.(v) +. amount;
  heap_update t v

let reset_phases t = Array.fill t.phase 0 (Array.length t.phase) t.default_phase

let randomize_phases t seed =
  let rng = ref (Scamv_util.Splitmix.of_seed seed) in
  for v = 1 to t.nvars do
    let b, r = Scamv_util.Splitmix.bool !rng in
    rng := r;
    t.phase.(v) <- b
  done
