module Bits = Scamv_util.Bits

type t =
  | True
  | False
  | Var of string * Sort.t
  | Bv_const of int64 * int
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Eq of t * t
  | Ult of t * t
  | Ule of t * t
  | Slt of t * t
  | Sle of t * t
  | Bv_unop of bv_unop * t
  | Bv_binop of bv_binop * t * t
  | Extract of int * int * t
  | Concat of t * t
  | Zero_extend of int * t
  | Sign_extend of int * t
  | Ite of t * t * t
  | Select of t * t
  | Store of t * t * t

and bv_unop = Neg | Lognot

and bv_binop =
  | Add
  | Sub
  | Mul
  | Logand
  | Logor
  | Logxor
  | Shl
  | Lshr
  | Ashr

exception Sort_error of string

let sort_error fmt = Format.kasprintf (fun s -> raise (Sort_error s)) fmt

let rec sort_of = function
  | True | False | Not _ | And _ | Or _ | Implies _ | Iff _ | Eq _ | Ult _
  | Ule _ | Slt _ | Sle _ ->
    Sort.Bool
  | Var (_, s) -> s
  | Bv_const (_, w) -> Sort.Bv w
  | Bv_unop (_, a) -> sort_of a
  | Bv_binop (_, a, _) -> sort_of a
  | Extract (hi, lo, _) -> Sort.Bv (hi - lo + 1)
  | Concat (a, b) -> (
    match (sort_of a, sort_of b) with
    | Sort.Bv wa, Sort.Bv wb -> Sort.Bv (wa + wb)
    | _ -> sort_error "concat of non-bitvectors")
  | Zero_extend (k, a) | Sign_extend (k, a) -> (
    match sort_of a with
    | Sort.Bv w -> Sort.Bv (w + k)
    | _ -> sort_error "extend of non-bitvector")
  | Ite (_, a, _) -> sort_of a
  | Select (_, _) -> Sort.Bv 64
  | Store (_, _, _) -> Sort.Mem

(* Monomorphic structural equality with a physical-equality fast path.
   Cache lookups in the bit-blaster compare a term against previously
   blasted terms whose subtrees are usually physically shared (smart
   constructors reuse argument terms), so [==] cuts most deep comparisons
   short; the polymorphic [Stdlib.compare] this replaces always walked
   both trees and paid the generic-comparison dispatch per node. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | True, True | False, False -> true
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Bv_const (v, w), Bv_const (v', w') -> Int64.equal v v' && w = w'
  | Not a, Not b -> equal a b
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Implies (a1, a2), Implies (b1, b2)
  | Iff (a1, a2), Iff (b1, b2)
  | Eq (a1, a2), Eq (b1, b2)
  | Ult (a1, a2), Ult (b1, b2)
  | Ule (a1, a2), Ule (b1, b2)
  | Slt (a1, a2), Slt (b1, b2)
  | Sle (a1, a2), Sle (b1, b2)
  | Concat (a1, a2), Concat (b1, b2)
  | Select (a1, a2), Select (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Bv_unop (o, a), Bv_unop (o', b) -> o = o' && equal a b
  | Bv_binop (o, a1, a2), Bv_binop (o', b1, b2) ->
    o = o' && equal a1 b1 && equal a2 b2
  | Extract (hi, lo, a), Extract (hi', lo', b) ->
    hi = hi' && lo = lo' && equal a b
  | Zero_extend (k, a), Zero_extend (k', b) | Sign_extend (k, a), Sign_extend (k', b)
    ->
    k = k' && equal a b
  | Ite (a1, a2, a3), Ite (b1, b2, b3) | Store (a1, a2, a3), Store (b1, b2, b3) ->
    equal a1 b1 && equal a2 b2 && equal a3 b3
  | _ -> false

let compare = Stdlib.compare

(* Specialized hash: a bounded preorder walk mixing constructor tags and
   leaf payloads.  Like [Hashtbl.hash] it touches O(1) nodes on deep ASTs,
   but without the polymorphic traversal machinery; the node budget keeps
   hashing cheap while the preorder prefix is discriminating enough for
   the blaster caches.  Equal terms walk the same prefix, so the hash is
   compatible with [equal]. *)
let hash t =
  let fuel = ref 48 in
  let h = ref 0 in
  let mix k = h := (!h * 0x01000193) lxor (k land 0x3FFFFFFF) in
  let rec go t =
    if !fuel > 0 then begin
      decr fuel;
      match t with
      | True -> mix 1
      | False -> mix 2
      | Var (x, s) ->
        mix 3;
        mix (Hashtbl.hash x);
        mix (match s with Sort.Bool -> 0 | Sort.Bv w -> w + 1 | Sort.Mem -> 65)
      | Bv_const (v, w) ->
        mix 4;
        mix (Int64.to_int v);
        mix (Int64.to_int (Int64.shift_right_logical v 32));
        mix w
      | Not a ->
        mix 5;
        go a
      | And (a, b) -> mix2 6 a b
      | Or (a, b) -> mix2 7 a b
      | Implies (a, b) -> mix2 8 a b
      | Iff (a, b) -> mix2 9 a b
      | Eq (a, b) -> mix2 10 a b
      | Ult (a, b) -> mix2 11 a b
      | Ule (a, b) -> mix2 12 a b
      | Slt (a, b) -> mix2 13 a b
      | Sle (a, b) -> mix2 14 a b
      | Bv_unop (o, a) ->
        mix (match o with Neg -> 15 | Lognot -> 16);
        go a
      | Bv_binop (o, a, b) ->
        mix2
          (match o with
          | Add -> 17
          | Sub -> 18
          | Mul -> 19
          | Logand -> 20
          | Logor -> 21
          | Logxor -> 22
          | Shl -> 23
          | Lshr -> 24
          | Ashr -> 25)
          a b
      | Extract (hi, lo, a) ->
        mix 26;
        mix hi;
        mix lo;
        go a
      | Concat (a, b) -> mix2 27 a b
      | Zero_extend (k, a) ->
        mix 28;
        mix k;
        go a
      | Sign_extend (k, a) ->
        mix 29;
        mix k;
        go a
      | Ite (c, a, b) ->
        mix 30;
        go c;
        go a;
        go b
      | Select (m, a) -> mix2 31 m a
      | Store (m, a, v) ->
        mix 32;
        go m;
        go a;
        go v
    end
  and mix2 tag a b =
    mix tag;
    go a;
    go b
  in
  go t;
  !h land max_int

let width_of t =
  match sort_of t with
  | Sort.Bv w -> w
  | s -> sort_error "expected bitvector, got %s" (Sort.to_string s)

let check_bool t =
  match sort_of t with
  | Sort.Bool -> ()
  | s -> sort_error "expected Bool, got %s" (Sort.to_string s)

let check_mem t =
  match sort_of t with
  | Sort.Mem -> ()
  | s -> sort_error "expected memory, got %s" (Sort.to_string s)

let check_same_width a b =
  let wa = width_of a and wb = width_of b in
  if wa <> wb then sort_error "width mismatch: %d vs %d" wa wb;
  wa

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tt = True
let ff = False
let bool_const b = if b then True else False
let bool_var name = Var (name, Sort.Bool)

let bv_var name w =
  if w < 1 || w > 64 then sort_error "bv_var: bad width %d" w;
  Var (name, Sort.Bv w)

let mem_var name = Var (name, Sort.Mem)

let bv_const v w =
  if w < 1 || w > 64 then sort_error "bv_const: bad width %d" w;
  Bv_const (Bits.truncate w v, w)

let bv_zero w = bv_const 0L w
let bv_one w = bv_const 1L w

let not_ = function
  | True -> False
  | False -> True
  | Not a -> a
  | a ->
    check_bool a;
    Not a

let and_ a b =
  check_bool a;
  check_bool b;
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | _ -> if equal a b then a else And (a, b)

let or_ a b =
  check_bool a;
  check_bool b;
  match (a, b) with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | _ -> if equal a b then a else Or (a, b)

let and_l = function [] -> True | x :: xs -> List.fold_left and_ x xs
let or_l = function [] -> False | x :: xs -> List.fold_left or_ x xs

let implies a b =
  check_bool a;
  check_bool b;
  match (a, b) with
  | False, _ -> True
  | True, x -> x
  | _, True -> True
  | x, False -> not_ x
  | _ -> if equal a b then True else Implies (a, b)

let iff a b =
  check_bool a;
  check_bool b;
  match (a, b) with
  | True, x | x, True -> x
  | False, x | x, False -> not_ x
  | _ -> if equal a b then True else Iff (a, b)

let eq a b =
  match (sort_of a, sort_of b) with
  | Sort.Bool, Sort.Bool -> iff a b
  | Sort.Bv wa, Sort.Bv wb ->
    if wa <> wb then sort_error "eq: width mismatch %d vs %d" wa wb;
    if equal a b then True
    else (
      match (a, b) with
      | Bv_const (x, _), Bv_const (y, _) -> bool_const (Int64.equal x y)
      | _ -> Eq (a, b))
  | Sort.Mem, Sort.Mem -> sort_error "eq: memory equality is not supported"
  | sa, sb ->
    sort_error "eq: sort mismatch %s vs %s" (Sort.to_string sa) (Sort.to_string sb)

let neq a b = not_ (eq a b)

let cmp_op ~fold ~refl ctor a b =
  let w = check_same_width a b in
  if equal a b then bool_const refl
  else
    match (a, b) with
    | Bv_const (x, _), Bv_const (y, _) -> bool_const (fold w x y)
    | _ -> ctor (a, b)

let ult a b =
  cmp_op ~fold:(fun _ x y -> Bits.ult x y) ~refl:false (fun (a, b) -> Ult (a, b)) a b

let ule a b =
  cmp_op ~fold:(fun _ x y -> Bits.ule x y) ~refl:true (fun (a, b) -> Ule (a, b)) a b

let slt a b =
  cmp_op
    ~fold:(fun w x y -> Bits.slt ~width:w x y)
    ~refl:false
    (fun (a, b) -> Slt (a, b))
    a b

let sle a b =
  cmp_op
    ~fold:(fun w x y -> not (Bits.slt ~width:w y x))
    ~refl:true
    (fun (a, b) -> Sle (a, b))
    a b

let ugt a b = ult b a
let uge a b = ule b a

let binop_fold op w x y =
  match op with
  | Add -> Bits.truncate w (Int64.add x y)
  | Sub -> Bits.truncate w (Int64.sub x y)
  | Mul -> Bits.truncate w (Int64.mul x y)
  | Logand -> Int64.logand x y
  | Logor -> Int64.logor x y
  | Logxor -> Int64.logxor x y
  | Shl ->
    if Bits.ult y (Int64.of_int 64) && Int64.to_int y < w then
      Bits.truncate w (Int64.shift_left x (Int64.to_int y))
    else 0L
  | Lshr ->
    if Bits.ult y (Int64.of_int 64) && Int64.to_int y < w then
      Int64.shift_right_logical x (Int64.to_int y)
    else 0L
  | Ashr ->
    let x_ext = Bits.sign_extend w x in
    if Bits.ult y (Int64.of_int 64) && Int64.to_int y < w then
      Bits.truncate w (Int64.shift_right x_ext (Int64.to_int y))
    else Bits.truncate w (Int64.shift_right x_ext 63)

let bv_binop op a b =
  let w = check_same_width a b in
  match (a, b) with
  | Bv_const (x, _), Bv_const (y, _) -> bv_const (binop_fold op w x y) w
  | _ -> (
    (* Unit laws that keep blaster input small. *)
    match (op, a, b) with
    | (Add | Logor | Logxor), Bv_const (0L, _), x -> x
    | (Add | Sub | Logor | Logxor | Shl | Lshr | Ashr), x, Bv_const (0L, _) -> x
    | Mul, Bv_const (1L, _), x | Mul, x, Bv_const (1L, _) -> x
    | Mul, (Bv_const (0L, _) as z), _ | Mul, _, (Bv_const (0L, _) as z) -> z
    | Logand, (Bv_const (0L, _) as z), _ | Logand, _, (Bv_const (0L, _) as z) -> z
    | Logand, Bv_const (m, _), x when Int64.equal m (Bits.mask w) -> x
    | Logand, x, Bv_const (m, _) when Int64.equal m (Bits.mask w) -> x
    | _ -> Bv_binop (op, a, b))

let add = bv_binop Add
let sub = bv_binop Sub
let mul = bv_binop Mul
let logand = bv_binop Logand
let logor = bv_binop Logor
let logxor = bv_binop Logxor
let shl = bv_binop Shl
let lshr = bv_binop Lshr
let ashr = bv_binop Ashr

let neg = function
  | Bv_const (x, w) -> bv_const (Int64.neg x) w
  | a ->
    ignore (width_of a);
    Bv_unop (Neg, a)

let lognot = function
  | Bv_const (x, w) -> bv_const (Int64.lognot x) w
  | a ->
    ignore (width_of a);
    Bv_unop (Lognot, a)

let extract ~hi ~lo t =
  let w = width_of t in
  if lo < 0 || hi < lo || hi >= w then
    sort_error "extract: bad range [%d..%d] on width %d" hi lo w;
  if lo = 0 && hi = w - 1 then t
  else
    match t with
    | Bv_const (x, _) -> bv_const (Bits.extract ~hi ~lo x) (hi - lo + 1)
    | Extract (_, lo', a) -> Extract (hi + lo', lo + lo', a)
    | _ -> Extract (hi, lo, t)

let concat a b =
  let wa = width_of a and wb = width_of b in
  if wa + wb > 64 then sort_error "concat: combined width %d > 64" (wa + wb);
  match (a, b) with
  | Bv_const (x, _), Bv_const (y, _) ->
    bv_const (Int64.logor (Int64.shift_left x wb) y) (wa + wb)
  | _ -> Concat (a, b)

let zero_extend k t =
  let w = width_of t in
  if k < 0 || w + k > 64 then sort_error "zero_extend: bad amount %d" k;
  if k = 0 then t
  else match t with Bv_const (x, _) -> bv_const x (w + k) | _ -> Zero_extend (k, t)

let sign_extend k t =
  let w = width_of t in
  if k < 0 || w + k > 64 then sort_error "sign_extend: bad amount %d" k;
  if k = 0 then t
  else
    match t with
    | Bv_const (x, _) -> bv_const (Bits.sign_extend w x) (w + k)
    | _ -> Sign_extend (k, t)

let ite c a b =
  check_bool c;
  ignore (check_same_width a b);
  match c with
  | True -> a
  | False -> b
  | _ -> if equal a b then a else Ite (c, a, b)

let rec select m addr =
  check_mem m;
  if width_of addr <> 64 then sort_error "select: address must be 64-bit";
  match m with
  | Store (m', a', v') -> (
    (* Read-over-write: resolve syntactically when possible, otherwise
       produce an ite so the array solver only sees base selects. *)
    match eq addr a' with
    | True -> v'
    | False -> select m' addr
    | c -> ite c v' (select m' addr))
  | _ -> Select (m, addr)

let store m addr v =
  check_mem m;
  if width_of addr <> 64 then sort_error "store: address must be 64-bit";
  if width_of v <> 64 then sort_error "store: value must be 64-bit";
  Store (m, addr, v)

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let rec rename f t =
  let r = rename f in
  match t with
  | True | False | Bv_const _ -> t
  | Var (x, s) -> Var (f x, s)
  | Not a -> not_ (r a)
  | And (a, b) -> and_ (r a) (r b)
  | Or (a, b) -> or_ (r a) (r b)
  | Implies (a, b) -> implies (r a) (r b)
  | Iff (a, b) -> iff (r a) (r b)
  | Eq (a, b) -> eq (r a) (r b)
  | Ult (a, b) -> ult (r a) (r b)
  | Ule (a, b) -> ule (r a) (r b)
  | Slt (a, b) -> slt (r a) (r b)
  | Sle (a, b) -> sle (r a) (r b)
  | Bv_unop (Neg, a) -> neg (r a)
  | Bv_unop (Lognot, a) -> lognot (r a)
  | Bv_binop (op, a, b) -> bv_binop op (r a) (r b)
  | Extract (hi, lo, a) -> extract ~hi ~lo (r a)
  | Concat (a, b) -> concat (r a) (r b)
  | Zero_extend (k, a) -> zero_extend k (r a)
  | Sign_extend (k, a) -> sign_extend k (r a)
  | Ite (c, a, b) -> ite (r c) (r a) (r b)
  | Select (m, a) -> select (r m) (r a)
  | Store (m, a, v) -> store (r m) (r a) (r v)

let rec subst f t =
  let r = subst f in
  match t with
  | True | False | Bv_const _ -> t
  | Var (x, s) -> (
    match f x s with
    | None -> t
    | Some t' ->
      if not (Sort.equal (sort_of t') s) then
        sort_error "subst: %s replaced at wrong sort" x;
      t')
  | Not a -> not_ (r a)
  | And (a, b) -> and_ (r a) (r b)
  | Or (a, b) -> or_ (r a) (r b)
  | Implies (a, b) -> implies (r a) (r b)
  | Iff (a, b) -> iff (r a) (r b)
  | Eq (a, b) -> eq (r a) (r b)
  | Ult (a, b) -> ult (r a) (r b)
  | Ule (a, b) -> ule (r a) (r b)
  | Slt (a, b) -> slt (r a) (r b)
  | Sle (a, b) -> sle (r a) (r b)
  | Bv_unop (Neg, a) -> neg (r a)
  | Bv_unop (Lognot, a) -> lognot (r a)
  | Bv_binop (op, a, b) -> bv_binop op (r a) (r b)
  | Extract (hi, lo, a) -> extract ~hi ~lo (r a)
  | Concat (a, b) -> concat (r a) (r b)
  | Zero_extend (k, a) -> zero_extend k (r a)
  | Sign_extend (k, a) -> sign_extend k (r a)
  | Ite (c, a, b) -> ite (r c) (r a) (r b)
  | Select (m, a) -> select (r m) (r a)
  | Store (m, a, v) -> store (r m) (r a) (r v)

module Var_set = Set.Make (struct
  type nonrec t = string * Sort.t

  let compare = Stdlib.compare
end)

let free_vars t =
  let rec go acc = function
    | True | False | Bv_const _ -> acc
    | Var (x, s) -> Var_set.add (x, s) acc
    | Not a | Bv_unop (_, a) | Extract (_, _, a) | Zero_extend (_, a)
    | Sign_extend (_, a) ->
      go acc a
    | And (a, b)
    | Or (a, b)
    | Implies (a, b)
    | Iff (a, b)
    | Eq (a, b)
    | Ult (a, b)
    | Ule (a, b)
    | Slt (a, b)
    | Sle (a, b)
    | Bv_binop (_, a, b)
    | Concat (a, b)
    | Select (a, b) ->
      go (go acc a) b
    | Ite (a, b, c) | Store (a, b, c) -> go (go (go acc a) b) c
  in
  Var_set.elements (go Var_set.empty t)

let rec size = function
  | True | False | Var _ | Bv_const _ -> 1
  | Not a | Bv_unop (_, a) | Extract (_, _, a) | Zero_extend (_, a)
  | Sign_extend (_, a) ->
    1 + size a
  | And (a, b)
  | Or (a, b)
  | Implies (a, b)
  | Iff (a, b)
  | Eq (a, b)
  | Ult (a, b)
  | Ule (a, b)
  | Slt (a, b)
  | Sle (a, b)
  | Bv_binop (_, a, b)
  | Concat (a, b)
  | Select (a, b) ->
    1 + size a + size b
  | Ite (a, b, c) | Store (a, b, c) -> 1 + size a + size b + size c

let binop_name = function
  | Add -> "bvadd"
  | Sub -> "bvsub"
  | Mul -> "bvmul"
  | Logand -> "bvand"
  | Logor -> "bvor"
  | Logxor -> "bvxor"
  | Shl -> "bvshl"
  | Lshr -> "bvlshr"
  | Ashr -> "bvashr"

let rec pp ppf t =
  let two name a b = Format.fprintf ppf "(%s %a %a)" name pp a pp b in
  match t with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Var (x, _) -> Format.pp_print_string ppf x
  | Bv_const (v, w) -> Format.fprintf ppf "(_ bv%Lu %d)" v w
  | Not a -> Format.fprintf ppf "(not %a)" pp a
  | And (a, b) -> two "and" a b
  | Or (a, b) -> two "or" a b
  | Implies (a, b) -> two "=>" a b
  | Iff (a, b) -> two "=" a b
  | Eq (a, b) -> two "=" a b
  | Ult (a, b) -> two "bvult" a b
  | Ule (a, b) -> two "bvule" a b
  | Slt (a, b) -> two "bvslt" a b
  | Sle (a, b) -> two "bvsle" a b
  | Bv_unop (Neg, a) -> Format.fprintf ppf "(bvneg %a)" pp a
  | Bv_unop (Lognot, a) -> Format.fprintf ppf "(bvnot %a)" pp a
  | Bv_binop (op, a, b) -> two (binop_name op) a b
  | Extract (hi, lo, a) -> Format.fprintf ppf "((_ extract %d %d) %a)" hi lo pp a
  | Concat (a, b) -> two "concat" a b
  | Zero_extend (k, a) -> Format.fprintf ppf "((_ zero_extend %d) %a)" k pp a
  | Sign_extend (k, a) -> Format.fprintf ppf "((_ sign_extend %d) %a)" k pp a
  | Ite (c, a, b) -> Format.fprintf ppf "(ite %a %a %a)" pp c pp a pp b
  | Select (m, a) -> two "select" m a
  | Store (m, a, v) -> Format.fprintf ppf "(store %a %a %a)" pp m pp a pp v

let to_string t = Format.asprintf "%a" pp t
