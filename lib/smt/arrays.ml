type read = { mem_name : string; addr : Term.t; var_name : string }

type result = {
  formulas : Term.t list;
  side_conditions : Term.t list;
  reads : read list;
}

module Term_map = Map.Make (Term)

type state = {
  mutable table : string Term_map.t;  (* rewritten select term -> read var *)
  mutable reads_rev : read list;
  mutable counter : int;
}

let fresh_read st mem_name addr =
  let key = Term.select (Term.mem_var mem_name) addr in
  match Term_map.find_opt key st.table with
  | Some name -> Term.bv_var name 64
  | None ->
    let name = Printf.sprintf "%s!read%d" mem_name st.counter in
    st.counter <- st.counter + 1;
    st.table <- Term_map.add key name st.table;
    st.reads_rev <- { mem_name; addr; var_name = name } :: st.reads_rev;
    Term.bv_var name 64

(* Rewrite bottom-up so nested selects (addresses that are themselves
   loaded) resolve inner reads first. *)
let rec rewrite st (t : Term.t) : Term.t =
  let r = rewrite st in
  match t with
  | Term.True | Term.False | Term.Var _ | Term.Bv_const _ -> t
  | Term.Not a -> Term.not_ (r a)
  | Term.And (a, b) -> Term.and_ (r a) (r b)
  | Term.Or (a, b) -> Term.or_ (r a) (r b)
  | Term.Implies (a, b) -> Term.implies (r a) (r b)
  | Term.Iff (a, b) -> Term.iff (r a) (r b)
  | Term.Eq (a, b) -> Term.eq (r a) (r b)
  | Term.Ult (a, b) -> Term.ult (r a) (r b)
  | Term.Ule (a, b) -> Term.ule (r a) (r b)
  | Term.Slt (a, b) -> Term.slt (r a) (r b)
  | Term.Sle (a, b) -> Term.sle (r a) (r b)
  | Term.Bv_unop (Term.Neg, a) -> Term.neg (r a)
  | Term.Bv_unop (Term.Lognot, a) -> Term.lognot (r a)
  | Term.Bv_binop (op, a, b) -> rewrite_binop op (r a) (r b)
  | Term.Extract (hi, lo, a) -> Term.extract ~hi ~lo (r a)
  | Term.Concat (a, b) -> Term.concat (r a) (r b)
  | Term.Zero_extend (k, a) -> Term.zero_extend k (r a)
  | Term.Sign_extend (k, a) -> Term.sign_extend k (r a)
  | Term.Ite (c, a, b) -> (
    match Term.sort_of a with
    | Sort.Mem ->
      (* Memory-sorted ites are handled when selected from. *)
      invalid_arg "Arrays.eliminate: memory-sorted ite outside select"
    | _ -> Term.ite (r c) (r a) (r b))
  | Term.Select (m, a) -> rewrite_select st m (r a)
  | Term.Store _ -> invalid_arg "Arrays.eliminate: store outside select"

and rewrite_binop op a b =
  match op with
  | Term.Add -> Term.add a b
  | Term.Sub -> Term.sub a b
  | Term.Mul -> Term.mul a b
  | Term.Logand -> Term.logand a b
  | Term.Logor -> Term.logor a b
  | Term.Logxor -> Term.logxor a b
  | Term.Shl -> Term.shl a b
  | Term.Lshr -> Term.lshr a b
  | Term.Ashr -> Term.ashr a b

(* [addr] is already rewritten (array-free); [m] may be a memory variable,
   a store chain, or an ite over memories. *)
and rewrite_select st (m : Term.t) (addr : Term.t) : Term.t =
  match m with
  | Term.Var (name, Sort.Mem) -> fresh_read st name addr
  | Term.Store (m', a', v') ->
    let a' = rewrite st a' and v' = rewrite st v' in
    Term.ite (Term.eq addr a') v' (rewrite_select st m' addr)
  | Term.Ite (c, m1, m2) ->
    Term.ite (rewrite st c) (rewrite_select st m1 addr) (rewrite_select st m2 addr)
  | _ -> invalid_arg "Arrays.eliminate: ill-formed memory term"

let new_state () = { table = Term_map.empty; reads_rev = []; counter = 0 }

(* Rewrite a further batch of formulas against an existing elimination
   state: read naming continues where the previous batch stopped, and the
   returned side conditions are exactly the functional-consistency pairs
   involving at least one {e new} read (pairs among the old reads were
   already returned by the earlier batches).  [result.reads] lists all
   reads so far, so an incremental session can replace its read list
   wholesale. *)
let eliminate_into st fs =
  let old_count = List.length st.reads_rev in
  let formulas = List.map (rewrite st) fs in
  let reads = Array.of_list (List.rev st.reads_rev) in
  let n = Array.length reads in
  (* Functional consistency per memory variable.  Traversal order (outer
     index ascending, inner ascending, each condition prepended) matches
     the non-incremental order on a fresh state, keeping assertion order —
     and with it enumeration determinism — unchanged. *)
  let side_conditions = ref [] in
  for i = 0 to n - 1 do
    for j = max (i + 1) old_count to n - 1 do
      let r = reads.(i) and r' = reads.(j) in
      if String.equal r.mem_name r'.mem_name then begin
        let antecedent = Term.eq r.addr r'.addr in
        let consequent =
          Term.eq (Term.bv_var r.var_name 64) (Term.bv_var r'.var_name 64)
        in
        match Term.implies antecedent consequent with
        | Term.True -> ()
        | c -> side_conditions := c :: !side_conditions
      end
    done
  done;
  { formulas; side_conditions = !side_conditions; reads = Array.to_list reads }

let eliminate fs = eliminate_into (new_state ()) fs

let recover_memories model reads =
  let with_cells =
    List.fold_left
      (fun m { mem_name; addr; var_name } ->
        let addr_val = Eval.eval_bv m addr in
        let value = Model.bv_exn m var_name in
        Model.add_mem_cell m mem_name ~addr:addr_val ~value)
      model reads
  in
  (* Drop internal read variables from the reported model. *)
  List.fold_left
    (fun acc (x, v) ->
      if String.contains x '!' then acc else Model.add_var acc x v)
    (List.fold_left
       (fun acc m ->
         List.fold_left
           (fun acc (a, v) -> Model.add_mem_cell acc m ~addr:a ~value:v)
           acc
           (Model.mem_cells with_cells m))
       Model.empty (Model.mems with_cells))
    (Model.vars with_cells)
