(** Tseitin bit-blaster: turns array-free terms into CNF over a {!Sat}
    solver, maintaining a map from input variables to their literals so
    models can be read back and blocking clauses formulated.

    Blasting is split across two layers.  A {!graph} is a hash-consed
    gate circuit (AND/XOR/ITE nodes over input bits and the constant
    TRUE) together with the term-to-node caches; it holds no SAT state.
    A blasting context [t] owns a {!Sat} instance and emits Tseitin
    clauses for graph nodes on demand, so several contexts can share one
    graph: a sub-term blasted for one enumeration session resolves to an
    existing gate node in every later session of the same program, and
    only the (cheap) clause emission is repeated.  Cross-session cache
    effectiveness is reported by {!cross_stats}.

    Thread-safety: a graph and every context sharing it are mutable and
    unsynchronized — the whole group is {e domain-confined} to the domain
    that created it, matching the campaign design where each worker domain
    builds one graph per program and all of that program's sessions on it. *)

type t

type graph
(** Shared hash-consed gate graph (see above). *)

val new_graph : unit -> graph
(** Fresh empty graph (just the constant-TRUE node). *)

val create :
  ?seed:int64 -> ?default_phase:bool -> ?restart_base:int -> ?graph:graph -> unit -> t
(** Fresh blasting context with an empty solver.  [seed],
    [default_phase] and [restart_base] are forwarded to {!Sat.create}
    (portfolio configurations vary them).  [graph] is the gate graph to
    build in and reuse from (default: a private fresh one). *)

val assert_term : t -> Term.t -> unit
(** Assert a Bool-sorted, array-free term.
    @raise Term.Sort_error on non-boolean terms.
    @raise Invalid_argument if the term still contains memory operations. *)

val solver : t -> Sat.t
(** The underlying SAT solver (for [solve] and phase control). *)

val bool_literal : t -> Term.t -> Sat.lit
(** Literal equisatisfiable with a Bool-sorted, array-free term: the
    term is blasted (definitional clauses are added) but {e not}
    asserted, so the literal can be passed to {!Sat.solve} as an
    assumption and retracted for free on the next call.
    @raise Term.Sort_error on non-boolean terms. *)

val cache_stats : t -> int * int
(** [(hits, misses)] over the structural-hashing caches (gate cache plus
    bool/bitvector term caches) attributed to this context.  The solver
    session flushes these to the telemetry registry as
    [smt.blast_cache_hits] / [smt.blast_cache_misses]. *)

val cross_stats : t -> int
(** Number of cache hits (a subset of [fst (cache_stats t)]) that resolved
    to a node built by an {e earlier} context on the same shared graph —
    the cross-session reuse the per-program graph exists for.  Flushed as
    [smt.blast_cache_cross_hits]. *)

val input_literals : t -> (string * Sort.t) -> Sat.lit array
(** Literals allocated for an input variable (length 1 for Bool).
    Allocates them on first use so callers can track variables that do not
    occur in any assertion.  All bits of a word are allocated together in
    bit order, so the variable layout is independent of which bits the
    assertions mention first. *)

val read_model : t -> Model.t
(** Read values of every input variable after a successful solve.  Only
    inputs this context touched are reported, even on a shared graph. *)

val inputs : t -> (string * Sort.t * Sat.lit array) list
(** All allocated input variables with their literals, sorted by name
    (deterministic), for the model minimizer. *)

val block_assignment : t -> (string * Sort.t) list -> unit
(** Add a clause forbidding the current assignment of the given input
    variables (model enumeration step). *)

val block_values : t -> (string * Sort.t) list -> Model.t -> unit
(** Add a clause forbidding the valuation a model assigns to the given
    input variables.  Same clause {!block_assignment} would add if the
    solver currently held that model — used to replay one session's
    enumeration blocks into a portfolio challenger session.  Memory-
    sorted entries are ignored; unbound variables default to
    false/zero. *)
