(** Tseitin bit-blaster: turns array-free terms into CNF over a {!Sat}
    solver, maintaining a map from input variables to their literals so
    models can be read back and blocking clauses formulated.

    Thread-safety: a blasting context owns mutable hash tables (gate and
    term caches) and a {!Sat} instance, none of it synchronized — a
    context is {e domain-confined} to the domain that created it, matching
    the campaign design where each worker domain builds its own contexts. *)

type t

val create : ?seed:int64 -> ?default_phase:bool -> unit -> t
(** Fresh blasting context with an empty solver. *)

val assert_term : t -> Term.t -> unit
(** Assert a Bool-sorted, array-free term.
    @raise Term.Sort_error on non-boolean terms.
    @raise Invalid_argument if the term still contains memory operations. *)

val solver : t -> Sat.t
(** The underlying SAT solver (for [solve] and phase control). *)

val cache_stats : t -> int * int
(** [(hits, misses)] over the structural-hashing caches (gate cache plus
    bool/bitvector term caches).  The solver session flushes these to the
    telemetry registry as [smt.blast_cache_hits] / [smt.blast_cache_misses]. *)

val input_literals : t -> (string * Sort.t) -> Sat.lit array
(** Literals allocated for an input variable (length 1 for Bool).
    Allocates them on first use so callers can track variables that do not
    occur in any assertion. *)

val read_model : t -> Model.t
(** Read values of every input variable after a successful solve. *)

val inputs : t -> (string * Sort.t * Sat.lit array) list
(** All allocated input variables with their literals, sorted by name
    (deterministic), for the model minimizer. *)

val block_assignment : t -> (string * Sort.t) list -> unit
(** Add a clause forbidding the current assignment of the given input
    variables (model enumeration step). *)
