module Bits = Scamv_util.Bits

(* Term-keyed caches use Term's monomorphic equal/hash instead of the
   polymorphic defaults; lookups here are the hottest path of blasting. *)
module Term_tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

(* The blaster is split in two layers:

   - a {e gate graph}: a hash-consed and-inverter-style circuit (AND, XOR,
     ITE nodes plus input bits and the constant TRUE) built from terms.
     The graph owns the structural-hashing caches — term-to-node and
     gate-to-node — and is the unit of {e cross-session} reuse: every
     enumeration session of the same program shares one graph, so a
     sub-term already blasted for one candidate relation resolves to an
     existing node instead of being re-folded.

   - a {e session} ([t] below): a SAT instance plus a node-to-literal
     emission map.  Tseitin clauses are emitted per session, on demand, by
     a structural walk over the graph, so each session's CNF contains
     exactly the cone of its own assertions and the clause/variable
     numbering depends only on the order of its assertions — not on what
     other sessions did to the shared graph.

   Node references ("nrefs") are ints [2*id + sign]; node 0 is the
   constant TRUE, so nref 0 is TRUE and nref 1 is FALSE. *)

type node =
  | N_true
  | N_input of string * Sort.t * int  (* bit [i] of input [name] *)
  | N_and of int * int
  | N_xor of int * int  (* operands stored positive (sign-normalized) *)
  | N_ite of int * int * int

type gate_key = K_and of int * int | K_xor of int * int | K_ite of int * int * int

(* Gate and boolean cache entries pack (nref, session stamp) into one
   immediate int — [(stamp lsl packed_shift) lor nref] — so the hot-path
   lookups return an unboxed value instead of allocating a tuple per
   miss and chasing a pointer per hit.  40 bits of nref is ~5*10^11
   graph nodes; 23 bits of stamp is ~8*10^6 sessions per graph — both
   far beyond anything a campaign builds. *)
let packed_shift = 40
let packed_mask = (1 lsl packed_shift) - 1

type graph = {
  mutable nodes : node array;
  mutable n_nodes : int;
  gates : (gate_key, int) Hashtbl.t;  (* key -> packed (output nref, stamp) *)
  bool_cache : int Term_tbl.t;  (* term -> packed (nref, stamp) *)
  bv_cache : (int array * int) Term_tbl.t;
  g_inputs : (string, Sort.t * int array) Hashtbl.t;  (* name -> positive nrefs *)
  mutable session_ctr : int;  (* stamp distinguishing same- vs cross-session hits *)
  (* Emission scratch, owned by the graph and shared by all its sessions:
     a slot [id] holds the literal emitted for node [id] by the session
     whose stamp is in [e_sid.(id)] — any other session sees the slot as
     empty.  Compared to a per-session node-to-literal array this saves
     an O(n_nodes) allocation per session, which on shared graphs of
     hundreds of thousands of nodes used to cost more than the structural
     reuse won back. *)
  mutable e_lit : Sat.lit array;
  mutable e_sid : int array;
}

let new_graph () =
  {
    nodes = Array.make 1024 N_true;
    n_nodes = 1;
    gates = Hashtbl.create 1024;
    bool_cache = Term_tbl.create 256;
    bv_cache = Term_tbl.create 256;
    g_inputs = Hashtbl.create 64;
    session_ctr = 0;
    e_lit = Array.make 1024 0;
    e_sid = Array.make 1024 0;
  }

let ensure_scratch g =
  if Array.length g.e_lit < g.n_nodes then begin
    let n = max (2 * Array.length g.e_lit) g.n_nodes in
    let el = Array.make n 0 and es = Array.make n 0 in
    Array.blit g.e_lit 0 el 0 (Array.length g.e_lit);
    Array.blit g.e_sid 0 es 0 (Array.length g.e_sid);
    g.e_lit <- el;
    g.e_sid <- es
  end

let add_node g node =
  if g.n_nodes = Array.length g.nodes then begin
    let grown = Array.make (2 * g.n_nodes) N_true in
    Array.blit g.nodes 0 grown 0 g.n_nodes;
    g.nodes <- grown
  end;
  let id = g.n_nodes in
  g.nodes.(id) <- node;
  g.n_nodes <- id + 1;
  id

let nref_true = 0
let nref_false = 1
let n_neg r = r lxor 1
let n_is_pos r = r land 1 = 0

type t = {
  sat : Sat.t;
  true_lit : Sat.lit;
  g : graph;
  sid : int;  (* this session's stamp in the shared graph *)
  inputs : (string, Sort.t * Sat.lit array) Hashtbl.t;  (* emitted this session *)
  (* Structural-hashing effectiveness counters (gate + term caches),
     read by the solver session and flushed to telemetry.  [cross_hits]
     counts the subset of hits that resolved to a node created by an
     earlier session on the same graph. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cross_hits : int;
}

let create ?seed ?default_phase ?restart_base ?graph () =
  let g = match graph with Some g -> g | None -> new_graph () in
  g.session_ctr <- g.session_ctr + 1;
  let sat = Sat.create ?seed ?default_phase ?restart_base () in
  let v = Sat.new_var sat in
  Sat.add_clause sat [ Sat.pos v ];
  ensure_scratch g;
  let sid = g.session_ctr in
  g.e_lit.(0) <- Sat.pos v;
  g.e_sid.(0) <- sid;
  {
    sat;
    true_lit = Sat.pos v;
    g;
    sid;
    inputs = Hashtbl.create 64;
    cache_hits = 0;
    cache_misses = 0;
    cross_hits = 0;
  }

let solver t = t.sat
let cache_stats t = (t.cache_hits, t.cache_misses)
let cross_stats t = t.cross_hits

let hit t sid0 =
  t.cache_hits <- t.cache_hits + 1;
  if sid0 <> t.sid then t.cross_hits <- t.cross_hits + 1

let miss t = t.cache_misses <- t.cache_misses + 1

(* ---- gates with structural hashing and constant folding ---- *)

let gate t key node =
  match Hashtbl.find_opt t.g.gates key with
  | Some packed ->
    hit t (packed lsr packed_shift);
    packed land packed_mask
  | None ->
    miss t;
    let o = 2 * add_node t.g node in
    Hashtbl.add t.g.gates key ((t.sid lsl packed_shift) lor o);
    o

let g_and t a b =
  if a = nref_false || b = nref_false then nref_false
  else if a = nref_true then b
  else if b = nref_true then a
  else if a = b then a
  else if a = n_neg b then nref_false
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    gate t (K_and (a, b)) (N_and (a, b))
  end

let g_or t a b = n_neg (g_and t (n_neg a) (n_neg b))

let g_xor t a b =
  if a = nref_false then b
  else if b = nref_false then a
  else if a = nref_true then n_neg b
  else if b = nref_true then n_neg a
  else if a = b then nref_false
  else if a = n_neg b then nref_true
  else begin
    (* Normalize: positive operands, ordered; track output polarity. *)
    let flip = ref false in
    let norm r =
      if n_is_pos r then r
      else begin
        flip := not !flip;
        n_neg r
      end
    in
    let a = norm a and b = norm b in
    let a, b = if a < b then (a, b) else (b, a) in
    let o = gate t (K_xor (a, b)) (N_xor (a, b)) in
    if !flip then n_neg o else o
  end

let g_iff t a b = n_neg (g_xor t a b)

let g_ite t c a b =
  if c = nref_true then a
  else if c = nref_false then b
  else if a = b then a
  else if a = nref_true && b = nref_false then c
  else if a = nref_false && b = nref_true then n_neg c
  else gate t (K_ite (c, a, b)) (N_ite (c, a, b))

let g_implies t a b = g_or t (n_neg a) b

(* ---- vectors (little-endian: index 0 = LSB) ---- *)

let vec_const (_ : t) v w =
  Array.init w (fun i -> if Bits.bit v i then nref_true else nref_false)

let vec_eq t a b =
  let acc = ref nref_true in
  Array.iteri (fun i ai -> acc := g_and t !acc (g_iff t ai b.(i))) a;
  !acc

(* a + b + carry_in; returns sum vector (drops final carry). *)
let vec_add ?(carry_in = `Zero) t a b =
  let w = Array.length a in
  let sum = Array.make w nref_false in
  let carry = ref (match carry_in with `Zero -> nref_false | `One -> nref_true) in
  for i = 0 to w - 1 do
    let x = a.(i) and y = b.(i) and c = !carry in
    let xy = g_xor t x y in
    sum.(i) <- g_xor t xy c;
    carry := g_or t (g_and t x y) (g_and t xy c)
  done;
  sum

let vec_not (_ : t) a = Array.map n_neg a
let vec_neg t a = vec_add ~carry_in:`One t (vec_not t a) (vec_const t 0L (Array.length a))
let vec_sub t a b = vec_add ~carry_in:`One t a (vec_not t b)

(* Unsigned a < b via MSB-first comparison chain. *)
let vec_ult t a b =
  let w = Array.length a in
  let lt = ref nref_false in
  let eq_so_far = ref nref_true in
  for i = w - 1 downto 0 do
    let bit_lt = g_and t (n_neg a.(i)) b.(i) in
    lt := g_or t !lt (g_and t !eq_so_far bit_lt);
    eq_so_far := g_and t !eq_so_far (g_iff t a.(i) b.(i))
  done;
  !lt

let vec_ule t a b = g_or t (vec_ult t a b) (vec_eq t a b)

let vec_slt t a b =
  let w = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(w - 1) <- n_neg a.(w - 1);
  b'.(w - 1) <- n_neg b.(w - 1);
  vec_ult t a' b'

let vec_sle t a b = g_or t (vec_slt t a b) (vec_eq t a b)

let vec_ite t c a b = Array.init (Array.length a) (fun i -> g_ite t c a.(i) b.(i))

let vec_binary_pointwise t f a b = Array.init (Array.length a) (fun i -> f t a.(i) b.(i))

(* Barrel shifter.  [shift_one dir fill k v] shifts [v] by [2^stage]
   positions.  Amounts >= width produce all-[fill]. *)
let vec_shift t ~dir ~fill a amount =
  let w = Array.length a in
  let fill_ref = match fill with `Zero -> nref_false | `Sign -> a.(w - 1) in
  let stages = 6 (* 2^6 = 64 >= any supported width *) in
  let shift_by_const v k =
    Array.init w (fun i ->
        match dir with
        | `Left -> if i - k >= 0 then v.(i - k) else nref_false
        | `Right -> if i + k < w then v.(i + k) else fill_ref)
  in
  let result = ref a in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let sel = if s < Array.length amount then amount.(s) else nref_false in
    let shifted = if k >= w then Array.make w fill_ref else shift_by_const !result k in
    result := vec_ite t sel shifted !result
  done;
  (* Amount bits beyond 2^6 positions: any set high bit zeroes (or
     sign-fills) the result. *)
  let high = ref nref_false in
  Array.iteri (fun i l -> if i >= stages then high := g_or t !high l) amount;
  vec_ite t !high (Array.make w fill_ref) !result

let vec_mul t a b =
  let w = Array.length a in
  let acc = ref (vec_const t 0L w) in
  for i = 0 to w - 1 do
    let partial =
      Array.init w (fun j -> if j < i then nref_false else g_and t b.(i) a.(j - i))
    in
    acc := vec_add t !acc partial
  done;
  !acc

(* ---- inputs (graph nodes; literal allocation happens at emission) ---- *)

let graph_input t (name, sort) =
  match Hashtbl.find_opt t.g.g_inputs name with
  | Some (s, nrefs) ->
    if not (Sort.equal s sort) then
      raise (Term.Sort_error (Printf.sprintf "variable %s used at two sorts" name));
    nrefs
  | None ->
    let n = match sort with Sort.Bool -> 1 | Sort.Bv w -> w | Sort.Mem -> 0 in
    if n = 0 then invalid_arg "Blaster: memory variable reached the blaster";
    let nrefs = Array.init n (fun i -> 2 * add_node t.g (N_input (name, sort, i))) in
    Hashtbl.add t.g.g_inputs name (sort, nrefs);
    nrefs

(* ---- term translation (graph construction) ---- *)

let rec blast_bool t (term : Term.t) : int =
  match Term_tbl.find_opt t.g.bool_cache term with
  | Some packed ->
    hit t (packed lsr packed_shift);
    packed land packed_mask
  | None ->
    miss t;
    let r =
      match term with
      | Term.True -> nref_true
      | Term.False -> nref_false
      | Term.Var (x, Sort.Bool) -> (graph_input t (x, Sort.Bool)).(0)
      | Term.Var (x, s) ->
        raise
          (Term.Sort_error
             (Printf.sprintf "boolean context, variable %s : %s" x (Sort.to_string s)))
      | Term.Not a -> n_neg (blast_bool t a)
      | Term.And (a, b) -> g_and t (blast_bool t a) (blast_bool t b)
      | Term.Or (a, b) -> g_or t (blast_bool t a) (blast_bool t b)
      | Term.Implies (a, b) -> g_implies t (blast_bool t a) (blast_bool t b)
      | Term.Iff (a, b) -> g_iff t (blast_bool t a) (blast_bool t b)
      | Term.Eq (a, b) -> (
        match Term.sort_of a with
        | Sort.Bool -> g_iff t (blast_bool t a) (blast_bool t b)
        | Sort.Bv _ -> vec_eq t (blast_bv t a) (blast_bv t b)
        | Sort.Mem -> raise (Term.Sort_error "memory equality in blaster"))
      | Term.Ult (a, b) -> vec_ult t (blast_bv t a) (blast_bv t b)
      | Term.Ule (a, b) -> vec_ule t (blast_bv t a) (blast_bv t b)
      | Term.Slt (a, b) -> vec_slt t (blast_bv t a) (blast_bv t b)
      | Term.Sle (a, b) -> vec_sle t (blast_bv t a) (blast_bv t b)
      | Term.Ite (c, a, b) -> g_ite t (blast_bool t c) (blast_bool t a) (blast_bool t b)
      | Term.Bv_const _ | Term.Bv_unop _ | Term.Bv_binop _ | Term.Extract _
      | Term.Concat _ | Term.Zero_extend _ | Term.Sign_extend _ ->
        raise (Term.Sort_error "bitvector term in boolean context")
      | Term.Select _ | Term.Store _ ->
        invalid_arg "Blaster: memory operation reached the blaster"
    in
    Term_tbl.add t.g.bool_cache term ((t.sid lsl packed_shift) lor r);
    r

and blast_bv t (term : Term.t) : int array =
  match Term_tbl.find_opt t.g.bv_cache term with
  | Some (v, sid0) ->
    hit t sid0;
    v
  | None ->
    miss t;
    let v =
      match term with
      | Term.Var (x, (Sort.Bv _ as s)) -> graph_input t (x, s)
      | Term.Bv_const (v, w) -> vec_const t v w
      | Term.Bv_unop (Term.Neg, a) -> vec_neg t (blast_bv t a)
      | Term.Bv_unop (Term.Lognot, a) -> vec_not t (blast_bv t a)
      | Term.Bv_binop (op, a, b) -> blast_binop t op (blast_bv t a) (blast_bv t b)
      | Term.Extract (hi, lo, a) ->
        let va = blast_bv t a in
        Array.sub va lo (hi - lo + 1)
      | Term.Concat (a, b) ->
        let va = blast_bv t a and vb = blast_bv t b in
        Array.append vb va
      | Term.Zero_extend (k, a) ->
        let va = blast_bv t a in
        Array.append va (Array.make k nref_false)
      | Term.Sign_extend (k, a) ->
        let va = blast_bv t a in
        Array.append va (Array.make k va.(Array.length va - 1))
      | Term.Ite (c, a, b) -> vec_ite t (blast_bool t c) (blast_bv t a) (blast_bv t b)
      | Term.Select _ | Term.Store _ ->
        invalid_arg "Blaster: memory operation reached the blaster"
      | Term.True | Term.False | Term.Not _ | Term.And _ | Term.Or _
      | Term.Implies _ | Term.Iff _ | Term.Eq _ | Term.Ult _ | Term.Ule _
      | Term.Slt _ | Term.Sle _ | Term.Var _ ->
        raise (Term.Sort_error "boolean term in bitvector context")
    in
    Term_tbl.add t.g.bv_cache term (v, t.sid);
    v

and blast_binop t op a b =
  match op with
  | Term.Add -> vec_add t a b
  | Term.Sub -> vec_sub t a b
  | Term.Mul -> vec_mul t a b
  | Term.Logand -> vec_binary_pointwise t g_and a b
  | Term.Logor -> vec_binary_pointwise t g_or a b
  | Term.Logxor -> vec_binary_pointwise t g_xor a b
  | Term.Shl -> vec_shift t ~dir:`Left ~fill:`Zero a b
  | Term.Lshr -> vec_shift t ~dir:`Right ~fill:`Zero a b
  | Term.Ashr -> vec_shift t ~dir:`Right ~fill:`Sign a b

(* ---- per-session clause emission ----

   Emission reads and writes the graph's scratch ([e_lit]/[e_sid]): a
   slot belongs to this session iff its stamp matches [t.sid].  When
   sessions on one graph interleave their blasting, a node both of them
   use may be re-emitted (a second, equivalent literal with its own
   Tseitin clauses) after the other session steals the slot — sound, and
   deterministic because the interleaving itself is (each program's
   sessions run on one domain in a fixed order).  Inputs never
   re-emit: their literals are also kept in the session's own [inputs]
   table so the model-visible variables stay unique. *)

let fresh t = Sat.pos (Sat.new_var t.sat)

(* All bits of an input are emitted together, in bit order, so the SAT
   variable layout of an input word does not depend on which bits the
   assertions happen to mention first. *)
let rec emit_input t name sort =
  match Hashtbl.find_opt t.inputs name with
  | Some (s, lits) ->
    if not (Sort.equal s sort) then
      raise (Term.Sort_error (Printf.sprintf "variable %s used at two sorts" name));
    lits
  | None ->
    let nrefs = graph_input t (name, sort) in
    let lits = Array.init (Array.length nrefs) (fun _ -> fresh t) in
    (* Bias branching towards deciding high bits first, so conflict-driven
       flips during model enumeration land on low bits: enumerated models
       then differ by small amounts, like Z3's default models. *)
    Array.iteri
      (fun i l -> Sat.nudge_activity t.sat (Sat.var_of l) (1e-3 *. float_of_int (i + 1)))
      lits;
    Hashtbl.add t.inputs name (sort, lits);
    ensure_scratch t.g;
    Array.iteri
      (fun i nr ->
        t.g.e_lit.(nr lsr 1) <- lits.(i);
        t.g.e_sid.(nr lsr 1) <- t.sid)
      nrefs;
    lits

and lit_of_node t id =
  if t.g.e_sid.(id) = t.sid then t.g.e_lit.(id)
  else begin
    let l =
      match t.g.nodes.(id) with
      | N_true -> t.true_lit (* pre-set at creation; reached only if another
                                session stole scratch slot 0 since *)
      | N_input (name, sort, bit) -> (emit_input t name sort).(bit)
      | N_and (a, b) ->
        let la = lit_of_ref t a in
        let lb = lit_of_ref t b in
        let o = fresh t in
        Sat.add_clause t.sat [ Sat.negate o; la ];
        Sat.add_clause t.sat [ Sat.negate o; lb ];
        Sat.add_clause t.sat [ o; Sat.negate la; Sat.negate lb ];
        o
      | N_xor (a, b) ->
        let la = lit_of_ref t a in
        let lb = lit_of_ref t b in
        let o = fresh t in
        Sat.add_clause t.sat [ Sat.negate o; la; lb ];
        Sat.add_clause t.sat [ Sat.negate o; Sat.negate la; Sat.negate lb ];
        Sat.add_clause t.sat [ o; Sat.negate la; lb ];
        Sat.add_clause t.sat [ o; la; Sat.negate lb ];
        o
      | N_ite (c, a, b) ->
        let lc = lit_of_ref t c in
        let la = lit_of_ref t a in
        let lb = lit_of_ref t b in
        let o = fresh t in
        Sat.add_clause t.sat [ Sat.negate lc; Sat.negate la; o ];
        Sat.add_clause t.sat [ Sat.negate lc; la; Sat.negate o ];
        Sat.add_clause t.sat [ lc; Sat.negate lb; o ];
        Sat.add_clause t.sat [ lc; lb; Sat.negate o ];
        o
    in
    t.g.e_lit.(id) <- l;
    t.g.e_sid.(id) <- t.sid;
    l
  end

and lit_of_ref t r =
  let l = lit_of_node t (r lsr 1) in
  if r land 1 = 1 then Sat.negate l else l

let assert_term t term =
  (match Term.sort_of term with
  | Sort.Bool -> ()
  | s -> raise (Term.Sort_error ("assertion of sort " ^ Sort.to_string s)));
  (* Cooperative-cancellation poll: blasting a large assertion is the one
     long-running phase between SAT queries, so an expired ambient
     deadline stops here instead of after the whole graph is built. *)
  Scamv_util.Deadline.poll ();
  let r = blast_bool t term in
  ensure_scratch t.g;
  let l = lit_of_ref t r in
  Sat.add_clause t.sat [ l ]

let bool_literal t term =
  (match Term.sort_of term with
  | Sort.Bool -> ()
  | s -> raise (Term.Sort_error ("assumption of sort " ^ Sort.to_string s)));
  Scamv_util.Deadline.poll ();
  let r = blast_bool t term in
  ensure_scratch t.g;
  lit_of_ref t r

let input_literals t (name, sort) = emit_input t name sort

let lit_model_value t l =
  let v = Sat.value t.sat (Sat.var_of l) in
  if Sat.is_pos l then v else not v

let read_model t =
  Hashtbl.fold
    (fun name (sort, lits) acc ->
      match sort with
      | Sort.Bool -> Model.add_var acc name (Model.Bool (lit_model_value t lits.(0)))
      | Sort.Bv w ->
        let v = ref 0L in
        Array.iteri (fun i l -> if lit_model_value t l then v := Bits.set_bit !v i true) lits;
        Model.add_var acc name (Model.Bv (!v, w))
      | Sort.Mem -> acc)
    t.inputs Model.empty

let inputs t =
  Hashtbl.fold (fun name (sort, lits) acc -> (name, sort, lits) :: acc) t.inputs []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let block_assignment t vars =
  let clause =
    List.concat_map
      (fun key ->
        let lits = input_literals t key in
        Array.to_list
          (Array.map
             (fun l -> if lit_model_value t l then Sat.negate l else l)
             lits))
      vars
  in
  Sat.add_clause t.sat clause

let block_values t vars model =
  (* Like {!block_assignment}, but against an explicit valuation instead
     of the solver's current assignment — used to replay another
     session's blocking clauses into this one (portfolio rescue).
     Variables the model does not bind default to false/zero, matching
     what [read_model] reports for never-decided inputs. *)
  let clause =
    List.concat_map
      (fun ((name, sort) as key) ->
        let lits = input_literals t key in
        match sort with
        | Sort.Bool ->
          [ (if Model.bool_exn model name then Sat.negate lits.(0) else lits.(0)) ]
        | Sort.Bv _ ->
          let v = Model.bv_exn model name in
          Array.to_list
            (Array.mapi (fun i l -> if Bits.bit v i then Sat.negate l else l) lits)
        | Sort.Mem -> [])
      vars
  in
  Sat.add_clause t.sat clause
