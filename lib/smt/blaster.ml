module Bits = Scamv_util.Bits

(* Term-keyed caches use Term's monomorphic equal/hash instead of the
   polymorphic defaults; lookups here are the hottest path of blasting. *)
module Term_tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type gate_key =
  | K_and of Sat.lit * Sat.lit
  | K_xor of Sat.lit * Sat.lit
  | K_ite of Sat.lit * Sat.lit * Sat.lit

type t = {
  sat : Sat.t;
  true_lit : Sat.lit;
  gates : (gate_key, Sat.lit) Hashtbl.t;
  bool_cache : Sat.lit Term_tbl.t;
  bv_cache : Sat.lit array Term_tbl.t;
  inputs : (string, Sort.t * Sat.lit array) Hashtbl.t;
  (* Structural-hashing effectiveness counters (gate + term caches),
     read by the solver session and flushed to telemetry. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ?seed ?default_phase () =
  let sat = Sat.create ?seed ?default_phase () in
  let v = Sat.new_var sat in
  Sat.add_clause sat [ Sat.pos v ];
  {
    sat;
    true_lit = Sat.pos v;
    gates = Hashtbl.create 1024;
    bool_cache = Term_tbl.create 256;
    bv_cache = Term_tbl.create 256;
    inputs = Hashtbl.create 64;
    cache_hits = 0;
    cache_misses = 0;
  }

let solver t = t.sat
let cache_stats t = (t.cache_hits, t.cache_misses)
let hit t = t.cache_hits <- t.cache_hits + 1
let miss t = t.cache_misses <- t.cache_misses + 1
let lit_true t = t.true_lit
let lit_false t = Sat.negate t.true_lit
let is_true t l = l = t.true_lit
let is_false t l = l = Sat.negate t.true_lit
let fresh t = Sat.pos (Sat.new_var t.sat)

(* ---- gates with structural hashing and constant folding ---- *)

let g_and t a b =
  if is_false t a || is_false t b then lit_false t
  else if is_true t a then b
  else if is_true t b then a
  else if a = b then a
  else if a = Sat.negate b then lit_false t
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let key = K_and (a, b) in
    match Hashtbl.find_opt t.gates key with
    | Some o ->
      hit t;
      o
    | None ->
      miss t;
      let o = fresh t in
      Sat.add_clause t.sat [ Sat.negate o; a ];
      Sat.add_clause t.sat [ Sat.negate o; b ];
      Sat.add_clause t.sat [ o; Sat.negate a; Sat.negate b ];
      Hashtbl.add t.gates key o;
      o
  end

let g_or t a b = Sat.negate (g_and t (Sat.negate a) (Sat.negate b))

let g_xor t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then Sat.negate b
  else if is_true t b then Sat.negate a
  else if a = b then lit_false t
  else if a = Sat.negate b then lit_true t
  else begin
    (* Normalize: positive operands, ordered; track output polarity. *)
    let flip = ref false in
    let norm l =
      if Sat.is_pos l then l
      else begin
        flip := not !flip;
        Sat.negate l
      end
    in
    let a = norm a and b = norm b in
    let a, b = if a < b then (a, b) else (b, a) in
    let key = K_xor (a, b) in
    let o =
      match Hashtbl.find_opt t.gates key with
      | Some o ->
        hit t;
        o
      | None ->
        miss t;
        let o = fresh t in
        Sat.add_clause t.sat [ Sat.negate o; a; b ];
        Sat.add_clause t.sat [ Sat.negate o; Sat.negate a; Sat.negate b ];
        Sat.add_clause t.sat [ o; Sat.negate a; b ];
        Sat.add_clause t.sat [ o; a; Sat.negate b ];
        Hashtbl.add t.gates key o;
        o
    in
    if !flip then Sat.negate o else o
  end

let g_iff t a b = Sat.negate (g_xor t a b)

let g_ite t c a b =
  if is_true t c then a
  else if is_false t c then b
  else if a = b then a
  else if is_true t a && is_false t b then c
  else if is_false t a && is_true t b then Sat.negate c
  else begin
    let key = K_ite (c, a, b) in
    match Hashtbl.find_opt t.gates key with
    | Some o ->
      hit t;
      o
    | None ->
      miss t;
      let o = fresh t in
      Sat.add_clause t.sat [ Sat.negate c; Sat.negate a; o ];
      Sat.add_clause t.sat [ Sat.negate c; a; Sat.negate o ];
      Sat.add_clause t.sat [ c; Sat.negate b; o ];
      Sat.add_clause t.sat [ c; b; Sat.negate o ];
      Hashtbl.add t.gates key o;
      o
  end

let g_implies t a b = g_or t (Sat.negate a) b

(* ---- vectors (little-endian: index 0 = LSB) ---- *)

let vec_const t v w =
  Array.init w (fun i -> if Bits.bit v i then lit_true t else lit_false t)

let vec_eq t a b =
  let acc = ref (lit_true t) in
  Array.iteri (fun i ai -> acc := g_and t !acc (g_iff t ai b.(i))) a;
  !acc

(* a + b + carry_in; returns sum vector (drops final carry). *)
let vec_add ?(carry_in = `Zero) t a b =
  let w = Array.length a in
  let sum = Array.make w (lit_false t) in
  let carry = ref (match carry_in with `Zero -> lit_false t | `One -> lit_true t) in
  for i = 0 to w - 1 do
    let x = a.(i) and y = b.(i) and c = !carry in
    let xy = g_xor t x y in
    sum.(i) <- g_xor t xy c;
    carry := g_or t (g_and t x y) (g_and t xy c)
  done;
  sum

let vec_not (_ : t) a = Array.map Sat.negate a
let vec_neg t a = vec_add ~carry_in:`One t (vec_not t a) (vec_const t 0L (Array.length a))
let vec_sub t a b = vec_add ~carry_in:`One t a (vec_not t b)

(* Unsigned a < b via MSB-first comparison chain. *)
let vec_ult t a b =
  let w = Array.length a in
  let lt = ref (lit_false t) in
  let eq_so_far = ref (lit_true t) in
  for i = w - 1 downto 0 do
    let bit_lt = g_and t (Sat.negate a.(i)) b.(i) in
    lt := g_or t !lt (g_and t !eq_so_far bit_lt);
    eq_so_far := g_and t !eq_so_far (g_iff t a.(i) b.(i))
  done;
  !lt

let vec_ule t a b = g_or t (vec_ult t a b) (vec_eq t a b)

let vec_slt t a b =
  let w = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(w - 1) <- Sat.negate a.(w - 1);
  b'.(w - 1) <- Sat.negate b.(w - 1);
  vec_ult t a' b'

let vec_sle t a b = g_or t (vec_slt t a b) (vec_eq t a b)

let vec_ite t c a b = Array.init (Array.length a) (fun i -> g_ite t c a.(i) b.(i))

let vec_binary_pointwise t f a b = Array.init (Array.length a) (fun i -> f t a.(i) b.(i))

(* Barrel shifter.  [shift_one dir fill k v] shifts [v] by [2^stage]
   positions.  Amounts >= width produce all-[fill]. *)
let vec_shift t ~dir ~fill a amount =
  let w = Array.length a in
  let fill_lit = match fill with `Zero -> lit_false t | `Sign -> a.(w - 1) in
  let stages = 6 (* 2^6 = 64 >= any supported width *) in
  let shift_by_const v k =
    Array.init w (fun i ->
        match dir with
        | `Left -> if i - k >= 0 then v.(i - k) else lit_false t
        | `Right -> if i + k < w then v.(i + k) else fill_lit)
  in
  let result = ref a in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let sel = if s < Array.length amount then amount.(s) else lit_false t in
    let shifted = if k >= w then Array.make w fill_lit else shift_by_const !result k in
    result := vec_ite t sel shifted !result
  done;
  (* Amount bits beyond 2^6 positions: any set high bit zeroes (or
     sign-fills) the result. *)
  let high = ref (lit_false t) in
  Array.iteri (fun i l -> if i >= stages then high := g_or t !high l) amount;
  vec_ite t !high (Array.make w fill_lit) !result

let vec_mul t a b =
  let w = Array.length a in
  let acc = ref (vec_const t 0L w) in
  for i = 0 to w - 1 do
    let partial =
      Array.init w (fun j -> if j < i then lit_false t else g_and t b.(i) a.(j - i))
    in
    acc := vec_add t !acc partial
  done;
  !acc

(* ---- inputs ---- *)

let input_literals t (name, sort) =
  match Hashtbl.find_opt t.inputs name with
  | Some (s, lits) ->
    if not (Sort.equal s sort) then
      raise (Term.Sort_error (Printf.sprintf "variable %s used at two sorts" name));
    lits
  | None ->
    let n = match sort with Sort.Bool -> 1 | Sort.Bv w -> w | Sort.Mem -> 0 in
    if n = 0 then invalid_arg "Blaster: memory variable reached the blaster";
    let lits = Array.init n (fun _ -> fresh t) in
    (* Bias branching towards deciding high bits first, so conflict-driven
       flips during model enumeration land on low bits: enumerated models
       then differ by small amounts, like Z3's default models. *)
    Array.iteri
      (fun i l -> Sat.nudge_activity t.sat (Sat.var_of l) (1e-3 *. float_of_int (i + 1)))
      lits;
    Hashtbl.add t.inputs name (sort, lits);
    lits

(* ---- term translation ---- *)

let rec blast_bool t (term : Term.t) : Sat.lit =
  match Term_tbl.find_opt t.bool_cache term with
  | Some l ->
    hit t;
    l
  | None ->
    miss t;
    let l =
      match term with
      | Term.True -> lit_true t
      | Term.False -> lit_false t
      | Term.Var (x, Sort.Bool) -> (input_literals t (x, Sort.Bool)).(0)
      | Term.Var (x, s) ->
        raise
          (Term.Sort_error
             (Printf.sprintf "boolean context, variable %s : %s" x (Sort.to_string s)))
      | Term.Not a -> Sat.negate (blast_bool t a)
      | Term.And (a, b) -> g_and t (blast_bool t a) (blast_bool t b)
      | Term.Or (a, b) -> g_or t (blast_bool t a) (blast_bool t b)
      | Term.Implies (a, b) -> g_implies t (blast_bool t a) (blast_bool t b)
      | Term.Iff (a, b) -> g_iff t (blast_bool t a) (blast_bool t b)
      | Term.Eq (a, b) -> (
        match Term.sort_of a with
        | Sort.Bool -> g_iff t (blast_bool t a) (blast_bool t b)
        | Sort.Bv _ -> vec_eq t (blast_bv t a) (blast_bv t b)
        | Sort.Mem -> raise (Term.Sort_error "memory equality in blaster"))
      | Term.Ult (a, b) -> vec_ult t (blast_bv t a) (blast_bv t b)
      | Term.Ule (a, b) -> vec_ule t (blast_bv t a) (blast_bv t b)
      | Term.Slt (a, b) -> vec_slt t (blast_bv t a) (blast_bv t b)
      | Term.Sle (a, b) -> vec_sle t (blast_bv t a) (blast_bv t b)
      | Term.Ite (c, a, b) -> g_ite t (blast_bool t c) (blast_bool t a) (blast_bool t b)
      | Term.Bv_const _ | Term.Bv_unop _ | Term.Bv_binop _ | Term.Extract _
      | Term.Concat _ | Term.Zero_extend _ | Term.Sign_extend _ ->
        raise (Term.Sort_error "bitvector term in boolean context")
      | Term.Select _ | Term.Store _ ->
        invalid_arg "Blaster: memory operation reached the blaster"
    in
    Term_tbl.add t.bool_cache term l;
    l

and blast_bv t (term : Term.t) : Sat.lit array =
  match Term_tbl.find_opt t.bv_cache term with
  | Some v ->
    hit t;
    v
  | None ->
    miss t;
    let v =
      match term with
      | Term.Var (x, (Sort.Bv _ as s)) -> input_literals t (x, s)
      | Term.Bv_const (v, w) -> vec_const t v w
      | Term.Bv_unop (Term.Neg, a) -> vec_neg t (blast_bv t a)
      | Term.Bv_unop (Term.Lognot, a) -> vec_not t (blast_bv t a)
      | Term.Bv_binop (op, a, b) -> blast_binop t op (blast_bv t a) (blast_bv t b)
      | Term.Extract (hi, lo, a) ->
        let va = blast_bv t a in
        Array.sub va lo (hi - lo + 1)
      | Term.Concat (a, b) ->
        let va = blast_bv t a and vb = blast_bv t b in
        Array.append vb va
      | Term.Zero_extend (k, a) ->
        let va = blast_bv t a in
        Array.append va (Array.make k (lit_false t))
      | Term.Sign_extend (k, a) ->
        let va = blast_bv t a in
        Array.append va (Array.make k va.(Array.length va - 1))
      | Term.Ite (c, a, b) -> vec_ite t (blast_bool t c) (blast_bv t a) (blast_bv t b)
      | Term.Select _ | Term.Store _ ->
        invalid_arg "Blaster: memory operation reached the blaster"
      | Term.True | Term.False | Term.Not _ | Term.And _ | Term.Or _
      | Term.Implies _ | Term.Iff _ | Term.Eq _ | Term.Ult _ | Term.Ule _
      | Term.Slt _ | Term.Sle _ | Term.Var _ ->
        raise (Term.Sort_error "boolean term in bitvector context")
    in
    Term_tbl.add t.bv_cache term v;
    v

and blast_binop t op a b =
  match op with
  | Term.Add -> vec_add t a b
  | Term.Sub -> vec_sub t a b
  | Term.Mul -> vec_mul t a b
  | Term.Logand -> vec_binary_pointwise t g_and a b
  | Term.Logor -> vec_binary_pointwise t g_or a b
  | Term.Logxor -> vec_binary_pointwise t g_xor a b
  | Term.Shl -> vec_shift t ~dir:`Left ~fill:`Zero a b
  | Term.Lshr -> vec_shift t ~dir:`Right ~fill:`Zero a b
  | Term.Ashr -> vec_shift t ~dir:`Right ~fill:`Sign a b

let assert_term t term =
  (match Term.sort_of term with
  | Sort.Bool -> ()
  | s -> raise (Term.Sort_error ("assertion of sort " ^ Sort.to_string s)));
  let l = blast_bool t term in
  Sat.add_clause t.sat [ l ]

let lit_model_value t l =
  let v = Sat.value t.sat (Sat.var_of l) in
  if Sat.is_pos l then v else not v

let read_model t =
  Hashtbl.fold
    (fun name (sort, lits) acc ->
      match sort with
      | Sort.Bool -> Model.add_var acc name (Model.Bool (lit_model_value t lits.(0)))
      | Sort.Bv w ->
        let v = ref 0L in
        Array.iteri (fun i l -> if lit_model_value t l then v := Bits.set_bit !v i true) lits;
        Model.add_var acc name (Model.Bv (!v, w))
      | Sort.Mem -> acc)
    t.inputs Model.empty

let inputs t =
  Hashtbl.fold (fun name (sort, lits) acc -> (name, sort, lits) :: acc) t.inputs []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let block_assignment t vars =
  let clause =
    List.concat_map
      (fun key ->
        let lits = input_literals t key in
        Array.to_list
          (Array.map
             (fun l -> if lit_model_value t l then Sat.negate l else l)
             lits))
      vars
  in
  Sat.add_clause t.sat clause
