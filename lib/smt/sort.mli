(** Sorts of the QF_ABV-style term language used for path conditions,
    observation expressions and synthesized relations. *)

type t =
  | Bool  (** propositions *)
  | Bv of int  (** fixed-width bit vectors; width in [1, 64] *)
  | Mem  (** memories: arrays from 64-bit addresses to 64-bit words *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: [Bool < Bv _ < Mem], bit vectors by width.  Monomorphic —
    the track-set comparators use it to avoid polymorphic comparison in
    session setup.  Note this is the declaration order, not the order of
    the polymorphic [Stdlib.compare], which sorts the constant
    constructors ([Bool], [Mem]) before every [Bv _] block; the tracked
    blocking order follows this comparator and is pinned by a test. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
