module Splitmix = Scamv_util.Splitmix

type result = Sat of Model.t | Unsat

exception Solver_invariant of string

type model_result = Model of Model.t | Exhausted | Budget_exceeded

type session = {
  blaster : Blaster.t;
  state : Arrays.state;  (* array-elimination state, for [extend] *)
  mutable reads : Arrays.read list;
  mutable track : (string * Sort.t) list;  (* inputs to block on *)
  budget : Sat.budget option;
  mutable count : int;
  mutable exhausted : bool;
  mutable rng : Splitmix.t;
  mutable blocked_rev : Model.t list;
      (* raw input valuations blocked so far (newest first), for replaying
         this session's enumeration state into a portfolio challenger *)
}

let compare_key (x1, s1) (x2, s2) =
  (* Monomorphic comparator for tracked-variable sets: same order as the
     polymorphic [Stdlib.compare] on [(string * Sort.t)] (name first, then
     {!Sort.compare}), without the polymorphic-comparison overhead on this
     session-setup path. *)
  let c = String.compare x1 x2 in
  if c <> 0 then c else Sort.compare s1 s2

let default_track formulas (reads : Arrays.read list) =
  (* Track every non-memory free variable of the original formulas plus
     every memory read variable, so enumerated models differ on program-
     visible state (registers or read memory cells). *)
  let module S = Set.Make (struct
    type t = string * Sort.t

    let compare = compare_key
  end) in
  let base =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (x, s) ->
            match s with Sort.Mem -> acc | _ -> S.add (x, s) acc)
          acc (Term.free_vars f))
      S.empty formulas
  in
  let with_reads =
    List.fold_left
      (fun acc (r : Arrays.read) -> S.add (r.var_name, Sort.Bv 64) acc)
      base reads
  in
  S.elements with_reads

let expand_track reads track =
  (* A tracked memory means: track all of its read variables. *)
  List.concat_map
    (fun (x, s) ->
      match s with
      | Sort.Mem ->
        List.filter_map
          (fun (r : Arrays.read) ->
            if String.equal r.mem_name x then Some (r.var_name, Sort.Bv 64) else None)
          reads
      | _ -> [ (x, s) ])
    track

let make_session ?seed ?default_phase ?restart_base ?track ?budget ?graph formulas =
  let state = Arrays.new_state () in
  let { Arrays.formulas = fs; side_conditions; reads } =
    Arrays.eliminate_into state formulas
  in
  let blaster = Blaster.create ?seed ?default_phase ?restart_base ?graph () in
  List.iter (Blaster.assert_term blaster) fs;
  List.iter (Blaster.assert_term blaster) side_conditions;
  let track =
    match track with
    | None -> default_track formulas reads
    | Some t -> expand_track reads t
  in
  (* Allocate literals for tracked variables even if simplification erased
     them from the assertions, so they are reported in models. *)
  List.iter (fun key -> ignore (Blaster.input_literals blaster key)) track;
  (* All blasting for this session happens above (enumeration only adds
     blocking clauses over already-allocated literals), so the cache
     totals are final here: flush them once per session. *)
  let hits, misses = Blaster.cache_stats blaster in
  Scamv_telemetry.Collector.incr "smt.sessions";
  Scamv_telemetry.Collector.add "smt.blast_cache_hits" hits;
  Scamv_telemetry.Collector.add "smt.blast_cache_misses" misses;
  Scamv_telemetry.Collector.add "smt.blast_cache_cross_hits" (Blaster.cross_stats blaster);
  (* Open the enumeration scope: blocking clauses added by [next_model]
     are guarded by its selector, so [extend] can retract them when the
     refinement chain replaces the relation being enumerated. *)
  Sat.push (Blaster.solver blaster);
  {
    blaster;
    state;
    reads;
    track;
    budget;
    count = 0;
    exhausted = false;
    rng = Splitmix.of_seed (Option.value seed ~default:1L);
    blocked_rev = [];
  }

(* Lexicographic model minimization: greedily clear set bits of the input
   variables, most significant first, re-solving under assumptions.  This
   makes every non-diversified model the canonical smallest one allowed
   by the clauses (including the accumulated blocking clauses) — the
   behaviour of Z3-style default models, on which the unguided-search
   characteristics of the paper depend. *)
exception Out_of_budget
(* Internal early exit from the minimization loop; surfaced to callers as
   [Budget_exceeded]. *)

let minimize_model s =
  let sat = Blaster.solver s.blaster in
  let budget = Option.value s.budget ~default:Sat.unlimited in
  let lit_true l =
    if Sat.is_pos l then Sat.value sat (Sat.var_of l)
    else not (Sat.value sat (Sat.var_of l))
  in
  (* One growable assumption prefix shared by every query of the loop:
     each decided bit appends its pin in place and re-solves with
     [~n_assumptions], instead of rebuilding an assumption array per bit.
     The final model does not depend on assumption order — a bit ends up
     0 exactly when the clauses plus the higher-significance pins admit
     0 — so appending (rather than consing) changes no enumerated model. *)
  let pins = ref (Array.make 64 0) in
  let n_pins = ref 0 in
  let push l =
    if !n_pins = Array.length !pins then begin
      let grown = Array.make (2 * !n_pins) 0 in
      Array.blit !pins 0 grown 0 !n_pins;
      pins := grown
    end;
    !pins.(!n_pins) <- l;
    incr n_pins
  in
  List.iter
    (fun (_, _, lits) ->
      for i = Array.length lits - 1 downto 0 do
        let l = lits.(i) in
        if Sat.root_value sat (Sat.var_of l) <> 0 then
          (* Forced at level 0 (by the clauses or accumulated blocking
             clauses): the bit is not free, so it needs neither a query
             nor a pin. *)
          ()
        else if not (lit_true l) then push (Sat.negate l)
        else begin
          push (Sat.negate l);
          match Sat.solve ~assumptions:!pins ~n_assumptions:!n_pins ~budget sat with
          | Sat.Unknown -> raise Out_of_budget
          | Sat.Sat -> () (* the cleared bit stays pinned *)
          | Sat.Unsat -> (
            !pins.(!n_pins - 1) <- l;
            (* Restore a model satisfying the pins so the next bit reads a
               valid current value.  With the assumption-trail reuse in
               {!Sat.solve} this restore shares all but the last pin's
               decision level with the failed query, so it costs one
               re-descent from there, not a search from scratch — and the
               fresh witness usually has more low bits already clear than
               a stale snapshot would, saving whole pin queries below.
               The pins only constrain bits of the model just found, so
               this must be satisfiable; if it is not, enumeration state
               is corrupt and the campaign layer should quarantine this
               session rather than crash. *)
            match Sat.solve ~assumptions:!pins ~n_assumptions:!n_pins ~budget sat with
            | Sat.Sat -> ()
            | Sat.Unknown -> raise Out_of_budget
            | Sat.Unsat ->
              raise
                (Solver_invariant
                   "minimize_model: pinned bits of a known model became unsatisfiable"))
        end
      done)
    (Blaster.inputs s.blaster)

let next_model ?(diversify = false) s =
  if s.exhausted then Exhausted
  else begin
    if diversify then begin
      let seed, rng = Splitmix.next s.rng in
      s.rng <- rng;
      Sat.randomize_phases (Blaster.solver s.blaster) seed
    end
    else Sat.reset_phases (Blaster.solver s.blaster);
    let budget = Option.value s.budget ~default:Sat.unlimited in
    match Sat.solve ~budget (Blaster.solver s.blaster) with
    | Sat.Unknown ->
      Scamv_telemetry.Collector.incr "smt.budget_exceeded";
      Budget_exceeded
    | Sat.Unsat ->
      s.exhausted <- true;
      Exhausted
    | Sat.Sat -> (
      match if diversify then Ok () else (try Ok (minimize_model s) with Out_of_budget -> Error ()) with
      | Error () ->
        Scamv_telemetry.Collector.incr "smt.budget_exceeded";
        Budget_exceeded
      | Ok () ->
        let raw = Blaster.read_model s.blaster in
        let model = Arrays.recover_memories raw s.reads in
        Blaster.block_assignment s.blaster s.track;
        s.blocked_rev <- raw :: s.blocked_rev;
        s.count <- s.count + 1;
        Scamv_telemetry.Collector.incr "smt.models";
        Model model)
  end

let push s = Sat.push (Blaster.solver s.blaster)
let pop s = Sat.pop (Blaster.solver s.blaster)

let solve_assuming s assumptions =
  let sat = Blaster.solver s.blaster in
  (* Blasting the assumed terms may emit fresh Tseitin clauses, but the
     terms themselves are only assumed for this one query — nothing is
     asserted permanently. *)
  let lits =
    Array.of_list (List.map (Blaster.bool_literal s.blaster) assumptions)
  in
  let budget = Option.value s.budget ~default:Sat.unlimited in
  match Sat.solve ~assumptions:lits ~budget sat with
  | Sat.Unknown ->
    Scamv_telemetry.Collector.incr "smt.budget_exceeded";
    Budget_exceeded
  | Sat.Unsat -> Exhausted
  | Sat.Sat ->
    let model = Blaster.read_model s.blaster in
    Model (Arrays.recover_memories model s.reads)

let extend ?track s formulas =
  let sat = Blaster.solver s.blaster in
  (* Retract the enumeration scope: blocking clauses accumulated while
     enumerating the previous relation must not constrain the extended
     one.  Everything else — CNF, learnt clauses, activities, phases, the
     blast graph — carries over, which is the point of extending the
     session instead of re-blasting and re-solving from scratch. *)
  Sat.pop sat;
  s.blocked_rev <- [];
  let h0, m0 = Blaster.cache_stats s.blaster in
  let x0 = Blaster.cross_stats s.blaster in
  let { Arrays.formulas = fs; side_conditions; reads } =
    Arrays.eliminate_into s.state formulas
  in
  List.iter (Blaster.assert_term s.blaster) fs;
  List.iter (Blaster.assert_term s.blaster) side_conditions;
  s.reads <- reads;
  (match track with
  | Some tr -> s.track <- expand_track reads tr
  | None ->
    (* Merge the new formulas' default track into the existing one. *)
    let merged =
      List.sort_uniq compare_key (s.track @ default_track formulas reads)
    in
    s.track <- merged);
  List.iter (fun key -> ignore (Blaster.input_literals s.blaster key)) s.track;
  let h1, m1 = Blaster.cache_stats s.blaster in
  (* Cache hits while blasting the extension are precisely the structure
     reused from the live session instead of being rebuilt. *)
  Scamv_telemetry.Collector.add "smt.incremental_reuse_hits" (h1 - h0);
  Scamv_telemetry.Collector.add "smt.blast_cache_hits" (h1 - h0);
  Scamv_telemetry.Collector.add "smt.blast_cache_misses" (m1 - m0);
  Scamv_telemetry.Collector.add "smt.blast_cache_cross_hits"
    (Blaster.cross_stats s.blaster - x0);
  Sat.push sat;
  s.exhausted <- false;
  s

let blocked_models s = List.rev s.blocked_rev

let block_model s raw =
  Blaster.block_values s.blaster s.track raw;
  s.blocked_rev <- raw :: s.blocked_rev;
  s.count <- s.count + 1

let models_found s = s.count

let stats s =
  let sat = Blaster.solver s.blaster in
  (Sat.stats_conflicts sat, Sat.stats_decisions sat, Sat.stats_propagations sat)

let var_count s = Sat.num_vars (Blaster.solver s.blaster)

let solve ?seed ?default_phase ?graph formulas =
  let s = make_session ?seed ?default_phase ?graph formulas in
  (* No budget is installed, so [Budget_exceeded] cannot occur here. *)
  match next_model s with Model m -> Sat m | Exhausted | Budget_exceeded -> Unsat
