(** Terms of the QF_ABV-style language.

    Terms are plain immutable trees; the constructors exported here are
    smart constructors that check well-sortedness and perform constant
    folding plus light algebraic simplification, so the bit-blaster only
    ever sees normalized terms.  Structural equality is semantic-free but
    adequate for caching. *)

type t = private
  | True
  | False
  | Var of string * Sort.t
  | Bv_const of int64 * int  (** value (truncated), width *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Eq of t * t  (** on Bool or Bv operands *)
  | Ult of t * t
  | Ule of t * t
  | Slt of t * t
  | Sle of t * t
  | Bv_unop of bv_unop * t
  | Bv_binop of bv_binop * t * t
  | Extract of int * int * t  (** hi, lo *)
  | Concat of t * t
  | Zero_extend of int * t  (** number of extra bits *)
  | Sign_extend of int * t
  | Ite of t * t * t  (** condition is Bool; branches share a Bv sort *)
  | Select of t * t  (** memory, address *)
  | Store of t * t * t  (** memory, address, value *)

and bv_unop = Neg | Lognot

and bv_binop =
  | Add
  | Sub
  | Mul
  | Logand
  | Logor
  | Logxor
  | Shl
  | Lshr
  | Ashr

exception Sort_error of string
(** Raised by smart constructors on ill-sorted arguments. *)

val sort_of : t -> Sort.t
(** Sort of a term (terms built through this interface are well-sorted). *)

val equal : t -> t -> bool
(** Monomorphic structural equality with a physical-equality fast path;
    much cheaper than polymorphic comparison on the deep, heavily shared
    ASTs the bit-blaster caches (see {!Scamv_smt.Blaster}). *)

val compare : t -> t -> int

val hash : t -> int
(** Specialized structural hash (bounded preorder walk), compatible with
    [equal]: equal terms hash equal. *)

(** {1 Smart constructors} *)

val tt : t
val ff : t
val bool_const : bool -> t
val bool_var : string -> t
val bv_var : string -> int -> t
val mem_var : string -> t
val bv_const : int64 -> int -> t
val bv_zero : int -> t
val bv_one : int -> t

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val and_l : t list -> t
val or_l : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t

val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
val zero_extend : int -> t -> t
val sign_extend : int -> t -> t
val ite : t -> t -> t -> t
val select : t -> t -> t
val store : t -> t -> t -> t

(** {1 Traversals} *)

val rename : (string -> string) -> t -> t
(** [rename f t] renames every variable [x] to [f x], keeping sorts. *)

val subst : (string -> Sort.t -> t option) -> t -> t
(** [subst f t] replaces every variable [x] with [f x sort] when it returns
    [Some]; replacements must have the variable's sort.  Substitution is
    simultaneous (replacement terms are not re-visited). *)

val free_vars : t -> (string * Sort.t) list
(** Free variables in deterministic (sorted by name) order, no duplicates. *)

val size : t -> int
(** Number of nodes, for diagnostics. *)

val pp : Format.formatter -> t -> unit
(** SMT-LIB-flavoured s-expression rendering. *)

val to_string : t -> string
