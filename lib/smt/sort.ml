type t = Bool | Bv of int | Mem

let rank = function Bool -> 0 | Bv _ -> 1 | Mem -> 2

let compare a b =
  match (a, b) with
  | Bv w1, Bv w2 -> Int.compare w1 w2
  | _ -> Int.compare (rank a) (rank b)

let equal a b =
  match (a, b) with
  | Bool, Bool | Mem, Mem -> true
  | Bv w1, Bv w2 -> w1 = w2
  | (Bool | Bv _ | Mem), _ -> false

let pp ppf = function
  | Bool -> Format.pp_print_string ppf "Bool"
  | Bv w -> Format.fprintf ppf "(BitVec %d)" w
  | Mem -> Format.pp_print_string ppf "(Array (BitVec 64) (BitVec 64))"

let to_string t = Format.asprintf "%a" pp t
