module Term = Scamv_smt.Term
module Arch = Scamv_bir.Arch
module Vars = Scamv_bir.Vars

let reg_var r = Ast.reg_name r
let reg_term r = if r = 0 then Term.bv_const 0L 64 else Term.bv_var (reg_var r) 64

(* Writes to x0 are architecturally discarded, which makes every x0 idiom
   liftable: [jal x0] is a plain jump, [ld x0, ...] performs (and
   observes) the access without an assignment, and so on. *)
let assign d e = if d = 0 then [] else [ (reg_var d, e) ]

(* Register-amount shifts use only the low 6 bits of rs2 (RV64I) — the
   semantics the lossy translator cannot express in the AArch64 subset,
   whose shifts yield 0 for amounts >= 64. *)
let shift_amount b = Term.logand (reg_term b) (Term.bv_const 63L 64)

let fall assigns = { Arch.assigns; access = Arch.No_access; control = Arch.Fallthrough }

let cond_jump cond target =
  { Arch.assigns = []; access = Arch.No_access; control = Arch.Cond_jump (cond, target) }

let lift_instr ~pc instr =
  match instr with
  | Ast.Nop -> fall []
  | Ast.Addi (d, a, v) -> fall (assign d (Term.add (reg_term a) (Term.bv_const v 64)))
  | Ast.Add (d, a, b) -> fall (assign d (Term.add (reg_term a) (reg_term b)))
  | Ast.Sub (d, a, b) -> fall (assign d (Term.sub (reg_term a) (reg_term b)))
  | Ast.And_ (d, a, b) -> fall (assign d (Term.logand (reg_term a) (reg_term b)))
  | Ast.Or_ (d, a, b) -> fall (assign d (Term.logor (reg_term a) (reg_term b)))
  | Ast.Xor (d, a, b) -> fall (assign d (Term.logxor (reg_term a) (reg_term b)))
  | Ast.Andi (d, a, v) -> fall (assign d (Term.logand (reg_term a) (Term.bv_const v 64)))
  | Ast.Ori (d, a, v) -> fall (assign d (Term.logor (reg_term a) (Term.bv_const v 64)))
  | Ast.Xori (d, a, v) -> fall (assign d (Term.logxor (reg_term a) (Term.bv_const v 64)))
  | Ast.Slli (d, a, k) ->
    fall (assign d (Term.shl (reg_term a) (Term.bv_const (Int64.of_int k) 64)))
  | Ast.Srli (d, a, k) ->
    fall (assign d (Term.lshr (reg_term a) (Term.bv_const (Int64.of_int k) 64)))
  | Ast.Srai (d, a, k) ->
    fall (assign d (Term.ashr (reg_term a) (Term.bv_const (Int64.of_int k) 64)))
  | Ast.Sll (d, a, b) -> fall (assign d (Term.shl (reg_term a) (shift_amount b)))
  | Ast.Srl (d, a, b) -> fall (assign d (Term.lshr (reg_term a) (shift_amount b)))
  | Ast.Sra (d, a, b) -> fall (assign d (Term.ashr (reg_term a) (shift_amount b)))
  | Ast.Ld (d, imm, b) ->
    let addr = Term.add (reg_term b) (Term.bv_const imm 64) in
    {
      Arch.assigns = assign d (Term.select Vars.mem_term addr);
      access = Arch.Load addr;
      control = Arch.Fallthrough;
    }
  | Ast.Sd (src, imm, b) ->
    let addr = Term.add (reg_term b) (Term.bv_const imm 64) in
    {
      Arch.assigns = [ (Vars.mem_name, Term.store Vars.mem_term addr (reg_term src)) ];
      access = Arch.Store addr;
      control = Arch.Fallthrough;
    }
  | Ast.Beq (a, b, t) -> cond_jump (Term.eq (reg_term a) (reg_term b)) t
  | Ast.Bne (a, b, t) -> cond_jump (Term.neq (reg_term a) (reg_term b)) t
  | Ast.Blt (a, b, t) -> cond_jump (Term.slt (reg_term a) (reg_term b)) t
  | Ast.Bge (a, b, t) -> cond_jump (Term.sle (reg_term b) (reg_term a)) t
  | Ast.Bltu (a, b, t) -> cond_jump (Term.ult (reg_term a) (reg_term b)) t
  | Ast.Bgeu (a, b, t) -> cond_jump (Term.ule (reg_term b) (reg_term a)) t
  | Ast.Jal (d, t) ->
    (* Link value at instruction-index granularity, matching
       [Semantics.run]. *)
    {
      Arch.assigns = assign d (Term.bv_const (Int64.of_int (pc + 1)) 64);
      access = Arch.No_access;
      control = Arch.Jump t;
    }

(* x1..x31 in machine-slot order: RV64 x[k] lives in slot k-1, the same
   convention as [Translate.map_reg], so machine states and simulator
   runs are directly comparable across the two frontends. *)
let registers = List.init 31 (fun i -> Ast.reg_name (i + 1))

let arch =
  {
    Arch.name = "riscv";
    registers;
    has_flags = false;
    validate = Ast.validate;
    lift_instr;
    pp_instr = Ast.pp_instr;
  }

let lift ?hooks program = Scamv_bir.Lifter.lift_arch ?hooks arch program
