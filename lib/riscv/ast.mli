(** RV64I subset: the second guest architecture of the reproduction.

    Scam-V supports multiple architectures by translating binaries into a
    common intermediate form (Sec. 2.3: "Currently ARMv8, CortexM0, and
    RISC-V"); here, RISC-V programs are translated to the AArch64-subset
    ISA by {!Translate}, after which the whole pipeline (models, symbolic
    execution, relation synthesis, simulator) applies unchanged.

    Registers are [x0 .. x31] with [x0] hardwired to zero.  Branch and
    jump targets are instruction indexes. *)

type reg = int
(** 0..31; constructors check the range. *)

val x : int -> reg
val reg_name : reg -> string

type instr =
  | Addi of reg * reg * int64
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor of reg * reg * reg
  | Andi of reg * reg * int64
  | Ori of reg * reg * int64
  | Xori of reg * reg * int64
  | Slli of reg * reg * int  (** shift amount 0..63 *)
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Sll of reg * reg * reg
      (** register-amount shifts use the low 6 bits of rs2 — semantics the
          AArch64 subset cannot express, so {!Translate} rejects them;
          the native lifter {!Lift} accepts them *)
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Ld of reg * int64 * reg  (** [Ld (rd, imm, rs1)] = rd := mem[rs1 + imm] *)
  | Sd of reg * int64 * reg  (** [Sd (rs2, imm, rs1)] = mem[rs1 + imm] := rs2 *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jal of reg * int  (** only [rd = x0] (plain jump) is translatable *)
  | Nop

type program = instr array

val validate : program -> (unit, string) Stdlib.result
(** Branch targets in range, shift amounts in 0..63. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
