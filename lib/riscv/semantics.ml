module Int64_map = Map.Make (Int64)

type state = { regs : int64 array; mutable mem : int64 Int64_map.t }

let create () = { regs = Array.make 32 0L; mem = Int64_map.empty }
let get_reg s r = if r = 0 then 0L else s.regs.(r)
let set_reg s r v = if r <> 0 then s.regs.(r) <- v
let load s a = match Int64_map.find_opt a s.mem with None -> 0L | Some v -> v
let store s a v = s.mem <- Int64_map.add a v s.mem
let mem_bindings s = Int64_map.bindings s.mem

(* Register-amount shifts use only the low 6 bits of rs2 (RV64I). *)
let shift_amount s b = Int64.to_int (Int64.logand (get_reg s b) 63L)

let run ?(fuel = 10_000) program s =
  let len = Array.length program in
  let rec go pc fuel =
    if pc < 0 || pc >= len then ()
    else if fuel = 0 then failwith "Riscv.Semantics.run: fuel exhausted"
    else begin
      let next =
        match program.(pc) with
        | Ast.Nop -> pc + 1
        | Ast.Addi (d, a, v) ->
          set_reg s d (Int64.add (get_reg s a) v);
          pc + 1
        | Ast.Add (d, a, b) ->
          set_reg s d (Int64.add (get_reg s a) (get_reg s b));
          pc + 1
        | Ast.Sub (d, a, b) ->
          set_reg s d (Int64.sub (get_reg s a) (get_reg s b));
          pc + 1
        | Ast.And_ (d, a, b) ->
          set_reg s d (Int64.logand (get_reg s a) (get_reg s b));
          pc + 1
        | Ast.Or_ (d, a, b) ->
          set_reg s d (Int64.logor (get_reg s a) (get_reg s b));
          pc + 1
        | Ast.Xor (d, a, b) ->
          set_reg s d (Int64.logxor (get_reg s a) (get_reg s b));
          pc + 1
        | Ast.Andi (d, a, v) ->
          set_reg s d (Int64.logand (get_reg s a) v);
          pc + 1
        | Ast.Ori (d, a, v) ->
          set_reg s d (Int64.logor (get_reg s a) v);
          pc + 1
        | Ast.Xori (d, a, v) ->
          set_reg s d (Int64.logxor (get_reg s a) v);
          pc + 1
        | Ast.Slli (d, a, k) ->
          set_reg s d (Int64.shift_left (get_reg s a) k);
          pc + 1
        | Ast.Srli (d, a, k) ->
          set_reg s d (Int64.shift_right_logical (get_reg s a) k);
          pc + 1
        | Ast.Srai (d, a, k) ->
          set_reg s d (Int64.shift_right (get_reg s a) k);
          pc + 1
        | Ast.Sll (d, a, b) ->
          set_reg s d (Int64.shift_left (get_reg s a) (shift_amount s b));
          pc + 1
        | Ast.Srl (d, a, b) ->
          set_reg s d (Int64.shift_right_logical (get_reg s a) (shift_amount s b));
          pc + 1
        | Ast.Sra (d, a, b) ->
          set_reg s d (Int64.shift_right (get_reg s a) (shift_amount s b));
          pc + 1
        | Ast.Ld (d, imm, b) ->
          set_reg s d (load s (Int64.add (get_reg s b) imm));
          pc + 1
        | Ast.Sd (src, imm, b) ->
          store s (Int64.add (get_reg s b) imm) (get_reg s src);
          pc + 1
        | Ast.Beq (a, b, t) -> if Int64.equal (get_reg s a) (get_reg s b) then t else pc + 1
        | Ast.Bne (a, b, t) ->
          if not (Int64.equal (get_reg s a) (get_reg s b)) then t else pc + 1
        | Ast.Blt (a, b, t) ->
          if Int64.compare (get_reg s a) (get_reg s b) < 0 then t else pc + 1
        | Ast.Bge (a, b, t) ->
          if Int64.compare (get_reg s a) (get_reg s b) >= 0 then t else pc + 1
        | Ast.Bltu (a, b, t) ->
          if Int64.unsigned_compare (get_reg s a) (get_reg s b) < 0 then t else pc + 1
        | Ast.Bgeu (a, b, t) ->
          if Int64.unsigned_compare (get_reg s a) (get_reg s b) >= 0 then t else pc + 1
        | Ast.Jal (d, t) ->
          set_reg s d (Int64.of_int (pc + 1)) (* link value: index granularity *);
          t
      in
      go next (fuel - 1)
    end
  in
  go 0 fuel
