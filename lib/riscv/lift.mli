(** Native RV64 -> BIR lifting: the architecture descriptor that makes
    RISC-V a first-class guest, with no translation detour through the
    AArch64 subset.

    Canonical BIR variables are ["x1" .. "x31"] (64-bit) plus the shared
    memory variable; [x0] reads lower to the constant 0 and writes to it
    produce no assignment, so every x0 idiom the lossy {!Translate} pass
    rejects is liftable here, as are register-amount shifts (6-bit amount
    masking) and linking [jal].  Branches lower to compare-and-branch
    conditions over the register variables directly — the architecture
    has no flags ([Arch.has_flags = false]). *)

val reg_var : Ast.reg -> string
(** Canonical BIR variable name of a register. *)

val reg_term : Ast.reg -> Scamv_smt.Term.t
(** 64-bit variable, or the constant 0 for [x0]. *)

val registers : string list
(** ["x1" .. "x31"] in machine-slot order: RV64 x[k] occupies slot k-1 of
    a {!Scamv_isa.Machine.t}, the same convention as
    {!Translate.map_reg}. *)

val arch : Ast.instr Scamv_bir.Arch.t

val lift : ?hooks:Scamv_bir.Lifter.hooks -> Ast.program -> Scamv_bir.Program.t
(** [Lifter.lift_arch arch].
    @raise Invalid_argument if {!Ast.validate} rejects the program. *)
