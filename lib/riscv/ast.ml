type reg = int

let x i =
  if i < 0 || i > 31 then invalid_arg "Riscv.Ast.x: register index out of range";
  i

let reg_name r = "x" ^ string_of_int r

type instr =
  | Addi of reg * reg * int64
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor of reg * reg * reg
  | Andi of reg * reg * int64
  | Ori of reg * reg * int64
  | Xori of reg * reg * int64
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Sll of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Ld of reg * int64 * reg
  | Sd of reg * int64 * reg
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jal of reg * int
  | Nop

type program = instr array

let branch_target = function
  | Beq (_, _, t) | Bne (_, _, t) | Blt (_, _, t) | Bge (_, _, t)
  | Bltu (_, _, t) | Bgeu (_, _, t) | Jal (_, t) ->
    Some t
  | _ -> None

let validate program =
  let len = Array.length program in
  let problem = ref None in
  Array.iteri
    (fun i instr ->
      if !problem = None then begin
        (match branch_target instr with
        | Some t when t < 0 || t > len ->
          problem := Some (Printf.sprintf "instruction %d: target %d out of range" i t)
        | _ -> ());
        match instr with
        | Slli (_, _, k) | Srli (_, _, k) | Srai (_, _, k) ->
          if k < 0 || k > 63 then
            problem := Some (Printf.sprintf "instruction %d: bad shift amount %d" i k)
        | _ -> ()
      end)
    program;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp_instr ppf instr =
  let r = reg_name in
  match instr with
  | Addi (d, a, v) -> Format.fprintf ppf "addi %s, %s, %Ld" (r d) (r a) v
  | Add (d, a, b) -> Format.fprintf ppf "add %s, %s, %s" (r d) (r a) (r b)
  | Sub (d, a, b) -> Format.fprintf ppf "sub %s, %s, %s" (r d) (r a) (r b)
  | And_ (d, a, b) -> Format.fprintf ppf "and %s, %s, %s" (r d) (r a) (r b)
  | Or_ (d, a, b) -> Format.fprintf ppf "or %s, %s, %s" (r d) (r a) (r b)
  | Xor (d, a, b) -> Format.fprintf ppf "xor %s, %s, %s" (r d) (r a) (r b)
  | Andi (d, a, v) -> Format.fprintf ppf "andi %s, %s, %Ld" (r d) (r a) v
  | Ori (d, a, v) -> Format.fprintf ppf "ori %s, %s, %Ld" (r d) (r a) v
  | Xori (d, a, v) -> Format.fprintf ppf "xori %s, %s, %Ld" (r d) (r a) v
  | Slli (d, a, k) -> Format.fprintf ppf "slli %s, %s, %d" (r d) (r a) k
  | Srli (d, a, k) -> Format.fprintf ppf "srli %s, %s, %d" (r d) (r a) k
  | Srai (d, a, k) -> Format.fprintf ppf "srai %s, %s, %d" (r d) (r a) k
  | Sll (d, a, b) -> Format.fprintf ppf "sll %s, %s, %s" (r d) (r a) (r b)
  | Srl (d, a, b) -> Format.fprintf ppf "srl %s, %s, %s" (r d) (r a) (r b)
  | Sra (d, a, b) -> Format.fprintf ppf "sra %s, %s, %s" (r d) (r a) (r b)
  | Ld (d, imm, b) -> Format.fprintf ppf "ld %s, %Ld(%s)" (r d) imm (r b)
  | Sd (s, imm, b) -> Format.fprintf ppf "sd %s, %Ld(%s)" (r s) imm (r b)
  | Beq (a, b, t) -> Format.fprintf ppf "beq %s, %s, L%d" (r a) (r b) t
  | Bne (a, b, t) -> Format.fprintf ppf "bne %s, %s, L%d" (r a) (r b) t
  | Blt (a, b, t) -> Format.fprintf ppf "blt %s, %s, L%d" (r a) (r b) t
  | Bge (a, b, t) -> Format.fprintf ppf "bge %s, %s, L%d" (r a) (r b) t
  | Bltu (a, b, t) -> Format.fprintf ppf "bltu %s, %s, L%d" (r a) (r b) t
  | Bgeu (a, b, t) -> Format.fprintf ppf "bgeu %s, %s, L%d" (r a) (r b) t
  | Jal (d, t) -> Format.fprintf ppf "jal %s, L%d" (r d) t
  | Nop -> Format.pp_print_string ppf "nop"

let pp_program ppf program =
  let targets = Array.to_list program |> List.filter_map branch_target in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i instr ->
      if List.mem i targets then Format.fprintf ppf "L%d:@," i;
      Format.fprintf ppf "  %a@," pp_instr instr)
    program;
  if List.mem (Array.length program) targets then
    Format.fprintf ppf "L%d:@," (Array.length program);
  Format.fprintf ppf "@]"
