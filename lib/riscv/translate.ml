module Arm = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine

let map_reg r =
  if r = 0 then invalid_arg "Riscv.Translate.map_reg: x0 has no target register"
  else Reg.x (r - 1)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* Operand for an RV64 source register: the zero register reads as an
   immediate. *)
let operand r = if r = 0 then Arm.Imm 0L else Arm.Reg (map_reg r)

(* [targets] is filled in by the second pass; during the first pass the
   RV64 index is kept and patched later. *)
let alu_rrr ~mk d a b =
  if d = 0 then [ Arm.Nop ]
  else
    let d' = map_reg d in
    match (a, b) with
    | 0, 0 -> [ Arm.Mov (d', Arm.Imm 0L) ]
    | _ -> mk d' a b

let rec translate_instr pc (instr : Ast.instr) : Arm.instr list =
  match instr with
  | Ast.Nop -> [ Arm.Nop ]
  | Ast.Addi (d, a, v) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm v) ]
    else [ Arm.Add (map_reg d, map_reg a, Arm.Imm v) ]
  | Ast.Add (d, a, b) ->
    alu_rrr d a b ~mk:(fun d' a b ->
        match (a, b) with
        | 0, b -> [ Arm.Mov (d', Arm.Reg (map_reg b)) ]
        | a, 0 -> [ Arm.Mov (d', Arm.Reg (map_reg a)) ]
        | a, b -> [ Arm.Add (d', map_reg a, Arm.Reg (map_reg b)) ])
  | Ast.Sub (d, a, b) ->
    alu_rrr d a b ~mk:(fun d' a b ->
        match (a, b) with
        | a, 0 -> [ Arm.Mov (d', Arm.Reg (map_reg a)) ]
        | 0, b ->
          if d = b then
            unsupported "instruction %d: sub %s, x0, %s (in-place negation)" pc
              (Ast.reg_name d) (Ast.reg_name b)
          else
            [ Arm.Mov (d', Arm.Imm 0L); Arm.Sub (d', d', Arm.Reg (map_reg b)) ]
        | a, b -> [ Arm.Sub (d', map_reg a, Arm.Reg (map_reg b)) ])
  | Ast.And_ (d, a, b) ->
    alu_rrr d a b ~mk:(fun d' a b ->
        if a = 0 || b = 0 then [ Arm.Mov (d', Arm.Imm 0L) ]
        else [ Arm.And_ (d', map_reg a, Arm.Reg (map_reg b)) ])
  | Ast.Or_ (d, a, b) ->
    alu_rrr d a b ~mk:(fun d' a b ->
        match (a, b) with
        | 0, r | r, 0 -> [ Arm.Mov (d', Arm.Reg (map_reg r)) ]
        | a, b -> [ Arm.Orr (d', map_reg a, Arm.Reg (map_reg b)) ])
  | Ast.Xor (d, a, b) ->
    alu_rrr d a b ~mk:(fun d' a b ->
        match (a, b) with
        | 0, r | r, 0 -> [ Arm.Mov (d', Arm.Reg (map_reg r)) ]
        | a, b -> [ Arm.Eor (d', map_reg a, Arm.Reg (map_reg b)) ])
  | Ast.Andi (d, a, v) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm 0L) ]
    else [ Arm.And_ (map_reg d, map_reg a, Arm.Imm v) ]
  | Ast.Ori (d, a, v) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm v) ]
    else [ Arm.Orr (map_reg d, map_reg a, Arm.Imm v) ]
  | Ast.Xori (d, a, v) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm v) ]
    else [ Arm.Eor (map_reg d, map_reg a, Arm.Imm v) ]
  | Ast.Slli (d, a, k) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm 0L) ]
    else [ Arm.Lsl (map_reg d, map_reg a, Arm.Imm (Int64.of_int k)) ]
  | Ast.Srli (d, a, k) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm 0L) ]
    else [ Arm.Lsr (map_reg d, map_reg a, Arm.Imm (Int64.of_int k)) ]
  | Ast.Srai (d, a, k) ->
    if d = 0 then [ Arm.Nop ]
    else if a = 0 then [ Arm.Mov (map_reg d, Arm.Imm 0L) ]
    else [ Arm.Asr (map_reg d, map_reg a, Arm.Imm (Int64.of_int k)) ]
  | Ast.Sll (_, _, _) | Ast.Srl (_, _, _) | Ast.Sra (_, _, _) ->
    (* The target subset's register-amount shifts yield 0 for amounts >=
       64 where RV64 masks the amount to its low 6 bits — no faithful
       image without scratch registers. *)
    unsupported "instruction %d: register-amount shift (6-bit amount masking)" pc
  | Ast.Ld (d, imm, b) ->
    if d = 0 then unsupported "instruction %d: load to x0 needs a scratch register" pc
    else if b = 0 then unsupported "instruction %d: x0-based addressing" pc
    else [ Arm.Ldr (map_reg d, { Arm.base = map_reg b; offset = Arm.Imm imm; scale = 0 }) ]
  | Ast.Sd (src, imm, b) ->
    if src = 0 then unsupported "instruction %d: store of x0 needs a scratch register" pc
    else if b = 0 then unsupported "instruction %d: x0-based addressing" pc
    else
      [ Arm.Str (map_reg src, { Arm.base = map_reg b; offset = Arm.Imm imm; scale = 0 }) ]
  | Ast.Beq (a, b, t) -> branch pc Arm.Eq a b t
  | Ast.Bne (a, b, t) -> branch pc Arm.Ne a b t
  | Ast.Blt (a, b, t) -> branch pc Arm.Lt a b t
  | Ast.Bge (a, b, t) -> branch pc Arm.Ge a b t
  | Ast.Bltu (a, b, t) -> branch pc Arm.Lo a b t
  | Ast.Bgeu (a, b, t) -> branch pc Arm.Hs a b t
  | Ast.Jal (d, t) ->
    if d = 0 then [ Arm.B t ]
    else unsupported "instruction %d: linking jal" pc

(* RV64 branches compare two registers; the target ISA compares a
   register with an operand.  With [a = x0] the comparison is mirrored. *)
and branch pc cond a b t =
  let mirror = function
    | Arm.Eq -> Arm.Eq
    | Arm.Ne -> Arm.Ne
    | Arm.Lt -> Arm.Gt
    | Arm.Ge -> Arm.Le
    | Arm.Lo -> Arm.Hi
    | Arm.Hs -> Arm.Ls
    | c -> c
  in
  match (a, b) with
  | 0, 0 ->
    (* Constant condition on 0 ? 0. *)
    let taken =
      match cond with
      | Arm.Eq | Arm.Ge | Arm.Hs -> true
      | Arm.Ne | Arm.Lt | Arm.Lo -> false
      | _ -> unsupported "instruction %d: unexpected condition" pc
    in
    if taken then [ Arm.B t ] else [ Arm.Nop ]
  | 0, b -> [ Arm.Cmp (map_reg b, Arm.Imm 0L); Arm.B_cond (mirror cond, t) ]
  | a, b -> [ Arm.Cmp (map_reg a, operand b); Arm.B_cond (cond, t) ]

let translate program =
  match Ast.validate program with
  | Error msg -> Error ("invalid RV64 program: " ^ msg)
  | Ok () -> (
    try
      let len = Array.length program in
      (* First pass: per-instruction translations with guest-index branch
         targets, and the guest->target index map. *)
      let chunks = Array.mapi translate_instr program in
      let offsets = Array.make (len + 1) 0 in
      Array.iteri (fun i chunk -> offsets.(i + 1) <- offsets.(i) + List.length chunk) chunks;
      (* Second pass: patch branch targets through the offset map. *)
      let patch = function
        | Arm.B t -> Arm.B offsets.(t)
        | Arm.B_cond (c, t) -> Arm.B_cond (c, offsets.(t))
        | instr -> instr
      in
      Ok (Array.of_list (List.concat_map (List.map patch) (Array.to_list chunks)))
    with Unsupported msg -> Error msg)

let machine_of_state (s : Semantics.state) =
  let m = Machine.create () in
  for r = 1 to 31 do
    Machine.set_reg m (map_reg r) (Semantics.get_reg s r)
  done;
  List.iter (fun (a, v) -> Machine.store m a v) (Semantics.mem_bindings s);
  m

let states_agree (s : Semantics.state) (m : Machine.t) =
  let regs_ok =
    List.for_all
      (fun r -> Int64.equal (Semantics.get_reg s r) (Machine.get_reg m (map_reg r)))
      (List.init 31 (fun i -> i + 1))
  in
  let mem_of bindings =
    List.filter (fun (_, v) -> not (Int64.equal v 0L)) bindings
  in
  regs_ok && mem_of (Semantics.mem_bindings s) = mem_of (Machine.mem_bindings m)
