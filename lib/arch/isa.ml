type t = Aarch64 | Riscv

let all = [ Aarch64; Riscv ]
let equal = ( = )
let to_string = function Aarch64 -> "aarch64" | Riscv -> "riscv"

let of_string = function
  | "aarch64" -> Ok Aarch64
  | "riscv" -> Ok Riscv
  | other ->
    Error (Printf.sprintf "unknown isa %s (expected one of: aarch64, riscv)" other)

let pp ppf t = Format.pp_print_string ppf (to_string t)

type program =
  | Aarch64_program of Scamv_isa.Ast.program
  | Riscv_program of Scamv_riscv.Ast.program

let of_program = function Aarch64_program _ -> Aarch64 | Riscv_program _ -> Riscv

let program_length = function
  | Aarch64_program p -> Array.length p
  | Riscv_program p -> Array.length p

let validate_program = function
  | Aarch64_program p -> Scamv_isa.Ast.validate p
  | Riscv_program p -> Scamv_riscv.Ast.validate p

let pp_program ppf = function
  | Aarch64_program p -> Scamv_isa.Ast.pp_program ppf p
  | Riscv_program p -> Scamv_riscv.Ast.pp_program ppf p

let program_to_string p = Format.asprintf "%a" pp_program p
