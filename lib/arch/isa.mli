(** The guest instruction sets campaigns can run on, as a runtime value.

    The static side of multi-architecture support is
    {!Scamv_bir.Arch.t}, a descriptor indexed by the instruction type;
    this module is the dynamic side: the tag threaded through campaign
    configuration, journals and the CLI ([--isa aarch64|riscv]), and the
    sum of guest programs a generated test victim can be. *)

type t = Aarch64 | Riscv

val all : t list
val equal : t -> t -> bool
val to_string : t -> string

val of_string : string -> (t, string) result
(** ["aarch64" | "riscv"]; the error message lists the valid names. *)

val pp : Format.formatter -> t -> unit

type program =
  | Aarch64_program of Scamv_isa.Ast.program
  | Riscv_program of Scamv_riscv.Ast.program

val of_program : program -> t
val program_length : program -> int
val validate_program : program -> (unit, string) result
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
