(** Validation setups: a model under validation [M1], an optional refined
    model [M2] for search guidance, and optional supporting models for
    coverage (Sec. 3).

    A setup instruments a program *once*, with tags distinguishing
    [M1]-observations ([Base]), [M2]-exclusive observations ([Refined])
    and coverage observations — the optimized single-symbolic-execution
    pipeline of Sec. 5.1 (the Projection Assumption holds by
    construction: projecting away non-[Base] observations recovers the
    [M1]-instrumented program). *)

type t = {
  name : string;  (** e.g. ["Mct vs Mspec"] *)
  base_name : string;
  refined_name : string option;
  coverage_names : string list;
  hooks : Scamv_bir.Lifter.hooks;  (** combined, already tagged *)
  spec : Speculation.config option;  (** combined speculative instrumentation *)
}

val annotate_arch : t -> 'i Scamv_bir.Arch.t -> 'i array -> Scamv_bir.Program.t
(** Lift with the setup's (and the platform's) observation hooks and apply
    the speculative instrumentation, for any described architecture. *)

val annotate : t -> Scamv_isa.Ast.program -> Scamv_bir.Program.t
(** [annotate_arch] at {!Scamv_bir.Arch.aarch64}. *)

val has_refinement : t -> bool

val unguided : ?coverage:Model.t list -> Model.t -> t
(** Validate [M1] without guidance: only [Base] (and coverage)
    observations; test cases are enumerated from the plain equivalence
    relation. *)

val refine_with_model :
  ?coverage:Model.t list -> base:Model.t -> refined:Model.t -> unit -> t
(** Guide validation of [base] by a refined model whose hooks are
    *disjoint additions* to the base model (e.g. [Mpart] vs [Mpart']).
    The refined model's hooks are tagged [Refined]. *)

val refine_with_spec :
  ?coverage:Model.t list ->
  base:Model.t ->
  name:string ->
  Speculation.config ->
  t
(** Guide validation of [base] by speculative observations (e.g. [Mct] vs
    [Mspec]); the configuration's [load_tag] already carries the tags, so
    [Mspec1] vs [Mspec] is expressed with
    [load_tag 0 = Some Base, load_tag i = Some Refined]. *)

(** {1 The paper's experiment setups} *)

val mpart_vs_mpart' :
  ?line_coverage:bool -> Scamv_isa.Platform.t -> Region.t -> t

val mpart_unguided : Scamv_isa.Platform.t -> Region.t -> t

val mct_unguided : t

val mct_vs_mspec : ?window:int -> unit -> t

val mspec1_vs_mspec : ?window:int -> unit -> t
(** [M1 = Mspec1] (first transient load is part of the validated model),
    refined by the full [Mspec]. *)

val mct_vs_mspec_straight_line : ?window:int -> unit -> t

(** {1 TLB-channel setups (the "new channel" extension of Sec. 2.3)} *)

val mpage_unguided : Scamv_isa.Platform.t -> t
(** Validate the page-granular model against whatever attacker view the
    executor is configured with. *)

val mpage_vs_mline : Scamv_isa.Platform.t -> t
(** Guide validation of [Mpage] by [Mline]: states touching the same
    pages but different cache sets — exactly the pairs that separate the
    TLB channel (indistinguishable) from the cache channel
    (distinguishable). *)
