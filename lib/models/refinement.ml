module Obs = Scamv_bir.Obs
module Arch = Scamv_bir.Arch
module Lifter = Scamv_bir.Lifter
module Program = Scamv_bir.Program

type t = {
  name : string;
  base_name : string;
  refined_name : string option;
  coverage_names : string list;
  hooks : Lifter.hooks;
  spec : Speculation.config option;
}

(* Every accessed address must lie in the platform's experiment memory
   region; the marker observations are turned into range constraints by
   relation synthesis. *)
let platform_hooks =
  let obs ~pc:_ ~addr = [ Obs.make ~tag:Obs.Platform ~kind:"platform_addr" [ addr ] ] in
  { Lifter.no_hooks with Lifter.on_load = obs; on_store = obs }

let annotate_arch t arch program =
  let hooks = Model.merge_hooks [ t.hooks; platform_hooks ] in
  let bir = Lifter.lift_arch ~hooks arch program in
  match t.spec with
  | None -> bir
  | Some spec -> Speculation.instrument_arch spec arch program bir

let annotate t program = annotate_arch t Arch.aarch64 program

let has_refinement t = Option.is_some t.refined_name

let coverage_hooks coverage =
  List.map (fun (m : Model.t) -> m.Model.hooks ~tag:Obs.Coverage) coverage

let coverage_names coverage = List.map (fun (m : Model.t) -> m.Model.name) coverage

let unguided ?(coverage = []) (model : Model.t) =
  {
    name = model.Model.name ^ " unguided";
    base_name = model.Model.name;
    refined_name = None;
    coverage_names = coverage_names coverage;
    hooks =
      Model.merge_hooks (model.Model.hooks ~tag:Obs.Base :: coverage_hooks coverage);
    spec = Option.map (fun s -> s ~tag:Obs.Base) model.Model.spec;
  }

let refine_with_model ?(coverage = []) ~(base : Model.t) ~(refined : Model.t) () =
  if Option.is_some refined.Model.spec then
    invalid_arg
      "Refinement.refine_with_model: refined model is speculative; use refine_with_spec";
  {
    name = Printf.sprintf "%s vs %s" base.Model.name refined.Model.name;
    base_name = base.Model.name;
    refined_name = Some refined.Model.name;
    coverage_names = coverage_names coverage;
    hooks =
      Model.merge_hooks
        (base.Model.hooks ~tag:Obs.Base
        :: refined.Model.hooks ~tag:Obs.Refined
        :: coverage_hooks coverage);
    spec = Option.map (fun s -> s ~tag:Obs.Base) base.Model.spec;
  }

let refine_with_spec ?(coverage = []) ~(base : Model.t) ~name spec =
  if Option.is_some base.Model.spec then
    invalid_arg
      "Refinement.refine_with_spec: base speculation must be folded into the config";
  {
    name;
    base_name = base.Model.name;
    refined_name = Some "Mspec";
    coverage_names = coverage_names coverage;
    hooks =
      Model.merge_hooks (base.Model.hooks ~tag:Obs.Base :: coverage_hooks coverage);
    spec = Some spec;
  }

(* ---- The paper's setups ---- *)

let mpart_vs_mpart' ?(line_coverage = true) platform region =
  let coverage = if line_coverage then [ Catalog.mline platform ] else [] in
  refine_with_model ~coverage ~base:(Catalog.mpart platform region)
    ~refined:(Catalog.mpart_refined platform region) ()

let mpart_unguided platform region = unguided (Catalog.mpart platform region)

let mct_unguided = unguided Catalog.mct

let mct_vs_mspec ?window () =
  refine_with_spec ~base:Catalog.mct ~name:"Mct vs Mspec" (Speculation.mspec ?window ())

let mspec1_vs_mspec ?window () =
  refine_with_spec ~base:Catalog.mct ~name:"Mspec1 vs Mspec"
    (Speculation.mspec1 ?window ())

let mct_vs_mspec_straight_line ?window () =
  refine_with_spec ~base:Catalog.mct ~name:"Mct vs Mspec' (straight-line)"
    (Speculation.mspec_straight_line ?window ())

let mpage_unguided platform = unguided (Catalog.mpage platform)

let mpage_vs_mline platform =
  refine_with_model ~base:(Catalog.mpage platform) ~refined:(Catalog.mline platform) ()
