module Term = Scamv_smt.Term
module Sort = Scamv_smt.Sort
module Arch = Scamv_bir.Arch
module Obs = Scamv_bir.Obs
module Program = Scamv_bir.Program
module Vars = Scamv_bir.Vars
module String_map = Map.Make (String)

type config = {
  max_instrs : int;
  load_tag : int -> Obs.tag option;
  instrument_uncond : bool;
}

let mspec ?(window = 8) () =
  { max_instrs = window; load_tag = (fun _ -> Some Obs.Refined); instrument_uncond = false }

let mspec1 ?(window = 8) () =
  {
    max_instrs = window;
    load_tag = (fun i -> Some (if i = 0 then Obs.Base else Obs.Refined));
    instrument_uncond = false;
  }

let mspec_straight_line ?(window = 8) () =
  { max_instrs = window; load_tag = (fun _ -> Some Obs.Refined); instrument_uncond = true }

let spec_load_kind = "spec_load"

(* Straight-line wrong-path slice starting at [from_pc], as the arch
   descriptor's per-instruction lowerings: stop at program end, at any
   branch, at the join point [stop_at], or at the window bound. *)
let collect_wrong_path arch program ~from_pc ~stop_at ~max_instrs =
  let len = Array.length program in
  let rec go pc n acc =
    if n >= max_instrs || pc >= len || pc = stop_at then List.rev acc
    else
      let lifted = arch.Arch.lift_instr ~pc program.(pc) in
      if Arch.is_branch lifted then List.rev acc else go (pc + 1) (n + 1) (lifted :: acc)
  in
  go from_pc 0 []

(* Turn a wrong-path slice into shadow statements.  The renaming map
   sends canonical variable names to their current shadow name once
   written; unwritten variables still read the architectural state, which
   is exactly the transient-copy semantics of Fig. 4. *)
let shadow_stmts config slice =
  let var_of_sort name = function
    | Sort.Bv w -> Term.bv_var name w
    | Sort.Bool -> Term.bool_var name
    | Sort.Mem -> Term.mem_var name
  in
  let apply_renaming renaming term =
    Term.subst
      (fun name sort ->
        match String_map.find_opt name renaming with
        | None -> None
        | Some name' -> Some (var_of_sort name' sort))
      term
  in
  let step (renaming, load_index, stmts_rev) (lifted : Arch.lifted) =
    let observation =
      match lifted.Arch.access with
      | Arch.Load addr -> (
        match config.load_tag load_index with
        | None -> []
        | Some tag ->
          let addr_term = apply_renaming renaming addr in
          [ Program.Observe (Obs.make ~tag ~kind:spec_load_kind [ addr_term ]) ])
      | Arch.Store _ | Arch.No_access -> []
    in
    let renaming, assign_stmts_rev =
      List.fold_left
        (fun (renaming, acc) (x, e) ->
          let e' = apply_renaming renaming e in
          let x' = Vars.shadow x in
          (String_map.add x x' renaming, Program.Assign (x', e') :: acc))
        (renaming, []) lifted.Arch.assigns
    in
    let load_index = if Arch.is_load lifted then load_index + 1 else load_index in
    (renaming, load_index, List.rev_append assign_stmts_rev (List.rev_append observation stmts_rev))
  in
  let _, _, stmts_rev = List.fold_left step (String_map.empty, 0, []) slice in
  List.rev stmts_rev

let instrument_arch config arch isa_program bir =
  let len = Array.length isa_program in
  let next_id = ref (Program.fresh_id bir) in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let stubs = ref [] in
  (* Returns the id the edge should point to: either the original
     successor or a new stub block carrying the shadow statements. *)
  let edge_with_shadow ~succ ~wrong_path_start ~stop_at =
    let slice =
      collect_wrong_path arch isa_program ~from_pc:wrong_path_start ~stop_at
        ~max_instrs:config.max_instrs
    in
    match shadow_stmts config slice with
    | [] -> succ
    | stmts ->
      let id = fresh () in
      stubs := { Program.id; stmts; term = Program.Jmp succ } :: !stubs;
      id
  in
  let rewire (b : Program.block) =
    if b.id >= len then b
    else
      let lifted = arch.Arch.lift_instr ~pc:b.id isa_program.(b.id) in
      match (lifted.Arch.control, b.term) with
      | Arch.Cond_jump (_, target), Program.Cjmp (c, then_id, else_id) ->
        (* On the taken edge the CPU mispredicted "not taken" and runs the
           fall-through arm transiently, and vice versa. *)
        let taken_edge =
          edge_with_shadow ~succ:then_id ~wrong_path_start:(b.id + 1)
            ~stop_at:(min target len)
        in
        let fall_edge =
          edge_with_shadow ~succ:else_id ~wrong_path_start:(min target len)
            ~stop_at:(b.id + 1)
        in
        { b with term = Program.Cjmp (c, taken_edge, fall_edge) }
      | Arch.Jump _, Program.Jmp succ when config.instrument_uncond ->
        (* Straight-line speculation: the wrong path is the code textually
           after the unconditional branch. *)
        let edge =
          edge_with_shadow ~succ ~wrong_path_start:(b.id + 1) ~stop_at:(-1)
        in
        { b with term = Program.Jmp edge }
      | _ -> b
  in
  let rewired = Program.map_blocks rewire bir in
  Program.add_blocks !stubs rewired

let instrument config isa_program bir = instrument_arch config Arch.aarch64 isa_program bir
