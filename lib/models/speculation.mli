(** Speculative observation instrumentation (Sec. 4.2.2, Fig. 4).

    For every conditional branch, the statements of each branch arm are
    inlined as *shadow statements* at the start of the opposite arm:
    shadow statements operate on shadow variables (a transient copy of the
    state at prediction time) and emit observations for the memory loads
    the CPU could issue while running the wrong path.  Shadow statements
    never modify architectural variables, so the instrumented program is
    observationally transparent to the non-speculative models.

    The transformation is performed by inserting stub blocks on the branch
    edges, so a join block shared with other paths never receives foreign
    shadow code.

    Variants of the paper are expressed through {!config}:
    - [Mspec]  : [load_tag i = Some Refined] for all [i];
    - [Mspec1] : first transient load [Base] (part of the model under
      validation), the rest [Refined];
    - [Mspec'] : [instrument_uncond = true], turning unconditional direct
      branches into tautological conditionals (straight-line
      speculation). *)

type config = {
  max_instrs : int;
      (** transient window: how many wrong-path instructions are inlined *)
  load_tag : int -> Scamv_bir.Obs.tag option;
      (** observation tag for the [i]-th (0-based) transient load of an
          arm; [None] leaves the load unobserved (it still updates the
          shadow state) *)
  instrument_uncond : bool;
      (** also instrument unconditional direct branches (straight-line
          speculation, Sec. 6.5) *)
}

val mspec : ?window:int -> unit -> config
val mspec1 : ?window:int -> unit -> config
val mspec_straight_line : ?window:int -> unit -> config

val spec_load_kind : string
(** The [Obs.kind] used for transient load observations. *)

val instrument_arch :
  config ->
  'i Scamv_bir.Arch.t ->
  'i array ->
  Scamv_bir.Program.t ->
  Scamv_bir.Program.t
(** [instrument_arch cfg arch isa bir] adds shadow stub blocks to the
    lifted [bir] of [isa].  Block ids of [bir] must equal instruction
    indexes (as produced by {!Scamv_bir.Lifter.lift_arch}); the wrong-path
    slices and their shadow assignments come from [arch]'s
    per-instruction lowering, so any described architecture gets the
    transient semantics for free. *)

val instrument :
  config -> Scamv_isa.Ast.program -> Scamv_bir.Program.t -> Scamv_bir.Program.t
(** [instrument_arch] at {!Scamv_bir.Arch.aarch64}. *)
