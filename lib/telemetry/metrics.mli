(** Pure metrics registry: counters, gauges and log2-bucketed histograms
    keyed by name.

    Everything here is value-semantic.  Worker domains accumulate their
    own registries (through {!Collector}) and the campaign consumer folds
    them together in program order with {!merge}, which is {e associative}
    and has {!empty} as identity — the same algebra as
    [Scamv.Stats.merge].  That law is what keeps campaign telemetry
    byte-identical across [--jobs] levels under a frozen clock, and it is
    checked by [test/test_telemetry.ml]. *)

type hist = {
  counts : int array;  (** per-bucket observation counts, length {!bucket_count} *)
  count : int;  (** total observations *)
  sum : float;  (** sum of observed values *)
}

type value = Counter of int | Gauge of float | Histogram of hist

type t

val empty : t
(** Identity of {!merge}. *)

val bucket_count : int
(** Number of histogram buckets (64). *)

val bucket_of : float -> int
(** Deterministic log2 bucket index of a value: non-positive and
    non-finite values go to bucket 0; a positive [v] with
    [frexp v = (_, e)] (so [v] in [[2^(e-1), 2^e)]) goes to bucket
    [clamp (e + 21) 1 63].  Exposed for the exporter and the law tests. *)

val bucket_upper_bound : int -> float
(** Exclusive upper bound [2^(b-21)] of bucket [b]; bucket 63 is
    unbounded (the exporter labels it [+Inf]). *)

val add : string -> int -> t -> t
(** Add to a counter (created at 0). *)

val incr : string -> t -> t
(** [add name 1]. *)

val set_gauge : string -> float -> t -> t
(** Set a gauge.  Merging is right-biased: the later (program-order)
    write wins, which keeps the merge associative. *)

val observe : string -> float -> t -> t
(** Record one observation into a histogram. *)

val observe_n : string -> float -> int -> t -> t
(** [observe_n name x n] records [n] observations of the same value [x]
    in one step (one bucket increment, [sum += n*x]) — equivalent to [n]
    calls to {!observe} but O(1) in [n].  [n <= 0] is a no-op.  Used to
    flush locally-accumulated histograms such as the SAT solver's
    per-query LBD counts. *)

val merge : t -> t -> t
(** Pointwise merge: counters add, histograms add bucket-wise, gauges take
    the right operand.  Associative, with {!empty} as two-sided identity.
    @raise Invalid_argument if a name is used at two different kinds. *)

val counter : t -> string -> int
(** Value of a counter, [0] when absent. *)

val gauge : t -> string -> float option
val histogram : t -> string -> hist option

val histogram_sum : t -> string -> float
(** Sum of a histogram's observations, [0.] when absent — the campaign
    phase totals the benchmark harness reads. *)

val histogram_n : t -> string -> int

val to_list : t -> (string * value) list
(** All metrics sorted by name (deterministic exporter order). *)

val is_empty : t -> bool
