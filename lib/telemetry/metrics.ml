(* Pure metrics registry: a map from metric name to counter, gauge or
   log2-bucketed histogram.  The whole module is value-semantic so that
   per-program registries produced on worker domains can be merged in
   program order — [merge] is associative with [empty] as identity, the
   same law {!Scamv.Stats.merge} obeys, which is what makes campaign
   telemetry independent of the [--jobs] level. *)

module M = Map.Make (String)

let bucket_count = 64

(* Log2 bucketing: non-positive (and non-finite) values land in bucket 0;
   a positive value v with frexp exponent e (v in [2^(e-1), 2^e)) lands in
   bucket clamp(e + 21, 1, 63).  The +21 offset puts sub-microsecond
   durations in the lowest buckets, so one histogram type serves both
   second-valued phase timings and integer-valued work counts. *)
let bucket_of v =
  if (not (Float.is_finite v)) || v <= 0.0 then 0
  else begin
    let _, e = Float.frexp v in
    let b = e + 21 in
    if b < 1 then 1 else if b > bucket_count - 1 then bucket_count - 1 else b
  end

(* Upper bound of bucket [b] (inclusive-exclusive boundary), used by the
   Prometheus exporter's [le] labels.  Bucket 63 is unbounded. *)
let bucket_upper_bound b = Float.ldexp 1.0 (b - 21)

type hist = { counts : int array; count : int; sum : float }

let hist_empty = { counts = Array.make bucket_count 0; count = 0; sum = 0.0 }

(* Bulk observation: [n] identical values land in one bucket with one
   array copy, so callers flushing a local histogram (e.g. the SAT
   solver's per-query LBD counts) pay O(buckets) per flush instead of
   O(buckets * observations). *)
let hist_observe_n h v n =
  let counts = Array.copy h.counts in
  let b = bucket_of v in
  counts.(b) <- counts.(b) + n;
  { counts; count = h.count + n; sum = h.sum +. (v *. float_of_int n) }


let hist_merge a b =
  {
    counts = Array.init bucket_count (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
  }

type value = Counter of int | Gauge of float | Histogram of hist

type t = value M.t

let empty = M.empty

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let kind_error name a b =
  invalid_arg
    (Printf.sprintf "Metrics: %s used both as %s and as %s" name (kind_name a)
       (kind_name b))

let add name n t =
  M.update name
    (function
      | None -> Some (Counter n)
      | Some (Counter c) -> Some (Counter (c + n))
      | Some v -> kind_error name (Counter n) v)
    t

let incr name t = add name 1 t

let set_gauge name x t =
  M.update name
    (function
      | None | Some (Gauge _) -> Some (Gauge x)
      | Some v -> kind_error name (Gauge x) v)
    t

let observe_n name x n t =
  if n <= 0 then t
  else
    M.update name
      (function
        | None -> Some (Histogram (hist_observe_n hist_empty x n))
        | Some (Histogram h) -> Some (Histogram (hist_observe_n h x n))
        | Some v -> kind_error name (Histogram hist_empty) v)
      t

let observe name x t = observe_n name x 1 t

(* Gauges are merged right-biased ("later run wins"), which is associative
   and respects the identity law because an absent key never overrides. *)
let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y -> Histogram (hist_merge x y)
  | _ -> kind_error name a b

let merge a b = M.union (fun name x y -> Some (merge_value name x y)) a b

let counter t name =
  match M.find_opt name t with Some (Counter c) -> c | _ -> 0

let gauge t name =
  match M.find_opt name t with Some (Gauge x) -> Some x | _ -> None

let histogram t name =
  match M.find_opt name t with Some (Histogram h) -> Some h | _ -> None

let histogram_sum t name =
  match histogram t name with Some h -> h.sum | None -> 0.0

let histogram_n t name =
  match histogram t name with Some h -> h.count | None -> 0

let to_list t = M.bindings t

let is_empty = M.is_empty
