(* Exporters for telemetry reports.

   Both exporters are deterministic functions of the report: metrics are
   emitted in name order and spans in their (program-ordered) completion
   order, with no wall-clock or environment inputs.  Under the frozen
   clock the same campaign therefore produces byte-identical trace and
   metrics files at every [--jobs] level — the property the acceptance
   test locks in. *)

module Json = Scamv_util.Json
module Text_table = Scamv_util.Text_table

(* Deterministic float rendering shared by both exporters: integers print
   without a fractional part, everything else round-trips via %.17g. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* ---- Chrome trace-event JSON ---- *)

let span_event (s : Collector.span) =
  let args =
    ("depth", Json.Str (string_of_int s.depth))
    :: List.map (fun (k, v) -> (k, Json.Str v)) s.args
  in
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("ph", Json.Str "X");
      ("ts", Json.Num (s.start_s *. 1e6));
      ("dur", Json.Num (s.duration_s *. 1e6));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int s.track));
      ("args", Json.Obj args);
    ]

let trace_json (r : Collector.report) =
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (List.map span_event r.spans));
    ]

let trace_string r = Json.to_string ~pretty:true (trace_json r)

(* ---- Prometheus text exposition ---- *)

let mangle name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  "scamv_" ^ Bytes.to_string b

let prometheus (m : Metrics.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, value) ->
      let p = mangle name in
      match value with
      | Metrics.Counter c ->
        line "# TYPE %s counter" p;
        line "%s %d" p c
      | Metrics.Gauge g ->
        line "# TYPE %s gauge" p;
        line "%s %s" p (float_str g)
      | Metrics.Histogram h ->
        line "# TYPE %s histogram" p;
        (* Cumulative buckets; only boundaries that hold observations are
           emitted (plus the mandatory +Inf), which keeps the dump compact
           while remaining a pure function of the data. *)
        let cum = ref 0 in
        Array.iteri
          (fun b n ->
            cum := !cum + n;
            if n > 0 && b < Metrics.bucket_count - 1 then
              line "%s_bucket{le=\"%s\"} %d" p
                (float_str (Metrics.bucket_upper_bound b))
                !cum)
          h.Metrics.counts;
        line "%s_bucket{le=\"+Inf\"} %d" p h.Metrics.count;
        line "%s_sum %s" p (float_str h.Metrics.sum);
        line "%s_count %d" p h.Metrics.count)
    (Metrics.to_list m);
  Buffer.contents buf

(* ---- end-of-run text summary ---- *)

let summary_rows (m : Metrics.t) =
  List.map
    (fun (name, value) ->
      match value with
      | Metrics.Counter c -> [ name; "counter"; string_of_int c ]
      | Metrics.Gauge g -> [ name; "gauge"; float_str g ]
      | Metrics.Histogram h ->
        [
          name;
          "histogram";
          Printf.sprintf "n=%d sum=%s" h.Metrics.count (float_str h.Metrics.sum);
        ])
    (Metrics.to_list m)

let summary_table m =
  Text_table.render ~header:[ "metric"; "kind"; "value" ] ~rows:(summary_rows m)

let to_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
