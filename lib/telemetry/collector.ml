(* Per-domain telemetry collector.

   A collector is a mutable buffer — a metrics registry plus a list of
   completed spans — confined to the domain that created it.  Campaign
   workers create one collector per program, install it as the domain's
   *current* collector for the duration of that program's pipeline
   (instrumented code throughout the tree records into whatever collector
   is current, or does nothing when none is), and return its frozen
   {!report}.  The consumer merges reports strictly in program order, so
   the merged registry and span stream compose with
   [Scamv_util.Pool.run_ordered] and do not depend on the number of
   worker domains.

   All timestamps come from the collector's injectable
   [Scamv_util.Stopwatch.clock]; under [Stopwatch.frozen] every span has
   start 0 and duration 0, which makes exported telemetry byte-identical
   across runs and across [--jobs] levels. *)

module Stopwatch = Scamv_util.Stopwatch

type span = {
  name : string;
  track : int;  (* logical lane (program index), not the OS domain *)
  depth : int;  (* nesting depth at the time the span opened *)
  start_s : float;  (* clock value when the span opened *)
  duration_s : float;
  args : (string * string) list;
}

type t = {
  clock : Stopwatch.clock;
  track : int;
  mutable metrics : Metrics.t;
  mutable spans_rev : span list;
  mutable depth : int;
}

let create ?(clock = Stopwatch.wall) ?(track = 0) () =
  { clock; track; metrics = Metrics.empty; spans_rev = []; depth = 0 }

type report = { metrics : Metrics.t; spans : span list }

let empty_report = { metrics = Metrics.empty; spans = [] }

let report (c : t) = { metrics = c.metrics; spans = List.rev c.spans_rev }

let merge_reports a b =
  { metrics = Metrics.merge a.metrics b.metrics; spans = a.spans @ b.spans }

(* ---- ambient (domain-local) current collector ---- *)

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let with_current c f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

(* Recording into the current collector is the hot-path entry point used
   by the instrumented layers; with no collector installed each call is a
   domain-local read and a match — cheap enough to leave compiled in
   unconditionally. *)

let add name n =
  match current () with
  | None -> ()
  | Some c -> c.metrics <- Metrics.add name n c.metrics

let incr name = add name 1

let set_gauge name v =
  match current () with
  | None -> ()
  | Some c -> c.metrics <- Metrics.set_gauge name v c.metrics

let observe name v =
  match current () with
  | None -> ()
  | Some c -> c.metrics <- Metrics.observe name v c.metrics

let observe_n name v n =
  match current () with
  | None -> ()
  | Some c -> c.metrics <- Metrics.observe_n name v n c.metrics

(* A span is recorded when it closes (exceptions included, so a failing
   program still reports the phases it entered); every close also feeds
   the span's duration into the "span.<name>.seconds" histogram, giving
   the registry per-phase totals without separate bookkeeping. *)
let span ?(args = []) name f =
  match current () with
  | None -> f ()
  | Some c ->
    let start = c.clock () in
    let depth = c.depth in
    c.depth <- depth + 1;
    Fun.protect f ~finally:(fun () ->
        c.depth <- depth;
        let duration_s = c.clock () -. start in
        c.spans_rev <-
          { name; track = c.track; depth; start_s = start; duration_s; args }
          :: c.spans_rev;
        c.metrics <-
          Metrics.observe ("span." ^ name ^ ".seconds") duration_s c.metrics)
