(** Per-domain telemetry collector: a mutable buffer of metrics and
    hierarchical spans, plus the ambient ("current collector") API the
    instrumented layers record through.

    Thread-safety: a collector is {e domain-confined} — create, fill and
    freeze it on one domain.  The campaign driver creates one collector
    per program inside the worker, freezes it to a {!report}, and merges
    reports on the consuming domain in program order
    ({!merge_reports} is just {!Metrics.merge} plus span concatenation,
    so the order of merging — not the schedule — determines the result).

    The ambient current collector is domain-local state
    ([Domain.DLS]): installing a collector on one domain is invisible to
    every other domain, which is exactly the confinement the parallel
    campaign needs.  When no collector is installed every recording
    operation is a no-op, so library code can be instrumented
    unconditionally. *)

type span = {
  name : string;
  track : int;
      (** logical lane for trace viewers: the campaign uses
          [program index + 1], with 0 for campaign-level spans — never the
          OS domain, which would break cross-jobs determinism *)
  depth : int;  (** nesting depth when the span opened *)
  start_s : float;  (** clock value at open *)
  duration_s : float;
  args : (string * string) list;
}

type t

val create : ?clock:Scamv_util.Stopwatch.clock -> ?track:int -> unit -> t
(** Fresh empty collector.  [clock] (default {!Scamv_util.Stopwatch.wall})
    stamps span boundaries; {!Scamv_util.Stopwatch.frozen} makes all
    span timestamps and durations [0.], the deterministic mode the
    acceptance tests run under.  [track] tags every span (default 0). *)

type report = { metrics : Metrics.t; spans : span list }
(** Immutable snapshot of a collector: the value workers return. *)

val empty_report : report
val report : t -> report
(** Freeze the collector's current contents (spans in completion order). *)

val merge_reports : report -> report -> report
(** Merge program-ordered reports: metrics via {!Metrics.merge}, spans by
    concatenation.  Associative with {!empty_report} as identity. *)

(** {2 Ambient API}

    All functions below act on the domain's current collector and do
    nothing when none is installed. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install [c] as this domain's current collector for the duration of
    the callback (restoring the previous one afterwards, exceptions
    included). *)

val current : unit -> t option

val add : string -> int -> unit
(** Add to a counter of the current collector. *)

val incr : string -> unit
val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Record a histogram observation. *)

val observe_n : string -> float -> int -> unit
(** Record [n] observations of the same value in one step
    ({!Metrics.observe_n}); a no-op for [n <= 0] or with no collector. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named span: timestamps from the
    collector's clock, nesting tracked, recorded when [f] returns or
    raises.  Closing a span also feeds its duration into the
    ["span.<name>.seconds"] histogram.  With no current collector this is
    exactly [f ()]. *)
