(** Deterministic exporters for telemetry reports.

    All output is a pure function of the report — metrics in name order,
    spans in completion order — so frozen-clock campaigns export
    byte-identical files regardless of [--jobs]. *)

val trace_json : Collector.report -> Scamv_util.Json.t
(** Chrome trace-event document ([chrome://tracing] / Perfetto): one
    ["ph":"X"] complete event per span, [ts]/[dur] in microseconds,
    [pid] 1, [tid] the span's track, span arguments (plus nesting
    [depth]) under [args]. *)

val trace_string : Collector.report -> string
(** [trace_json] pretty-printed (what [--trace FILE] writes). *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition: [# TYPE] line per metric, mangled names
    ([scamv_] prefix, non-alphanumerics to [_]), histograms as cumulative
    [_bucket{le="..."}] lines (only occupied boundaries, plus the
    mandatory [+Inf]) with [_sum]/[_count].  What [--metrics FILE]
    writes. *)

val summary_rows : Metrics.t -> string list list
(** Rows [[name; kind; value]] for a {!Scamv_util.Text_table}. *)

val summary_table : Metrics.t -> string
(** Rendered end-of-run summary table (header [metric | kind | value]). *)

val to_file : string -> string -> unit
(** [to_file path contents] writes [contents] to [path]. *)
