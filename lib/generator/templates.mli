(** The test-program templates of the paper (Fig. 5 and Fig. 7).

    Each generator instantiates a template by randomly allocating machine
    registers under the template's side constraints and by drawing random
    immediates, exactly in the spirit of the SML generators of Sec. 5.4.

    - {!stride}: the Stride Template (Sec. 6.2): three to five loads from
      equidistant addresses, the workload that can trigger the automatic
      prefetcher.
    - {!template_a}: Fig. 5 Template A (Sec. 6.3): an anticipated load
      whose result is used by a load guarded by a conditional branch — the
      SiSCloak shape.  Constraints: r2 <> r1 and r4 not in {r1, r2}.
    - {!template_b}: Fig. 5 Template B: zero to two loads before the
      branch, one or two loads in the branch body, random comparison
      predicate, unconstrained register allocation.
    - {!template_c}: Fig. 7 Template C (Sec. 6.5): two causally dependent
      loads inside the branch body, optionally interleaved with an
      arithmetic operation.
    - {!template_d}: Fig. 7 Template D: loads placed after an
      unconditional direct branch (straight-line speculation probe). *)

type t = {
  template_name : string;
  program : Scamv_arch.Isa.program;
}

val stride : t Gen.t
val template_a : t Gen.t
val template_b : t Gen.t
val template_c : t Gen.t
val template_d : t Gen.t

val rv_stride : t Gen.t
val rv_template_a : t Gen.t
val rv_template_b : t Gen.t
val rv_template_c : t Gen.t
val rv_template_d : t Gen.t
(** RV64 instantiations of the same shapes (Sec. 2.3's multi-ISA claim):
    the flag-setting [Cmp]/[B.cond] pair becomes a single RV64
    compare-and-branch, register-offset addressing becomes an explicit
    address [Add] feeding a base+immediate load, and template D's dead
    code hides behind [jal x0].  Template names are shared with the
    AArch64 variants so differential campaigns line up by name. *)

val names : string list
(** The template names accepted by {!by_name}. *)

val by_name : ?isa:Scamv_arch.Isa.t -> string -> t Gen.t
(** ["stride" | "A" | "B" | "C" | "D"], for the requested guest ISA
    (default [Aarch64]).
    @raise Invalid_argument on unknown names (the message lists the
    valid ones). *)
