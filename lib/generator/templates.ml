module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Rv = Scamv_riscv.Ast
module Isa = Scamv_arch.Isa
open Gen.Syntax

type t = { template_name : string; program : Isa.program }

let arm name program = { template_name = name; program = Isa.Aarch64_program program }
let rv name program = { template_name = name; program = Isa.Riscv_program program }

let conds = [ Ast.Eq; Ast.Ne; Ast.Hs; Ast.Lo; Ast.Hi; Ast.Ls; Ast.Ge; Ast.Lt ]

let reg_addr base offset = { Ast.base; offset = Ast.Reg offset; scale = 0 }
let imm_addr base imm = { Ast.base; offset = Ast.Imm imm; scale = 0 }

(* Stride Template (Sec. 6.2): 3..5 loads from [r0], [r0+v], [r0+2v], ...
   with the distance a multiple of the cache line size so consecutive
   accesses hit different sets. *)
let stride =
  let* count = Gen.int_in 3 5 in
  let* line_multiple = Gen.int_in 1 4 in
  let v = Int64.of_int (64 * line_multiple) in
  let* regs = Gen.distinct_regs (count + 1) in
  match regs with
  | base :: dests ->
    let loads =
      List.mapi
        (fun i dest -> Ast.Ldr (dest, imm_addr base (Int64.mul (Int64.of_int i) v)))
        dests
    in
    Gen.return (arm "stride" (Array.of_list loads))
  | [] -> assert false

(* Template A (Fig. 5): anticipated load, comparison, guarded dependent
   load.  Side constraints from Sec. 6.3: r2 <> r1 and r4 not in
   {r1, r2}; r6 is free and may alias r0 or r1 (the subclass unguided
   search stumbles on). *)
let template_a =
  let* r0 = Gen.reg in
  let* r1 = Gen.reg_avoiding [ r0 ] in
  let* r2 = Gen.reg_avoiding [ r1 ] in
  let* r4 = Gen.reg_avoiding [ r1; r2 ] in
  let* r5 = Gen.reg in
  let* r6 = Gen.reg in
  let* cond = Gen.choose conds in
  let program =
    [|
      Ast.Ldr (r2, reg_addr r0 r1);
      Ast.Cmp (r1, Ast.Reg r4);
      Ast.B_cond (cond, 4) (* skip the body *);
      Ast.Ldr (r5, reg_addr r6 r2);
    |]
  in
  Gen.return (arm "A" program)

(* Template B (Fig. 5): 0..2 loads, comparison with a random predicate,
   1..2 loads in the body; no register-allocation constraints at all. *)
let template_b =
  let any_load =
    let* d = Gen.reg in
    let* b = Gen.reg in
    let* o = Gen.reg in
    Gen.return (Ast.Ldr (d, reg_addr b o))
  in
  let* before = Gen.bind (Gen.int_in 0 2) (fun n -> Gen.list n any_load) in
  let* body = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let* ra = Gen.reg in
  let* rb = Gen.reg in
  let* cond = Gen.choose conds in
  let prefix = before @ [ Ast.Cmp (ra, Ast.Reg rb) ] in
  let skip_target = List.length prefix + 1 + List.length body in
  let program =
    Array.of_list (prefix @ (Ast.B_cond (cond, skip_target) :: body))
  in
  Gen.return (arm "B" program)

(* Template C (Fig. 7): two causally dependent loads in the branch body,
   optionally interleaved with an arithmetic operation on the loaded
   value.  Registers are distinct so the dependency is guaranteed. *)
let template_c =
  let* regs = Gen.distinct_regs 8 in
  match regs with
  | [ r1; r2; r3; r5; r6; r7; r8; r9 ] ->
    let* cond = Gen.choose conds in
    let* middle_op =
      Gen.opt 0.5
        (let* imm = Gen.int_in 1 255 in
         let* op = Gen.choose [ `Add; `Eor ] in
         Gen.return (op, Int64.of_int imm))
    in
    let body =
      match middle_op with
      | None -> [ Ast.Ldr (r6, reg_addr r5 r3); Ast.Ldr (r8, reg_addr r7 r6) ]
      | Some (op, imm) ->
        let arith =
          match op with
          | `Add -> Ast.Add (r9, r6, Ast.Imm imm)
          | `Eor -> Ast.Eor (r9, r6, Ast.Imm imm)
        in
        [ Ast.Ldr (r6, reg_addr r5 r3); arith; Ast.Ldr (r8, reg_addr r7 r9) ]
    in
    let skip_target = 2 + List.length body in
    let program =
      Array.of_list (Ast.Cmp (r1, Ast.Reg r2) :: Ast.B_cond (cond, skip_target) :: body)
    in
    Gen.return (arm "C" program)
  | _ -> assert false

(* Template D (Fig. 7): loads placed textually after an unconditional
   direct branch; they never execute architecturally and leak only if the
   processor speculates straight-line past the branch. *)
let template_d =
  let any_load =
    let* d = Gen.reg in
    let* b = Gen.reg in
    let* o = Gen.reg in
    Gen.return (Ast.Ldr (d, reg_addr b o))
  in
  let* before = Gen.bind (Gen.int_in 0 1) (fun n -> Gen.list n any_load) in
  let* dead = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let jump_at = List.length before in
  let target = jump_at + 1 + List.length dead in
  let program = Array.of_list (before @ (Ast.B target :: dead)) in
  Gen.return (arm "D" program)

(* ---- RV64 instantiations ----

   The same template shapes on the second guest ISA.  Two systematic
   differences: RV64 has no flags, so the Cmp/B.cond pair becomes one
   compare-and-branch drawn from the six RV64 predicates; and loads only
   address as base+immediate, so the register-offset addressing of the
   AArch64 shapes becomes an explicit address [Add] feeding the load.
   Register draws range over x1..x31 (x0 is the hardwired zero). *)

let rv_reg = Gen.map (fun i -> Rv.x i) (Gen.int_in 1 31)

let rv_reg_avoiding avoid =
  Gen.choose
    (List.filter (fun r -> not (List.mem r avoid)) (List.init 31 (fun i -> i + 1)))

let rv_distinct_regs n =
  let rec go n picked =
    if n = 0 then Gen.return (List.rev picked)
    else Gen.bind (rv_reg_avoiding picked) (fun r -> go (n - 1) (r :: picked))
  in
  go n []

type rv_cond = Rv_beq | Rv_bne | Rv_blt | Rv_bge | Rv_bltu | Rv_bgeu

let rv_conds = [ Rv_beq; Rv_bne; Rv_blt; Rv_bge; Rv_bltu; Rv_bgeu ]

let rv_branch cond a b target =
  match cond with
  | Rv_beq -> Rv.Beq (a, b, target)
  | Rv_bne -> Rv.Bne (a, b, target)
  | Rv_blt -> Rv.Blt (a, b, target)
  | Rv_bge -> Rv.Bge (a, b, target)
  | Rv_bltu -> Rv.Bltu (a, b, target)
  | Rv_bgeu -> Rv.Bgeu (a, b, target)

let rv_stride =
  let* count = Gen.int_in 3 5 in
  let* line_multiple = Gen.int_in 1 4 in
  let v = Int64.of_int (64 * line_multiple) in
  let* regs = rv_distinct_regs (count + 1) in
  match regs with
  | base :: dests ->
    let loads =
      List.mapi
        (fun i dest -> Rv.Ld (dest, Int64.mul (Int64.of_int i) v, base))
        dests
    in
    Gen.return (rv "stride" (Array.of_list loads))
  | [] -> assert false

(* A load whose address is base+offset-register: materialized as an
   address Add into a scratch register followed by the load. *)
let rv_indexed_load ~scratch ~dest ~base ~offset =
  [ Rv.Add (scratch, base, offset); Rv.Ld (dest, 0L, scratch) ]

let rv_template_a =
  let* regs = rv_distinct_regs 8 in
  match regs with
  | [ r0; r1; r2; r4; r5; r6; t0; t1 ] ->
    let* cond = Gen.choose rv_conds in
    let body = rv_indexed_load ~scratch:t1 ~dest:r5 ~base:r6 ~offset:r2 in
    let prefix =
      rv_indexed_load ~scratch:t0 ~dest:r2 ~base:r0 ~offset:r1
      @ [ rv_branch cond r1 r4 (3 + List.length body) ]
    in
    Gen.return (rv "A" (Array.of_list (prefix @ body)))
  | _ -> assert false

let rv_template_b =
  let any_load =
    let* d = rv_reg in
    let* b = rv_reg in
    let* o = rv_reg in
    let* s = rv_reg in
    Gen.return (rv_indexed_load ~scratch:s ~dest:d ~base:b ~offset:o)
  in
  let* before = Gen.bind (Gen.int_in 0 2) (fun n -> Gen.list n any_load) in
  let* body = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let* ra = rv_reg in
  let* rb = rv_reg in
  let* cond = Gen.choose rv_conds in
  let before = List.concat before and body = List.concat body in
  let skip_target = List.length before + 1 + List.length body in
  let program =
    Array.of_list (before @ (rv_branch cond ra rb skip_target :: body))
  in
  Gen.return (rv "B" program)

let rv_template_c =
  let* regs = rv_distinct_regs 10 in
  match regs with
  | [ r1; r2; r3; r5; r6; r7; r8; r9; t0; t1 ] ->
    let* cond = Gen.choose rv_conds in
    let* middle_op =
      Gen.opt 0.5
        (let* imm = Gen.int_in 1 255 in
         let* op = Gen.choose [ `Add; `Xor ] in
         Gen.return (op, Int64.of_int imm))
    in
    let first = rv_indexed_load ~scratch:t0 ~dest:r6 ~base:r5 ~offset:r3 in
    let body =
      match middle_op with
      | None -> first @ rv_indexed_load ~scratch:t1 ~dest:r8 ~base:r7 ~offset:r6
      | Some (op, imm) ->
        let arith =
          match op with
          | `Add -> Rv.Addi (r9, r6, imm)
          | `Xor -> Rv.Xori (r9, r6, imm)
        in
        first @ (arith :: rv_indexed_load ~scratch:t1 ~dest:r8 ~base:r7 ~offset:r9)
    in
    let skip_target = 1 + List.length body in
    let program = Array.of_list (rv_branch cond r1 r2 skip_target :: body) in
    Gen.return (rv "C" program)
  | _ -> assert false

let rv_template_d =
  let any_load =
    let* d = rv_reg in
    let* b = rv_reg in
    let* o = rv_reg in
    let* s = rv_reg in
    Gen.return (rv_indexed_load ~scratch:s ~dest:d ~base:b ~offset:o)
  in
  let* before = Gen.bind (Gen.int_in 0 1) (fun n -> Gen.list n any_load) in
  let* dead = Gen.bind (Gen.int_in 1 2) (fun n -> Gen.list n any_load) in
  let before = List.concat before and dead = List.concat dead in
  let jump_at = List.length before in
  let target = jump_at + 1 + List.length dead in
  let program = Array.of_list (before @ (Rv.Jal (Rv.x 0, target) :: dead)) in
  Gen.return (rv "D" program)

let names = [ "stride"; "A"; "B"; "C"; "D" ]

let by_name ?(isa = Isa.Aarch64) name =
  let pick a r = match isa with Isa.Aarch64 -> a | Isa.Riscv -> r in
  match name with
  | "stride" -> pick stride rv_stride
  | "A" -> pick template_a rv_template_a
  | "B" -> pick template_b rv_template_b
  | "C" -> pick template_c rv_template_c
  | "D" -> pick template_d rv_template_d
  | name ->
    invalid_arg
      (Printf.sprintf
         "Templates.by_name: unknown template %S (expected one of: %s)" name
         (String.concat ", " names))
