(** Multi-tenancy: tenant naming, per-tenant admission quotas (the 429
    backpressure surface) and the deterministic per-tenant seed
    namespace.

    Thread-safety: none of these operations lock; the scheduler mutates
    tenant state only under its own lock. *)

type quota = {
  max_backlog : int;  (** queued-but-not-running sessions allowed *)
  max_active : int;  (** unfinished (queued + running) sessions allowed *)
}

val default_quota : quota
(** [{ max_backlog = 8; max_active = 16 }]. *)

type rejection = Backlog_full | Quota_exceeded

val rejection_reason : rejection -> string

type t = {
  name : string;
  quota : quota;
  pending : string Queue.t;  (** session ids awaiting a runner, FIFO *)
  mutable sequence : int;  (** sessions ever admitted; names the next id *)
  mutable active : int;  (** admitted and not yet terminal *)
}

val validate_name : string -> (string, string) result
(** Tenant names are 1-64 bytes of [[A-Za-z0-9._-]] — they appear in
    session ids and state-directory file names. *)

val create : name:string -> quota:quota -> t

val admit : t -> (int, rejection) result
(** Check the quota and, when there is room, claim the tenant's next
    sequence number (bumping [sequence] and [active]).  The caller
    enqueues the session it names onto [pending]. *)

val finish : t -> unit
(** A session of this tenant reached a terminal state. *)

val derive_seed : tenant:string -> sequence:int -> int64
(** The tenant seed namespace: the campaign seed used when a submission
    does not pin one.  A pure function of (tenant name, tenant-local
    sequence number), so the nth campaign of a tenant draws the same seed
    regardless of server history or other tenants' traffic — submitting
    the same request stream always yields byte-identical artifacts. *)

val derive_slot : tenant:string -> sequence:int -> slots:int -> int
(** Which of the scheduler's [slots] runner slots (pool slices) this
    submission executes on: the second draw of the same (tenant,
    sequence) generator behind {!derive_seed}, reduced mod [slots].  A
    pure function of the triple — never of arrival order or queue state —
    so re-submitting the same request stream at the same [--concurrency]
    always reproduces the slice assignment.  [slots <= 1] maps everything
    to slot 0. *)
