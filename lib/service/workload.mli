(** The named workload catalogue shared by the batch CLI and the
    validation service: resolves (template, setup) names to the
    generator, refinement and executor view a campaign needs.  Because
    both front ends resolve through the same table and name campaigns
    with the same formula, a served campaign is constructed exactly like
    a batch one — the prerequisite for byte-identical artifacts. *)

val setups : (string * (unit -> Scamv_models.Refinement.t)) list
val setup_names : string list

val lookup_setup : string -> (Scamv_models.Refinement.t, string) result

val lookup_template :
  ?isa:Scamv_arch.Isa.t ->
  string ->
  (Scamv_gen.Templates.t Scamv_gen.Gen.t, string) result
(** Resolve a template name for the given guest ISA (default
    [Aarch64]); the error message lists the valid names. *)

val view_for : string -> Scamv_microarch.Executor.view
(** Executor observation view matching a setup name (partition setups
    watch their cache region, the rest the full cache). *)

val campaign_name : setup:string -> template:string -> string
(** The batch CLI's campaign-name formula; journal records embed it, so
    the service must use the identical spelling. *)
