(** One submitted campaign: parameters, life-cycle state machine,
    cooperative cancel token, and the growing NDJSON line buffer that
    [GET /campaigns/:id/stream] serves.

    The line buffer is the service's fan-out point: the scheduler's
    runner thread appends lines as the campaign produces journal records,
    and any number of streaming connections block in {!wait_lines} until
    more lines (or a terminal state) arrive.  Every operation here locks
    the session's own mutex — streamers never touch scheduler
    internals. *)

(** {2 Parameters} *)

type params = {
  template : string;
  setup : string;
  isa : string;
      (** ["aarch64"] (default) or ["riscv"] run a single-ISA campaign;
          ["diff"] runs the differential workload ({!Scamv.Diff}): both
          ISAs under the same seed, with [Diverged] records appended
          after the two campaigns.  Absent in pre-existing meta files,
          which load as ["aarch64"]. *)
  programs : int;
  tests_per_program : int;
  seed : int64 option;  (** [None]: draw from the tenant's seed namespace *)
  max_conflicts : int;  (** SAT budget per solver call; 0 = unlimited *)
  deadline_conflicts : int;  (** per-program virtual deadline; 0 = none *)
  portfolio : int;  (** solver portfolio size *)
}

val default_params : params
(** Template A, setup mct-vs-mspec, 10 programs x 10 tests, namespace
    seed, no budget, no deadline, portfolio 1. *)

val params_of_json : Scamv_util.Json.t -> (params, string) result
(** Decode a [POST /campaigns] body.  Missing fields take defaults,
    unknown fields are rejected (a misspelled knob should 400, not be
    silently ignored).  Seeds are decimal int64 strings (JSON doubles
    cannot carry 64 bits); small integers are also accepted. *)

val params_to_json : params -> Scamv_util.Json.t

val stats_json : Scamv.Stats.t -> Scamv_util.Json.t
(** Table-1-style counters as a JSON object (counts only, no timing
    summaries). *)

(** {2 Life cycle} *)

type state = Queued | Running | Completed | Cancelled | Failed of string

val state_name : state -> string
val is_terminal : state -> bool

type t = {
  id : string;
  tenant : string;
  params : params;
  seed : int64;  (** resolved: the submitted seed or the namespace draw *)
  campaign_name : string;
  journal_path : string option;
  meta_path : string option;
  submitted : int;  (** global submission index; orders [GET /campaigns] *)
  slot : int;
      (** the scheduler runner slot (= pool slice) this session executes
          on — {!Tenant.derive_slot} of (tenant, sequence, concurrency).
          Not persisted: recovery re-derives it, so a restart under a
          different [--concurrency] re-partitions cleanly. *)
  cancel : Scamv_util.Deadline.t;
      (** expires only by explicit {!Scamv_util.Deadline.cancel} — the
          [DELETE /campaigns/:id] path *)
  lock : Mutex.t;
  changed : Condition.t;
  mutable state : state;
  mutable resume_from : string option;
  mutable lines : string array;
  mutable nlines : int;
  mutable stats : Scamv_util.Json.t option;
  mutable wall_seconds : float;
}

val create :
  id:string ->
  tenant:string ->
  params:params ->
  seed:int64 ->
  campaign_name:string ->
  ?journal_path:string ->
  ?meta_path:string ->
  submitted:int ->
  ?slot:int ->
  unit ->
  t

val push_line : t -> string -> unit
(** Append one NDJSON line (without terminator) and wake all waiters. *)

val set_state : t -> state -> unit

val conclude :
  t -> state -> ?stats:Scamv_util.Json.t -> ?wall_seconds:float -> unit -> unit
(** Enter a terminal state, record final statistics and append the
    [{"done":...}] line — in one critical section, so a streamer that
    observes the terminal state always has the done line in hand and
    every stream ends with it exactly once. *)

val state : t -> state
val finished : t -> bool

val lines_from : t -> from:int -> string list * int * bool
(** [(lines, next, terminal)]: the lines at indexes [[from, next)] and
    whether the session is already terminal.  Non-blocking. *)

val wait_lines : t -> from:int -> string list * int * bool
(** Like {!lines_from} but blocks until there is at least one new line or
    the session is terminal.  A streaming connection loops: write the
    lines, and stop once [terminal] is true with no new lines pending. *)

(** {2 Wire renderings} *)

val status_json : t -> Scamv_util.Json.t
(** The [GET /campaigns/:id] body. *)

val summary_json : t -> Scamv_util.Json.t
(** One element of the [GET /campaigns] listing. *)

val record_line : Scamv.Journal.event -> string
(** [{"record":<event>}] — a pure function of the journal event, so the
    streamed sequence can be diffed byte-for-byte against a batch run's
    journal. *)

val progress_line : string -> string
(** [{"progress":"..."}] — campaign progress events.  Auxiliary: resumed
    campaigns emit an extra resume notice, so these lines are excluded
    from byte-identity checks. *)

(** {2 Meta persistence} *)

val meta_json : t -> Scamv_util.Json.t
(** The sidecar [<id>.meta.json] record the server's [--resume] scan
    reads: identity, resolved params, current/terminal state, stats. *)

type meta = {
  meta_id : string;
  meta_tenant : string;
  meta_submitted : int;
  meta_state : string;
  meta_reason : string option;
  meta_params : params;  (** seed always resolved ([Some _]) *)
  meta_stats : Scamv_util.Json.t option;
  meta_wall_seconds : float;
}

val meta_of_json : Scamv_util.Json.t -> (meta, string) result
