(* Minimal HTTP/1.1 server-side protocol support, hand-rolled over
   buffered channels so the service needs no dependencies beyond [Unix].
   Only what the validation service uses is implemented: one request per
   connection (the server always answers [Connection: close]),
   [Content-Length] request bodies, fixed-length responses and chunked
   transfer encoding for the NDJSON verdict streams. *)

exception Bad_request of string

type request = {
  meth : string;  (** uppercase method, e.g. ["GET"] *)
  target : string;  (** raw request target as received *)
  path : string;  (** percent-decoded path, query stripped *)
  query : (string * string) list;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

let max_line_bytes = 8192
let max_headers = 64
let max_body_bytes = 4 * 1024 * 1024

(* ---- parsing ---- *)

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad_request "malformed percent-escape")

let percent_decode ?(plus_as_space = false) s =
  if not (String.contains s '%' || (plus_as_space && String.contains s '+'))
  then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '%' ->
        if !i + 2 >= n then raise (Bad_request "truncated percent-escape");
        Buffer.add_char b
          (Char.chr ((hex_value s.[!i + 1] * 16) + hex_value s.[!i + 2]));
        i := !i + 2
      | '+' when plus_as_space -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             let key, value =
               match String.index_opt pair '=' with
               | None -> (pair, "")
               | Some i ->
                 ( String.sub pair 0 i,
                   String.sub pair (i + 1) (String.length pair - i - 1) )
             in
             Some
               ( percent_decode ~plus_as_space:true key,
                 percent_decode ~plus_as_space:true value ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

(* Read one CRLF- (or bare-LF-) terminated line, without the terminator.
   Raises [Bad_request] past [max_line_bytes]; returns [None] on EOF
   before any byte (a closed keep-alive connection). *)
let read_line_opt ic =
  let b = Buffer.create 128 in
  let rec loop () =
    match input_char ic with
    | exception End_of_file -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | '\n' ->
      let s = Buffer.contents b in
      let len = String.length s in
      Some (if len > 0 && s.[len - 1] = '\r' then String.sub s 0 (len - 1) else s)
    | c ->
      if Buffer.length b >= max_line_bytes then raise (Bad_request "header line too long");
      Buffer.add_char b c;
      loop ()
  in
  loop ()

let parse_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request "malformed header line")
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then raise (Bad_request "empty header name");
    (name, value)

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let query req name = List.assoc_opt name req.query

let read_request ic =
  match read_line_opt ic with
  | None -> None
  | Some request_line ->
    let meth, target, version =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ] -> (m, t, v)
      | _ -> raise (Bad_request "malformed request line")
    in
    if not (version = "HTTP/1.1" || version = "HTTP/1.0") then
      raise (Bad_request ("unsupported protocol version " ^ version));
    if meth = "" || target = "" then raise (Bad_request "malformed request line");
    let rec read_headers acc n =
      if n > max_headers then raise (Bad_request "too many headers");
      match read_line_opt ic with
      | None -> raise (Bad_request "connection closed mid-headers")
      | Some "" -> List.rev acc
      | Some line -> read_headers (parse_header line :: acc) (n + 1)
    in
    let headers = read_headers [] 0 in
    let body =
      match List.assoc_opt "content-length" headers with
      | None -> ""
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> raise (Bad_request "malformed Content-Length")
        | Some n when n < 0 -> raise (Bad_request "malformed Content-Length")
        | Some n when n > max_body_bytes -> raise (Bad_request "request body too large")
        | Some n -> (
          try really_input_string ic n
          with End_of_file -> raise (Bad_request "connection closed mid-body")))
    in
    let path, query = split_target target in
    Some { meth = String.uppercase_ascii meth; target; path; query; headers; body }

(* ---- responses ---- *)

let status_reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c < 400 then "OK" else "Error"

let write_head oc ~status headers =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\n" status (status_reason status);
  List.iter (fun (k, v) -> Printf.fprintf oc "%s: %s\r\n" k v) headers;
  output_string oc "\r\n"

let respond ?(headers = []) ?(content_type = "text/plain; charset=utf-8") oc
    ~status body =
  write_head oc ~status
    (("Content-Type", content_type)
    :: ("Content-Length", string_of_int (String.length body))
    :: ("Connection", "close") :: headers);
  output_string oc body;
  flush oc

let respond_json ?(status = 200) ?(headers = []) oc json =
  respond ~headers ~content_type:"application/json" oc ~status
    (Scamv_util.Json.to_string json ^ "\n")

(* ---- chunked streaming ---- *)

type stream = { oc : out_channel; mutable open_ : bool }

let start_stream ?(headers = []) ?(content_type = "application/x-ndjson") oc
    ~status =
  write_head oc ~status
    (("Content-Type", content_type)
    :: ("Transfer-Encoding", "chunked")
    :: ("Connection", "close") :: headers);
  flush oc;
  { oc; open_ = true }

let stream_chunk st data =
  if st.open_ && String.length data > 0 then begin
    Printf.fprintf st.oc "%x\r\n" (String.length data);
    output_string st.oc data;
    output_string st.oc "\r\n";
    flush st.oc
  end

let stream_close st =
  if st.open_ then begin
    st.open_ <- false;
    output_string st.oc "0\r\n\r\n";
    flush st.oc
  end
