(* Minimal HTTP/1.1 server-side protocol support, hand-rolled over a
   small buffered reader so the service needs no dependencies beyond
   [Unix].  Only what the validation service uses is implemented:
   persistent (keep-alive) connections with [Connection] semantics for
   both HTTP/1.1 and HTTP/1.0, [Content-Length] request bodies,
   fixed-length responses and chunked transfer encoding for the NDJSON
   verdict streams.  The reader waits for bytes cooperatively — a
   [Deadline] token bounds each idle wait, polled through select(2) in
   short slices — so a server can time idle connections out, and a
   supervisor can cancel the token to wake a parked reader. *)

module Deadline = Scamv_util.Deadline

exception Bad_request of string
exception Timeout

type request = {
  meth : string;  (** uppercase method, e.g. ["GET"] *)
  target : string;  (** raw request target as received *)
  path : string;  (** percent-decoded path, query stripped *)
  query : (string * string) list;
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

let max_line_bytes = 8192
let max_headers = 64
let max_body_bytes = 4 * 1024 * 1024

(* ---- buffered reader ---- *)

type src =
  | Fd of Unix.file_descr
  | Str of { str : string; mutable off : int }

type reader = { src : src; buf : Bytes.t; mutable pos : int; mutable len : int }

let reader_of_fd fd = { src = Fd fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let reader_of_string s =
  { src = Str { str = s; off = 0 }; buf = Bytes.create 8192; pos = 0; len = 0 }

(* Wait until [fd] is readable, cooperating with the idle deadline: the
   select timeout is one short slice, and the token is re-consulted on
   every wakeup, so [Deadline.cancel] from another thread unparks the
   reader within a slice even though nothing is interrupted
   asynchronously. *)
let rec wait_readable fd idle =
  let slice =
    match idle with
    | None -> -1.0 (* block until readable *)
    | Some d -> (
      match Deadline.remaining_seconds d with
      | Some r when r <= 0.0 -> raise Timeout
      | Some r -> Float.min 0.25 r
      | None -> 0.25 (* virtual token: poll cooperatively *))
  in
  match Unix.select [ fd ] [] [] slice with
  | [], _, _ -> wait_readable fd idle
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd idle

(* [false] = end of stream.  A peer reset is a close, not an error. *)
let refill ?idle r =
  match r.src with
  | Str s ->
    let remaining = String.length s.str - s.off in
    if remaining <= 0 then false
    else begin
      let n = min (Bytes.length r.buf) remaining in
      Bytes.blit_string s.str s.off r.buf 0 n;
      s.off <- s.off + n;
      r.pos <- 0;
      r.len <- n;
      true
    end
  | Fd fd ->
    let rec read () =
      wait_readable fd idle;
      match Unix.read fd r.buf 0 (Bytes.length r.buf) with
      | 0 -> false
      | n ->
        r.pos <- 0;
        r.len <- n;
        true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        read ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
    in
    read ()

let read_byte ?idle r =
  if r.pos < r.len then begin
    let c = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    Some c
  end
  else if refill ?idle r then begin
    let c = Bytes.get r.buf 0 in
    r.pos <- 1;
    Some c
  end
  else None

let read_exact ?idle r n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len && not (refill ?idle r) then
      raise (Bad_request "connection closed mid-body");
    let take = min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos out !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.to_string out

(* ---- parsing ---- *)

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad_request "malformed percent-escape")

let percent_decode ?(plus_as_space = false) s =
  if not (String.contains s '%' || (plus_as_space && String.contains s '+'))
  then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '%' ->
        if !i + 2 >= n then raise (Bad_request "truncated percent-escape");
        Buffer.add_char b
          (Char.chr ((hex_value s.[!i + 1] * 16) + hex_value s.[!i + 2]));
        i := !i + 2
      | '+' when plus_as_space -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             let key, value =
               match String.index_opt pair '=' with
               | None -> (pair, "")
               | Some i ->
                 ( String.sub pair 0 i,
                   String.sub pair (i + 1) (String.length pair - i - 1) )
             in
             Some
               ( percent_decode ~plus_as_space:true key,
                 percent_decode ~plus_as_space:true value ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

(* Read one CRLF- (or bare-LF-) terminated line, without the terminator.
   Raises [Bad_request] past [max_line_bytes]; returns [None] on EOF
   before any byte (a closed keep-alive connection). *)
let read_line_opt ?idle r =
  let b = Buffer.create 128 in
  let rec loop () =
    match read_byte ?idle r with
    | None -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | Some '\n' ->
      let s = Buffer.contents b in
      let len = String.length s in
      Some (if len > 0 && s.[len - 1] = '\r' then String.sub s 0 (len - 1) else s)
    | Some c ->
      if Buffer.length b >= max_line_bytes then raise (Bad_request "header line too long");
      Buffer.add_char b c;
      loop ()
  in
  loop ()

let parse_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request "malformed header line")
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then raise (Bad_request "empty header name");
    (name, value)

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let query req name = List.assoc_opt name req.query

let connection_tokens req =
  match header req "connection" with
  | None -> []
  | Some v ->
    String.split_on_char ',' v
    |> List.map (fun s -> String.lowercase_ascii (String.trim s))

(* HTTP/1.1 defaults to persistent connections unless the client said
   [Connection: close]; HTTP/1.0 defaults to close unless it asked for
   [keep-alive]. *)
let wants_keep_alive req =
  let tokens = connection_tokens req in
  if List.mem "close" tokens then false
  else if req.version = "HTTP/1.0" then List.mem "keep-alive" tokens
  else true

let read_request ?idle r =
  match read_line_opt ?idle r with
  | None -> None
  | Some request_line ->
    let meth, target, version =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ] -> (m, t, v)
      | _ -> raise (Bad_request "malformed request line")
    in
    if not (version = "HTTP/1.1" || version = "HTTP/1.0") then
      raise (Bad_request ("unsupported protocol version " ^ version));
    if meth = "" || target = "" then raise (Bad_request "malformed request line");
    let rec read_headers acc n =
      if n > max_headers then raise (Bad_request "too many headers");
      match read_line_opt ?idle r with
      | None -> raise (Bad_request "connection closed mid-headers")
      | Some "" -> List.rev acc
      | Some line -> read_headers (parse_header line :: acc) (n + 1)
    in
    let headers = read_headers [] 0 in
    let body =
      match List.assoc_opt "content-length" headers with
      | None -> ""
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> raise (Bad_request "malformed Content-Length")
        | Some n when n < 0 -> raise (Bad_request "malformed Content-Length")
        | Some n when n > max_body_bytes -> raise (Bad_request "request body too large")
        | Some n -> read_exact ?idle r n)
    in
    let path, query = split_target target in
    Some
      {
        meth = String.uppercase_ascii meth;
        target;
        path;
        query;
        version;
        headers;
        body;
      }

(* ---- responses ---- *)

(* One write side of a connection.  [keep_alive] is the decision the
   response head will carry: the server sets it per request (client
   intent x request cap x shutdown), a handler may force it to [false],
   and after the handler returns the connection loop reads it back to
   decide whether to serve another request. *)
type conn = { oc : out_channel; mutable keep_alive : bool }

let conn_of_channel ?(keep_alive = false) oc = { oc; keep_alive }
let keep_alive c = c.keep_alive
let set_keep_alive c v = c.keep_alive <- v

let status_reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c < 400 then "OK" else "Error"

let write_head conn ~status headers =
  Printf.fprintf conn.oc "HTTP/1.1 %d %s\r\n" status (status_reason status);
  List.iter (fun (k, v) -> Printf.fprintf conn.oc "%s: %s\r\n" k v) headers;
  Printf.fprintf conn.oc "Connection: %s\r\n"
    (if conn.keep_alive then "keep-alive" else "close");
  output_string conn.oc "\r\n"

let respond ?(headers = []) ?(content_type = "text/plain; charset=utf-8") conn
    ~status body =
  write_head conn ~status
    (("Content-Type", content_type)
    :: ("Content-Length", string_of_int (String.length body))
    :: headers);
  output_string conn.oc body;
  flush conn.oc

let respond_json ?(status = 200) ?(headers = []) conn json =
  respond ~headers ~content_type:"application/json" conn ~status
    (Scamv_util.Json.to_string json ^ "\n")

(* ---- chunked streaming ---- *)

type stream = { oc : out_channel; mutable open_ : bool }

(* Chunked bodies are self-delimiting, so a finished stream leaves the
   connection reusable — the keep-alive decision in [conn] applies to
   streams exactly as to fixed-length responses. *)
let start_stream ?(headers = []) ?(content_type = "application/x-ndjson") conn
    ~status =
  write_head conn ~status
    (("Content-Type", content_type)
    :: ("Transfer-Encoding", "chunked")
    :: headers);
  flush conn.oc;
  { oc = conn.oc; open_ = true }

let stream_chunk st data =
  if st.open_ && String.length data > 0 then begin
    Printf.fprintf st.oc "%x\r\n" (String.length data);
    output_string st.oc data;
    output_string st.oc "\r\n";
    flush st.oc
  end

let stream_close st =
  if st.open_ then begin
    st.open_ <- false;
    output_string st.oc "0\r\n\r\n";
    flush st.oc
  end
