(** The campaign service's HTTP front end: a listener, an accept loop on
    its own thread, and a thread per connection.  All campaign logic
    lives behind {!Scheduler}; this module translates HTTP to scheduler
    calls.

    Routes:
    - [POST /campaigns] — submit (JSON body: {!Session.params} fields
      plus ["tenant"]); 201 with the campaign status, 400 on bad input,
      429 with [Retry-After] on tenant quota/backlog rejection, 503 when
      shutting down.
    - [GET /campaigns] — all sessions, in submission order.
    - [GET /campaigns/:id] — status and statistics.
    - [GET /campaigns/:id/stream?from=N] — chunked NDJSON of the
      session's record/progress lines from index [N] (default 0),
      blocking as the campaign runs, terminated by a [{"done":...}]
      line.
    - [DELETE /campaigns/:id] — cooperative cancel.
    - [GET /metrics] — Prometheus text exposition of
      {!Scheduler.metrics_snapshot}.
    - [GET /healthz] — liveness probe. *)

type t

val create : ?host:string -> ?port:int -> Scheduler.t -> t
(** Defaults: host ["127.0.0.1"], port [8421].  Port [0] asks the kernel
    for a free port (tests use this); read it back with {!port} after
    {!start}. *)

val start : t -> unit
(** Bind, listen, ignore [SIGPIPE], spawn the accept thread.
    @raise Unix.Unix_error when the address is unavailable.
    @raise Invalid_argument when already started. *)

val port : t -> int

val stop : t -> unit
(** Close the listener and join the accept thread.  In-flight connection
    threads are not joined — drain the scheduler first if their
    campaigns must finish.  Idempotent. *)
