(** The campaign service's HTTP front end: a listener, an accept loop on
    its own thread, and a fixed pool of connection workers fed through a
    bounded handoff queue.  Connections are persistent (HTTP/1.1
    keep-alive): a worker serves requests off one socket until the client
    opts out ([Connection: close]), the per-connection request cap rolls
    it over, the idle timeout fires, or the server stops.  When the
    handoff queue is full the acceptor itself answers
    [503 + Retry-After] — load shedding happens before any per-connection
    work, so the connection count is bounded by [max_connections].  All
    campaign logic lives behind {!Scheduler}; this module translates HTTP
    to scheduler calls.

    Routes:
    - [POST /campaigns] — submit (JSON body: {!Session.params} fields
      plus ["tenant"]); 201 with the campaign status, 400 on bad input,
      429 with [Retry-After] on tenant quota/backlog rejection, 503 when
      shutting down.
    - [GET /campaigns] — all sessions, in submission order.
    - [GET /campaigns/:id] — status and statistics.
    - [GET /campaigns/:id/stream?from=N] — chunked NDJSON of the
      session's record/progress lines from index [N] (default 0),
      blocking as the campaign runs, terminated by a [{"done":...}]
      line.  Chunked bodies are self-delimiting, so a finished stream
      leaves the connection reusable.
    - [DELETE /campaigns/:id] — cooperative cancel.
    - [GET /metrics] — Prometheus text exposition of
      {!Scheduler.metrics_snapshot} (including the live
      [service.connections_active] / [service.connections_queued]
      gauges this module contributes).
    - [GET /healthz] — liveness probe. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?max_connections:int ->
  ?idle_timeout:float ->
  ?max_requests:int ->
  Scheduler.t ->
  t
(** Defaults: host ["127.0.0.1"], port [8421], 16 connection workers
    (also the handoff-queue bound), 5 s idle timeout, 1000 requests per
    connection.  Port [0] asks the kernel for a free port (tests use
    this); read it back with {!port} after {!start}.
    @raise Invalid_argument on a non-positive knob. *)

val start : t -> unit
(** Bind, listen, ignore [SIGPIPE], pre-register the connection metrics,
    spawn the worker pool and the accept thread.
    @raise Unix.Unix_error when the address is unavailable.
    @raise Invalid_argument when already started. *)

val port : t -> int

val stop : t -> unit
(** Close the listener, join the accept thread, close queued connections
    and unpark idle workers (their idle deadlines are cancelled, so they
    exit within a poll slice).  Workers blocked inside a campaign stream
    are not joined — drain the scheduler first if their campaigns must
    finish.  Idempotent. *)
