(** Minimal server-side HTTP/1.1, hand-rolled over buffered channels —
    the validation service's wire layer, with no dependencies beyond the
    compiler-shipped [Unix] and [Threads] libraries.

    Scope: one request per connection (every response carries
    [Connection: close]), [Content-Length] request bodies (4 MiB cap),
    fixed-length responses, and chunked transfer encoding for the NDJSON
    verdict streams.  Request smuggling vectors (pipelining,
    [Transfer-Encoding] request bodies) are simply rejected by omission. *)

exception Bad_request of string
(** Raised by {!read_request} on any protocol violation; the server turns
    it into a 400 response. *)

type request = {
  meth : string;  (** uppercase method, e.g. ["GET"] *)
  target : string;  (** raw request target as received *)
  path : string;  (** percent-decoded path, query string stripped *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val read_request : in_channel -> request option
(** Read one request (head and body).  [None] means the peer closed the
    connection before sending anything.
    @raise Bad_request on malformed or oversized input. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query : request -> string -> string option
(** First query parameter with the given (already-decoded) name. *)

val percent_decode : ?plus_as_space:bool -> string -> string
(** @raise Bad_request on a truncated or non-hex escape. *)

val status_reason : int -> string

val respond :
  ?headers:(string * string) list ->
  ?content_type:string ->
  out_channel ->
  status:int ->
  string ->
  unit
(** Write a complete fixed-length response and flush. *)

val respond_json :
  ?status:int -> ?headers:(string * string) list -> out_channel -> Scamv_util.Json.t -> unit
(** {!respond} with [application/json] and a trailing newline. *)

(** {2 Chunked streaming} *)

type stream

val start_stream :
  ?headers:(string * string) list ->
  ?content_type:string ->
  out_channel ->
  status:int ->
  stream
(** Write the response head with [Transfer-Encoding: chunked] (default
    content type [application/x-ndjson]) and return a handle for the
    body. *)

val stream_chunk : stream -> string -> unit
(** Send one chunk (empty strings are skipped — an empty chunk would
    terminate the encoding) and flush, so the client sees each NDJSON
    line as soon as the verdict lands. *)

val stream_close : stream -> unit
(** Send the terminating zero-length chunk.  Idempotent. *)
