(** Minimal server-side HTTP/1.1, hand-rolled over a small buffered
    reader — the validation service's wire layer, with no dependencies
    beyond the compiler-shipped [Unix] and [Threads] libraries.

    Scope: persistent (keep-alive) connections with the standard
    [Connection] semantics for HTTP/1.1 and HTTP/1.0, [Content-Length]
    request bodies (4 MiB cap), fixed-length responses, and chunked
    transfer encoding for the NDJSON verdict streams (chunked bodies are
    self-delimiting, so a finished stream leaves the connection
    reusable).  Request smuggling vectors (pipelining ahead of the
    response, [Transfer-Encoding] request bodies) are simply rejected by
    omission.

    Idle waits are cooperative: {!read_request} takes an optional
    {!Scamv_util.Deadline} token and polls it through short select(2)
    slices, so a server can bound how long a keep-alive connection may
    sit idle, and a supervisor can {!Scamv_util.Deadline.cancel} the
    token to wake a parked reader within a fraction of a second. *)

exception Bad_request of string
(** Raised by {!read_request} on any protocol violation; the server turns
    it into a 400 response and closes the connection (framing can no
    longer be trusted). *)

exception Timeout
(** Raised by {!read_request} when the idle deadline expires (or is
    cancelled) before a complete request arrives. *)

type request = {
  meth : string;  (** uppercase method, e.g. ["GET"] *)
  target : string;  (** raw request target as received *)
  path : string;  (** percent-decoded path, query string stripped *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

(** {2 Reading requests} *)

type reader
(** A buffered byte source a connection's requests are parsed from.  The
    buffer persists across requests, so bytes of a pipelined second
    request are not lost between {!read_request} calls. *)

val reader_of_fd : Unix.file_descr -> reader
(** Reader over a (blocking) socket. *)

val reader_of_string : string -> reader
(** Reader over an in-memory byte string (tests). *)

val read_request : ?idle:Scamv_util.Deadline.t -> reader -> request option
(** Read one request (head and body).  [None] means the peer closed the
    connection before sending anything — the normal end of a keep-alive
    connection.  [idle] bounds the whole read cooperatively.
    @raise Bad_request on malformed or oversized input.
    @raise Timeout when [idle] expires or is cancelled first. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query : request -> string -> string option
(** First query parameter with the given (already-decoded) name. *)

val percent_decode : ?plus_as_space:bool -> string -> string
(** @raise Bad_request on a truncated or non-hex escape. *)

val wants_keep_alive : request -> bool
(** The client's connection intent: HTTP/1.1 defaults to persistent
    unless [Connection: close]; HTTP/1.0 defaults to close unless
    [Connection: keep-alive].  Token list parsing is case-insensitive. *)

(** {2 Responses} *)

type conn
(** The write side of one connection.  Carries the keep-alive decision
    the next response head will advertise: the server sets it per
    request (client intent x request cap x shutdown state), a handler
    may force it off with {!set_keep_alive}, and after the handler
    returns the connection loop reads {!keep_alive} back to decide
    whether to serve another request on the same socket. *)

val conn_of_channel : ?keep_alive:bool -> out_channel -> conn
(** Wrap a response channel ([keep_alive] defaults to [false], matching
    one-shot uses such as an overload rejection). *)

val keep_alive : conn -> bool
val set_keep_alive : conn -> bool -> unit

val status_reason : int -> string

val respond :
  ?headers:(string * string) list ->
  ?content_type:string ->
  conn ->
  status:int ->
  string ->
  unit
(** Write a complete fixed-length response (with the connection's
    [Connection] header) and flush. *)

val respond_json :
  ?status:int ->
  ?headers:(string * string) list ->
  conn ->
  Scamv_util.Json.t ->
  unit
(** {!respond} with [application/json] and a trailing newline. *)

(** {2 Chunked streaming} *)

type stream

val start_stream :
  ?headers:(string * string) list ->
  ?content_type:string ->
  conn ->
  status:int ->
  stream
(** Write the response head with [Transfer-Encoding: chunked] (default
    content type [application/x-ndjson]) and return a handle for the
    body. *)

val stream_chunk : stream -> string -> unit
(** Send one chunk (empty strings are skipped — an empty chunk would
    terminate the encoding) and flush, so the client sees each NDJSON
    line as soon as the verdict lands. *)

val stream_close : stream -> unit
(** Send the terminating zero-length chunk.  Idempotent. *)
