(** Tiny method-aware path router for the service's fixed route table.

    Patterns are slash-separated segments; a segment starting with [':']
    binds the corresponding request segment under that name, e.g.
    ["/campaigns/:id/stream"].  Trailing slashes are insignificant
    (segments are compared after dropping empties). *)

type 'a route
type 'a t

type 'a outcome =
  | Matched of 'a
  | Method_not_allowed of string list
      (** the path matched other routes; carries their methods, sorted,
          for the [Allow] header of a 405 *)
  | Not_found

val route : string -> string -> ((string * string) list -> 'a) -> 'a route
(** [route meth pattern handler]: [handler] receives the bound
    [:name] parameters in pattern order. *)

val create : 'a route list -> 'a t
(** First matching route with the right method wins, in list order. *)

val dispatch : 'a t -> meth:string -> path:string -> 'a outcome
