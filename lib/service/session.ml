(* One submitted campaign: its parameters, life-cycle state machine, the
   cooperative cancel token, and the growing sequence of NDJSON lines that
   [GET /campaigns/:id/stream] serves.

   The line buffer is the service's fan-out point: the scheduler's runner
   thread appends lines as the campaign produces journal records, and any
   number of streaming connections block on [wait_lines] until more lines
   (or a terminal state) arrive.  All mutable state is guarded by the
   session's own lock, so streamers never touch scheduler internals. *)

module Json = Scamv_util.Json
module Deadline = Scamv_util.Deadline
module Stats = Scamv.Stats

(* ---- parameters ---- *)

type params = {
  template : string;
  setup : string;
  isa : string;  (** ["aarch64"] | ["riscv"] | ["diff"] (both + compare) *)
  programs : int;
  tests_per_program : int;
  seed : int64 option;  (** [None]: draw from the tenant's seed namespace *)
  max_conflicts : int;  (** SAT budget per solver call; 0 = unlimited *)
  deadline_conflicts : int;  (** per-program virtual deadline; 0 = none *)
  portfolio : int;  (** solver portfolio size *)
}

let default_params =
  {
    template = "A";
    setup = "mct-vs-mspec";
    isa = "aarch64";
    programs = 10;
    tests_per_program = 10;
    seed = None;
    max_conflicts = 0;
    deadline_conflicts = 0;
    portfolio = 1;
  }

let int_field name json =
  match json with
  | Json.Num f when Float.is_integer f && Float.abs f <= 1e9 -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %s must be an integer" name)

(* Seeds are full 64-bit values (the tenant namespace uses all the bits),
   which a JSON double cannot carry, so the canonical encoding is a
   decimal string; small integral numbers are accepted for hand-written
   requests. *)
let seed_field json =
  match json with
  | Json.Str s -> (
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error "field seed must be a decimal int64 string")
  | Json.Num f when Float.is_integer f && Float.abs f < 9.007199254740992e15 ->
    Ok (Int64.of_float f)
  | _ -> Error "field seed must be a decimal int64 string or an integer"

let params_of_json json =
  match json with
  | Json.Obj fields ->
    let ( let* ) = Result.bind in
    let rec fold p = function
      | [] -> Ok p
      | (key, value) :: rest ->
        let* p =
          match key with
          | "template" -> (
            match value with
            | Json.Str s -> Ok { p with template = s }
            | _ -> Error "field template must be a string")
          | "setup" -> (
            match value with
            | Json.Str s -> Ok { p with setup = s }
            | _ -> Error "field setup must be a string")
          | "isa" -> (
            match value with
            | Json.Str (("aarch64" | "riscv" | "diff") as s) ->
              Ok { p with isa = s }
            | Json.Str s ->
              Error
                (Printf.sprintf
                   "field isa must be one of aarch64, riscv, diff (got %s)" s)
            | _ -> Error "field isa must be a string")
          | "programs" ->
            let* n = int_field key value in
            if n < 1 || n > 100_000 then Error "field programs must be in [1, 100000]"
            else Ok { p with programs = n }
          | "tests_per_program" ->
            let* n = int_field key value in
            if n < 1 || n > 100_000 then
              Error "field tests_per_program must be in [1, 100000]"
            else Ok { p with tests_per_program = n }
          | "seed" ->
            let* v = seed_field value in
            Ok { p with seed = Some v }
          | "max_conflicts" ->
            let* n = int_field key value in
            if n < 0 then Error "field max_conflicts must be non-negative"
            else Ok { p with max_conflicts = n }
          | "deadline_conflicts" ->
            let* n = int_field key value in
            if n < 0 then Error "field deadline_conflicts must be non-negative"
            else Ok { p with deadline_conflicts = n }
          | "portfolio" ->
            let* n = int_field key value in
            if n < 1 || n > 64 then Error "field portfolio must be in [1, 64]"
            else Ok { p with portfolio = n }
          | "tenant" -> Ok p  (* handled by the server, tolerated here *)
          | other -> Error (Printf.sprintf "unknown field %s" other)
        in
        fold p rest
    in
    fold default_params fields
  | _ -> Error "request body must be a JSON object"

let params_to_json p =
  Json.Obj
    ([
      ("template", Json.Str p.template);
      ("setup", Json.Str p.setup);
    ]
    (* appended only when non-default, so pre-existing meta files and
       status payloads keep their historical bytes *)
    @ (if p.isa = "aarch64" then [] else [ ("isa", Json.Str p.isa) ])
    @ [
      ("programs", Json.Num (float_of_int p.programs));
      ("tests_per_program", Json.Num (float_of_int p.tests_per_program));
      ( "seed",
        match p.seed with
        | None -> Json.Null
        | Some s -> Json.Str (Int64.to_string s) );
      ("max_conflicts", Json.Num (float_of_int p.max_conflicts));
      ("deadline_conflicts", Json.Num (float_of_int p.deadline_conflicts));
      ("portfolio", Json.Num (float_of_int p.portfolio));
    ])

let stats_json (s : Stats.t) =
  let i name v = (name, Json.Num (float_of_int v)) in
  Json.Obj
    ([
      i "programs" s.Stats.programs;
      i "programs_with_counterexample" s.Stats.programs_with_counterexample;
      i "experiments" s.Stats.experiments;
      i "counterexamples" s.Stats.counterexamples;
      i "inconclusive" s.Stats.inconclusive;
      i "skipped_programs" s.Stats.skipped_programs;
      i "crashed_programs" s.Stats.crashed_programs;
      i "budget_exceeded" s.Stats.budget_exceeded;
      i "retries" s.Stats.retries;
      i "faults_observed" s.Stats.faults_observed;
    ]
    @
    if s.Stats.divergences > 0 then [ i "divergences" s.Stats.divergences ]
    else [])

(* ---- life cycle ---- *)

type state = Queued | Running | Completed | Cancelled | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Completed -> "completed"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let is_terminal = function
  | Completed | Cancelled | Failed _ -> true
  | Queued | Running -> false

type t = {
  id : string;
  tenant : string;
  params : params;
  seed : int64;  (** resolved: the submitted seed or the namespace draw *)
  campaign_name : string;
  journal_path : string option;
  meta_path : string option;
  submitted : int;  (** global submission index; orders [GET /campaigns] *)
  slot : int;  (** scheduler runner slot / pool slice ({!Tenant.derive_slot}) *)
  cancel : Deadline.t;
  lock : Mutex.t;
  changed : Condition.t;
  mutable state : state;
  mutable resume_from : string option;
      (** journal to replay before running (set by server [--resume]) *)
  mutable lines : string array;
  mutable nlines : int;
  mutable stats : Json.t option;
  mutable wall_seconds : float;
}

let create ~id ~tenant ~params ~seed ~campaign_name ?journal_path ?meta_path
    ~submitted ?(slot = 0) () =
  {
    id;
    tenant;
    params;
    seed;
    campaign_name;
    journal_path;
    meta_path;
    submitted;
    slot;
    (* The token only ever expires by explicit [Deadline.cancel]. *)
    cancel = Deadline.create (Deadline.Wall_seconds infinity);
    lock = Mutex.create ();
    changed = Condition.create ();
    state = Queued;
    resume_from = None;
    lines = Array.make 64 "";
    nlines = 0;
    stats = None;
    wall_seconds = 0.0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push_line_unlocked t line =
  if t.nlines = Array.length t.lines then begin
    let bigger = Array.make (2 * t.nlines) "" in
    Array.blit t.lines 0 bigger 0 t.nlines;
    t.lines <- bigger
  end;
  t.lines.(t.nlines) <- line;
  t.nlines <- t.nlines + 1

let push_line t line =
  locked t (fun () ->
      push_line_unlocked t line;
      Condition.broadcast t.changed)

let set_state t state =
  locked t (fun () ->
      t.state <- state;
      Condition.broadcast t.changed)

let state t = locked t (fun () -> t.state)
let finished t = locked t (fun () -> is_terminal t.state)

let slice t from upto =
  let rec collect i acc =
    if i < from then acc else collect (i - 1) (t.lines.(i) :: acc)
  in
  collect (upto - 1) []

let lines_from t ~from =
  locked t (fun () ->
      let from = max 0 (min from t.nlines) in
      (slice t from t.nlines, t.nlines, is_terminal t.state))

let wait_lines t ~from =
  locked t (fun () ->
      let from = max 0 (min from t.nlines) in
      while t.nlines <= from && not (is_terminal t.state) do
        Condition.wait t.changed t.lock
      done;
      (slice t from t.nlines, t.nlines, is_terminal t.state))

(* ---- wire renderings ---- *)

let status_json t =
  locked t (fun () ->
      Json.Obj
        ([
           ("id", Json.Str t.id);
           ("tenant", Json.Str t.tenant);
           ("state", Json.Str (state_name t.state));
           ("campaign", Json.Str t.campaign_name);
           ("params", params_to_json { t.params with seed = Some t.seed });
           ("records", Json.Num (float_of_int t.nlines));
         ]
        @ (match t.state with
          | Failed reason -> [ ("reason", Json.Str reason) ]
          | _ -> [])
        @ (match t.stats with
          | None -> []
          | Some s -> [ ("stats", s); ("wall_seconds", Json.Num t.wall_seconds) ])))

let summary_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("id", Json.Str t.id);
          ("tenant", Json.Str t.tenant);
          ("state", Json.Str (state_name t.state));
          ("records", Json.Num (float_of_int t.nlines));
        ])

let record_line event =
  Json.to_string (Json.Obj [ ("record", Scamv.Journal.event_to_json event) ])

let progress_line message =
  Json.to_string (Json.Obj [ ("progress", Json.Str message) ])

let done_line_unlocked t =
  Json.to_string
    (Json.Obj
       ([ ("done", Json.Str (state_name t.state)) ]
       @ (match t.state with
         | Failed reason -> [ ("reason", Json.Str reason) ]
         | _ -> [])
       @
       match t.stats with
       | None -> []
       | Some s -> [ ("stats", s); ("wall_seconds", Json.Num t.wall_seconds) ]))

(* Entering a terminal state and appending the final "done" NDJSON line
   happen in one critical section: a streamer that observes a terminal
   state is guaranteed to already have the done line in its slice, so
   every stream ends with it exactly once. *)
let conclude t state ?stats ?(wall_seconds = 0.0) () =
  locked t (fun () ->
      t.state <- state;
      t.stats <- stats;
      t.wall_seconds <- wall_seconds;
      push_line_unlocked t (done_line_unlocked t);
      Condition.broadcast t.changed)

(* ---- persistence (meta file) ---- *)

let meta_json t =
  locked t (fun () ->
      Json.Obj
        ([
           ("id", Json.Str t.id);
           ("tenant", Json.Str t.tenant);
           ("submitted", Json.Num (float_of_int t.submitted));
           ("state", Json.Str (state_name t.state));
           ("campaign", Json.Str t.campaign_name);
           ("params", params_to_json { t.params with seed = Some t.seed });
         ]
        @ (match t.state with
          | Failed reason -> [ ("reason", Json.Str reason) ]
          | _ -> [])
        @ (match t.stats with
          | None -> []
          | Some s -> [ ("stats", s); ("wall_seconds", Json.Num t.wall_seconds) ])))

type meta = {
  meta_id : string;
  meta_tenant : string;
  meta_submitted : int;
  meta_state : string;
  meta_reason : string option;
  meta_params : params;  (** seed always resolved ([Some _]) *)
  meta_stats : Json.t option;
  meta_wall_seconds : float;
}

let meta_of_json json =
  let ( let* ) = Result.bind in
  let str name =
    match Json.member name json with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "meta field %s missing or not a string" name)
  in
  let* meta_id = str "id" in
  let* meta_tenant = str "tenant" in
  let* meta_state = str "state" in
  let* meta_submitted =
    match Json.member "submitted" json with
    | Some v -> int_field "submitted" v
    | None -> Error "meta field submitted missing"
  in
  let* meta_params =
    match Json.member "params" json with
    | Some p -> params_of_json p
    | None -> Error "meta field params missing"
  in
  let* () =
    if meta_params.seed = None then Error "meta params missing resolved seed"
    else Ok ()
  in
  let meta_reason =
    match Json.member "reason" json with Some (Json.Str s) -> Some s | _ -> None
  in
  let meta_stats = Json.member "stats" json in
  let meta_wall_seconds =
    match Json.member "wall_seconds" json with Some (Json.Num f) -> f | _ -> 0.0
  in
  Ok
    {
      meta_id;
      meta_tenant;
      meta_submitted;
      meta_state;
      meta_reason;
      meta_params;
      meta_stats;
      meta_wall_seconds;
    }
