(* The named workload catalogue: every (template, setup) pair a campaign
   request may name, resolved to the generator / refinement / executor
   view the campaign driver needs.  Shared by the batch CLI and the
   validation service so a campaign submitted over the wire is constructed
   exactly like one launched from the command line — the prerequisite for
   streamed artifacts being byte-identical to a batch run. *)

module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Templates = Scamv_gen.Templates
module Gen = Scamv_gen.Gen

let platform = Platform.cortex_a53
let region = Region.paper_unaligned platform
let region_pa = Region.paper_page_aligned platform

let setups =
  [
    ("mct-unguided", fun () -> Refinement.mct_unguided);
    ("mct-vs-mspec", fun () -> Refinement.mct_vs_mspec ());
    ("mspec1-vs-mspec", fun () -> Refinement.mspec1_vs_mspec ());
    ("mct-vs-mspec-sl", fun () -> Refinement.mct_vs_mspec_straight_line ());
    ("mpart-unguided", fun () -> Refinement.mpart_unguided platform region);
    ("mpart-vs-mpart'", fun () -> Refinement.mpart_vs_mpart' platform region);
    ("mpart-pa-unguided", fun () -> Refinement.mpart_unguided platform region_pa);
    ("mpart-pa-vs-mpart'", fun () -> Refinement.mpart_vs_mpart' platform region_pa);
  ]

let setup_names = List.map fst setups

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let view_for name =
  if has_prefix ~prefix:"mpart" name then
    if has_prefix ~prefix:"mpart-pa" name then
      Executor.Region
        {
          first_set = region_pa.Region.first_set;
          last_set = region_pa.Region.last_set;
        }
    else
      Executor.Region
        { first_set = region.Region.first_set; last_set = region.Region.last_set }
  else Executor.Full_cache

let lookup_setup name =
  match List.assoc_opt name setups with
  | Some s -> Ok (s ())
  | None ->
    Error
      (Printf.sprintf "unknown setup %s (expected one of: %s)" name
         (String.concat ", " setup_names))

let lookup_template ?isa name =
  match Templates.by_name ?isa name with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg

(* The batch CLI's campaign-name formula.  Journal records embed this
   name, so the service must use the identical spelling for its streams to
   match batch output byte for byte. *)
let campaign_name ~setup ~template =
  Printf.sprintf "%s on template %s" setup template
