(* The HTTP front end: a listening socket, an accept loop on its own
   thread, and a fixed pool of connection workers fed through a bounded
   handoff queue — when the queue is full the acceptor answers 503 with
   Retry-After itself, so load shedding happens before any thread is
   spawned (there is no thread-per-connection path).  Connections are
   persistent: each worker serves requests off one socket until the
   client says Connection: close, the per-connection request cap rolls
   it over, the idle timeout fires, or the server stops.  All campaign
   logic lives behind Scheduler; this module only translates HTTP to
   scheduler calls and wire renderings. *)

module Json = Scamv_util.Json
module Deadline = Scamv_util.Deadline
module Export = Scamv_telemetry.Export

type t = {
  scheduler : Scheduler.t;
  host : string;
  mutable port : int;  (** resolved after {!start} when created with port 0 *)
  max_connections : int;  (** connection workers; also the handoff-queue cap *)
  idle_timeout : float;  (** seconds a keep-alive connection may sit idle *)
  max_requests : int;  (** requests served per connection before rollover *)
  lock : Mutex.t;
  pending_nonempty : Condition.t;
  pending : Unix.file_descr Queue.t;  (** accepted, not yet claimed by a worker *)
  idle_tokens : Deadline.t option array;
      (** per-worker idle deadline, cancelled by {!stop} to unpark readers *)
  mutable active : int;  (** connections currently being served *)
  mutable fd : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  mutable workers : Thread.t list;
  mutable stopping : bool;
}

let create ?(host = "127.0.0.1") ?(port = 8421) ?(max_connections = 16)
    ?(idle_timeout = 5.0) ?(max_requests = 1000) scheduler =
  if max_connections < 1 then
    invalid_arg "Server.create: max_connections must be >= 1";
  if max_requests < 1 then invalid_arg "Server.create: max_requests must be >= 1";
  if idle_timeout <= 0.0 then
    invalid_arg "Server.create: idle_timeout must be > 0";
  {
    scheduler;
    host;
    port;
    max_connections;
    idle_timeout;
    max_requests;
    lock = Mutex.create ();
    pending_nonempty = Condition.create ();
    pending = Queue.create ();
    idle_tokens = Array.make max_connections None;
    active = 0;
    fd = None;
    accept_thread = None;
    workers = [];
    stopping = false;
  }

let port t = t.port

(* ---- handlers ---- *)

let error_json msg = Json.Obj [ ("error", Json.Str msg) ]

let respond_error conn ~status msg = Http.respond_json ~status conn (error_json msg)

let h_submit t req conn =
  match Json.of_string req.Http.body with
  | exception Json.Parse_error msg -> respond_error conn ~status:400 ("bad JSON: " ^ msg)
  | body -> (
    let tenant =
      match Json.member "tenant" body with
      | Some (Json.Str s) -> Ok s
      | None -> Ok "default"
      | Some _ -> Error "field tenant must be a string"
    in
    match tenant with
    | Error msg -> respond_error conn ~status:400 msg
    | Ok tenant -> (
      match Session.params_of_json body with
      | Error msg -> respond_error conn ~status:400 msg
      | Ok params -> (
        match Scheduler.submit t.scheduler ~tenant params with
        | Ok s -> Http.respond_json ~status:201 conn (Session.status_json s)
        | Error (Scheduler.Invalid msg) -> respond_error conn ~status:400 msg
        | Error (Scheduler.Busy r) ->
          Scheduler.bump t.scheduler "service.http.rejected";
          Http.respond_json ~status:429
            ~headers:[ ("Retry-After", "1") ]
            conn
            (error_json (Tenant.rejection_reason r))
        | Error Scheduler.Stopped ->
          respond_error conn ~status:503 "service shutting down")))

let h_list t _req conn =
  let sessions = Scheduler.list t.scheduler in
  Http.respond_json conn
    (Json.Obj [ ("campaigns", Json.Arr (List.map Session.summary_json sessions)) ])

let with_session t id conn f =
  match Scheduler.find t.scheduler id with
  | None -> respond_error conn ~status:404 (Printf.sprintf "no campaign %s" id)
  | Some s -> f s

let h_status t id _req conn =
  with_session t id conn (fun s -> Http.respond_json conn (Session.status_json s))

let h_cancel t id _req conn =
  with_session t id conn (fun s ->
      let cancelled = Scheduler.cancel t.scheduler s in
      Http.respond_json conn
        (Json.Obj
           [
             ("id", Json.Str id);
             ("cancelled", Json.Bool cancelled);
             ("state", Json.Str (Session.state_name (Session.state s)));
           ]))

let h_stream t id req conn =
  with_session t id conn (fun s ->
      let from =
        match Http.query req "from" with
        | None -> 0
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> n
          | _ -> raise (Http.Bad_request "query parameter from must be a non-negative integer"))
      in
      let st = Http.start_stream conn ~status:200 in
      let rec loop from =
        let lines, next, terminal = Session.wait_lines s ~from in
        List.iter (fun line -> Http.stream_chunk st (line ^ "\n")) lines;
        if not terminal then loop next
      in
      loop from;
      Http.stream_close st)

let h_metrics t _req conn =
  Http.respond ~content_type:"text/plain; version=0.0.4" conn ~status:200
    (Export.prometheus (Scheduler.metrics_snapshot t.scheduler))

let h_health _t _req conn = Http.respond_json conn (Json.Obj [ ("ok", Json.Bool true) ])

let routes t =
  let param name params = List.assoc name params in
  Router.create
    [
      Router.route "POST" "/campaigns" (fun _ -> h_submit t);
      Router.route "GET" "/campaigns" (fun _ -> h_list t);
      Router.route "GET" "/campaigns/:id" (fun p -> h_status t (param "id" p));
      Router.route "GET" "/campaigns/:id/stream" (fun p -> h_stream t (param "id" p));
      Router.route "DELETE" "/campaigns/:id" (fun p -> h_cancel t (param "id" p));
      Router.route "GET" "/metrics" (fun _ -> h_metrics t);
      Router.route "GET" "/healthz" (fun _ -> h_health t);
    ]

(* ---- connection plumbing ---- *)

let dispatch t routes req conn =
  Scheduler.bump t.scheduler "service.http.requests";
  match Router.dispatch routes ~meth:req.Http.meth ~path:req.Http.path with
  | Router.Matched handler -> handler req conn
  | Router.Method_not_allowed allowed ->
    Http.respond
      ~headers:[ ("Allow", String.concat ", " allowed) ]
      conn ~status:405 "method not allowed\n"
  | Router.Not_found -> respond_error conn ~status:404 "no such resource"

let set_idle_token t slot token =
  Mutex.lock t.lock;
  t.idle_tokens.(slot) <- token;
  Mutex.unlock t.lock

(* Serve requests off one connection until the client closes or opts out,
   the request cap rolls the connection over, the idle deadline fires, or
   the server stops.  A [Bad_request] — from the parser or a handler —
   answers 400 and closes: the stream's framing can no longer be trusted,
   but the worker itself stays healthy and moves on to the next
   connection. *)
let handle_connection t routes slot fd =
  let reader = Http.reader_of_fd fd in
  let oc = Unix.out_channel_of_descr fd in
  let conn = Http.conn_of_channel oc in
  let finally () =
    set_idle_token t slot None;
    (try flush oc with Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop served =
        let idle = Deadline.create (Deadline.Wall_seconds t.idle_timeout) in
        Mutex.lock t.lock;
        let stopping = t.stopping in
        t.idle_tokens.(slot) <- (if stopping then None else Some idle);
        Mutex.unlock t.lock;
        if not stopping then
          match Http.read_request ~idle reader with
          | None -> ()  (* peer closed between requests *)
          | exception Http.Timeout -> ()  (* idle too long, or server stop *)
          | exception Http.Bad_request msg ->
            Http.set_keep_alive conn false;
            (try respond_error conn ~status:400 msg with Sys_error _ -> ())
          | Some req ->
            if served > 0 then
              Scheduler.bump t.scheduler "service.connections_reused";
            Http.set_keep_alive conn
              (Http.wants_keep_alive req
              && served + 1 < t.max_requests
              && not t.stopping);
            (try dispatch t routes req conn with
            | Http.Bad_request msg ->
              Http.set_keep_alive conn false;
              (try respond_error conn ~status:400 msg with Sys_error _ -> ())
            | Sys_error _ -> Http.set_keep_alive conn false  (* peer went away *)
            | e ->
              Scheduler.bump t.scheduler "service.http.errors";
              Http.set_keep_alive conn false;
              (try respond_error conn ~status:500 (Printexc.to_string e)
               with Sys_error _ -> ()));
            if Http.keep_alive conn then loop (served + 1)
      in
      loop 0)

let rec worker_loop t routes slot =
  Mutex.lock t.lock;
  while Queue.is_empty t.pending && not t.stopping do
    Condition.wait t.pending_nonempty t.lock
  done;
  if t.stopping then Mutex.unlock t.lock  (* stop drains the queue itself *)
  else begin
    let fd = Queue.pop t.pending in
    t.active <- t.active + 1;
    Mutex.unlock t.lock;
    (try handle_connection t routes slot fd with _ -> ());
    Mutex.lock t.lock;
    t.active <- t.active - 1;
    Mutex.unlock t.lock;
    worker_loop t routes slot
  end

(* Load shedding on the accept path: the handoff queue is bounded, and a
   connection that would overflow it is answered 503 + Retry-After by the
   acceptor itself (the response is small enough to fit the socket
   buffer, so this cannot block the accept loop on a slow client). *)
let reject_overloaded t fd =
  Scheduler.bump t.scheduler "service.connections_rejected";
  (try
     let conn = Http.conn_of_channel (Unix.out_channel_of_descr fd) in
     Http.respond
       ~headers:[ ("Retry-After", "1") ]
       conn ~status:503 "connection queue full\n"
   with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t listener =
  let rec loop () =
    match Unix.accept ~cloexec:true listener with
    | fd, _ ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let overloaded =
          Mutex.lock t.lock;
          let over = Queue.length t.pending >= t.max_connections in
          if not over then begin
            Queue.push fd t.pending;
            Condition.signal t.pending_nonempty
          end;
          Mutex.unlock t.lock;
          over
        in
        if overloaded then reject_overloaded t fd;
        loop ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> ()  (* listener gone: stop *)
  in
  loop ()

let start t =
  if t.fd <> None then invalid_arg "Server.start: already started";
  (* A peer that disconnects mid-stream must surface as EPIPE, not kill
     the process. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  (* Pre-register the connection counters and contribute the live
     connection gauges, so /metrics carries them from the first scrape. *)
  List.iter
    (fun name -> Scheduler.bump ~n:0 t.scheduler name)
    [ "service.connections_reused"; "service.connections_rejected" ];
  Scheduler.register_gauge_source t.scheduler (fun () ->
      Mutex.lock t.lock;
      let active = t.active and queued = Queue.length t.pending in
      Mutex.unlock t.lock;
      [
        ("service.connections_active", float_of_int active);
        ("service.connections_queued", float_of_int queued);
      ]);
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener
    (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
  Unix.listen listener 64;
  (match Unix.getsockname listener with
  | Unix.ADDR_INET (_, p) -> t.port <- p
  | _ -> ());
  t.fd <- Some listener;
  let routes = routes t in
  t.workers <-
    List.init t.max_connections (fun slot ->
        Thread.create (fun () -> worker_loop t routes slot) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listener) ())

let stop t =
  match t.fd with
  | None -> ()
  | Some listener ->
    t.fd <- None;
    t.stopping <- true;
    (* Closing a listening socket does not wake a thread blocked in
       accept(2); a throw-away connection does, portably. *)
    (try
       let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
       let addr =
         if t.host = "0.0.0.0" then "127.0.0.1" else t.host
       in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, t.port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    (* Queued connections never reached a worker: just close them. *)
    Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.pending;
    Queue.clear t.pending;
    (* Unpark workers waiting for connections, and wake workers parked in
       an idle keep-alive read (their next poll raises Timeout). *)
    Array.iter
      (function Some d -> Deadline.cancel d | None -> ())
      t.idle_tokens;
    Condition.broadcast t.pending_nonempty;
    Mutex.unlock t.lock;
    t.workers <- []
