(* The HTTP front end: a listening socket, an accept loop on its own
   thread, and a thread per connection (connections are short-lived —
   one request each — except the NDJSON streams, which live as long as
   their campaign).  All campaign logic lives behind Scheduler; this
   module only translates HTTP to scheduler calls and wire renderings. *)

module Json = Scamv_util.Json
module Export = Scamv_telemetry.Export

type t = {
  scheduler : Scheduler.t;
  host : string;
  mutable port : int;  (** resolved after {!start} when created with port 0 *)
  mutable fd : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
}

let create ?(host = "127.0.0.1") ?(port = 8421) scheduler =
  { scheduler; host; port; fd = None; accept_thread = None; stopping = false }

let port t = t.port

(* ---- handlers ---- *)

let error_json msg = Json.Obj [ ("error", Json.Str msg) ]

let respond_error oc ~status msg = Http.respond_json ~status oc (error_json msg)

let h_submit t req oc =
  match Json.of_string req.Http.body with
  | exception Json.Parse_error msg -> respond_error oc ~status:400 ("bad JSON: " ^ msg)
  | body -> (
    let tenant =
      match Json.member "tenant" body with
      | Some (Json.Str s) -> Ok s
      | None -> Ok "default"
      | Some _ -> Error "field tenant must be a string"
    in
    match tenant with
    | Error msg -> respond_error oc ~status:400 msg
    | Ok tenant -> (
      match Session.params_of_json body with
      | Error msg -> respond_error oc ~status:400 msg
      | Ok params -> (
        match Scheduler.submit t.scheduler ~tenant params with
        | Ok s -> Http.respond_json ~status:201 oc (Session.status_json s)
        | Error (Scheduler.Invalid msg) -> respond_error oc ~status:400 msg
        | Error (Scheduler.Busy r) ->
          Scheduler.bump t.scheduler "service.http.rejected";
          Http.respond_json ~status:429
            ~headers:[ ("Retry-After", "1") ]
            oc
            (error_json (Tenant.rejection_reason r))
        | Error Scheduler.Stopped ->
          respond_error oc ~status:503 "service shutting down")))

let h_list t _req oc =
  let sessions = Scheduler.list t.scheduler in
  Http.respond_json oc
    (Json.Obj [ ("campaigns", Json.Arr (List.map Session.summary_json sessions)) ])

let with_session t id oc f =
  match Scheduler.find t.scheduler id with
  | None -> respond_error oc ~status:404 (Printf.sprintf "no campaign %s" id)
  | Some s -> f s

let h_status t id _req oc =
  with_session t id oc (fun s -> Http.respond_json oc (Session.status_json s))

let h_cancel t id _req oc =
  with_session t id oc (fun s ->
      let cancelled = Scheduler.cancel t.scheduler s in
      Http.respond_json oc
        (Json.Obj
           [
             ("id", Json.Str id);
             ("cancelled", Json.Bool cancelled);
             ("state", Json.Str (Session.state_name (Session.state s)));
           ]))

let h_stream t id req oc =
  with_session t id oc (fun s ->
      let from =
        match Http.query req "from" with
        | None -> 0
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> n
          | _ -> raise (Http.Bad_request "query parameter from must be a non-negative integer"))
      in
      let st = Http.start_stream oc ~status:200 in
      let rec loop from =
        let lines, next, terminal = Session.wait_lines s ~from in
        List.iter (fun line -> Http.stream_chunk st (line ^ "\n")) lines;
        if not terminal then loop next
      in
      loop from;
      Http.stream_close st)

let h_metrics t _req oc =
  Http.respond ~content_type:"text/plain; version=0.0.4" oc ~status:200
    (Export.prometheus (Scheduler.metrics_snapshot t.scheduler))

let h_health _t _req oc = Http.respond_json oc (Json.Obj [ ("ok", Json.Bool true) ])

let routes t =
  let param name params = List.assoc name params in
  Router.create
    [
      Router.route "POST" "/campaigns" (fun _ -> h_submit t);
      Router.route "GET" "/campaigns" (fun _ -> h_list t);
      Router.route "GET" "/campaigns/:id" (fun p -> h_status t (param "id" p));
      Router.route "GET" "/campaigns/:id/stream" (fun p -> h_stream t (param "id" p));
      Router.route "DELETE" "/campaigns/:id" (fun p -> h_cancel t (param "id" p));
      Router.route "GET" "/metrics" (fun _ -> h_metrics t);
      Router.route "GET" "/healthz" (fun _ -> h_health t);
    ]

(* ---- connection plumbing ---- *)

let handle_connection t routes fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    (try flush oc with Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      try
        match Http.read_request ic with
        | None -> ()
        | Some req -> (
          Scheduler.bump t.scheduler "service.http.requests";
          match Router.dispatch routes ~meth:req.Http.meth ~path:req.Http.path with
          | Router.Matched handler -> handler req oc
          | Router.Method_not_allowed allowed ->
            Http.respond
              ~headers:[ ("Allow", String.concat ", " allowed) ]
              oc ~status:405 "method not allowed\n"
          | Router.Not_found -> respond_error oc ~status:404 "no such resource")
      with
      | Http.Bad_request msg -> ( try respond_error oc ~status:400 msg with Sys_error _ -> ())
      | Sys_error _ -> ()  (* peer went away mid-response *)
      | e -> (
        Scheduler.bump t.scheduler "service.http.errors";
        try respond_error oc ~status:500 (Printexc.to_string e) with Sys_error _ -> ()))

let accept_loop t routes listener =
  let rec loop () =
    match Unix.accept ~cloexec:true listener with
    | conn, _ ->
      if t.stopping then (try Unix.close conn with Unix.Unix_error _ -> ())
      else begin
        ignore (Thread.create (fun () -> handle_connection t routes conn) ());
        loop ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> ()  (* listener gone: stop *)
  in
  loop ()

let start t =
  if t.fd <> None then invalid_arg "Server.start: already started";
  (* A peer that disconnects mid-stream must surface as EPIPE, not kill
     the process. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener
    (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
  Unix.listen listener 64;
  (match Unix.getsockname listener with
  | Unix.ADDR_INET (_, p) -> t.port <- p
  | _ -> ());
  t.fd <- Some listener;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t (routes t) listener) ())

let stop t =
  match t.fd with
  | None -> ()
  | Some listener ->
    t.fd <- None;
    t.stopping <- true;
    (* Closing a listening socket does not wake a thread blocked in
       accept(2); a throw-away connection does, portably. *)
    (try
       let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
       let addr =
         if t.host = "0.0.0.0" then "127.0.0.1" else t.host
       in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, t.port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (try Unix.close listener with Unix.Unix_error _ -> ())
