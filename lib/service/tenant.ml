(* Multi-tenancy primitives: tenant naming, per-tenant admission quotas
   and the deterministic seed namespace.

   A tenant's runtime state (FIFO backlog, sequence counter, unfinished
   count) carries no internal locking: the scheduler touches it only under
   its own lock. *)

module Splitmix = Scamv_util.Splitmix

type quota = {
  max_backlog : int;  (** queued-but-not-running sessions allowed *)
  max_active : int;  (** unfinished (queued + running) sessions allowed *)
}

let default_quota = { max_backlog = 8; max_active = 16 }

type rejection = Backlog_full | Quota_exceeded

let rejection_reason = function
  | Backlog_full -> "tenant backlog full"
  | Quota_exceeded -> "tenant quota exceeded"

type t = {
  name : string;
  quota : quota;
  pending : string Queue.t;  (** session ids awaiting a runner, FIFO *)
  mutable sequence : int;  (** sessions ever admitted; names the next id *)
  mutable active : int;  (** admitted and not yet terminal *)
}

let valid_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
  | _ -> false

let validate_name name =
  let n = String.length name in
  if n = 0 then Error "tenant name must be non-empty"
  else if n > 64 then Error "tenant name longer than 64 bytes"
  else if not (String.for_all valid_name_char name) then
    Error "tenant name may only contain [A-Za-z0-9._-]"
  else Ok name

let create ~name ~quota =
  { name; quota; pending = Queue.create (); sequence = 0; active = 0 }

let admit t =
  if Queue.length t.pending >= t.quota.max_backlog then Error Backlog_full
  else if t.active >= t.quota.max_active then Error Quota_exceeded
  else begin
    let seq = t.sequence in
    t.sequence <- seq + 1;
    t.active <- t.active + 1;
    Ok seq
  end

let finish t = t.active <- max 0 (t.active - 1)

(* FNV-1a, the 64-bit variant — a stable, dependency-free string hash. *)
let fnv1a64 s =
  let open Int64 in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := mul (logxor !h (of_int (Char.code c))) prime) s;
  !h

let derive_seed ~tenant ~sequence =
  (* One splitmix64 step over (hash(tenant) ^ sequence): a fixed function
     of the pair, so a tenant's nth campaign always draws the same seed no
     matter what other tenants are doing — and a batch CLI run given the
     same seed is byte-identical to the served campaign. *)
  let g =
    Splitmix.of_seed (Int64.logxor (fnv1a64 tenant) (Int64.of_int sequence))
  in
  fst (Splitmix.next g)

let derive_slot ~tenant ~sequence ~slots =
  if slots <= 1 then 0
  else begin
    (* Second draw from the same (tenant, sequence) generator — the first
       is the campaign seed ([derive_seed]).  A pure function of the pair
       and the slot count, never of arrival timing or queue depth, so a
       given submission always lands on the same pool slice and its
       worker-count-dependent schedule is reproducible across server
       runs. *)
    let g =
      Splitmix.of_seed (Int64.logxor (fnv1a64 tenant) (Int64.of_int sequence))
    in
    let _, g = Splitmix.next g in
    let v, _ = Splitmix.next g in
    Int64.to_int (Int64.unsigned_rem v (Int64.of_int slots))
  end
