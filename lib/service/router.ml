(* Path routing: fixed segments and [:name] binders, method-aware so a
   known path with the wrong method yields 405 rather than 404. *)

type 'a route = {
  meth : string;
  pattern : string list;  (* segments; ":name" binds *)
  handler : (string * string) list -> 'a;
}

type 'a t = 'a route list

type 'a outcome =
  | Matched of 'a
  | Method_not_allowed of string list  (** allowed methods for the path *)
  | Not_found

let segments path = List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let route meth pattern handler =
  { meth = String.uppercase_ascii meth; pattern = segments pattern; handler }

let create routes = routes

let rec match_segments pattern segs params =
  match (pattern, segs) with
  | [], [] -> Some (List.rev params)
  | p :: pattern', s :: segs' ->
    if String.length p > 0 && p.[0] = ':' then
      let name = String.sub p 1 (String.length p - 1) in
      match_segments pattern' segs' ((name, s) :: params)
    else if p = s then match_segments pattern' segs' params
    else None
  | _ -> None

let dispatch t ~meth ~path =
  let meth = String.uppercase_ascii meth in
  let segs = segments path in
  let matches =
    List.filter_map
      (fun r ->
        match match_segments r.pattern segs [] with
        | Some params -> Some (r, params)
        | None -> None)
      t
  in
  match List.find_opt (fun (r, _) -> r.meth = meth) matches with
  | Some (r, params) -> Matched (r.handler params)
  | None -> (
    match matches with
    | [] -> Not_found
    | _ :: _ ->
      Method_not_allowed (List.sort_uniq compare (List.map (fun (r, _) -> r.meth) matches)))
