(* The service's brain: admission control, per-tenant FIFO queues served
   round-robin by K runner threads (one per pool slice), a deterministically
   sliced worker pool, and journal-backed persistence so a restarted server
   resumes in-flight campaigns.

   Concurrency model: one mutex guards all scheduler state (tenant table,
   session table, queues, counters).  Each runner thread owns one slot: it
   takes a session assigned to that slot out under the lock, runs the
   campaign with the lock released — on the slot's own pool slice — and
   re-acquires it only to publish the result.  Sessions have their own
   locks (see Session), and the ordering discipline is strictly
   scheduler lock -> session lock, never the reverse.

   Determinism under concurrency: slice widths are a pure function of
   (jobs, concurrency) and a session's slot is a pure function of its
   (tenant, sequence) — Tenant.derive_slot — so which slice a campaign
   runs on, and with how many workers, never depends on arrival timing or
   on what the other slots are doing.  Combined with the per-campaign
   seeds and the pool's index-ordered batch protocol, a served campaign's
   journal and record stream stay byte-identical at every --concurrency
   level and identical to a batch CLI run. *)

module Json = Scamv_util.Json
module Deadline = Scamv_util.Deadline
module Stopwatch = Scamv_util.Stopwatch
module Pool = Scamv_util.Pool
module Metrics = Scamv_telemetry.Metrics
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Diff = Scamv.Diff
module Isa = Scamv_arch.Isa

type config = {
  jobs : int;
  concurrency : int;
  state_dir : string option;
  quota : Tenant.quota;
  clock : Stopwatch.clock;
}

let default_config =
  {
    jobs = 1;
    concurrency = 1;
    state_dir = None;
    quota = Tenant.default_quota;
    clock = Stopwatch.wall;
  }

type submit_error = Invalid of string | Busy of Tenant.rejection | Stopped

type t = {
  cfg : config;
  concurrency : int;  (** normalized [cfg.concurrency] (>= 1) *)
  lock : Mutex.t;
  work : Condition.t;  (** signalled on submit/stop; runners wait here *)
  idle : Condition.t;  (** broadcast when a runner finishes a session *)
  tenants : (string, Tenant.t) Hashtbl.t;
  sessions : (string, Session.t) Hashtbl.t;
  slices : Pool.sliced;
  mutable rr : string list;  (** tenant round-robin order *)
  mutable submitted : int;  (** global submission counter *)
  mutable stopping : bool;
  running : Session.t option array;  (** what each runner slot executes *)
  mutable runners : Thread.t list;
  mutable gauge_sources : (unit -> (string * float) list) list;
      (** live gauges contributed by other layers (the HTTP server's
          connection gauges); sampled by {!metrics_snapshot} *)
  mutable server_metrics : Metrics.t;  (** request/session counters *)
  mutable campaign_metrics : Metrics.t;  (** merged campaign telemetry *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump ?(n = 1) t name = locked t (fun () -> t.server_metrics <- Metrics.add name n t.server_metrics)

let register_gauge_source t f =
  locked t (fun () -> t.gauge_sources <- t.gauge_sources @ [ f ])

let concurrency t = t.concurrency

(* ---- persistence ---- *)

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let persist_meta s =
  match s.Session.meta_path with
  | None -> ()
  | Some path ->
    write_atomic path (Json.to_string ~pretty:true (Session.meta_json s))

let session_paths cfg id =
  match cfg.state_dir with
  | None -> (None, None)
  | Some dir ->
    (Some (Filename.concat dir (id ^ ".journal")),
     Some (Filename.concat dir (id ^ ".meta.json")))

(* ---- tenant bookkeeping (all under the scheduler lock) ---- *)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some ten -> ten
  | None ->
    let ten = Tenant.create ~name ~quota:t.cfg.quota in
    Hashtbl.replace t.tenants name ten;
    t.rr <- t.rr @ [ name ];
    ten

(* Take the tenant's first pending session assigned to [slot], keeping
   the relative order of everything else in the queue. *)
let take_for_slot t ten ~slot =
  let keep = Queue.create () in
  let found = ref None in
  Queue.iter
    (fun id ->
      if !found = None && (Hashtbl.find t.sessions id).Session.slot = slot then
        found := Some id
      else Queue.push id keep)
    ten.Tenant.pending;
  (match !found with
  | Some _ ->
    Queue.clear ten.Tenant.pending;
    Queue.transfer keep ten.Tenant.pending
  | None -> ());
  !found

(* Round-robin pick for one runner slot: first tenant (in rr order) with
   pending work for that slot wins and moves to the back; the others keep
   their relative order. *)
let pick t ~slot =
  let rec go seen = function
    | [] -> None
    | name :: rest -> (
      let ten = Hashtbl.find t.tenants name in
      match take_for_slot t ten ~slot with
      | None -> go (name :: seen) rest
      | Some id ->
        t.rr <- List.rev_append seen rest @ [ name ];
        Some (Hashtbl.find t.sessions id))
  in
  go [] t.rr

let queued_count t =
  Hashtbl.fold (fun _ ten acc -> acc + Queue.length ten.Tenant.pending) t.tenants 0

let running_count t =
  Array.fold_left
    (fun acc -> function Some _ -> acc + 1 | None -> acc)
    0 t.running

(* ---- campaign execution ---- *)

(* The isa parameter selects the workload shape: a single-ISA campaign
   (aarch64/riscv) or the differential mode, which runs both ISAs and
   appends the cross-ISA comparison. *)
let workload_of_params p =
  match p.Session.isa with
  | "aarch64" -> Ok (`Single Isa.Aarch64)
  | "riscv" -> Ok (`Single Isa.Riscv)
  | "diff" -> Ok `Diff
  | other ->
    Error (Printf.sprintf "unknown isa %s (expected one of: aarch64, riscv, diff)" other)

let build_config t s isa =
  let ( let* ) = Result.bind in
  let p = s.Session.params in
  let* template = Workload.lookup_template ~isa p.Session.template in
  let* setup = Workload.lookup_setup p.Session.setup in
  let sat_budget =
    if p.Session.max_conflicts > 0 then
      Some (Scamv_smt.Sat.budget ~conflicts:p.Session.max_conflicts ())
    else None
  in
  let deadline =
    if p.Session.deadline_conflicts > 0 then
      Some (Deadline.Conflicts p.Session.deadline_conflicts)
    else None
  in
  Ok
    (Campaign.make ~name:s.Session.campaign_name ~isa ~template ~setup
       ~view:(Workload.view_for p.Session.setup) ~programs:p.Session.programs
       ~tests_per_program:p.Session.tests_per_program ~seed:s.Session.seed
       ?sat_budget ~portfolio:p.Session.portfolio ?deadline ~clock:t.cfg.clock
       ~cancel:s.Session.cancel ())

let finish_counter = function
  | Session.Completed -> "service.campaigns.completed"
  | Session.Cancelled -> "service.campaigns.cancelled"
  | _ -> "service.campaigns.failed"

let run_session t s ~slot =
  let pool = Pool.slice t.slices slot in
  Session.set_state s Session.Running;
  persist_meta s;
  (let on_event m = Session.push_line s (Session.progress_line m) in
   let on_record ev = Session.push_line s (Session.record_line ev) in
   let publish (stats, wall_seconds, telemetry) =
     let final =
       if Deadline.expired s.Session.cancel then Session.Cancelled
       else Session.Completed
     in
     Session.conclude s final ~stats:(Session.stats_json stats) ~wall_seconds ();
     locked t (fun () ->
         t.campaign_metrics <-
           Metrics.merge t.campaign_metrics
             telemetry.Scamv_telemetry.Collector.metrics)
   in
   let with_journal run =
     let journal = Journal.create ?path:s.Session.journal_path () in
     let result =
       try Ok (run journal) with
       | Pool.Shut_down -> Error "service shutting down"
       | e -> Error (Printexc.to_string e)
     in
     Journal.close journal;
     match result with
     | Ok outcome -> publish outcome
     | Error reason -> Session.conclude s (Session.Failed reason) ()
   in
   match workload_of_params s.Session.params with
   | Error msg -> Session.conclude s (Session.Failed msg) ()
   | Ok (`Single isa) -> (
     match build_config t s isa with
     | Error msg -> Session.conclude s (Session.Failed msg) ()
     | Ok cfg ->
       let resume =
         match s.Session.resume_from with
         | Some p when Sys.file_exists p -> Some p
         | _ -> None
       in
       with_journal (fun journal ->
           let outcome =
             Campaign.run ~on_event ~on_record ~journal ?resume ~pool cfg
           in
           ( outcome.Campaign.stats,
             outcome.Campaign.wall_seconds,
             outcome.Campaign.telemetry )))
   | Ok `Diff ->
     let p = s.Session.params in
     (match Workload.lookup_setup p.Session.setup with
     | Error msg -> Session.conclude s (Session.Failed msg) ()
     | Ok setup ->
       (* Differential campaigns re-run from scratch after a restart:
          the comparison needs both sides' full event streams, so a
          partial journal is not resumed into. *)
       with_journal (fun journal ->
           let outcome =
             Diff.run ~on_event ~on_record ~journal ~pool
               ~name:s.Session.campaign_name ~template:p.Session.template
               ~setup ~view:(Workload.view_for p.Session.setup)
               ~programs:p.Session.programs
               ~tests_per_program:p.Session.tests_per_program
               ~seed:s.Session.seed
               ?sat_budget:
                 (if p.Session.max_conflicts > 0 then
                    Some (Scamv_smt.Sat.budget ~conflicts:p.Session.max_conflicts ())
                  else None)
               ~portfolio:p.Session.portfolio ~clock:t.cfg.clock
               ~cancel:s.Session.cancel ()
           in
           let wall =
             outcome.Diff.aarch64.Campaign.wall_seconds
             +. outcome.Diff.riscv.Campaign.wall_seconds
           in
           let telemetry =
             Scamv_telemetry.Collector.merge_reports
               outcome.Diff.aarch64.Campaign.telemetry
               outcome.Diff.riscv.Campaign.telemetry
           in
           (outcome.Diff.stats, wall, telemetry))));
  persist_meta s;
  bump t (finish_counter (Session.state s))

let rec runner_loop t slot =
  Mutex.lock t.lock;
  let rec next () =
    if t.stopping then None
    else
      match pick t ~slot with
      | Some s -> Some s
      | None ->
        Condition.wait t.work t.lock;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some s ->
    t.running.(slot) <- Some s;
    Mutex.unlock t.lock;
    run_session t s ~slot;
    Mutex.lock t.lock;
    t.running.(slot) <- None;
    Tenant.finish (Hashtbl.find t.tenants s.Session.tenant);
    Condition.broadcast t.idle;
    Mutex.unlock t.lock;
    runner_loop t slot

(* ---- restart recovery ---- *)

(* Re-populate sessions from the state directory's <id>.meta.json files:
   terminal sessions get their stream lines rebuilt from the journal so
   late readers still see the full sequence; non-terminal ones are
   re-enqueued (in original submission order) with the journal as a
   resume checkpoint, so completed programs replay instead of re-running.
   Slots are re-derived from the id's sequence suffix rather than
   persisted, so a restart under a different --concurrency re-partitions
   the backlog cleanly. *)
let recover t dir =
  let metas =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".meta.json")
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           let read () =
             let ic = open_in_bin path in
             let n = in_channel_length ic in
             let s = really_input_string ic n in
             close_in ic;
             s
           in
           match Session.meta_of_json (Json.of_string (read ())) with
           | Ok m -> Some m
           | Error _ | (exception Json.Parse_error _) | (exception Sys_error _) ->
             None)
    |> List.sort (fun a b ->
           compare a.Session.meta_submitted b.Session.meta_submitted)
  in
  List.iter
    (fun (m : Session.meta) ->
      let id = m.Session.meta_id in
      let tenant = m.Session.meta_tenant in
      let seed = Option.get m.Session.meta_params.Session.seed in
      let journal_path, meta_path = session_paths t.cfg id in
      let sequence =
        match String.rindex_opt id '-' with
        | Some i ->
          int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
        | None -> None
      in
      let slot =
        match sequence with
        | Some seq -> Tenant.derive_slot ~tenant ~sequence:seq ~slots:t.concurrency
        | None -> 0
      in
      let s =
        Session.create ~id ~tenant ~params:m.Session.meta_params ~seed
          ~campaign_name:
            (Workload.campaign_name
               ~setup:m.Session.meta_params.Session.setup
               ~template:m.Session.meta_params.Session.template)
          ?journal_path ?meta_path ~submitted:m.Session.meta_submitted ~slot ()
      in
      let ten = tenant_of t tenant in
      (* Restore the tenant's sequence high-water mark from the id's
         numeric suffix so future namespace seeds never repeat. *)
      (match sequence with
      | Some seq when seq >= ten.Tenant.sequence -> ten.Tenant.sequence <- seq + 1
      | _ -> ());
      Hashtbl.replace t.sessions id s;
      t.submitted <- max t.submitted (m.Session.meta_submitted + 1);
      let terminal =
        match m.Session.meta_state with
        | "completed" -> Some Session.Completed
        | "cancelled" -> Some Session.Cancelled
        | "failed" ->
          Some (Session.Failed (Option.value ~default:"unknown" m.Session.meta_reason))
        | _ -> None
      in
      match terminal with
      | Some st ->
        (match journal_path with
        | Some p when Sys.file_exists p ->
          let j, _recovery = Journal.load ~path:p in
          List.iter
            (fun ev -> Session.push_line s (Session.record_line ev))
            (Journal.events j)
        | _ -> ());
        Session.conclude s st ?stats:m.Session.meta_stats
          ~wall_seconds:m.Session.meta_wall_seconds ()
      | None ->
        ten.Tenant.active <- ten.Tenant.active + 1;
        (match journal_path with
        | Some p when Sys.file_exists p -> s.Session.resume_from <- Some p
        | _ -> ());
        Queue.push id ten.Tenant.pending)
    metas

(* ---- public interface ---- *)

let create ?(config = default_config) ?(start = true) () =
  if config.concurrency < 1 then
    invalid_arg "Scheduler.create: concurrency must be >= 1";
  let concurrency = config.concurrency in
  let t =
    {
      cfg = config;
      concurrency;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      tenants = Hashtbl.create 8;
      sessions = Hashtbl.create 32;
      slices =
        Pool.create_sliced ~total:(Pool.resolve_jobs config.jobs)
          ~slices:concurrency;
      rr = [];
      submitted = 0;
      stopping = false;
      running = Array.make concurrency None;
      runners = [];
      gauge_sources = [];
      server_metrics =
        (* Pre-register the campaign outcome counters so /metrics exposes
           them (as zeros) from the first scrape. *)
        List.fold_left
          (fun m name -> Metrics.add name 0 m)
          Metrics.empty
          [
            "service.campaigns.submitted";
            "service.campaigns.completed";
            "service.campaigns.cancelled";
            "service.campaigns.failed";
          ];
      campaign_metrics = Metrics.empty;
    }
  in
  (match config.state_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    recover t dir);
  if start then
    t.runners <-
      List.init concurrency (fun slot ->
          Thread.create (fun () -> runner_loop t slot) ());
  t

let submit t ~tenant params =
  let ( let* ) = Result.bind in
  let validated =
    let* tenant = Result.map_error (fun e -> Invalid e) (Tenant.validate_name tenant) in
    let* isa_workload =
      Result.map_error (fun e -> Invalid e) (workload_of_params params)
    in
    let* _ =
      Result.map_error (fun e -> Invalid e)
        (Workload.lookup_template
           ?isa:(match isa_workload with `Single i -> Some i | `Diff -> None)
           params.Session.template)
    in
    let* _ =
      Result.map_error (fun e -> Invalid e)
        (Workload.lookup_setup params.Session.setup)
    in
    Ok tenant
  in
  match validated with
  | Error e -> Error e
  | Ok tenant ->
    locked t (fun () ->
        if t.stopping then Error Stopped
        else
          let ten = tenant_of t tenant in
          match Tenant.admit ten with
          | Error r -> Error (Busy r)
          | Ok seq ->
            let seed =
              match params.Session.seed with
              | Some s -> s
              | None -> Tenant.derive_seed ~tenant ~sequence:seq
            in
            let slot =
              Tenant.derive_slot ~tenant ~sequence:seq ~slots:t.concurrency
            in
            let id = Printf.sprintf "%s-%d" tenant seq in
            let submitted = t.submitted in
            t.submitted <- submitted + 1;
            let journal_path, meta_path = session_paths t.cfg id in
            let s =
              Session.create ~id ~tenant ~params ~seed
                ~campaign_name:
                  (Workload.campaign_name ~setup:params.Session.setup
                     ~template:params.Session.template)
                ?journal_path ?meta_path ~submitted ~slot ()
            in
            Hashtbl.replace t.sessions id s;
            Queue.push id ten.Tenant.pending;
            persist_meta s;
            t.server_metrics <- Metrics.incr "service.campaigns.submitted" t.server_metrics;
            Condition.broadcast t.work;
            Ok s)

let find t id = locked t (fun () -> Hashtbl.find_opt t.sessions id)

let list t =
  locked t (fun () ->
      Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
      |> List.sort (fun a b -> compare a.Session.submitted b.Session.submitted))

(* Cancel a session (the DELETE handler).  Queued sessions cancel
   immediately (dequeued, terminal, done-line pushed); a running session
   gets its cancel token expired and drains cooperatively — its runner
   publishes the Cancelled state when the campaign returns.  Returns
   false when the session was already terminal. *)
let cancel t s =
  locked t (fun () ->
      match Session.state s with
      | st when Session.is_terminal st -> false
      | Session.Running ->
        Deadline.cancel s.Session.cancel;
        true
      | _ ->
        let ten = Hashtbl.find t.tenants s.Session.tenant in
        let keep = Queue.create () in
        Queue.iter
          (fun id -> if id <> s.Session.id then Queue.push id keep)
          ten.Tenant.pending;
        Queue.clear ten.Tenant.pending;
        Queue.transfer keep ten.Tenant.pending;
        Tenant.finish ten;
        Session.conclude s Session.Cancelled ();
        persist_meta s;
        t.server_metrics <- Metrics.incr "service.campaigns.cancelled" t.server_metrics;
        true)

let drain t =
  locked t (fun () ->
      while running_count t > 0 || queued_count t > 0 do
        Condition.wait t.idle t.lock
      done)

let stopped t = locked t (fun () -> t.stopping)

let metrics_snapshot t =
  let sources = locked t (fun () -> t.gauge_sources) in
  (* Sample external gauge sources outside the scheduler lock: sources
     take their own locks (the HTTP server's), and the ordering
     discipline keeps the scheduler lock innermost-free of them. *)
  let live = List.concat_map (fun f -> f ()) sources in
  locked t (fun () ->
      let m = Metrics.merge t.campaign_metrics t.server_metrics in
      let m =
        Metrics.set_gauge "service.sessions.queued"
          (float_of_int (queued_count t)) m
      in
      let running = running_count t in
      let m =
        Metrics.set_gauge "service.sessions.running" (float_of_int running) m
      in
      let m =
        Metrics.set_gauge "scheduler.concurrent_sessions" (float_of_int running)
          m
      in
      let m =
        Metrics.set_gauge "scheduler.slices"
          (float_of_int (Pool.slice_count t.slices))
          m
      in
      let m =
        Metrics.set_gauge "scheduler.slice_width"
          (float_of_int (Pool.slice_width t.slices 0))
          m
      in
      let m =
        Metrics.set_gauge "service.sessions.total"
          (float_of_int (Hashtbl.length t.sessions))
          m
      in
      let m =
        Metrics.set_gauge "service.tenants"
          (float_of_int (Hashtbl.length t.tenants))
          m
      in
      List.fold_left (fun m (name, v) -> Metrics.set_gauge name v m) m live)

let shutdown t =
  let proceed =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          (* Queued sessions will never run: cancel them now. *)
          Hashtbl.iter
            (fun _ ten ->
              Queue.iter
                (fun id ->
                  let s = Hashtbl.find t.sessions id in
                  Session.conclude s Session.Cancelled ();
                  persist_meta s;
                  Tenant.finish ten)
                ten.Tenant.pending;
              Queue.clear ten.Tenant.pending)
            t.tenants;
          (* Running campaigns drain at their next cancellation poll. *)
          Array.iter
            (function
              | Some s -> Deadline.cancel s.Session.cancel
              | None -> ())
            t.running;
          Condition.broadcast t.work;
          true
        end)
  in
  if proceed then begin
    List.iter Thread.join t.runners;
    t.runners <- [];
    Pool.shutdown_sliced t.slices
  end
