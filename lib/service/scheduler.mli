(** The service's brain: admission control with per-tenant quotas,
    per-tenant FIFO queues served round-robin by a single runner thread,
    one persistent {!Scamv_util.Pool} shared across campaigns, and
    journal-backed persistence so a restarted server resumes in-flight
    campaigns.

    Determinism: campaigns execute one at a time (the runner thread), on
    a shared pool, with per-campaign seeds resolved at admission — so a
    served campaign's journal and record stream are byte-identical to a
    batch CLI run of the same (template, setup, seed, programs, tests)
    under the same clock, regardless of what other tenants are doing. *)

type config = {
  jobs : int;  (** worker-pool size shared by all campaigns; 0 = all cores *)
  state_dir : string option;
      (** where [<id>.journal] / [<id>.meta.json] live; [None] = no
          persistence (campaigns are lost on restart) *)
  quota : Tenant.quota;  (** applied to every tenant *)
  clock : Scamv_util.Stopwatch.clock;
      (** campaign time source; {!Scamv_util.Stopwatch.frozen} makes all
          streamed artifacts fully deterministic *)
}

val default_config : config
(** 1 job, no state dir, {!Tenant.default_quota}, wall clock. *)

type submit_error =
  | Invalid of string  (** bad tenant name, template or setup -> 400 *)
  | Busy of Tenant.rejection  (** quota/backlog rejection -> 429 *)
  | Stopped  (** server shutting down -> 503 *)

type t

val create : ?config:config -> ?start:bool -> unit -> t
(** Build a scheduler; when [config.state_dir] is set, recover previously
    persisted sessions first (terminal sessions get their stream lines
    rebuilt from the journal; unfinished ones are re-enqueued in original
    submission order with the journal as a resume checkpoint).
    [start = false] skips the runner thread — admission-control unit
    tests use this to exercise queues without running campaigns. *)

val submit :
  t -> tenant:string -> Session.params -> (Session.t, submit_error) result
(** Validate, apply the tenant quota, resolve the seed (submitted seed or
    the tenant namespace draw), persist the session meta and enqueue. *)

val find : t -> string -> Session.t option
val list : t -> Session.t list
(** All known sessions in submission order. *)

val cancel : t -> Session.t -> bool
(** Queued sessions cancel immediately; a running one gets its cancel
    token expired and drains cooperatively (every unfinished program is
    journaled as crashed with reason ["campaign cancelled"]).  [false]
    when already terminal. *)

val drain : t -> unit
(** Block until no session is queued or running.  Test/smoke helper;
    requires the runner thread ([start = true]). *)

val stopped : t -> bool

val bump : ?n:int -> t -> string -> unit
(** Add to a server-side counter (the HTTP layer's request counters). *)

val metrics_snapshot : t -> Scamv_telemetry.Metrics.t
(** Merged campaign telemetry + server counters + session/tenant gauges —
    the [GET /metrics] source. *)

val shutdown : t -> unit
(** Stop accepting work, cancel queued sessions, cooperatively cancel the
    running campaign, join the runner thread and shut the pool down.
    Idempotent. *)
