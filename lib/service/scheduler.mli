(** The service's brain: admission control with per-tenant quotas,
    per-tenant FIFO queues served round-robin by [concurrency] runner
    threads (one per slice of a deterministically partitioned
    {!Scamv_util.Pool}), and journal-backed persistence so a restarted
    server resumes in-flight campaigns.

    Determinism: up to [concurrency] campaigns execute at once, each on
    its own pool slice.  Slice widths are a pure function of
    [(jobs, concurrency)] ({!Scamv_util.Pool.slice_widths}) and a
    session's slot is a pure function of its (tenant, sequence) pair
    ({!Tenant.derive_slot}) — never of arrival timing — so a served
    campaign's journal and record stream are byte-identical to a batch
    CLI run of the same (template, setup, seed, programs, tests) under
    the same clock, at every [--concurrency] level, regardless of what
    other tenants are doing. *)

type config = {
  jobs : int;
      (** total worker budget partitioned across the slices; 0 = all
          cores *)
  concurrency : int;
      (** runner slots = pool slices = campaigns that may execute at
          once (>= 1) *)
  state_dir : string option;
      (** where [<id>.journal] / [<id>.meta.json] live; [None] = no
          persistence (campaigns are lost on restart) *)
  quota : Tenant.quota;  (** applied to every tenant *)
  clock : Scamv_util.Stopwatch.clock;
      (** campaign time source; {!Scamv_util.Stopwatch.frozen} makes all
          streamed artifacts fully deterministic *)
}

val default_config : config
(** 1 job, concurrency 1, no state dir, {!Tenant.default_quota}, wall
    clock. *)

type submit_error =
  | Invalid of string  (** bad tenant name, template or setup -> 400 *)
  | Busy of Tenant.rejection  (** quota/backlog rejection -> 429 *)
  | Stopped  (** server shutting down -> 503 *)

type t

val create : ?config:config -> ?start:bool -> unit -> t
(** Build a scheduler; when [config.state_dir] is set, recover previously
    persisted sessions first (terminal sessions get their stream lines
    rebuilt from the journal; unfinished ones are re-enqueued in original
    submission order with the journal as a resume checkpoint, their slots
    re-derived for the current concurrency).  [start = false] skips the
    runner threads — admission-control unit tests use this to exercise
    queues without running campaigns.
    @raise Invalid_argument when [config.concurrency < 1]. *)

val concurrency : t -> int
(** The runner-slot count the scheduler was built with. *)

val submit :
  t -> tenant:string -> Session.params -> (Session.t, submit_error) result
(** Validate, apply the tenant quota, resolve the seed (submitted seed or
    the tenant namespace draw) and the runner slot, persist the session
    meta and enqueue. *)

val find : t -> string -> Session.t option
val list : t -> Session.t list
(** All known sessions in submission order. *)

val cancel : t -> Session.t -> bool
(** Queued sessions cancel immediately; a running one gets its cancel
    token expired and drains cooperatively (every unfinished program is
    journaled as crashed with reason ["campaign cancelled"]).  [false]
    when already terminal. *)

val drain : t -> unit
(** Block until no session is queued or running on any slot.  Test/smoke
    helper; requires the runner threads ([start = true]). *)

val stopped : t -> bool

val bump : ?n:int -> t -> string -> unit
(** Add to a server-side counter (the HTTP layer's request counters).
    [~n:0] pre-registers the counter so it appears on /metrics before any
    traffic. *)

val register_gauge_source : t -> (unit -> (string * float) list) -> unit
(** Contribute live gauges to {!metrics_snapshot} (the HTTP server's
    connection gauges).  Sources are sampled outside the scheduler lock
    and must not call back into the scheduler. *)

val metrics_snapshot : t -> Scamv_telemetry.Metrics.t
(** Merged campaign telemetry + server counters + session/tenant/slice
    gauges + registered gauge sources — the [GET /metrics] source. *)

val shutdown : t -> unit
(** Stop accepting work, cancel queued sessions, cooperatively cancel the
    running campaigns, join the runner threads and shut every pool slice
    down.  Idempotent. *)
