(** Board-noise fault injection (robustness testing).

    The paper's campaigns ran for days against physical Raspberry Pi 3
    boards, where observation traces come back perturbed, measurements get
    dropped by the debugging link, and unrelated traffic transiently
    pollutes the cache.  This module reproduces that noise deterministically
    so the fault-tolerance machinery (retry, majority voting, inconclusive
    downgrades) can be exercised and tested from a fixed seed. *)

type config = { rate : float; seed : int64 }
(** [rate] is the per-measurement probability of injecting a fault;
    [seed] roots the deterministic fault stream. *)

val config : ?rate:float -> ?seed:int64 -> unit -> config
(** @raise Invalid_argument if [rate] is outside [\[0, 1\]]. *)

type kind = Perturbation | Dropped_measurement | Cache_pollution

val kind_name : kind -> string

type t
(** Mutable per-run fault stream. *)

val start : config -> run_seed:int64 -> t
(** Fault stream for one executor run; mixing in [run_seed] gives every
    run (and every retry attempt) an independent but reproducible
    stream. *)

val injected : t -> int
(** Faults injected so far on this stream. *)

val apply : t -> (int * int64 list) list -> (int * int64 list) list option
(** Possibly corrupt one attacker observation (a cache/TLB/time snapshot
    as produced by {!Executor.observe_once}).  [None] models a dropped
    measurement; [Some v'] is the (possibly perturbed or polluted)
    observation.  With probability [1 - rate] the observation passes
    through untouched. *)
