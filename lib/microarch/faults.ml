module Splitmix = Scamv_util.Splitmix

(* Noise model for the paper's physical setup (Sec. 6.1): four Raspberry
   Pi 3 boards measured over days, where individual cache dumps come back
   perturbed, measurements are lost by the debugging channel, and unrelated
   bus traffic transiently pollutes the cache.  Everything is driven by a
   splitmix stream so campaigns remain reproducible from a single seed. *)

type config = { rate : float; seed : int64 }

let config ?(rate = 0.0) ?(seed = 0xFA17L) () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Faults.config: rate must be within [0, 1]";
  { rate; seed }

type kind = Perturbation | Dropped_measurement | Cache_pollution

let kind_name = function
  | Perturbation -> "perturbation"
  | Dropped_measurement -> "dropped measurement"
  | Cache_pollution -> "cache pollution"

type t = {
  cfg : config;
  mutable rng : Splitmix.t;
  mutable injected : int;
}

let start cfg ~run_seed =
  (* Mix the configuration seed with the per-run seed so each measured run
     sees an independent but reproducible fault stream. *)
  let mixed = Int64.logxor cfg.seed (Int64.mul run_seed 0x9E3779B97F4A7C15L) in
  { cfg; rng = Splitmix.of_seed mixed; injected = 0 }

let injected t = t.injected

let draw t f =
  let x, rng = f t.rng in
  t.rng <- rng;
  x

let rand64 t = draw t Splitmix.next

(* Flip one bit of one observed word: a mis-read tag or a timing wobble. *)
let perturb t view =
  match view with
  | [] -> view
  | _ ->
    let target = draw t (fun r -> Splitmix.int r (List.length view)) in
    List.mapi
      (fun i (set, words) ->
        if i <> target then (set, words)
        else
          match words with
          | [] -> (set, [ rand64 t ])
          | _ ->
            let j = draw t (fun r -> Splitmix.int r (List.length words)) in
            let bit = draw t (fun r -> Splitmix.int r 64) in
            ( set,
              List.mapi
                (fun k w ->
                  if k = j then Int64.logxor w (Int64.shift_left 1L bit) else w)
                words ))
      view

(* A transiently resident line left by unrelated traffic: one extra tag
   appears in one observed set. *)
let pollute t view =
  match view with
  | [] -> [ (0, [ rand64 t ]) ]
  | _ ->
    let target = draw t (fun r -> Splitmix.int r (List.length view)) in
    List.mapi
      (fun i (set, words) ->
        if i <> target then (set, words) else (set, words @ [ rand64 t ]))
      view

let apply t view =
  let p = draw t Splitmix.float in
  if p >= t.cfg.rate then Some view
  else begin
    t.injected <- t.injected + 1;
    match draw t (fun r -> Splitmix.int r 3) with
    | 0 -> None (* the measurement never came back *)
    | 1 -> Some (perturb t view)
    | _ -> Some (pollute t view)
  end
