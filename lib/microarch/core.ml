module Ast = Scamv_isa.Ast
module Rv = Scamv_riscv.Ast
module Machine = Scamv_isa.Machine
module Semantics = Scamv_isa.Semantics
module Platform = Scamv_isa.Platform
module Reg = Scamv_isa.Reg
module Splitmix = Scamv_util.Splitmix

type config = {
  platform : Platform.t;
  spec_window : int;
  spec_max_loads : int;
  prefetch_threshold : int;
  prefetch_fire_prob : float;
  mispredict_noise : float;
  speculative_forwarding : bool;
  tlb_entries : int;
  fuel : int;
}

let cortex_a53 =
  {
    platform = Platform.cortex_a53;
    spec_window = 8;
    spec_max_loads = 4;
    prefetch_threshold = 3;
    prefetch_fire_prob = 0.97;
    mispredict_noise = 0.001;
    speculative_forwarding = false;
    tlb_entries = 10;
    fuel = 10_000;
  }

let out_of_order =
  {
    cortex_a53 with
    spec_window = 32;
    spec_max_loads = 16;
    speculative_forwarding = true;
  }

type event =
  | Commit_load of int64
  | Commit_store of int64
  | Commit_branch of { pc : int; taken : bool; predicted : bool }
  | Transient_load of int64
  | Transient_suppressed of int
  | Prefetch of int64

(* Hit/miss statistics accumulated over the core's lifetime.  The cache
   and TLB modules report each access outcome to their caller already;
   these counters aggregate those outcomes so the campaign can surface
   them (previously they were computed and dropped). *)
type counters = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable predictor_hits : int;
  mutable predictor_misses : int;
  mutable prefetches : int;
  mutable transient_loads : int;
  mutable transient_suppressed : int;
}

type t = {
  cfg : config;
  cache : Cache.t;
  tlb : Tlb.t;
  prefetcher : Prefetcher.t;
  predictor : Predictor.t;
  mutable rng : Splitmix.t;
  mutable cycles : int;
  ctr : counters;
}

let create ?(seed = 0L) cfg =
  {
    cfg;
    cache = Cache.create cfg.platform;
    tlb = Tlb.create ~entries:cfg.tlb_entries cfg.platform;
    prefetcher =
      Prefetcher.create ~threshold:cfg.prefetch_threshold
        ~fire_prob:cfg.prefetch_fire_prob cfg.platform;
    predictor = Predictor.create ();
    rng = Splitmix.of_seed seed;
    cycles = 0;
    ctr =
      {
        cache_hits = 0;
        cache_misses = 0;
        tlb_hits = 0;
        tlb_misses = 0;
        predictor_hits = 0;
        predictor_misses = 0;
        prefetches = 0;
        transient_loads = 0;
        transient_suppressed = 0;
      };
  }

let config t = t.cfg
let cache t = t.cache
let tlb t = t.tlb
let predictor t = t.predictor

let reset_cache t =
  Cache.reset t.cache;
  Tlb.reset t.tlb;
  Prefetcher.reset t.prefetcher

let reset_predictor t = Predictor.reset t.predictor
let last_run_cycles t = t.cycles

(* Flat view of the counters, keyed for the telemetry registry (the
   executor prefixes each key with "uarch."). *)
let counters t =
  let c = t.ctr in
  [
    ("cache.hits", c.cache_hits);
    ("cache.misses", c.cache_misses);
    ("tlb.hits", c.tlb_hits);
    ("tlb.misses", c.tlb_misses);
    ("predictor.hits", c.predictor_hits);
    ("predictor.misses", c.predictor_misses);
    ("prefetches", c.prefetches);
    ("transient_loads", c.transient_loads);
    ("transient_suppressed", c.transient_suppressed);
  ]

let count_tlb t = function
  | `Hit -> t.ctr.tlb_hits <- t.ctr.tlb_hits + 1
  | `Miss -> t.ctr.tlb_misses <- t.ctr.tlb_misses + 1

let count_cache t = function
  | `Hit -> t.ctr.cache_hits <- t.ctr.cache_hits + 1
  | `Miss -> t.ctr.cache_misses <- t.ctr.cache_misses + 1

(* Simple A53-flavoured timing model. *)
let issue_cycles = 1
let l1_hit_cycles = 3
let l1_miss_cycles = 140
let mispredict_penalty = 8
let reseed t seed = t.rng <- Splitmix.of_seed seed

let draw_float t =
  let v, rng = Splitmix.float t.rng in
  t.rng <- rng;
  v

(* A demand access (committed or transient load) goes through the cache
   and feeds the prefetcher, which may trigger an additional fill. *)
let demand_access t events addr =
  count_tlb t (Tlb.access t.tlb addr);
  let outcome = Cache.access t.cache addr in
  count_cache t outcome;
  let rng = ref t.rng in
  (match Prefetcher.observe t.prefetcher ~rng addr with
  | Some target ->
    Cache.fill t.cache target;
    t.ctr.prefetches <- t.ctr.prefetches + 1;
    events := Prefetch target :: !events
  | None -> ());
  t.rng <- !rng;
  outcome

(* ---- transient (wrong-path) execution ---- *)

(* Shadow register file with taint bits.  Reads fall back to the
   architectural state; writes stay in the shadow. *)
type shadow = {
  machine : Machine.t;  (* architectural state, read-only here *)
  values : (int, int64) Hashtbl.t;
  tainted : (int, unit) Hashtbl.t;
}

let shadow_of machine = { machine; values = Hashtbl.create 8; tainted = Hashtbl.create 8 }

let shadow_get sh r =
  match Hashtbl.find_opt sh.values (Reg.index r) with
  | Some v -> v
  | None -> Machine.get_reg sh.machine r

let shadow_set sh r v ~taint =
  Hashtbl.replace sh.values (Reg.index r) v;
  if taint then Hashtbl.replace sh.tainted (Reg.index r) ()
  else Hashtbl.remove sh.tainted (Reg.index r)

let shadow_tainted sh r = Hashtbl.mem sh.tainted (Reg.index r)

let operand_value sh = function Ast.Reg r -> shadow_get sh r | Ast.Imm v -> v
let operand_tainted sh = function Ast.Reg r -> shadow_tainted sh r | Ast.Imm _ -> false

let address_value sh { Ast.base; offset; scale } =
  Int64.add (shadow_get sh base) (Int64.shift_left (operand_value sh offset) scale)

let address_tainted sh { Ast.base; offset; scale = _ } =
  shadow_tainted sh base || operand_tainted sh offset

let alu op a b =
  match op with
  | `Add -> Int64.add a b
  | `Sub -> Int64.sub a b
  | `And -> Int64.logand a b
  | `Orr -> Int64.logor a b
  | `Eor -> Int64.logxor a b
  | `Lsl -> if Scamv_util.Bits.ult b 64L then Int64.shift_left a (Int64.to_int b) else 0L
  | `Lsr ->
    if Scamv_util.Bits.ult b 64L then Int64.shift_right_logical a (Int64.to_int b) else 0L
  | `Asr ->
    let k = if Scamv_util.Bits.ult b 64L then Int64.to_int b else 63 in
    Int64.shift_right a (min k 63)

(* Execute the wrong path transiently, starting at [pc].  Architectural
   state is never modified; cache and prefetcher are.  [max_loads] is the
   number of transient loads the window admits: 1 when the branch resolves
   quickly, more when its compare was waiting on a memory load (Sec. 6.5:
   "in some circumstances Cortex-A53 can execute more than one transient
   load"). *)
let transient_execute t events program machine ~start_pc ~max_loads =
  let len = Array.length program in
  let sh = shadow_of machine in
  let loads = ref 0 in
  let rec go pc steps =
    if steps >= t.cfg.spec_window || pc < 0 || pc >= len then ()
    else
      let continue_at next = go next (steps + 1) in
      match program.(pc) with
      | Ast.B _ | Ast.B_cond _ ->
        (* Depth-one speculation: a further branch ends the window. *)
        ()
      | Ast.Nop -> continue_at (pc + 1)
      | Ast.Mov (d, op) ->
        shadow_set sh d (operand_value sh op) ~taint:(operand_tainted sh op);
        continue_at (pc + 1)
      | Ast.Add (d, a, op) -> alu_step d a op `Add pc steps
      | Ast.Sub (d, a, op) -> alu_step d a op `Sub pc steps
      | Ast.And_ (d, a, op) -> alu_step d a op `And pc steps
      | Ast.Orr (d, a, op) -> alu_step d a op `Orr pc steps
      | Ast.Eor (d, a, op) -> alu_step d a op `Eor pc steps
      | Ast.Lsl (d, a, op) -> alu_step d a op `Lsl pc steps
      | Ast.Lsr (d, a, op) -> alu_step d a op `Lsr pc steps
      | Ast.Asr (d, a, op) -> alu_step d a op `Asr pc steps
      | Ast.Cmp _ ->
        (* Transient flag updates are invisible to the channel and no
           further transient branch consumes them (depth-one window). *)
        continue_at (pc + 1)
      | Ast.Str _ ->
        (* No allocation before commit. *)
        continue_at (pc + 1)
      | Ast.Ldr (d, addr) ->
        if
          ((not t.cfg.speculative_forwarding) && address_tainted sh addr)
          || !loads >= max_loads
        then begin
          (* The address depends on a previous transient load result: the
             A53 cannot forward it, so no memory request is issued. *)
          t.ctr.transient_suppressed <- t.ctr.transient_suppressed + 1;
          events := Transient_suppressed pc :: !events;
          shadow_set sh d 0L ~taint:true;
          continue_at (pc + 1)
        end
        else begin
          let a = address_value sh addr in
          incr loads;
          t.ctr.transient_loads <- t.ctr.transient_loads + 1;
          events := Transient_load a :: !events;
          ignore (demand_access t events a);
          (* On the A53 the loaded value arrives but is unusable
             downstream; a forwarding core taints nothing. *)
          shadow_set sh d (Machine.load machine a) ~taint:(not t.cfg.speculative_forwarding);
          continue_at (pc + 1)
        end
  and alu_step d a op kind pc steps =
    let taint = shadow_tainted sh a || operand_tainted sh op in
    shadow_set sh d (alu kind (shadow_get sh a) (operand_value sh op)) ~taint;
    go (pc + 1) (steps + 1)
  in
  go start_pc 0

(* ---- RV64 guest ----

   The RISC-V register file shares the machine representation with the
   AArch64 subset: x[k] (k >= 1) occupies register slot k-1 (the
   [Scamv_riscv.Lift]/[Translate] convention) and x0 is hardwired to
   zero.  The microarchitectural machinery — cache, TLB, prefetcher,
   predictor, transient window, taint — is identical; only instruction
   decode differs, which is the point of the experiment platform being
   ISA-generic below the lifter. *)

let rv_slot r = Reg.x (r - 1)
let rv_get machine r = if r = 0 then 0L else Machine.get_reg machine (rv_slot r)
let rv_set machine r v = if r <> 0 then Machine.set_reg machine (rv_slot r) v
let rv_shadow_get sh r = if r = 0 then 0L else shadow_get sh (rv_slot r)
let rv_shadow_set sh r v ~taint = if r <> 0 then shadow_set sh (rv_slot r) v ~taint
let rv_shadow_tainted sh r = r <> 0 && shadow_tainted sh (rv_slot r)

(* Register-amount shifts use the low 6 bits of rs2 (RV64I masking, not
   the AArch64 subset's zero-for-large-amounts rule). *)
let rv_shift_amount b = Int64.to_int (Int64.logand b 63L)

(* Transient wrong-path execution of an RV64 slice: same window, taint
   and suppression discipline as the AArch64 path. *)
let rv_transient_execute t events program machine ~start_pc ~max_loads =
  let len = Array.length program in
  let sh = shadow_of machine in
  let loads = ref 0 in
  let rec go pc steps =
    if steps >= t.cfg.spec_window || pc < 0 || pc >= len then ()
    else
      let continue_at next = go next (steps + 1) in
      let alu2 d a b f =
        let taint = rv_shadow_tainted sh a || rv_shadow_tainted sh b in
        rv_shadow_set sh d (f (rv_shadow_get sh a) (rv_shadow_get sh b)) ~taint;
        continue_at (pc + 1)
      in
      let alui d a f =
        rv_shadow_set sh d (f (rv_shadow_get sh a)) ~taint:(rv_shadow_tainted sh a);
        continue_at (pc + 1)
      in
      match program.(pc) with
      | Rv.Beq _ | Rv.Bne _ | Rv.Blt _ | Rv.Bge _ | Rv.Bltu _ | Rv.Bgeu _ | Rv.Jal _ ->
        (* Depth-one speculation: a further branch ends the window. *)
        ()
      | Rv.Nop -> continue_at (pc + 1)
      | Rv.Addi (d, a, v) -> alui d a (fun x -> Int64.add x v)
      | Rv.Add (d, a, b) -> alu2 d a b Int64.add
      | Rv.Sub (d, a, b) -> alu2 d a b Int64.sub
      | Rv.And_ (d, a, b) -> alu2 d a b Int64.logand
      | Rv.Or_ (d, a, b) -> alu2 d a b Int64.logor
      | Rv.Xor (d, a, b) -> alu2 d a b Int64.logxor
      | Rv.Andi (d, a, v) -> alui d a (fun x -> Int64.logand x v)
      | Rv.Ori (d, a, v) -> alui d a (fun x -> Int64.logor x v)
      | Rv.Xori (d, a, v) -> alui d a (fun x -> Int64.logxor x v)
      | Rv.Slli (d, a, k) -> alui d a (fun x -> Int64.shift_left x k)
      | Rv.Srli (d, a, k) -> alui d a (fun x -> Int64.shift_right_logical x k)
      | Rv.Srai (d, a, k) -> alui d a (fun x -> Int64.shift_right x k)
      | Rv.Sll (d, a, b) -> alu2 d a b (fun x y -> Int64.shift_left x (rv_shift_amount y))
      | Rv.Srl (d, a, b) ->
        alu2 d a b (fun x y -> Int64.shift_right_logical x (rv_shift_amount y))
      | Rv.Sra (d, a, b) -> alu2 d a b (fun x y -> Int64.shift_right x (rv_shift_amount y))
      | Rv.Sd _ ->
        (* No allocation before commit. *)
        continue_at (pc + 1)
      | Rv.Ld (d, imm, b) ->
        if
          ((not t.cfg.speculative_forwarding) && rv_shadow_tainted sh b)
          || !loads >= max_loads
        then begin
          t.ctr.transient_suppressed <- t.ctr.transient_suppressed + 1;
          events := Transient_suppressed pc :: !events;
          rv_shadow_set sh d 0L ~taint:true;
          continue_at (pc + 1)
        end
        else begin
          let a = Int64.add (rv_shadow_get sh b) imm in
          incr loads;
          t.ctr.transient_loads <- t.ctr.transient_loads + 1;
          events := Transient_load a :: !events;
          ignore (demand_access t events a);
          rv_shadow_set sh d (Machine.load machine a)
            ~taint:(not t.cfg.speculative_forwarding);
          continue_at (pc + 1)
        end
  in
  go start_pc 0

(* ---- committed execution ---- *)

(* How many committed instructions back a register load still delays a
   dependent compare (roughly the L1 load-to-use window). *)
let load_use_window = 4

let run t program machine =
  t.cycles <- 0;
  let charge c = t.cycles <- t.cycles + c in
  let events = ref [] in
  let len = Array.length program in
  (* Committed-instruction index at which each register was last loaded
     from memory; drives the branch-resolution-latency rule above. *)
  let loaded_at = Array.make Scamv_isa.Reg.count (-1) in
  let instr_count = ref 0 in
  (* Whether the flags currently in effect were produced by a compare
     whose operands were waiting on a recent load. *)
  let flags_delayed = ref false in
  let rec go pc fuel =
    if pc < 0 || pc >= len then ()
    else if fuel = 0 then failwith "Core.run: fuel exhausted"
    else begin
      incr instr_count;
      let next_pc =
        match program.(pc) with
        | Ast.B_cond (c, target) ->
          let taken = Semantics.eval_cond (Machine.get_flags machine) c in
          let predicted =
            let p = Predictor.predict t.predictor pc in
            if t.cfg.mispredict_noise > 0.0 && draw_float t < t.cfg.mispredict_noise then
              not p
            else p
          in
          Predictor.update t.predictor pc ~taken;
          if predicted = taken then t.ctr.predictor_hits <- t.ctr.predictor_hits + 1
          else t.ctr.predictor_misses <- t.ctr.predictor_misses + 1;
          events := Commit_branch { pc; taken; predicted } :: !events;
          charge issue_cycles;
          if predicted <> taken then charge mispredict_penalty;
          if predicted <> taken && t.cfg.spec_window > 0 then begin
            let wrong_start = if predicted then min target len else pc + 1 in
            (* A branch whose compare was not delayed by memory resolves
               fast: the window only covers one load issue. *)
            let max_loads =
              if !flags_delayed || t.cfg.speculative_forwarding then t.cfg.spec_max_loads
              else 1
            in
            transient_execute t events program machine ~start_pc:wrong_start ~max_loads
          end;
          if taken then target else pc + 1
        | Ast.B target ->
          (* Direct unconditional branch: predicted perfectly, no
             straight-line speculation on the A53. *)
          charge issue_cycles;
          target
        | instr ->
          (match instr with
          | Ast.Cmp (a, op) ->
            let recently r =
              let at = loaded_at.(Scamv_isa.Reg.index r) in
              at >= 0 && !instr_count - at <= load_use_window
            in
            let op_recent = match op with Ast.Reg r -> recently r | Ast.Imm _ -> false in
            flags_delayed := recently a || op_recent
          | Ast.Ldr (d, _) -> loaded_at.(Scamv_isa.Reg.index d) <- !instr_count
          | _ -> ());
          let { Semantics.next_pc; events = arch_events } =
            Semantics.step program machine pc
          in
          charge issue_cycles;
          List.iter
            (function
              | Semantics.Load a ->
                events := Commit_load a :: !events;
                let outcome = demand_access t events a in
                charge (match outcome with `Hit -> l1_hit_cycles | `Miss -> l1_miss_cycles)
              | Semantics.Store a ->
                events := Commit_store a :: !events;
                (* Stores allocate on commit (write-allocate L1). *)
                count_tlb t (Tlb.access t.tlb a);
                count_cache t (Cache.access t.cache a)
              | Semantics.Fetch _ | Semantics.Branch _ -> ())
            arch_events;
          next_pc
      in
      go next_pc (fuel - 1)
    end
  in
  go 0 t.cfg.fuel;
  List.rev !events

(* Committed RV64 execution.  The structure mirrors [run]; the
   branch-resolution-latency rule has no flags to watch, so a
   compare-and-branch resolves slowly exactly when one of its *source
   registers* was recently loaded (same load-to-use window). *)
let run_rv64 t program machine =
  t.cycles <- 0;
  let charge c = t.cycles <- t.cycles + c in
  let events = ref [] in
  let len = Array.length program in
  (* Committed-instruction index at which each RV64 register was last
     loaded from memory (index 0 is never set: x0 is constant). *)
  let loaded_at = Array.make 32 (-1) in
  let instr_count = ref 0 in
  let recently r = r <> 0 && loaded_at.(r) >= 0 && !instr_count - loaded_at.(r) <= load_use_window in
  let branch pc a b target ~taken =
    let predicted =
      let p = Predictor.predict t.predictor pc in
      if t.cfg.mispredict_noise > 0.0 && draw_float t < t.cfg.mispredict_noise then not p
      else p
    in
    Predictor.update t.predictor pc ~taken;
    if predicted = taken then t.ctr.predictor_hits <- t.ctr.predictor_hits + 1
    else t.ctr.predictor_misses <- t.ctr.predictor_misses + 1;
    events := Commit_branch { pc; taken; predicted } :: !events;
    charge issue_cycles;
    if predicted <> taken then charge mispredict_penalty;
    if predicted <> taken && t.cfg.spec_window > 0 then begin
      let wrong_start = if predicted then min target len else pc + 1 in
      let max_loads =
        if recently a || recently b || t.cfg.speculative_forwarding then
          t.cfg.spec_max_loads
        else 1
      in
      rv_transient_execute t events program machine ~start_pc:wrong_start ~max_loads
    end;
    if taken then target else pc + 1
  in
  let rec go pc fuel =
    if pc < 0 || pc >= len then ()
    else if fuel = 0 then failwith "Core.run_rv64: fuel exhausted"
    else begin
      incr instr_count;
      let alu d v =
        rv_set machine d v;
        charge issue_cycles;
        pc + 1
      in
      let next_pc =
        match program.(pc) with
        | Rv.Nop ->
          charge issue_cycles;
          pc + 1
        | Rv.Addi (d, a, v) -> alu d (Int64.add (rv_get machine a) v)
        | Rv.Add (d, a, b) -> alu d (Int64.add (rv_get machine a) (rv_get machine b))
        | Rv.Sub (d, a, b) -> alu d (Int64.sub (rv_get machine a) (rv_get machine b))
        | Rv.And_ (d, a, b) -> alu d (Int64.logand (rv_get machine a) (rv_get machine b))
        | Rv.Or_ (d, a, b) -> alu d (Int64.logor (rv_get machine a) (rv_get machine b))
        | Rv.Xor (d, a, b) -> alu d (Int64.logxor (rv_get machine a) (rv_get machine b))
        | Rv.Andi (d, a, v) -> alu d (Int64.logand (rv_get machine a) v)
        | Rv.Ori (d, a, v) -> alu d (Int64.logor (rv_get machine a) v)
        | Rv.Xori (d, a, v) -> alu d (Int64.logxor (rv_get machine a) v)
        | Rv.Slli (d, a, k) -> alu d (Int64.shift_left (rv_get machine a) k)
        | Rv.Srli (d, a, k) -> alu d (Int64.shift_right_logical (rv_get machine a) k)
        | Rv.Srai (d, a, k) -> alu d (Int64.shift_right (rv_get machine a) k)
        | Rv.Sll (d, a, b) ->
          alu d (Int64.shift_left (rv_get machine a) (rv_shift_amount (rv_get machine b)))
        | Rv.Srl (d, a, b) ->
          alu d
            (Int64.shift_right_logical (rv_get machine a)
               (rv_shift_amount (rv_get machine b)))
        | Rv.Sra (d, a, b) ->
          alu d (Int64.shift_right (rv_get machine a) (rv_shift_amount (rv_get machine b)))
        | Rv.Ld (d, imm, b) ->
          let a = Int64.add (rv_get machine b) imm in
          rv_set machine d (Machine.load machine a);
          if d <> 0 then loaded_at.(d) <- !instr_count;
          charge issue_cycles;
          events := Commit_load a :: !events;
          let outcome = demand_access t events a in
          charge (match outcome with `Hit -> l1_hit_cycles | `Miss -> l1_miss_cycles);
          pc + 1
        | Rv.Sd (src, imm, b) ->
          let a = Int64.add (rv_get machine b) imm in
          Machine.store machine a (rv_get machine src);
          charge issue_cycles;
          events := Commit_store a :: !events;
          (* Stores allocate on commit (write-allocate L1). *)
          count_tlb t (Tlb.access t.tlb a);
          count_cache t (Cache.access t.cache a);
          pc + 1
        | Rv.Beq (a, b, t') ->
          branch pc a b t' ~taken:(Int64.equal (rv_get machine a) (rv_get machine b))
        | Rv.Bne (a, b, t') ->
          branch pc a b t' ~taken:(not (Int64.equal (rv_get machine a) (rv_get machine b)))
        | Rv.Blt (a, b, t') ->
          branch pc a b t' ~taken:(Int64.compare (rv_get machine a) (rv_get machine b) < 0)
        | Rv.Bge (a, b, t') ->
          branch pc a b t' ~taken:(Int64.compare (rv_get machine a) (rv_get machine b) >= 0)
        | Rv.Bltu (a, b, t') ->
          branch pc a b t'
            ~taken:(Int64.unsigned_compare (rv_get machine a) (rv_get machine b) < 0)
        | Rv.Bgeu (a, b, t') ->
          branch pc a b t'
            ~taken:(Int64.unsigned_compare (rv_get machine a) (rv_get machine b) >= 0)
        | Rv.Jal (d, target) ->
          (* Direct unconditional jump: predicted perfectly, like [B];
             the link value is an instruction index. *)
          rv_set machine d (Int64.of_int (pc + 1));
          charge issue_cycles;
          target
      in
      go next_pc (fuel - 1)
    end
  in
  go 0 t.cfg.fuel;
  List.rev !events
