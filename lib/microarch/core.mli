(** Cortex-A53-like core: in-order execution with an L1D cache, stride
    prefetcher, PHT branch predictor, and bounded control-flow
    speculation.

    The speculation semantics encodes the three mechanisms behind the
    paper's findings (Sec. 6.4-6.5); they are *inputs* to the simulator,
    the per-template counterexample patterns of Table 1 / Fig. 7 are
    emergent:

    - On a mispredicted conditional branch, up to [spec_window] wrong-path
      instructions execute transiently on a shadow copy of the register
      file; transient memory loads issue real cache fills (SiSCloak).
    - A transient load's *result* cannot feed later transient
      instructions (no register renaming, short pipeline): destinations
      of transient loads are tainted; taint propagates through ALU
      operations; a load whose address is tainted is not issued.  This is
      why a single speculative load leaks but a dependent chain does not.
    - Unconditional *direct* branches are not speculated past (no
      straight-line speculation for direct branches, per ARM's claim
      validated in Sec. 6.5).

    Transient stores are dropped (no allocation before commit). *)

type config = {
  platform : Scamv_isa.Platform.t;
  spec_window : int;  (** max transient instructions; 0 disables speculation *)
  spec_max_loads : int;  (** max transient loads issued per misprediction *)
  prefetch_threshold : int;
  prefetch_fire_prob : float;
  mispredict_noise : float;
      (** probability that one prediction comes out flipped (models PHT
          aliasing / training fragility; source of the rare inconclusive
          speculation experiments) *)
  speculative_forwarding : bool;
      (** [false] on the A53 (no register renaming: transient load results
          are unusable downstream); [true] models a bigger out-of-order
          core where dependent transient loads issue — the classic
          Spectre-PHT microarchitecture.  Sec. 6.5: "Speculation can cause
          different leakage on different microarchitectures". *)
  tlb_entries : int;  (** data micro-TLB capacity *)
  fuel : int;  (** committed-instruction budget per run *)
}

val cortex_a53 : config
(** Defaults matching the evaluation platform (Sec. 6.1). *)

val out_of_order : config
(** A Spectre-PHT-vulnerable configuration: speculative forwarding on, a
    wide window, and branches that always admit multiple transient
    loads. *)

type event =
  | Commit_load of int64
  | Commit_store of int64
  | Commit_branch of { pc : int; taken : bool; predicted : bool }
  | Transient_load of int64  (** issued wrong-path load *)
  | Transient_suppressed of int  (** pc of a wrong-path load not issued (tainted address) *)
  | Prefetch of int64

type t

val create : ?seed:int64 -> config -> t
val config : t -> config
val cache : t -> Cache.t
val tlb : t -> Tlb.t
val predictor : t -> Predictor.t
val reset_cache : t -> unit
(** Clears the cache, the prefetcher stream state and the TLB (the
    platform module's pre-run state reset). *)

val reset_predictor : t -> unit
val reseed : t -> int64 -> unit

val run : t -> Scamv_isa.Ast.program -> Scamv_isa.Machine.t -> event list
(** Execute the program to completion, mutating the machine (architectural
    effects) and the cache/predictor state (microarchitectural effects).
    Returns the event trace in issue order.
    @raise Failure when fuel is exhausted. *)

val run_rv64 : t -> Scamv_riscv.Ast.program -> Scamv_isa.Machine.t -> event list
(** [run] for the RV64 guest: same cache/TLB/prefetcher/predictor
    machinery and the same transient-execution discipline, with RISC-V
    decode.  RV64 x[k] occupies machine register slot k-1 (the
    {!Scamv_riscv.Lift} convention); compare-and-branch resolves slowly —
    admitting the full transient-load window — when a source register of
    the compare was recently loaded (the flag-latency rule without
    flags).
    @raise Failure when fuel is exhausted. *)

val last_run_cycles : t -> int
(** Cycle count of the most recent [run] under a simple timing model
    (issue cost + L1 miss penalty + misprediction penalty): the PMC
    cycle-counter reading an attacker uses for timing measurements
    (Sec. 6.1). *)

val counters : t -> (string * int) list
(** Hit/miss statistics accumulated over the core's lifetime (not reset
    by {!reset_cache}/{!reset_predictor}): [cache.hits], [cache.misses],
    [tlb.hits], [tlb.misses], [predictor.hits], [predictor.misses],
    [prefetches], [transient_loads], [transient_suppressed].  The
    executor flushes these into the telemetry registry (prefixed
    [uarch.]) once per experiment. *)
