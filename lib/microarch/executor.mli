(** The experiment platform (Sec. 6.1): runs a test case (two initial
    states, plus branch-predictor training states) on the simulated
    Cortex-A53 and decides distinguishability by inspecting the final data
    cache, with the paper's 10-repetition consistency check. *)

type view =
  | Full_cache  (** privileged dump of the whole L1D *)
  | Region of { first_set : int; last_set : int }
      (** dump restricted to the attacker-accessible sets (cache-coloring
          experiments) *)
  | Tlb_state  (** the resident pages of the data micro-TLB: the TLB
                   side channel of Sec. 2.3 *)
  | Total_time  (** the PMC cycle count of the victim's execution: the
                    end-to-end timing channel *)

type verdict =
  | Distinguishable  (** counterexample to the model's soundness *)
  | Indistinguishable
  | Inconclusive  (** repetitions disagreed (Sec. 6.1) *)

type config = {
  core : Core.config;
  view : view;
  repetitions : int;  (** default 10 *)
  train_runs : int;  (** predictor training executions per repetition *)
}

val default_config : ?view:view -> unit -> config

type experiment = {
  program : Scamv_arch.Isa.program;
  state1 : Scamv_isa.Machine.t;
  state2 : Scamv_isa.Machine.t;
  train : Scamv_isa.Machine.t list;
      (** inputs taking a different path, used to (mis)train the branch
          predictor before each measured run (Sec. 5.3); empty for
          non-speculative experiments *)
}

val run : ?seed:int64 -> ?faults:Faults.config -> config -> experiment -> verdict
(** Run the experiment.  [faults], when given, injects deterministic board
    noise (see {!Faults}) into every attacker observation; noisy or dropped
    observations fail the repetition-consistency check and degrade the
    verdict to [Inconclusive], exactly like a flaky physical board. *)

val run_observed :
  ?seed:int64 -> ?faults:Faults.config -> config -> experiment -> verdict * int
(** Like {!run}, also reporting how many faults were injected during this
    run (always [0] without [faults]); the campaign layer aggregates the
    count into its statistics. *)

val observe_once :
  ?seed:int64 ->
  config ->
  Scamv_arch.Isa.program ->
  train:Scamv_isa.Machine.t list ->
  Scamv_isa.Machine.t ->
  (int * int64 list) list
(** Train, run one input once, and return the attacker's view of the
    final cache (exposed for the examples and tests). *)
