type t = { core : Core.t }

let hit_cycles = 40
let miss_cycles = 220

let create ?seed cfg = { core = Core.create ?seed cfg }
let core t = t.core

let flush t addr =
  Scamv_telemetry.Collector.incr "uarch.flush_reload.flushes";
  Cache.flush_line (Core.cache t.core) addr

let reload_time t addr =
  let hit = Cache.contains (Core.cache t.core) addr in
  ignore (Cache.access (Core.cache t.core) addr);
  Scamv_telemetry.Collector.incr
    (if hit then "uarch.flush_reload.reload_hits"
     else "uarch.flush_reload.reload_misses");
  if hit then hit_cycles else miss_cycles

let was_cached t addr = reload_time t addr < (hit_cycles + miss_cycles) / 2
