module Machine = Scamv_isa.Machine
module Splitmix = Scamv_util.Splitmix

type view =
  | Full_cache
  | Region of { first_set : int; last_set : int }
  | Tlb_state
  | Total_time
type verdict = Distinguishable | Indistinguishable | Inconclusive

type config = {
  core : Core.config;
  view : view;
  repetitions : int;
  train_runs : int;
}

let default_config ?(view = Full_cache) () =
  { core = Core.cortex_a53; view; repetitions = 10; train_runs = 5 }

type experiment = {
  program : Scamv_arch.Isa.program;
  state1 : Machine.t;
  state2 : Machine.t;
  train : Machine.t list;
}

let run_guest core program machine =
  match program with
  | Scamv_arch.Isa.Aarch64_program p -> Core.run core p machine
  | Scamv_arch.Isa.Riscv_program p -> Core.run_rv64 core p machine

let take_view cfg core =
  match cfg.view with
  | Full_cache -> Cache.snapshot (Core.cache core)
  | Region { first_set; last_set } ->
    Cache.snapshot_region (Core.cache core) ~first_set ~last_set
  | Tlb_state -> [ (0, Tlb.snapshot (Core.tlb core)) ]
  | Total_time -> [ (0, [ Int64.of_int (Core.last_run_cycles core) ]) ]

(* One measured run: fresh predictor, training executions (cache cleared
   before each, predictor persists), then the measured execution from a
   cold cache.  With fault injection active the observation may come back
   perturbed or not at all ([None]). *)
let measured_run ?faults cfg core program ~train state =
  Core.reset_predictor core;
  List.iter
    (fun st ->
      Core.reset_cache core;
      ignore (run_guest core program (Machine.copy st)))
    (List.concat_map (fun st -> List.init cfg.train_runs (fun _ -> st)) train);
  Core.reset_cache core;
  ignore (run_guest core program (Machine.copy state));
  let view = take_view cfg core in
  match faults with None -> Some view | Some f -> Faults.apply f view

(* Repeat a measured run and demand identical cache dumps.  A dropped or
   perturbed measurement breaks the consistency check exactly like board
   noise does in the paper's setup, so the experiment degrades to
   [Inconclusive] instead of silently using a corrupt observation. *)
let stable_view ?faults cfg core rng program ~train state =
  let measure () =
    let seed, rng' = Splitmix.next !rng in
    rng := rng';
    Core.reseed core seed;
    measured_run ?faults cfg core program ~train state
  in
  match measure () with
  | None -> None
  | Some first ->
    let rec go i =
      if i >= cfg.repetitions then Some first
      else
        match measure () with
        | Some v when Cache.equal_snapshot v first -> go (i + 1)
        | _ -> None
    in
    go 1

let run_observed ?(seed = 0L) ?faults cfg { program; state1; state2; train } =
  let module Tm = Scamv_telemetry.Collector in
  let core = Core.create cfg.core in
  let rng = ref (Splitmix.of_seed seed) in
  let faults = Option.map (fun f -> Faults.start f ~run_seed:seed) faults in
  let verdict =
    match
      Tm.span "run" ~args:[ ("state", "1") ] (fun () ->
          stable_view ?faults cfg core rng program ~train state1)
    with
    | None -> Inconclusive
    | Some v1 -> (
      match
        Tm.span "run" ~args:[ ("state", "2") ] (fun () ->
            stable_view ?faults cfg core rng program ~train state2)
      with
      | None -> Inconclusive
      | Some v2 ->
        Tm.span "compare" (fun () ->
            if Cache.equal_snapshot v1 v2 then Indistinguishable
            else Distinguishable))
  in
  let injected = match faults with None -> 0 | Some f -> Faults.injected f in
  (* The core is private to this experiment, so its lifetime counters are
     exactly this experiment's work: flush them in one pass. *)
  List.iter (fun (k, n) -> Tm.add ("uarch." ^ k) n) (Core.counters core);
  Tm.add "uarch.faults.injected" injected;
  Tm.incr "uarch.experiments";
  (verdict, injected)

let run ?seed ?faults cfg experiment = fst (run_observed ?seed ?faults cfg experiment)

let observe_once ?(seed = 0L) cfg program ~train state =
  let core = Core.create ~seed cfg.core in
  (* No fault injection: the measurement is always present. *)
  Option.get (measured_run cfg core program ~train state)
