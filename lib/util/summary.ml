type t = { n : int; sum : float; mn : float; mx : float }

let empty = { n = 0; sum = 0.; mn = nan; mx = nan }

let add t x =
  if t.n = 0 then { n = 1; sum = x; mn = x; mx = x }
  else { n = t.n + 1; sum = t.sum +. x; mn = min t.mn x; mx = max t.mx x }

let merge a b =
  if a.n = 0 then b
  else if b.n = 0 then a
  else
    { n = a.n + b.n; sum = a.sum +. b.sum; mn = min a.mn b.mn; mx = max a.mx b.mx }

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let min_value t = t.mn
let max_value t = t.mx
