(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, one byte per
   step.  Used to checksum journal records; speed is irrelevant next to
   the cost of producing a record, so the plain byte-at-a-time loop is
   fine. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = update 0 s
let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)
