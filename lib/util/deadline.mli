(** Cooperative cancellation deadlines for supervised execution.

    A deadline token bounds one unit of work (the campaign driver creates
    one per program).  Instrumented loops {e cooperate}: the SAT search
    charges one unit per conflict and checks the token at its loop head,
    the blaster and pipeline poll at phase boundaries, and the observer of
    expiry raises {!Expired} after rewinding its own state — nothing is
    interrupted asynchronously, so solver sessions stay reusable.

    Two modes (see DESIGN.md, "Failure domains and supervision"):

    - {!Conflicts} is a {e virtual} deadline: a budget of charged work
      units.  Expiry depends only on the work performed, never on wall
      time or scheduling, so campaigns bounded this way stay byte-identical
      across [--jobs] levels.
    - {!Wall_seconds} is the wall-clock watchdog for service use.  The
      clock is only consulted every few hundred polls; under
      {!Stopwatch.frozen} it never advances, so frozen (deterministic)
      campaigns are unaffected.

    Expiry is sticky, and the flag is atomic so a supervisor on another
    domain may {!cancel} a token its worker polls. *)

type spec = Conflicts of int | Wall_seconds of float

val pp_spec : Format.formatter -> spec -> unit

type t

exception Expired of string
(** Raised by {!check} / {!poll}; the payload is {!describe}. *)

val create : ?clock:Stopwatch.clock -> spec -> t
(** Fresh un-expired token; [clock] (default {!Stopwatch.wall}) only
    matters for {!Wall_seconds}.
    @raise Invalid_argument on a non-positive limit. *)

val spec : t -> spec
val describe : t -> string

val cancel : t -> unit
(** Force expiry (safe from any domain). *)

val tick : t -> int -> unit
(** Charge [n] work units (virtual mode; a no-op signal for wall mode). *)

val used : t -> int
(** Work units charged so far. *)

val expired : t -> bool
(** Has the deadline passed?  Cheap enough for a hot loop: virtual mode is
    one comparison, wall mode reads the clock every 256th call. *)

val remaining_seconds : t -> float option
(** Seconds left before a wall deadline fires ([Some 0.] once expired or
    cancelled, [None] while a virtual deadline still has budget).  Always
    consults the clock — meant for slow waiters computing a select(2)
    timeout (the service's idle-connection loop), not for hot loops. *)

val check : t -> unit
(** @raise Expired if {!expired}. *)

(** {2 Ambient API}

    The current token is domain-local state ([Domain.DLS]), mirroring
    {!Scamv_telemetry.Collector}: installing a token on one domain is
    invisible to every other, and all operations are no-ops when no token
    is installed, so library code polls unconditionally. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install [t] as this domain's token for the callback (restoring the
    previous one afterwards, exceptions included). *)

val current : unit -> t option

val poll : unit -> unit
(** {!check} the ambient token, if any.  @raise Expired *)

val charge : int -> unit
(** {!tick} the ambient token, if any. *)
