(** Wall-clock timing for campaign statistics (generation time, execution
    time, time to first counterexample), behind a swappable clock.

    The clock indirection exists for reproducibility: a campaign run under
    {!frozen} measures every duration as exactly [0.], which makes journal
    CSVs and final statistics byte-identical across runs and across
    [--jobs] levels — the property the parallel-campaign acceptance test
    checks. *)

type clock = unit -> float
(** Monotone-enough time source in seconds. *)

val wall : clock
(** [Unix.gettimeofday]. *)

val frozen : clock
(** Always [0.]: every duration and elapsed time measures as zero. *)

type t
(** A running stopwatch. *)

val start : ?clock:clock -> unit -> t
(** Start measuring now ([clock] defaults to {!wall}). *)

val elapsed_s : t -> float
(** Seconds elapsed since [start], per the stopwatch's clock. *)

val time : ?clock:clock -> (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its duration in seconds. *)
