(** Streaming summary statistics (count / mean / min / max / total) for
    per-experiment timings. *)

type t

val empty : t
val add : t -> float -> t

val merge : t -> t -> t
(** Summary of the union of both sample sets; [empty] is its identity.
    Associative and commutative, which is what lets per-worker summaries
    be combined in any grouping. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the added samples; [0.] when empty. *)

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float
(** Largest sample; [nan] when empty. *)
