type clock = unit -> float

let wall = Unix.gettimeofday
let frozen () = 0.0

type t = { clock : clock; t0 : float }

let start ?(clock = wall) () = { clock; t0 = clock () }
let elapsed_s t = t.clock () -. t.t0

let time ?(clock = wall) f =
  let t0 = clock () in
  let v = f () in
  (v, clock () -. t0)
