(* Deterministic Domain-based worker pool with supervision.

   Work items are identified by their index 0..tasks-1.  Worker domains
   pull indices from a shared counter guarded by a mutex; each result is
   written into its slot of a result array and the consumer (the calling
   domain) is woken through a condition variable.  The consumer hands
   results to [consume] strictly in index order, whatever order the
   workers complete in, so any state folded over the results (journals,
   statistics, output files) is identical to a sequential run.

   Two lifecycles share that engine:

   - [run_supervised] / [run_ordered]: one batch, domains spawned for the
     call and joined before it returns (the original batch API).
   - a {e persistent} pool ([create] / [exec] / [shutdown]): domains are
     spawned once and then sleep between batches, so a long-running
     service can run many campaigns on the same warmed-up pool and stop it
     cleanly at the end.  [exec] runs exactly the same supervised batch
     protocol; batches are serialized (one at a time per pool).

   Supervision: a worker exception is captured as a per-item [Error] and
   delivered to the consumer in the item's index position — it is never
   re-raised inside the pool.  Exceptions the caller declares [fatal]
   additionally kill the worker domain that hit them (modelling a crashed
   worker, e.g. a stack overflow or an injected chaos kill); when the
   consumer drains such a failure it runs [on_restart] and spawns a
   replacement domain, so a campaign outlives any number of worker
   crashes.  Because every taken index is always filled (the failure cell
   is written before the domain exits), the drain order is total: the
   consumer never waits on a slot no live or future domain will fill.

   With [size/jobs = 1] no domain is spawned at all: the calling domain
   runs worker and consumer interleaved (compute item i, consume item i) —
   including the [on_restart] bookkeeping for fatal failures, so
   supervision counters are identical across jobs levels. *)

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

type 'a cell =
  | Empty
  | Done of 'a
  | Failed of failure

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool: jobs must be >= 0"
  else if jobs = 0 then default_jobs ()
  else jobs

(* ---- persistent pool ---- *)

(* The batch installed in the pool is type-erased: [run i] is a closure
   (built by [exec]) that computes item [i], deposits the result into the
   batch's own typed slot array, wakes the consumer, and returns whether
   the executing domain should keep pulling work ([false] = the item's
   exception was fatal, the domain "crashes").  [next] is the shared take
   counter, advanced under the pool lock. *)
type batch = { mutable next : int; tasks : int; run : int -> bool }

type t = {
  size : int;  (* worker count an exec batch sees (>= 1) *)
  lock : Mutex.t;
  work : Condition.t;  (* a batch was installed, or shutdown began *)
  filled : Condition.t;  (* some slot of the current batch was filled *)
  idle : Condition.t;  (* the current batch finished (exec serialization) *)
  mutable batch : batch option;
  mutable busy : bool;  (* an exec call is in progress *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

exception Shut_down

let () =
  Printexc.register_printer (function
    | Shut_down -> Some "Scamv_util.Pool.Shut_down"
    | _ -> None)

let rec domain_loop pool =
  Mutex.lock pool.lock;
  let rec await () =
    if pool.stopping then None
    else
      match pool.batch with
      | Some b when b.next < b.tasks ->
        let i = b.next in
        b.next <- i + 1;
        Some (b, i)
      | _ ->
        Condition.wait pool.work pool.lock;
        await ()
  in
  match await () with
  | None -> Mutex.unlock pool.lock
  | Some (b, i) ->
    Mutex.unlock pool.lock;
    if b.run i then domain_loop pool
(* [b.run i = false]: the item's exception was fatal — this domain exits
   to model the crash; the consumer respawns a replacement when it drains
   the failure. *)

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      filled = Condition.create ();
      idle = Condition.create ();
      batch = None;
      busy = false;
      stopping = false;
      domains = [];
    }
  in
  (* size = 1 keeps the pool domain-free: exec runs inline on the calling
     domain, preserving the sequential interleaving run_supervised
     documents for jobs = 1. *)
  if size > 1 then
    pool.domains <- List.init size (fun _ -> Domain.spawn (fun () -> domain_loop pool));
  pool

let size pool = pool.size

let exec pool ~tasks ?(fatal = fun _ -> false)
    ?(on_restart = fun (_ : int) -> ()) ~worker ~consume () =
  if tasks < 0 then invalid_arg "Pool.exec: tasks must be >= 0";
  (* Serialize batches: one exec at a time per pool, and none once
     shutdown has begun. *)
  Mutex.lock pool.lock;
  while pool.busy && not pool.stopping do
    Condition.wait pool.idle pool.lock
  done;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    raise Shut_down
  end;
  pool.busy <- true;
  Mutex.unlock pool.lock;
  let finish () =
    Mutex.lock pool.lock;
    pool.batch <- None;
    pool.busy <- false;
    Condition.broadcast pool.idle;
    Mutex.unlock pool.lock
  in
  match
    if tasks = 0 then ()
    else if pool.size = 1 then
      for i = 0 to tasks - 1 do
        match worker i with
        | v -> consume i (Ok v)
        | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          if fatal exn then on_restart i;
          consume i (Error { exn; backtrace })
      done
    else begin
      let slots = Array.make tasks Empty in
      let completed = ref 0 in
      let put i cell =
        Mutex.lock pool.lock;
        slots.(i) <- cell;
        incr completed;
        Condition.broadcast pool.filled;
        Mutex.unlock pool.lock
      in
      let run i =
        match worker i with
        | v ->
          put i (Done v);
          true
        | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          put i (Failed { exn; backtrace });
          not (fatal exn)
      in
      let b = { next = 0; tasks; run } in
      Mutex.lock pool.lock;
      pool.batch <- Some b;
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      (* Consumer abort: stop handing out new items, then wait for the
         in-flight ones so no domain still touches [slots] when we
         return — the batch is fully quiesced, the pool reusable. *)
      let cancel_and_quiesce () =
        Mutex.lock pool.lock;
        let taken = min b.next b.tasks in
        b.next <- b.tasks;
        while !completed < taken do
          Condition.wait pool.filled pool.lock
        done;
        Mutex.unlock pool.lock
      in
      match
        for i = 0 to tasks - 1 do
          Mutex.lock pool.lock;
          while (match slots.(i) with Empty -> true | _ -> false) do
            Condition.wait pool.filled pool.lock
          done;
          let cell = slots.(i) in
          slots.(i) <- Empty;
          (* release the result for collection *)
          Mutex.unlock pool.lock;
          match cell with
          | Done v -> consume i (Ok v)
          | Failed f ->
            if fatal f.exn then begin
              (* Restart unconditionally — even when no untaken work
                 remains a replacement is spawned (it parks in the idle
                 pool), so the restart count is a pure function of which
                 items crashed, not of the schedule: identical at every
                 pool size. *)
              on_restart i;
              Mutex.lock pool.lock;
              pool.domains <-
                Domain.spawn (fun () -> domain_loop pool) :: pool.domains;
              Mutex.unlock pool.lock
            end;
            consume i (Error f)
          | Empty -> assert false
        done
      with
      | () -> ()
      | exception exn ->
        cancel_and_quiesce ();
        finish ();
        raise exn
    end
  with
  | () -> finish ()
  | exception exn ->
    (* the inline (size = 1) path has no batch state to clear, but busy
       must still be released *)
    finish ();
    raise exn

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.stopping then begin
    (* idempotent: a second shutdown waits for the first to have joined *)
    Mutex.unlock pool.lock
  end
  else begin
    (* Drain: let an in-progress batch finish before the domains go. *)
    while pool.busy do
      Condition.wait pool.idle pool.lock
    done;
    pool.stopping <- true;
    Condition.broadcast pool.work;
    let domains = pool.domains in
    pool.domains <- [];
    Mutex.unlock pool.lock;
    List.iter Domain.join domains
  end

(* ---- deterministic slicing ---- *)

(* A sliced pool partitions a global worker budget into [slices] fixed
   sub-pools so independent campaigns can run concurrently, each on its
   own slice, without sharing batch state.  The widths are a pure
   function of (total, slices) — never of arrival timing — so a given
   slice index always commands the same worker count; combined with the
   index-ordered batch protocol this keeps every campaign's output
   byte-identical whatever else runs beside it. *)

type sliced = { members : t array }

let slice_widths ~total ~slices =
  if total < 1 then invalid_arg "Pool.slice_widths: total must be >= 1";
  if slices < 1 then invalid_arg "Pool.slice_widths: slices must be >= 1";
  (* Even split with the remainder on the lowest indices; a slice never
     drops below one worker, so oversubscribed configurations (slices >
     total) degrade to width-1 (inline, domain-free) slices rather than
     failing. *)
  let base = total / slices and rem = total mod slices in
  Array.init slices (fun s -> max 1 (base + if s < rem then 1 else 0))

let create_sliced ~total ~slices =
  {
    members =
      Array.map (fun w -> create ~size:w) (slice_widths ~total ~slices);
  }

let slice sl i = sl.members.(i)
let slice_count sl = Array.length sl.members
let slice_width sl i = sl.members.(i).size
let shutdown_sliced sl = Array.iter shutdown sl.members

(* ---- one-shot batch API ---- *)

let run_supervised ~jobs ~tasks ?fatal ?on_restart ~worker ~consume () =
  if tasks < 0 then invalid_arg "Pool.run_supervised: tasks must be >= 0";
  let jobs = resolve_jobs jobs in
  if tasks = 0 then ()
  else begin
    let pool = create ~size:(min jobs tasks) in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () -> exec pool ~tasks ?fatal ?on_restart ~worker ~consume ())
  end

let run_ordered ~jobs ~tasks ~worker ~consume =
  run_supervised ~jobs ~tasks ~worker
    ~consume:(fun i -> function
      | Ok v -> consume i v
      | Error { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace)
    ()

let map ~jobs f n =
  if n < 0 then invalid_arg "Pool.map: n must be >= 0";
  if n = 0 then [||]
  else begin
    let results = ref [] in
    run_ordered ~jobs ~tasks:n ~worker:f ~consume:(fun _ v ->
        results := v :: !results);
    (* consume runs in index order, so the reversed accumulator is 0..n-1 *)
    let arr = Array.make n (List.hd !results) in
    List.iteri (fun k v -> arr.(n - 1 - k) <- v) !results;
    arr
  end

let map_list ~jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ~jobs (fun i -> f arr.(i)) (Array.length arr))
