(* Deterministic Domain-based worker pool.

   Work items are identified by their index 0..tasks-1.  A fixed number of
   worker domains pull indices from a shared counter guarded by a mutex;
   each result is written into its slot of a result array and the consumer
   (the calling domain) is woken through a condition variable.  The
   consumer hands results to [consume] strictly in index order, whatever
   order the workers complete in, so any state folded over the results
   (journals, statistics, output files) is identical to a sequential run.

   With [jobs = 1] no domain is spawned at all: the calling domain runs
   worker and consumer interleaved (compute item i, consume item i), which
   is byte-for-byte the behaviour of the pre-pool sequential engines and
   keeps single-job runs free of any threading overhead. *)

type 'a cell =
  | Empty
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool: jobs must be >= 0"
  else if jobs = 0 then default_jobs ()
  else jobs

let run_ordered ~jobs ~tasks ~worker ~consume =
  if tasks < 0 then invalid_arg "Pool.run_ordered: tasks must be >= 0";
  let jobs = resolve_jobs jobs in
  if tasks = 0 then ()
  else if jobs = 1 then
    for i = 0 to tasks - 1 do
      consume i (worker i)
    done
  else begin
    let slots = Array.make tasks Empty in
    let lock = Mutex.create () in
    let filled = Condition.create () in
    let next = ref 0 in
    (* Set when the consumer aborts: workers finish their in-flight item
       and stop taking new ones, so a failure never wedges the pool. *)
    let cancelled = ref false in
    let take () =
      Mutex.lock lock;
      let i = if !cancelled then tasks else !next in
      if i < tasks then next := i + 1;
      Mutex.unlock lock;
      if i < tasks then Some i else None
    in
    let put i cell =
      Mutex.lock lock;
      slots.(i) <- cell;
      Condition.broadcast filled;
      Mutex.unlock lock
    in
    let rec worker_loop () =
      match take () with
      | None -> ()
      | Some i ->
        let cell =
          match worker i with
          | v -> Done v
          | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
        in
        put i cell;
        worker_loop ()
    in
    let domains =
      Array.init (min jobs tasks) (fun _ -> Domain.spawn worker_loop)
    in
    let cancel_and_join () =
      Mutex.lock lock;
      cancelled := true;
      Mutex.unlock lock;
      Array.iter Domain.join domains
    in
    match
      for i = 0 to tasks - 1 do
        Mutex.lock lock;
        while (match slots.(i) with Empty -> true | _ -> false) do
          Condition.wait filled lock
        done;
        let cell = slots.(i) in
        slots.(i) <- Empty;
        (* release the result for collection *)
        Mutex.unlock lock;
        match cell with
        | Done v -> consume i v
        | Failed (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | Empty -> assert false
      done
    with
    | () -> Array.iter Domain.join domains
    | exception exn ->
      cancel_and_join ();
      raise exn
  end

let map ~jobs f n =
  if n < 0 then invalid_arg "Pool.map: n must be >= 0";
  if n = 0 then [||]
  else begin
    let results = ref [] in
    run_ordered ~jobs ~tasks:n ~worker:f ~consume:(fun _ v ->
        results := v :: !results);
    (* consume runs in index order, so the reversed accumulator is 0..n-1 *)
    let arr = Array.make n (List.hd !results) in
    List.iteri (fun k v -> arr.(n - 1 - k) <- v) !results;
    arr
  end

let map_list ~jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ~jobs (fun i -> f arr.(i)) (Array.length arr))
