(* Deterministic Domain-based worker pool with supervision.

   Work items are identified by their index 0..tasks-1.  Worker domains
   pull indices from a shared counter guarded by a mutex; each result is
   written into its slot of a result array and the consumer (the calling
   domain) is woken through a condition variable.  The consumer hands
   results to [consume] strictly in index order, whatever order the
   workers complete in, so any state folded over the results (journals,
   statistics, output files) is identical to a sequential run.

   Supervision ([run_supervised]): a worker exception is captured as a
   per-item [Error] and delivered to the consumer in the item's index
   position — it is never re-raised inside the pool.  Exceptions the
   caller declares [fatal] additionally kill the worker domain that hit
   them (modelling a crashed worker, e.g. a stack overflow or an injected
   chaos kill); when the consumer drains such a failure it runs
   [on_restart] and spawns a replacement domain if untaken work remains,
   so a campaign outlives any number of worker crashes.  Because every
   taken index is always filled (the failure cell is written before the
   domain exits), the drain order is total: the consumer never waits on a
   slot no live or future domain will fill.

   With [jobs = 1] no domain is spawned at all: the calling domain runs
   worker and consumer interleaved (compute item i, consume item i) —
   including the [on_restart] bookkeeping for fatal failures, so
   supervision counters are identical across jobs levels. *)

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

type 'a cell =
  | Empty
  | Done of 'a
  | Failed of failure

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool: jobs must be >= 0"
  else if jobs = 0 then default_jobs ()
  else jobs

let run_supervised ~jobs ~tasks ?(fatal = fun _ -> false)
    ?(on_restart = fun (_ : int) -> ()) ~worker ~consume () =
  if tasks < 0 then invalid_arg "Pool.run_supervised: tasks must be >= 0";
  let jobs = resolve_jobs jobs in
  if tasks = 0 then ()
  else if jobs = 1 then
    for i = 0 to tasks - 1 do
      match worker i with
      | v -> consume i (Ok v)
      | exception exn ->
        let backtrace = Printexc.get_raw_backtrace () in
        if fatal exn then on_restart i;
        consume i (Error { exn; backtrace })
    done
  else begin
    let slots = Array.make tasks Empty in
    let lock = Mutex.create () in
    let filled = Condition.create () in
    let next = ref 0 in
    (* Set when the consumer aborts: workers finish their in-flight item
       and stop taking new ones, so a failure never wedges the pool. *)
    let cancelled = ref false in
    let take () =
      Mutex.lock lock;
      let i = if !cancelled then tasks else !next in
      if i < tasks then next := i + 1;
      Mutex.unlock lock;
      if i < tasks then Some i else None
    in
    let put i cell =
      Mutex.lock lock;
      slots.(i) <- cell;
      Condition.broadcast filled;
      Mutex.unlock lock
    in
    let rec worker_loop () =
      match take () with
      | None -> ()
      | Some i -> (
        match worker i with
        | v ->
          put i (Done v);
          worker_loop ()
        | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          put i (Failed { exn; backtrace });
          (* A fatal exception kills this domain (after the failure cell is
             in place, so the consumer cannot block on it); the consumer
             respawns a replacement when it drains the failure. *)
          if not (fatal exn) then worker_loop ())
    in
    let domains =
      ref (List.init (min jobs tasks) (fun _ -> Domain.spawn worker_loop))
    in
    let cancel_and_join () =
      Mutex.lock lock;
      cancelled := true;
      Mutex.unlock lock;
      List.iter Domain.join !domains
    in
    match
      for i = 0 to tasks - 1 do
        Mutex.lock lock;
        while (match slots.(i) with Empty -> true | _ -> false) do
          Condition.wait filled lock
        done;
        let cell = slots.(i) in
        slots.(i) <- Empty;
        (* release the result for collection *)
        Mutex.unlock lock;
        match cell with
        | Done v -> consume i (Ok v)
        | Failed f ->
          if fatal f.exn then begin
            (* Restart unconditionally — even when no untaken work remains
               a replacement is spawned (it exits immediately), so the
               restart count is a pure function of which items crashed,
               not of the schedule: identical at every jobs level. *)
            on_restart i;
            domains := Domain.spawn worker_loop :: !domains
          end;
          consume i (Error f)
        | Empty -> assert false
      done
    with
    | () -> List.iter Domain.join !domains
    | exception exn ->
      cancel_and_join ();
      raise exn
  end

let run_ordered ~jobs ~tasks ~worker ~consume =
  run_supervised ~jobs ~tasks ~worker
    ~consume:(fun i -> function
      | Ok v -> consume i v
      | Error { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace)
    ()

let map ~jobs f n =
  if n < 0 then invalid_arg "Pool.map: n must be >= 0";
  if n = 0 then [||]
  else begin
    let results = ref [] in
    run_ordered ~jobs ~tasks:n ~worker:f ~consume:(fun _ v ->
        results := v :: !results);
    (* consume runs in index order, so the reversed accumulator is 0..n-1 *)
    let arr = Array.make n (List.hd !results) in
    List.iteri (fun k v -> arr.(n - 1 - k) <- v) !results;
    arr
  end

let map_list ~jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ~jobs (fun i -> f arr.(i)) (Array.length arr))
