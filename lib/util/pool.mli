(** Deterministic Domain-based worker pool with supervision.

    The pool runs indexed work items on OCaml 5 domains and delivers the
    results to a single consumer {e strictly in index order}, regardless
    of the order in which workers finish.  Any state folded over the
    results — journal files, statistics, progress output — therefore ends
    up identical to a sequential run, which is what makes [--jobs N]
    campaigns bit-reproducible (see DESIGN.md Sec. 6).

    Thread-safety contract: [worker] runs on pool domains, possibly many at
    a time, and must only touch state confined to one work item; [consume]
    always runs on the calling domain, one call at a time, in index order,
    and is the only place that may touch shared state.

    Two lifecycles expose the same batch engine: the one-shot calls
    ({!run_supervised}, {!run_ordered}, {!map}) spawn domains for the call
    and join them before returning, while a {e persistent} pool
    ({!create} / {!exec} / {!shutdown}) keeps its domains parked between
    batches so a long-running service can run many campaigns on one
    warmed-up pool — see DESIGN.md Sec. 10. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int -> int
(** Normalizes a [--jobs] style argument: [0] means {!default_jobs},
    positive values pass through.
    @raise Invalid_argument on negative values. *)

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }
(** A captured worker exception, delivered at the failed item's index. *)

(** {2 Persistent pools}

    Idle-pool lifecycle: {!create} spawns the worker domains immediately
    (none for [size = 1]); between {!exec} batches they sleep on a
    condition variable — an idle pool burns no CPU and may be held open
    indefinitely.  {!shutdown} drains: it waits for an in-progress batch
    to finish, wakes every parked domain, joins them all, and any
    subsequent {!exec} raises {!Shut_down}.  [shutdown] is idempotent and
    safe to call on a pool that never ran a batch. *)

type t
(** A persistent pool of worker domains. *)

exception Shut_down
(** Raised by {!exec} once {!shutdown} has begun. *)

val create : size:int -> t
(** Spawn a pool of [size] worker domains ([size >= 1]; [1] spawns none
    and makes every batch run inline on the calling domain, exactly like
    [run_supervised ~jobs:1]).
    @raise Invalid_argument when [size < 1]. *)

val size : t -> int
(** The worker count every {!exec} batch runs with. *)

val exec :
  t ->
  tasks:int ->
  ?fatal:(exn -> bool) ->
  ?on_restart:(int -> unit) ->
  worker:(int -> 'a) ->
  consume:(int -> ('a, failure) result -> unit) ->
  unit ->
  unit
(** Run one supervised batch on the pool's domains — the exact
    {!run_supervised} protocol (index-ordered consumption, fatal-failure
    capture, [on_restart] + replacement-domain respawn), but on
    long-lived domains that return to the idle pool afterwards.  Batches
    are serialized: a concurrent [exec] on the same pool blocks until the
    current batch completes.  A consumer exception cancels the remaining
    items, quiesces the in-flight ones, and leaves the pool reusable.
    @raise Shut_down once {!shutdown} has begun. *)

val shutdown : t -> unit
(** Drain and stop: wait for any in-progress batch, reject further
    {!exec} calls (they raise {!Shut_down}), and join every worker
    domain.  Idempotent. *)

(** {2 Deterministic slicing}

    A sliced pool partitions a global worker budget of [total] domains
    into [slices] independent sub-pools, so a service can execute
    several campaigns concurrently — each on its own slice — while every
    campaign keeps the byte-identical-output guarantee of the batch
    protocol.  Widths are a pure function of [(total, slices)]: an even
    split with the remainder on the lowest slice indices, floored at one
    worker per slice (oversubscribed configurations degrade to width-1
    inline slices).  Slice [i] therefore always commands the same worker
    count, independent of what the other slices are doing. *)

type sliced
(** A fixed partition of worker domains into independent pools. *)

val slice_widths : total:int -> slices:int -> int array
(** The deterministic partition: [slice_widths ~total ~slices].(i) is
    the worker count of slice [i].
    @raise Invalid_argument when [total < 1] or [slices < 1]. *)

val create_sliced : total:int -> slices:int -> sliced
(** Spawn one persistent pool per slice, sized by {!slice_widths}. *)

val slice : sliced -> int -> t
(** The slice's own pool; pass it to [Campaign.run ~pool]. *)

val slice_count : sliced -> int
val slice_width : sliced -> int -> int

val shutdown_sliced : sliced -> unit
(** {!shutdown} every slice.  Idempotent. *)

(** {2 One-shot batches} *)

val run_supervised :
  jobs:int ->
  tasks:int ->
  ?fatal:(exn -> bool) ->
  ?on_restart:(int -> unit) ->
  worker:(int -> 'a) ->
  consume:(int -> ('a, failure) result -> unit) ->
  unit ->
  unit
(** Supervised variant of {!run_ordered}: a worker exception is captured
    as a per-item [Error] and handed to [consume] at the item's index —
    the pool itself never re-raises it, so one crashing item cannot abort
    the remaining work.

    [fatal] (default [fun _ -> false]) classifies exceptions that should
    be treated as a {e worker-domain crash}: the domain that hit one exits
    (after depositing the failure cell), and when the consumer drains that
    failure it first calls [on_restart index] and spawns a replacement
    domain.  The restart happens for {e every} drained fatal failure —
    even when no untaken work remains, in which case the replacement exits
    immediately — so the number of restarts is a pure function of which
    items crashed, identical at every [jobs] level (including [jobs = 1],
    where no domain exists but [on_restart] still fires).  Non-fatal
    exceptions leave the worker domain alive and pulling further items.

    Drain order (also the contract of {!run_ordered}): [consume] observes
    items [0, 1, 2, ...] with no gaps; every {e taken} index is always
    filled (workers deposit their result or failure before exiting for any
    reason), so the consumer never waits on a slot that no live or future
    domain will fill.  If [consume] itself raises at index [i], items
    [< i] have been fully consumed, no new item is started, in-flight
    items run to completion, and every domain is joined before the
    exception propagates — the pool is never left wedged.

    With [jobs = 1] everything runs sequentially on the calling domain
    with no domain spawned. *)

val run_ordered :
  jobs:int ->
  tasks:int ->
  worker:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  unit
(** [run_ordered ~jobs ~tasks ~worker ~consume] computes [worker i] for
    every [i] in [0..tasks-1] on [jobs] domains ([0] = all cores) and calls
    [consume i result] on the calling domain in increasing [i].

    With [jobs = 1] everything runs sequentially on the calling domain
    with no domain spawned ([worker 0], [consume 0], [worker 1], ...).

    An exception raised by [worker i] is re-raised (with its original
    backtrace) from the consumer at position [i]; an exception from either
    side cancels the remaining items under the drain-order contract of
    {!run_supervised} — workers finish their in-flight item and exit, all
    domains are joined — before the exception propagates, so a failing
    item never wedges the pool. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] is [[| f 0; ...; f (n-1) |]] computed on [jobs]
    domains. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] is [List.map f xs] computed on [jobs] domains. *)
