(** Deterministic Domain-based worker pool.

    The pool runs indexed work items on a fixed number of OCaml 5 domains
    and delivers the results to a single consumer {e strictly in index
    order}, regardless of the order in which workers finish.  Any state
    folded over the results — journal files, statistics, progress output —
    therefore ends up identical to a sequential run, which is what makes
    [--jobs N] campaigns bit-reproducible (see DESIGN.md Sec. 5).

    Thread-safety contract: [worker] runs on pool domains, possibly many at
    a time, and must only touch state confined to one work item; [consume]
    always runs on the calling domain, one call at a time, in index order,
    and is the only place that may touch shared state. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int -> int
(** Normalizes a [--jobs] style argument: [0] means {!default_jobs},
    positive values pass through.
    @raise Invalid_argument on negative values. *)

val run_ordered :
  jobs:int ->
  tasks:int ->
  worker:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  unit
(** [run_ordered ~jobs ~tasks ~worker ~consume] computes [worker i] for
    every [i] in [0..tasks-1] on [jobs] domains ([0] = all cores) and calls
    [consume i result] on the calling domain in increasing [i].

    With [jobs = 1] everything runs sequentially on the calling domain
    with no domain spawned ([worker 0], [consume 0], [worker 1], ...).

    An exception raised by [worker i] is re-raised (with its original
    backtrace) from the consumer at position [i]; an exception from either
    side cancels the remaining items — workers finish their in-flight item
    and exit, all domains are joined — before the exception propagates, so
    a failing item never wedges the pool. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] is [[| f 0; ...; f (n-1) |]] computed on [jobs]
    domains. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] is [List.map f xs] computed on [jobs] domains. *)
