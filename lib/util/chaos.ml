(* Deterministic fault injector.

   Every injection decision is a pure function of (chaos seed, site name,
   site-local key): [roll] hashes the three together and draws one float
   from a throwaway splitmix stream.  No state advances between rolls, so
   the decision for a given (site, key) does not depend on how many other
   rolls happened before it, on which domain asked, or on the schedule —
   which is what lets a chaos campaign stay byte-identical across
   [--jobs] levels and across resume boundaries (a resumed run re-rolls
   the same keys and gets the same faults).

   The only mutable state is the injection counter, an [Atomic.t] because
   sites roll from worker domains and the consumer domain alike. *)

type t = { rate : float; seed : int64; injections : int Atomic.t }

exception Killed of string

let () =
  Printexc.register_printer (function
    | Killed site -> Some (Printf.sprintf "Chaos.Killed(%s)" site)
    | _ -> None)

let create ?(rate = 0.0) ?(seed = 0L) () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Chaos.create: rate must be in [0, 1]";
  { rate; seed; injections = Atomic.make 0 }

let rate t = t.rate
let seed t = t.seed
let injections t = Atomic.get t.injections

(* FNV-1a over the site name, so distinct sites with the same key draw
   independent decisions. *)
let site_hash site =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    site;
  !h

let golden = 0x9E3779B97F4A7C15L

let roll t ~site ~key =
  t.rate > 0.0
  &&
  let mixed =
    Int64.add t.seed (Int64.add (site_hash site) (Int64.mul key golden))
  in
  let u, _ = Splitmix.float (Splitmix.of_seed mixed) in
  let hit = u < t.rate in
  if hit then Atomic.incr t.injections;
  hit

let kill t ~site ~key =
  if roll t ~site ~key then raise (Killed site)
