(* Cooperative cancellation tokens.

   A token is created per unit of supervised work (the campaign driver
   makes one per program) and handed to the hot loops through the ambient
   (domain-local) API, mirroring how the telemetry collector travels.  The
   loops *cooperate*: the SAT search charges one unit per conflict and
   checks [expired] at its loop head, the blaster and pipeline poll at
   phase boundaries, and whoever observes expiry raises {!Expired} after
   rewinding its own state — nothing is interrupted asynchronously.

   Two modes:

   - [Conflicts n] is the *virtual* deadline: purely a budget of charged
     work units (SAT conflicts).  Expiry is a function of the work
     performed, never of the scheduler or the machine, so a campaign with
     a virtual deadline produces byte-identical output at any [--jobs]
     level — the property the chaos acceptance tests check.

   - [Wall_seconds s] is the watchdog for service use: expiry consults
     the token's clock, but only every [wall_check_interval] polls so the
     hot loops don't pay a syscall per iteration.  Under
     [Stopwatch.frozen] the clock never advances and the deadline never
     fires, which keeps deterministic test campaigns unaffected.

   Expiry is sticky: once observed (or forced with [cancel]) the token
   stays expired.  The flag is an [Atomic.t] so a supervisor on another
   domain may cancel a token its worker is polling. *)

type spec = Conflicts of int | Wall_seconds of float

let pp_spec ppf = function
  | Conflicts n -> Format.fprintf ppf "%d conflicts" n
  | Wall_seconds s -> Format.fprintf ppf "%.3fs wall clock" s

type t = {
  spec : spec;
  clock : Stopwatch.clock;
  started : float;
  mutable used : int;  (* charged work units (virtual mode) *)
  mutable countdown : int;  (* polls until the next clock read (wall mode) *)
  cancelled : bool Atomic.t;
}

exception Expired of string

let () =
  Printexc.register_printer (function
    | Expired reason -> Some (Printf.sprintf "Deadline.Expired(%s)" reason)
    | _ -> None)

let wall_check_interval = 256

let create ?(clock = Stopwatch.wall) spec =
  (match spec with
  | Conflicts n when n < 1 ->
    invalid_arg "Deadline.create: conflict limit must be >= 1"
  | Wall_seconds s when s <= 0.0 ->
    invalid_arg "Deadline.create: wall deadline must be > 0"
  | _ -> ());
  {
    spec;
    clock;
    started = clock ();
    used = 0;
    countdown = wall_check_interval;
    cancelled = Atomic.make false;
  }

let spec t = t.spec

let describe t =
  match t.spec with
  | Conflicts n -> Printf.sprintf "virtual deadline of %d conflicts exceeded" n
  | Wall_seconds s -> Printf.sprintf "wall-clock deadline of %.3fs exceeded" s

let cancel t = Atomic.set t.cancelled true
let used t = t.used

let expired t =
  Atomic.get t.cancelled
  ||
  match t.spec with
  | Conflicts limit ->
    t.used >= limit
    && begin
         Atomic.set t.cancelled true;
         true
       end
  | Wall_seconds s ->
    t.countdown <- t.countdown - 1;
    t.countdown <= 0
    && begin
         t.countdown <- wall_check_interval;
         t.clock () -. t.started >= s
         && begin
              Atomic.set t.cancelled true;
              true
            end
       end

(* Unlike [expired], this always consults the clock: it serves waiters
   (e.g. the HTTP idle loop) that poll a few times per second and need an
   accurate select(2) timeout, not hot loops amortizing the syscall. *)
let remaining_seconds t =
  if Atomic.get t.cancelled then Some 0.0
  else
    match t.spec with
    | Conflicts limit ->
      if t.used >= limit then begin
        Atomic.set t.cancelled true;
        Some 0.0
      end
      else None
    | Wall_seconds s ->
      let rem = s -. (t.clock () -. t.started) in
      if rem <= 0.0 then begin
        Atomic.set t.cancelled true;
        Some 0.0
      end
      else Some rem

let tick t n = t.used <- t.used + n
let check t = if expired t then raise (Expired (describe t))

(* ---- ambient (domain-local) token ---- *)

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let with_current t f =
  let previous = Domain.DLS.get key in
  Domain.DLS.set key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key previous) f

let poll () = match Domain.DLS.get key with None -> () | Some t -> check t
let charge n = match Domain.DLS.get key with None -> () | Some t -> tick t n
