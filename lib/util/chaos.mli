(** Deterministic fault injector — the chaos harness behind
    [--chaos-rate]/[--chaos-seed].

    Each instrumented {e site} (a short dotted name) asks [roll] whether
    to inject a fault for a site-local {e key} (program index, journal
    record index, path-pair hash ...).  The decision is a pure function of
    (seed, site, key): no generator state advances between rolls, so
    decisions are independent of scheduling, of [--jobs], and of resume
    boundaries — a resumed chaos campaign re-draws exactly the faults the
    interrupted one saw.

    Sites currently wired in:
    - ["pool.worker"] — kill the worker domain before program [key] runs
      (raises {!Killed}; the supervised pool respawns the domain and the
      program is recorded as crashed).
    - ["journal.poison"] — corrupt the checksum of journal record [key]
      (recovery drops it and everything after it on resume).
    - ["journal.delay"] — defer flushing journal record [key], widening
      the torn-tail window a crash can hit.
    - ["solver.budget"] — report the path pair hashed into [key] as having
      exhausted its SAT budget (it is quarantined). *)

type t

exception Killed of string
(** Raised by {!kill} with the site name: a simulated worker crash. *)

val create : ?rate:float -> ?seed:int64 -> unit -> t
(** [rate] (default 0 = chaos off) is the per-roll injection probability.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val rate : t -> float
val seed : t -> int64

val injections : t -> int
(** Total faults injected so far, across all sites and domains. *)

val roll : t -> site:string -> key:int64 -> bool
(** Should a fault be injected at [site] for [key]?  Pure in
    (seed, site, key); counts into {!injections} when true. *)

val kill : t -> site:string -> key:int64 -> unit
(** [roll] and raise {!Killed} on a hit. *)
