(* Minimal JSON: just enough for the benchmark trajectory files
   (BENCH_*.json) to be emitted, re-read and validated without an external
   dependency.  Numbers are floats, as in JSON itself. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ---- emission ----

   One emitter over an abstract byte sink serves both the in-memory
   serializer (to_string) and the incremental channel writer (write):
   journal records streamed over a socket never materialize the whole
   document, and both paths produce the same bytes by construction. *)

type sink = { put_char : char -> unit; put_string : string -> unit }

let buffer_sink b =
  { put_char = Buffer.add_char b; put_string = Buffer.add_string b }

let channel_sink oc =
  { put_char = output_char oc; put_string = output_string oc }

(* JSON strings are byte strings here: printable ASCII passes through,
   everything else — control characters and all bytes >= 0x7f — escapes as
   [\u00XX].  The emitted document is therefore pure (7-bit) ASCII, safe
   to embed in any wire encoding, and because the parser maps [\u00XX]
   back to the single byte [XX] (ISO-8859-1 style, see below), arbitrary
   byte strings round-trip exactly. *)
let escape_string k s =
  k.put_char '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> k.put_string "\\\""
      | '\\' -> k.put_string "\\\\"
      | '\n' -> k.put_string "\\n"
      | '\r' -> k.put_string "\\r"
      | '\t' -> k.put_string "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        k.put_string (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> k.put_char c)
    s;
  k.put_char '"'

let number_string x =
  match Float.classify_float x with
  | FP_nan | FP_infinite ->
    (* nan/inf have no JSON spelling; null keeps the document parseable *)
    "null"
  | _ ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.9g" x

let emit ?(pretty = false) k t =
  let pad depth = if pretty then k.put_string (String.make (2 * depth) ' ') in
  let newline () = if pretty then k.put_char '\n' in
  let rec go depth = function
    | Null -> k.put_string "null"
    | Bool v -> k.put_string (if v then "true" else "false")
    | Num x -> k.put_string (number_string x)
    | Str s -> escape_string k s
    | Arr [] -> k.put_string "[]"
    | Arr items ->
      k.put_char '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            k.put_char ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      pad depth;
      k.put_char ']'
    | Obj [] -> k.put_string "{}"
    | Obj fields ->
      k.put_char '{';
      newline ();
      List.iteri
        (fun i (kf, v) ->
          if i > 0 then begin
            k.put_char ',';
            newline ()
          end;
          pad (depth + 1);
          escape_string k kf;
          k.put_string (if pretty then ": " else ":");
          go (depth + 1) v)
        fields;
      newline ();
      pad depth;
      k.put_char '}'
  in
  go 0 t;
  if pretty then k.put_char '\n'

let to_string ?pretty t =
  let b = Buffer.create 256 in
  emit ?pretty (buffer_sink b) t;
  Buffer.contents b

let write ?pretty oc t = emit ?pretty (channel_sink oc) t

(* ---- parsing (recursive descent) ---- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected %c at offset %d, got %c" c !pos c'
    | None -> parse_error "expected %c, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then parse_error "truncated \\u escape";
          (* Validate the four hex digits by hand: [int_of_string "0x.."]
             would raise Failure (not Parse_error) on junk and accepts
             OCaml-isms like underscores that are not legal JSON. *)
          let hex_digit c =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | _ -> parse_error "bad \\u escape at offset %d" !pos
          in
          let code = ref 0 in
          for i = 0 to 3 do
            code := (!code * 16) + hex_digit s.[!pos + i]
          done;
          let code = !code in
          pos := !pos + 4;
          (* Code points up to 0xff decode to the single byte they name
             (ISO-8859-1 style): the emitter escapes every non-ASCII byte
             as [\u00XX], so this is what makes arbitrary byte strings
             round-trip exactly.  Higher BMP code points are encoded as
             UTF-8 (surrogates untreated: our files never contain them). *)
          if code < 0x100 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> parse_error "bad escape at offset %d" !pos)
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> Num x
    | None -> parse_error "bad number %S at offset %d" text start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error "expected , or ] at offset %d" !pos
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> parse_error "expected , or } at offset %d" !pos
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
  v

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_str = function Str s -> Some s | _ -> None
