(** Minimal JSON values: emission, parsing and a few accessors, enough for
    the benchmark trajectory files ([BENCH_*.json]) and the validation
    service's wire format without an external dependency.  Not a
    general-purpose JSON library: surrogate pairs are not combined and
    numbers are all floats.

    Strings are {e byte} strings.  The emitter escapes control characters
    and every byte outside printable ASCII as [\u00XX], so emitted
    documents are pure 7-bit ASCII (safe on any wire), and the parser
    decodes [\u] escapes up to [ÿ] back to the single byte they name
    (ISO-8859-1 style; higher BMP code points decode to UTF-8).  Arbitrary
    byte strings therefore round-trip exactly through
    [of_string (to_string (Str s))] — the property the journal relies on
    to stream records with embedded failure text safely. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] adds 2-space indentation and a trailing newline.
    Integral numbers below 1e15 print without a decimal point; NaN and
    infinities (which JSON cannot spell) print as [null]. *)

val write : ?pretty:bool -> out_channel -> t -> unit
(** Incremental serializer: emits exactly the bytes of {!to_string}
    directly into the channel, without materializing the document — what
    the validation service uses to stream journal records.  The channel is
    not flushed. *)

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_float : t -> float option
val to_list : t -> t list option
val to_str : t -> string option
