(** Minimal JSON values: emission, parsing and a few accessors, enough for
    the benchmark trajectory files ([BENCH_*.json]) without an external
    dependency.  Not a general-purpose JSON library: surrogate pairs are
    not combined and numbers are all floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] adds 2-space indentation and a trailing newline.
    Integral numbers below 1e15 print without a decimal point; NaN and
    infinities (which JSON cannot spell) print as [null]. *)

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_float : t -> float option
val to_list : t -> t list option
val to_str : t -> string option
