(** CRC-32 checksums (IEEE 802.3 / zlib polynomial), used to frame journal
    records so a torn or corrupted tail is detected on resume. *)

val string : string -> int
(** [string s] is the CRC-32 of [s] as a non-negative int in
    [0, 0xFFFFFFFF].  [string "123456789" = 0xCBF43926]. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum: [update (string a) b] is
    [string (a ^ b)]. *)

val to_hex : int -> string
(** Lower-case, zero-padded 8-digit hex rendering. *)
