(* End-to-end integration tests: the full Scam-V pipeline on the paper's
   templates, checking the qualitative results of Table 1 / Fig. 7 at
   miniature scale.  These are the repository's ground-truth regression
   tests for the reproduction. *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Templates = Scamv_gen.Templates
module Pipeline = Scamv.Pipeline
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let platform = Platform.cortex_a53

let mini ?(programs = 6) ?(tests = 10) ?(seed = 99L) ~name ~template ~setup ~view () =
  let cfg = Campaign.make ~name ~template ~setup ~view ~programs ~tests_per_program:tests ~seed () in
  (Campaign.run cfg).Campaign.stats

let region = Region.paper_unaligned platform

let region_view =
  Executor.Region
    { first_set = region.Region.first_set; last_set = region.Region.last_set }

let pa_region = Region.paper_page_aligned platform

let pa_view =
  Executor.Region
    { first_set = pa_region.Region.first_set; last_set = pa_region.Region.last_set }

(* ---- pipeline unit behaviour ---- *)

let test_pipeline_produces_test_cases () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_a in
  let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  Alcotest.(check bool) "has refinable pair" true (Pipeline.pair_count session > 0);
  match Pipeline.next_test_case session with
  | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case"
  | Pipeline.Case tc ->
    Alcotest.(check bool) "training states present" true (tc.Pipeline.train <> []);
    Alcotest.(check bool) "states differ" false
      (Machine.equal_arch tc.Pipeline.state1 tc.Pipeline.state2)

let test_pipeline_test_cases_distinct () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_a in
  let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 10 do
    match Pipeline.next_test_case session with
    | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
      Alcotest.fail "exhausted too early"
    | Pipeline.Case tc ->
      let key =
        Format.asprintf "%a|%a" Machine.pp tc.Pipeline.state1 Machine.pp
          tc.Pipeline.state2
      in
      Alcotest.(check bool) "fresh test case" false (Hashtbl.mem seen key);
      Hashtbl.add seen key ()
  done

let test_pipeline_deterministic () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_c in
  let run () =
    let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
    let session = Pipeline.prepare ~seed:5L cfg tmpl.Templates.program in
    List.init 5 (fun _ ->
        match Pipeline.next_test_case session with
        | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ -> "-"
        | Pipeline.Case tc -> Format.asprintf "%a" Machine.pp tc.Pipeline.state1)
  in
  Alcotest.(check (list string)) "same seed, same test cases" (run ()) (run ())

let test_pipeline_unguided_straightline_program () =
  (* A branch-free program still generates (unguided) test cases. *)
  let tmpl = Scamv_gen.Gen.generate ~seed:3L Templates.stride in
  let cfg = Pipeline.default_config (Refinement.mpart_unguided platform region) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  match Pipeline.next_test_case session with
  | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case"
  | Pipeline.Case tc -> Alcotest.(check (list Alcotest.int)) "no training" [] (List.map (fun _ -> 0) tc.Pipeline.train)

(* ---- miniature campaigns: the paper's qualitative results ---- *)

let test_refinement_finds_siscloak_on_template_a () =
  let s =
    mini ~name:"A refined" ~template:Templates.template_a
      ~setup:(Refinement.mct_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check bool) "counterexamples found" true (s.Stats.counterexamples > 0);
  Alcotest.(check bool) "most programs leak" true
    (s.Stats.programs_with_counterexample >= s.Stats.programs / 2)

let test_refinement_finds_siscloak_on_template_c () =
  let s =
    mini ~name:"C refined" ~template:Templates.template_c
      ~setup:(Refinement.mct_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check bool) "counterexamples found" true (s.Stats.counterexamples > 0)

let test_unguided_finds_nothing_on_template_c () =
  let s =
    mini ~name:"C unguided" ~template:Templates.template_c ~setup:Refinement.mct_unguided
      ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "no counterexamples without refinement" 0
    s.Stats.counterexamples

let test_mspec1_sound_for_dependent_loads () =
  let s =
    mini ~name:"C mspec1" ~template:Templates.template_c
      ~setup:(Refinement.mspec1_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "Mspec1 validated on template C" 0
    s.Stats.counterexamples

let test_no_straight_line_speculation_leak () =
  let s =
    mini ~name:"D mspec'" ~template:Templates.template_d
      ~setup:(Refinement.mct_vs_mspec_straight_line ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "direct branches do not leak" 0 s.Stats.counterexamples

let test_prefetch_invalidates_mpart () =
  let s =
    mini ~programs:12 ~tests:20 ~name:"mpart refined" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform region) ~view:region_view ()
  in
  Alcotest.(check bool) "prefetching violates cache coloring" true
    (s.Stats.counterexamples > 0)

let test_page_aligned_mpart_sound () =
  let s =
    mini ~programs:12 ~tests:20 ~name:"mpart pa refined" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform pa_region) ~view:pa_view ()
  in
  Alcotest.(check Alcotest.int) "page-aligned coloring holds" 0 s.Stats.counterexamples

let test_refinement_beats_unguided_on_mpart () =
  let refined =
    mini ~programs:12 ~tests:20 ~name:"mpart r" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform region) ~view:region_view ()
  in
  let unguided =
    mini ~programs:12 ~tests:20 ~name:"mpart u" ~template:Templates.stride
      ~setup:(Refinement.mpart_unguided platform region) ~view:region_view ()
  in
  Alcotest.(check bool) "refinement finds more counterexamples" true
    (refined.Stats.counterexamples > unguided.Stats.counterexamples)

let () =
  Alcotest.run "scamv_pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "produces test cases" `Quick test_pipeline_produces_test_cases;
          Alcotest.test_case "test cases distinct" `Quick test_pipeline_test_cases_distinct;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "straight-line unguided" `Quick
            test_pipeline_unguided_straightline_program;
        ] );
      ( "paper results (miniature)",
        [
          Alcotest.test_case "SiSCloak on template A" `Slow
            test_refinement_finds_siscloak_on_template_a;
          Alcotest.test_case "SiSCloak on template C" `Slow
            test_refinement_finds_siscloak_on_template_c;
          Alcotest.test_case "unguided blind on C" `Slow
            test_unguided_finds_nothing_on_template_c;
          Alcotest.test_case "Mspec1 sound on C" `Slow test_mspec1_sound_for_dependent_loads;
          Alcotest.test_case "no straight-line leak" `Slow
            test_no_straight_line_speculation_leak;
          Alcotest.test_case "prefetch invalidates Mpart" `Slow test_prefetch_invalidates_mpart;
          Alcotest.test_case "page-aligned Mpart sound" `Slow test_page_aligned_mpart_sound;
          Alcotest.test_case "refinement beats unguided" `Slow
            test_refinement_beats_unguided_on_mpart;
        ] );
    ]
