(* End-to-end integration tests: the full Scam-V pipeline on the paper's
   templates, checking the qualitative results of Table 1 / Fig. 7 at
   miniature scale.  These are the repository's ground-truth regression
   tests for the reproduction. *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Platform = Scamv_isa.Platform
module Executor = Scamv_microarch.Executor
module Refinement = Scamv_models.Refinement
module Region = Scamv_models.Region
module Templates = Scamv_gen.Templates
module Pipeline = Scamv.Pipeline
module Campaign = Scamv.Campaign
module Stats = Scamv.Stats

let platform = Platform.cortex_a53

let mini ?(programs = 6) ?(tests = 10) ?(seed = 99L) ~name ~template ~setup ~view () =
  let cfg = Campaign.make ~name ~template ~setup ~view ~programs ~tests_per_program:tests ~seed () in
  (Campaign.run cfg).Campaign.stats

let region = Region.paper_unaligned platform

let region_view =
  Executor.Region
    { first_set = region.Region.first_set; last_set = region.Region.last_set }

let pa_region = Region.paper_page_aligned platform

let pa_view =
  Executor.Region
    { first_set = pa_region.Region.first_set; last_set = pa_region.Region.last_set }

(* ---- pipeline unit behaviour ---- *)

let test_pipeline_produces_test_cases () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_a in
  let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  Alcotest.(check bool) "has refinable pair" true (Pipeline.pair_count session > 0);
  match Pipeline.next_test_case session with
  | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case"
  | Pipeline.Case tc ->
    Alcotest.(check bool) "training states present" true (tc.Pipeline.train <> []);
    Alcotest.(check bool) "states differ" false
      (Machine.equal_arch tc.Pipeline.state1 tc.Pipeline.state2)

let test_pipeline_test_cases_distinct () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_a in
  let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 10 do
    match Pipeline.next_test_case session with
    | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
      Alcotest.fail "exhausted too early"
    | Pipeline.Case tc ->
      let key =
        Format.asprintf "%a|%a" Machine.pp tc.Pipeline.state1 Machine.pp
          tc.Pipeline.state2
      in
      Alcotest.(check bool) "fresh test case" false (Hashtbl.mem seen key);
      Hashtbl.add seen key ()
  done

(* ---- solver portfolio ---- *)

let test_portfolio_rescues_budget_exhausted_pair () =
  (* On this seeded program the baseline solver configuration blows a
     100-conflict budget before the first model, so alone it quarantines
     the pair; with a 4-config portfolio a challenger answers within the
     same budget and takes the pair over (counted in portfolio.races /
     portfolio.wins.<rank>). *)
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_a in
  let run portfolio =
    let c = Scamv_telemetry.Collector.create () in
    Scamv_telemetry.Collector.with_current c (fun () ->
        let cfg =
          {
            (Pipeline.default_config (Refinement.mct_vs_mspec ())) with
            Pipeline.budget = Some (Scamv_smt.Sat.budget ~conflicts:100 ());
            Pipeline.portfolio;
          }
        in
        let p = Pipeline.prepare ~seed:5L cfg tmpl.Templates.program in
        let cases = ref 0 and quarantined = ref 0 in
        (try
           for _ = 1 to 5 do
             match Pipeline.next_test_case p with
             | Pipeline.Case _ -> incr cases
             | Pipeline.Quarantined _ -> incr quarantined
             | Pipeline.Exhausted | Pipeline.Crashed _ -> raise Exit
           done
         with Exit -> ());
        let m =
          (Scamv_telemetry.Collector.report c).Scamv_telemetry.Collector.metrics
        in
        let counter = Scamv_telemetry.Metrics.counter m in
        ( !cases,
          !quarantined,
          counter "portfolio.races",
          List.init portfolio (fun r ->
              counter (Printf.sprintf "portfolio.wins.%d" r)) ))
  in
  let cases1, quarantined1, _, _ = run 1 in
  Alcotest.(check int) "baseline alone quarantines the pair" 1 quarantined1;
  Alcotest.(check int) "baseline alone yields no cases" 0 cases1;
  let cases4, quarantined4, races, wins = run 4 in
  Alcotest.(check int) "no quarantine with the portfolio" 0 quarantined4;
  Alcotest.(check bool) "portfolio produced cases" true (cases4 > 0);
  Alcotest.(check int) "exactly one race" 1 races;
  Alcotest.(check int) "baseline won no draw" 0 (List.hd wins);
  Alcotest.(check bool) "a challenger won the pair's draws" true
    (List.exists (fun w -> w > 0) (List.tl wins))

let test_campaign_portfolio_identity () =
  (* Without a SAT budget the baseline configuration never exhausts, so
     rescue never fires: campaign artifacts must be byte-identical for
     every portfolio size and every jobs level. *)
  let run ~portfolio ~jobs =
    let cfg =
      Campaign.make ~name:"portfolio-identity" ~template:Templates.template_a
        ~setup:(Refinement.mct_vs_mspec ()) ~programs:3 ~tests_per_program:3
        ~seed:2021L ~portfolio ~clock:Scamv_util.Stopwatch.frozen ()
    in
    let journal = Scamv.Journal.create () in
    let outcome = Campaign.run ~journal ~jobs cfg in
    ( Scamv.Journal.to_csv journal,
      Format.asprintf "%a" Stats.pp outcome.Campaign.stats )
  in
  let reference = run ~portfolio:1 ~jobs:1 in
  List.iter
    (fun (portfolio, jobs) ->
      Alcotest.(check (pair string string))
        (Printf.sprintf "portfolio %d, jobs %d" portfolio jobs)
        reference
        (run ~portfolio ~jobs))
    [ (1, 2); (2, 1); (2, 2); (4, 1); (4, 2) ]

let test_pipeline_deterministic () =
  let tmpl = Scamv_gen.Gen.generate ~seed:7L Templates.template_c in
  let run () =
    let cfg = Pipeline.default_config (Refinement.mct_vs_mspec ()) in
    let session = Pipeline.prepare ~seed:5L cfg tmpl.Templates.program in
    List.init 5 (fun _ ->
        match Pipeline.next_test_case session with
        | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ -> "-"
        | Pipeline.Case tc -> Format.asprintf "%a" Machine.pp tc.Pipeline.state1)
  in
  Alcotest.(check (list string)) "same seed, same test cases" (run ()) (run ())

let test_pipeline_unguided_straightline_program () =
  (* A branch-free program still generates (unguided) test cases. *)
  let tmpl = Scamv_gen.Gen.generate ~seed:3L Templates.stride in
  let cfg = Pipeline.default_config (Refinement.mpart_unguided platform region) in
  let session = Pipeline.prepare cfg tmpl.Templates.program in
  match Pipeline.next_test_case session with
  | Pipeline.Exhausted | Pipeline.Quarantined _ | Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case"
  | Pipeline.Case tc -> Alcotest.(check (list Alcotest.int)) "no training" [] (List.map (fun _ -> 0) tc.Pipeline.train)

(* ---- miniature campaigns: the paper's qualitative results ---- *)

let test_refinement_finds_siscloak_on_template_a () =
  let s =
    mini ~name:"A refined" ~template:Templates.template_a
      ~setup:(Refinement.mct_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check bool) "counterexamples found" true (s.Stats.counterexamples > 0);
  Alcotest.(check bool) "most programs leak" true
    (s.Stats.programs_with_counterexample >= s.Stats.programs / 2)

let test_refinement_finds_siscloak_on_template_c () =
  let s =
    mini ~name:"C refined" ~template:Templates.template_c
      ~setup:(Refinement.mct_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check bool) "counterexamples found" true (s.Stats.counterexamples > 0)

let test_unguided_finds_nothing_on_template_c () =
  let s =
    mini ~name:"C unguided" ~template:Templates.template_c ~setup:Refinement.mct_unguided
      ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "no counterexamples without refinement" 0
    s.Stats.counterexamples

let test_mspec1_sound_for_dependent_loads () =
  let s =
    mini ~name:"C mspec1" ~template:Templates.template_c
      ~setup:(Refinement.mspec1_vs_mspec ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "Mspec1 validated on template C" 0
    s.Stats.counterexamples

let test_no_straight_line_speculation_leak () =
  let s =
    mini ~name:"D mspec'" ~template:Templates.template_d
      ~setup:(Refinement.mct_vs_mspec_straight_line ()) ~view:Executor.Full_cache ()
  in
  Alcotest.(check Alcotest.int) "direct branches do not leak" 0 s.Stats.counterexamples

let test_prefetch_invalidates_mpart () =
  let s =
    mini ~programs:12 ~tests:20 ~name:"mpart refined" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform region) ~view:region_view ()
  in
  Alcotest.(check bool) "prefetching violates cache coloring" true
    (s.Stats.counterexamples > 0)

let test_page_aligned_mpart_sound () =
  let s =
    mini ~programs:12 ~tests:20 ~name:"mpart pa refined" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform pa_region) ~view:pa_view ()
  in
  Alcotest.(check Alcotest.int) "page-aligned coloring holds" 0 s.Stats.counterexamples

let test_refinement_beats_unguided_on_mpart () =
  let refined =
    mini ~programs:12 ~tests:20 ~name:"mpart r" ~template:Templates.stride
      ~setup:(Refinement.mpart_vs_mpart' platform region) ~view:region_view ()
  in
  let unguided =
    mini ~programs:12 ~tests:20 ~name:"mpart u" ~template:Templates.stride
      ~setup:(Refinement.mpart_unguided platform region) ~view:region_view ()
  in
  Alcotest.(check bool) "refinement finds more counterexamples" true
    (refined.Stats.counterexamples > unguided.Stats.counterexamples)

let () =
  Alcotest.run "scamv_pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "produces test cases" `Quick test_pipeline_produces_test_cases;
          Alcotest.test_case "test cases distinct" `Quick test_pipeline_test_cases_distinct;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "straight-line unguided" `Quick
            test_pipeline_unguided_straightline_program;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "rescues budget-exhausted pair" `Quick
            test_portfolio_rescues_budget_exhausted_pair;
          Alcotest.test_case "campaign identity across sizes and jobs" `Quick
            test_campaign_portfolio_identity;
        ] );
      ( "paper results (miniature)",
        [
          Alcotest.test_case "SiSCloak on template A" `Slow
            test_refinement_finds_siscloak_on_template_a;
          Alcotest.test_case "SiSCloak on template C" `Slow
            test_refinement_finds_siscloak_on_template_c;
          Alcotest.test_case "unguided blind on C" `Slow
            test_unguided_finds_nothing_on_template_c;
          Alcotest.test_case "Mspec1 sound on C" `Slow test_mspec1_sound_for_dependent_loads;
          Alcotest.test_case "no straight-line leak" `Slow
            test_no_straight_line_speculation_leak;
          Alcotest.test_case "prefetch invalidates Mpart" `Slow test_prefetch_invalidates_mpart;
          Alcotest.test_case "page-aligned Mpart sound" `Slow test_page_aligned_mpart_sound;
          Alcotest.test_case "refinement beats unguided" `Slow
            test_refinement_beats_unguided_on_mpart;
        ] );
    ]
