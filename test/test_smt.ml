module T = Scamv_smt.Term
module Sort = Scamv_smt.Sort
module Sat = Scamv_smt.Sat
module Solver = Scamv_smt.Solver
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval
module Blaster = Scamv_smt.Blaster

(* ------------------------------------------------------------------ *)
(* Term construction and folding                                       *)
(* ------------------------------------------------------------------ *)

let term = Alcotest.testable (fun ppf t -> T.pp ppf t) T.equal

let test_const_folding_arith () =
  Alcotest.check term "add" (T.bv_const 5L 8) (T.add (T.bv_const 2L 8) (T.bv_const 3L 8));
  Alcotest.check term "overflow wraps" (T.bv_const 0L 8)
    (T.add (T.bv_const 255L 8) (T.bv_const 1L 8));
  Alcotest.check term "sub" (T.bv_const 255L 8) (T.sub (T.bv_const 1L 8) (T.bv_const 2L 8));
  Alcotest.check term "mul" (T.bv_const 6L 8) (T.mul (T.bv_const 2L 8) (T.bv_const 3L 8))

let test_const_folding_compare () =
  Alcotest.check term "ult true" T.tt (T.ult (T.bv_const 1L 8) (T.bv_const 2L 8));
  Alcotest.check term "ult false" T.ff (T.ult (T.bv_const 2L 8) (T.bv_const 1L 8));
  Alcotest.check term "slt wraps" T.tt (T.slt (T.bv_const 0x80L 8) (T.bv_const 0L 8));
  Alcotest.check term "eq refl on vars" T.tt (T.eq (T.bv_var "x" 8) (T.bv_var "x" 8));
  Alcotest.check term "ule refl on vars" T.tt (T.ule (T.bv_var "x" 8) (T.bv_var "x" 8));
  Alcotest.check term "ult irrefl on vars" T.ff (T.ult (T.bv_var "x" 8) (T.bv_var "x" 8))

let test_bool_simplifications () =
  let x = T.bool_var "p" in
  Alcotest.check term "and true" x (T.and_ T.tt x);
  Alcotest.check term "and false" T.ff (T.and_ x T.ff);
  Alcotest.check term "or true" T.tt (T.or_ x T.tt);
  Alcotest.check term "not not" x (T.not_ (T.not_ x));
  Alcotest.check term "implies false" T.tt (T.implies T.ff x);
  Alcotest.check term "implies to self" T.tt (T.implies x x)

let test_unit_laws () =
  let x = T.bv_var "x" 16 in
  Alcotest.check term "x + 0" x (T.add x (T.bv_zero 16));
  Alcotest.check term "0 + x" x (T.add (T.bv_zero 16) x);
  Alcotest.check term "x - 0" x (T.sub x (T.bv_zero 16));
  Alcotest.check term "x * 1" x (T.mul x (T.bv_one 16));
  Alcotest.check term "x * 0" (T.bv_zero 16) (T.mul x (T.bv_zero 16));
  Alcotest.check term "x & 0" (T.bv_zero 16) (T.logand x (T.bv_zero 16));
  Alcotest.check term "x & ones" x (T.logand x (T.bv_const (-1L) 16))

let test_extract_concat () =
  Alcotest.check term "extract of const" (T.bv_const 0x3L 4)
    (T.extract ~hi:7 ~lo:4 (T.bv_const 0x34L 8));
  Alcotest.check term "full extract is id" (T.bv_var "x" 8)
    (T.extract ~hi:7 ~lo:0 (T.bv_var "x" 8));
  Alcotest.check term "concat consts" (T.bv_const 0xABCDL 16)
    (T.concat (T.bv_const 0xABL 8) (T.bv_const 0xCDL 8));
  (match T.extract ~hi:3 ~lo:2 (T.extract ~hi:7 ~lo:4 (T.bv_var "x" 16)) with
  | T.Extract (7, 6, T.Var ("x", _)) -> ()
  | t -> Alcotest.failf "nested extract not fused: %s" (T.to_string t))

let test_sort_errors () =
  let raises f = try ignore (f ()); false with T.Sort_error _ -> true in
  Alcotest.(check bool) "width mismatch add" true
    (raises (fun () -> T.add (T.bv_var "x" 8) (T.bv_var "y" 16)));
  Alcotest.(check bool) "bool in arith" true
    (raises (fun () -> T.add (T.bool_var "p") (T.bool_var "q")));
  Alcotest.(check bool) "mem equality rejected" true
    (raises (fun () -> T.eq (T.mem_var "m") (T.mem_var "m")));
  Alcotest.(check bool) "bad extract" true
    (raises (fun () -> T.extract ~hi:8 ~lo:0 (T.bv_var "x" 8)));
  Alcotest.(check bool) "bad width" true (raises (fun () -> T.bv_var "x" 65))

let test_select_over_store () =
  let m = T.mem_var "m" in
  let a = T.bv_var "a" 64 and v = T.bv_var "v" 64 in
  Alcotest.check term "read own write" v (T.select (T.store m a v) a);
  let b = T.bv_var "b" 64 in
  (match T.select (T.store m a v) b with
  | T.Ite (_, _, _) -> ()
  | t -> Alcotest.failf "expected ite, got %s" (T.to_string t));
  Alcotest.check term "read around distinct const write"
    (T.select m (T.bv_const 8L 64))
    (T.select (T.store m (T.bv_const 0L 64) v) (T.bv_const 8L 64))

let test_rename_and_free_vars () =
  let t = T.and_ (T.eq (T.bv_var "x" 8) (T.bv_var "y" 8)) (T.bool_var "p") in
  let t' = T.rename (fun s -> s ^ "_1") t in
  let names = List.map fst (T.free_vars t') in
  Alcotest.(check (list string)) "renamed vars" [ "p_1"; "x_1"; "y_1" ]
    (List.sort compare names)

let test_ite_folding () =
  let a = T.bv_var "a" 8 and b = T.bv_var "b" 8 in
  Alcotest.check term "ite true" a (T.ite T.tt a b);
  Alcotest.check term "ite false" b (T.ite T.ff a b);
  Alcotest.check term "ite same" a (T.ite (T.bool_var "c") a a)

(* ------------------------------------------------------------------ *)
(* SAT solver                                                          *)
(* ------------------------------------------------------------------ *)

let test_sat_trivial () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "v true" true (Sat.value s v)

let test_sat_unsat_unit_conflict () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Sat.add_clause s [ Sat.neg_of_var v ];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_empty_clause () =
  let s = Sat.create () in
  ignore (Sat.new_var s);
  Sat.add_clause s [];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_implication_chain () =
  let s = Sat.create () in
  let vars = Array.init 50 (fun _ -> Sat.new_var s) in
  for i = 0 to 48 do
    Sat.add_clause s [ Sat.neg_of_var vars.(i); Sat.pos vars.(i + 1) ]
  done;
  Sat.add_clause s [ Sat.pos vars.(0) ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "last implied" true (Sat.value s vars.(49))

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: unsat. p_{i,h} = pigeon i in hole h. *)
  let s = Sat.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.new_var s)) in
  for i = 0 to 2 do
    Sat.add_clause s [ Sat.pos p.(i).(0); Sat.pos p.(i).(1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_pigeonhole_4_3 () =
  let s = Sat.create () in
  let n = 4 and holes = 3 in
  let p = Array.init n (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for i = 0 to n - 1 do
    Sat.add_clause s (Array.to_list (Array.map Sat.pos p.(i)))
  done;
  for h = 0 to holes - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_incremental_blocking () =
  (* 2 free variables: exactly 4 assignments; block each in turn. *)
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a; Sat.neg_of_var a ] (* tautology keeps vars alive *);
  let count = ref 0 in
  let rec loop () =
    if Sat.solve s = Sat.Sat then begin
      incr count;
      let lit v = if Sat.value s v then Sat.neg_of_var v else Sat.pos v in
      Sat.add_clause s [ lit a; lit b ];
      if !count < 10 then loop ()
    end
  in
  loop ();
  Alcotest.(check Alcotest.int) "four models" 4 !count

let test_sat_budget_unknown () =
  (* Pigeonhole 6/5 takes well over one conflict; a one-conflict budget
     must come back Unknown, and an unbounded re-solve of the same solver
     must still decide Unsat (the learnt clauses survive the cutoff). *)
  let s = Sat.create () in
  let n = 6 and holes = 5 in
  let p = Array.init n (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for i = 0 to n - 1 do
    Sat.add_clause s (Array.to_list (Array.map Sat.pos p.(i)))
  done;
  for h = 0 to holes - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause s [ Sat.neg_of_var p.(i).(h); Sat.neg_of_var p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unknown under tight budget" true
    (Sat.solve ~budget:(Sat.budget ~conflicts:1 ()) s = Sat.Unknown);
  Alcotest.(check bool) "still decidable afterwards" true (Sat.solve s = Sat.Unsat)

let test_sat_budget_generous_is_exact () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.(check bool) "sat within budget" true
    (Sat.solve ~budget:(Sat.budget ~conflicts:1000 ~decisions:1000 ()) s = Sat.Sat)

let test_solver_budget_exceeded_surfaces () =
  (* A multiplication relation is hard for the bit-blasted CDCL core; a
     one-conflict session budget must surface Budget_exceeded rather than
     hang or crash. *)
  let x = T.bv_var "x" 32 and y = T.bv_var "y" 32 in
  let f = T.eq (T.mul x y) (T.bv_const 0x12345677L 32) in
  let s =
    Solver.make_session ~budget:(Sat.budget ~conflicts:1 ()) [ f; T.ugt x (T.bv_one 32) ]
  in
  match Solver.next_model s with
  | Solver.Budget_exceeded -> ()
  | Solver.Model _ -> Alcotest.fail "expected the budget to bite"
  | Solver.Exhausted -> Alcotest.fail "expected Budget_exceeded, got Exhausted"

(* Random 3-CNF cross-checked against brute force. *)
let brute_force_sat nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (List.exists (fun l ->
             let value = assignment.(Sat.var_of l) in
             if Sat.is_pos l then value else not value))
        clauses
    else begin
      assignment.(v) <- false;
      go assignment (v + 1)
      ||
      (assignment.(v) <- true;
       go assignment (v + 1))
    end
  in
  go (Array.make (nvars + 1) false) 1

let prop_sat_matches_brute_force =
  QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-CNF" ~count:300
    QCheck.(pair (int_bound 1000000) (int_range 8 30))
    (fun (seed, nclauses) ->
      let module Sm = Scamv_util.Splitmix in
      let rng = ref (Sm.of_seed (Int64.of_int seed)) in
      let nvars = 8 in
      let s = Sat.create () in
      let vars = Array.init nvars (fun _ -> Sat.new_var s) in
      let clauses = ref [] in
      for _ = 1 to nclauses do
        let clause =
          List.init 3 (fun _ ->
              let v, r = Sm.int !rng nvars in
              rng := r;
              let negated, r = Sm.bool !rng in
              rng := r;
              if negated then Sat.neg_of_var vars.(v) else Sat.pos vars.(v))
        in
        clauses := clause :: !clauses
      done;
      List.iter (Sat.add_clause s) !clauses;
      let expected = brute_force_sat nvars !clauses in
      let got = Sat.solve s = Sat.Sat in
      (* If SAT, the reported assignment must satisfy all clauses. *)
      let model_ok =
        (not got)
        || List.for_all
             (List.exists (fun l ->
                  let value = Sat.value s (Sat.var_of l) in
                  if Sat.is_pos l then value else not value))
             !clauses
      in
      Bool.equal expected got && model_ok)

let prop_sat_matches_brute_force_wide =
  (* Same cross-check with up to 12 variables and mixed clause widths
     (1..4 literals): unit clauses exercise root-level simplification and
     binary clauses the blocker fast path, which fixed-width 3-CNF never
     hits at the root. *)
  QCheck.Test.make ~name:"CDCL agrees with brute force on mixed-width CNF"
    ~count:200
    QCheck.(triple (int_bound 1000000) (int_range 2 12) (int_range 4 40))
    (fun (seed, nvars, nclauses) ->
      let module Sm = Scamv_util.Splitmix in
      let rng = ref (Sm.of_seed (Int64.of_int seed)) in
      let next n =
        let v, r = Sm.int !rng n in
        rng := r;
        v
      in
      let s = Sat.create () in
      let vars = Array.init nvars (fun _ -> Sat.new_var s) in
      let clauses = ref [] in
      for _ = 1 to nclauses do
        let width = 1 + next 4 in
        let clause =
          List.init width (fun _ ->
              let v = next nvars in
              if next 2 = 1 then Sat.neg_of_var vars.(v) else Sat.pos vars.(v))
        in
        clauses := clause :: !clauses
      done;
      List.iter (Sat.add_clause s) !clauses;
      let expected = brute_force_sat nvars !clauses in
      let got = Sat.solve s = Sat.Sat in
      let model_ok =
        (not got)
        || List.for_all
             (List.exists (fun l ->
                  let value = Sat.value s (Sat.var_of l) in
                  if Sat.is_pos l then value else not value))
             !clauses
      in
      Bool.equal expected got && model_ok)

(* Push/pop scopes: enumerating every model of a random CNF inside a
   pushed scope — clauses and blocking clauses alike retracted by the
   matching pop — must find exactly the brute-force model set, and a
   second push/re-assert/enumerate round over the same solver (now
   carrying learnt clauses, activities and saved phases from round one)
   must find it again.  This is the soundness contract behind reusing one
   live SAT state across an enumeration session's whole life. *)
let prop_push_pop_matches_brute_force =
  QCheck.Test.make
    ~name:"push/pop enumeration matches brute force on mixed-width CNF"
    ~count:60
    QCheck.(triple (int_bound 1000000) (int_range 2 8) (int_range 4 30))
    (fun (seed, nvars, nclauses) ->
      let module Sm = Scamv_util.Splitmix in
      let rng = ref (Sm.of_seed (Int64.of_int seed)) in
      let next n =
        let v, r = Sm.int !rng n in
        rng := r;
        v
      in
      let s = Sat.create () in
      let vars = Array.init nvars (fun _ -> Sat.new_var s) in
      let gen_clause () =
        List.init
          (1 + next 4)
          (fun _ ->
            let v = next nvars in
            if next 2 = 1 then Sat.neg_of_var vars.(v) else Sat.pos vars.(v))
      in
      let base = List.init (nclauses / 2) (fun _ -> gen_clause ()) in
      let scoped =
        List.init (nclauses - (nclauses / 2)) (fun _ -> gen_clause ())
      in
      (* Brute-force reference: the satisfying assignments of the whole
         CNF, as bit strings over the session variables. *)
      let expected = ref [] in
      for bits = 0 to (1 lsl nvars) - 1 do
        let value v = bits land (1 lsl (v - 1)) <> 0 in
        let sat_clause =
          List.exists (fun l ->
              if Sat.is_pos l then value (Sat.var_of l)
              else not (value (Sat.var_of l)))
        in
        if List.for_all sat_clause (base @ scoped) then
          expected :=
            String.init nvars (fun i ->
                if value vars.(i) then '1' else '0')
            :: !expected
      done;
      let expected = List.sort compare !expected in
      List.iter (Sat.add_clause s) base;
      let enumerate_scoped () =
        Sat.push s;
        List.iter (Sat.add_clause s) scoped;
        let found = ref [] in
        let overrun = ref false in
        let continue = ref true in
        while !continue do
          if List.length !found > 1 lsl nvars then begin
            overrun := true;
            continue := false
          end
          else
            match Sat.solve s with
            | Sat.Sat ->
              found :=
                String.init nvars (fun i ->
                    if Sat.value s vars.(i) then '1' else '0')
                :: !found;
              Sat.add_clause s
                (Array.to_list
                   (Array.map
                      (fun v ->
                        if Sat.value s v then Sat.neg_of_var v else Sat.pos v)
                      vars))
            | Sat.Unsat -> continue := false
            | Sat.Unknown -> continue := false
        done;
        Sat.pop s;
        if !overrun then None else Some (List.sort compare !found)
      in
      enumerate_scoped () = Some expected
      && enumerate_scoped () = Some expected)

let test_propagation_allocation () =
  (* Regression microbench for the watch-splice fix: re-propagating a long
     implication chain with warm watch vectors must update them in place —
     no per-visited-clause allocation (the old list-based splice allocated
     a cons per clause per visit, and re-splicing was quadratic). *)
  let n = 50_000 in
  let s = Sat.create () in
  let vars = Array.init n (fun _ -> Sat.new_var s) in
  for i = 0 to n - 2 do
    Sat.add_clause s [ Sat.neg_of_var vars.(i); Sat.pos vars.(i + 1) ]
  done;
  let assumptions = [| Sat.pos vars.(0) |] in
  let solve () =
    match Sat.solve ~assumptions ~n_assumptions:1 s with
    | Sat.Sat -> ()
    | Sat.Unsat | Sat.Unknown -> Alcotest.fail "implication chain should be sat"
  in
  solve ();
  (* Second solve re-propagates the whole chain with all arrays sized. *)
  let w0 = Gc.minor_words () in
  solve ();
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words to re-propagate %d clauses (limit %d)"
       delta n n)
    true
    (delta < float_of_int n)

(* ------------------------------------------------------------------ *)
(* Solver end-to-end on terms                                          *)
(* ------------------------------------------------------------------ *)

let solve_sat fs =
  match Solver.solve fs with
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected sat"

let solve_unsat fs =
  match Solver.solve fs with
  | Solver.Sat m -> Alcotest.failf "expected unsat, got model:@ %s" (Format.asprintf "%a" Model.pp m)
  | Solver.Unsat -> ()

let test_solver_eq_const () =
  let x = T.bv_var "x" 64 in
  let m = solve_sat [ T.eq x (T.bv_const 0xDEADL 64) ] in
  Alcotest.check Alcotest.int64 "x" 0xDEADL (Model.bv_exn m "x")

let test_solver_add_relation () =
  let x = T.bv_var "x" 16 and y = T.bv_var "y" 16 in
  let m = solve_sat [ T.eq (T.add x y) (T.bv_const 100L 16); T.eq x (T.bv_const 30L 16) ] in
  Alcotest.check Alcotest.int64 "y" 70L (Model.bv_exn m "y")

let test_solver_unsat_arith () =
  let x = T.bv_var "x" 8 in
  solve_unsat [ T.ult x (T.bv_const 4L 8); T.ugt x (T.bv_const 10L 8) ]

let test_solver_signed_vs_unsigned () =
  (* x > 0x7F unsigned but x < 0 signed at width 8: satisfiable. *)
  let x = T.bv_var "x" 8 in
  let m = solve_sat [ T.ugt x (T.bv_const 0x7FL 8); T.slt x (T.bv_zero 8) ] in
  let v = Model.bv_exn m "x" in
  Alcotest.(check bool) "msb set" true (Scamv_util.Bits.bit v 7)

let test_solver_shift () =
  let x = T.bv_var "x" 64 in
  let m = solve_sat [ T.eq (T.shl x (T.bv_const 6L 64)) (T.bv_const 0x1000L 64);
                      T.ult x (T.bv_const 0x100L 64) ] in
  Alcotest.check Alcotest.int64 "x = 0x40" 0x40L (Model.bv_exn m "x")

let test_solver_mul () =
  let x = T.bv_var "x" 16 in
  let m = solve_sat [ T.eq (T.mul x (T.bv_const 3L 16)) (T.bv_const 21L 16);
                      T.ult x (T.bv_const 10L 16) ] in
  Alcotest.check Alcotest.int64 "x = 7" 7L (Model.bv_exn m "x")

let test_solver_memory_basic () =
  let mem = T.mem_var "mem" in
  let a = T.bv_var "a" 64 in
  let m =
    solve_sat
      [ T.eq (T.select mem a) (T.bv_const 55L 64); T.eq a (T.bv_const 0x100L 64) ]
  in
  Alcotest.check Alcotest.int64 "mem[0x100]" 55L (Model.mem_lookup m "mem" 0x100L)

let test_solver_memory_consistency () =
  (* Same address must read the same value: a = b and mem[a] <> mem[b] is unsat. *)
  let mem = T.mem_var "mem" in
  let a = T.bv_var "a" 64 and b = T.bv_var "b" 64 in
  solve_unsat [ T.eq a b; T.neq (T.select mem a) (T.select mem b) ]

let test_solver_memory_distinct_addresses () =
  let mem = T.mem_var "mem" in
  let a = T.bv_var "a" 64 and b = T.bv_var "b" 64 in
  let m =
    solve_sat
      [
        T.neq (T.select mem a) (T.select mem b);
        T.eq a (T.bv_const 0L 64);
        T.eq b (T.bv_const 8L 64);
      ]
  in
  Alcotest.(check bool) "cells differ" true
    (not (Int64.equal (Model.mem_lookup m "mem" 0L) (Model.mem_lookup m "mem" 8L)))

let test_solver_nested_select () =
  (* mem[mem[0]] = 7 with mem[0] = 0x40 pins mem[0x40]. *)
  let mem = T.mem_var "mem" in
  let inner = T.select mem (T.bv_zero 64) in
  let m =
    solve_sat
      [ T.eq inner (T.bv_const 0x40L 64); T.eq (T.select mem inner) (T.bv_const 7L 64) ]
  in
  Alcotest.check Alcotest.int64 "mem[0]" 0x40L (Model.mem_lookup m "mem" 0L);
  Alcotest.check Alcotest.int64 "mem[0x40]" 7L (Model.mem_lookup m "mem" 0x40L)

let test_solver_store () =
  let mem = T.mem_var "mem" in
  let stored = T.store mem (T.bv_const 0x10L 64) (T.bv_const 99L 64) in
  let a = T.bv_var "a" 64 in
  let m =
    solve_sat
      [ T.eq (T.select stored a) (T.bv_const 99L 64); T.neq a (T.bv_const 0x10L 64) ]
  in
  (* The model must make mem[a] = 99 on its own since a <> 0x10. *)
  let av = Model.bv_exn m "a" in
  Alcotest.check Alcotest.int64 "mem[a]" 99L (Model.mem_lookup m "mem" av)

let test_solver_model_satisfies () =
  (* Any model returned must satisfy the formula per the evaluator. *)
  let x = T.bv_var "x" 64 and y = T.bv_var "y" 64 in
  let mem = T.mem_var "mem" in
  let f =
    T.and_l
      [
        T.ult x y;
        T.eq (T.select mem x) y;
        T.neq (T.select mem y) (T.bv_zero 64);
        T.eq (T.logand x (T.bv_const 0x3FL 64)) (T.bv_zero 64);
      ]
  in
  let m = solve_sat [ f ] in
  Alcotest.(check bool) "model satisfies" true (Eval.eval_bool m f)

let test_enumeration_count () =
  (* x : bv2 unconstrained -> exactly 4 models. *)
  let x = T.bv_var "x" 2 in
  let s = Solver.make_session [ T.eq x x ] ~track:[ ("x", Sort.Bv 2) ] in
  let rec drain acc =
    match Solver.next_model s with
    | Solver.Exhausted | Solver.Budget_exceeded -> acc
    | Solver.Model m -> drain (Model.bv_exn m "x" :: acc)
  in
  let models = drain [] in
  Alcotest.(check (list Alcotest.int64)) "all four values" [ 0L; 1L; 2L; 3L ]
    (List.sort compare models)

let test_enumeration_distinct () =
  let x = T.bv_var "x" 8 in
  let s = Solver.make_session [ T.ult x (T.bv_const 100L 8) ] in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 20 do
    match Solver.next_model s with
    | Solver.Exhausted | Solver.Budget_exceeded -> Alcotest.fail "exhausted too early"
    | Solver.Model m ->
      let v = Model.bv_exn m "x" in
      Alcotest.(check bool) "fresh model" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ()
  done

let test_enumeration_diversify_valid () =
  let x = T.bv_var "x" 16 and y = T.bv_var "y" 16 in
  let f = T.eq (T.add x y) (T.bv_const 500L 16) in
  let s = Solver.make_session ~seed:77L [ f ] in
  for _ = 1 to 10 do
    match Solver.next_model ~diversify:true s with
    | Solver.Exhausted | Solver.Budget_exceeded -> Alcotest.fail "exhausted too early"
    | Solver.Model m -> Alcotest.(check bool) "satisfies" true (Eval.eval_bool m f)
  done

(* Determinism: enumeration is a pure function of (formulas, seed). *)
let model_sequence ?graph ~seed ~diversify n assertions =
  let s = Solver.make_session ~seed ?graph assertions in
  List.init n (fun _ ->
      match Solver.next_model ~diversify s with
      | Solver.Model m -> Format.asprintf "%a" Model.pp m
      | Solver.Exhausted -> "<exhausted>"
      | Solver.Budget_exceeded -> "<budget>")

let enumeration_test_formulas () =
  let x = T.bv_var "x" 16 and y = T.bv_var "y" 16 in
  let mem = T.mem_var "mem" in
  [
    T.eq (T.add x y) (T.bv_const 500L 16);
    T.ult x (T.bv_const 400L 16);
    T.neq (T.select mem (T.bv_zero 64)) (T.bv_zero 64);
  ]

let test_enumeration_deterministic () =
  let fs = enumeration_test_formulas () in
  let run () = model_sequence ~seed:42L ~diversify:true 12 fs in
  Alcotest.(check (list string))
    "two fresh sessions, same seed, same model sequence" (run ()) (run ())

let test_enumeration_deterministic_shared_graph () =
  (* Sessions drawing from a shared blast graph must enumerate exactly the
     same models as each other: emission is per session, so the CNF a
     session solves is a function of its own assertions alone, warm cache
     or cold. *)
  let fs = enumeration_test_formulas () in
  let graph = Blaster.new_graph () in
  let cold = model_sequence ~graph ~seed:42L ~diversify:true 12 fs in
  let warm = model_sequence ~graph ~seed:42L ~diversify:true 12 fs in
  Alcotest.(check (list string)) "cold and warm cache sessions agree" cold warm

(* ---- incremental sessions ---- *)

let test_solver_extend_matches_oneshot () =
  (* Staged assertion (candidate first, refinement via extend on the same
     live session) must enumerate exactly the one-shot session's models:
     non-diversified draws are canonical (each is the lexicographically
     minimal unblocked model, a property of the formula alone). *)
  let fs = enumeration_test_formulas () in
  let staged_session =
    Solver.extend (Solver.make_session ~seed:42L [ List.hd fs ]) (List.tl fs)
  in
  let staged =
    List.init 8 (fun _ ->
        match Solver.next_model staged_session with
        | Solver.Model m -> Format.asprintf "%a" Model.pp m
        | Solver.Exhausted -> "<exhausted>"
        | Solver.Budget_exceeded -> "<budget>")
  in
  let fresh = model_sequence ~seed:42L ~diversify:false 8 fs in
  Alcotest.(check (list string)) "staged session = one-shot session" fresh staged

let test_solve_assuming () =
  let x = T.bv_var "x" 8 in
  let s = Solver.make_session ~seed:1L [ T.ult x (T.bv_const 10L 8) ] in
  (match Solver.solve_assuming s [ T.eq x (T.bv_const 5L 8) ] with
  | Solver.Model m -> Alcotest.(check int64) "x pinned" 5L (Model.bv_exn m "x")
  | Solver.Exhausted | Solver.Budget_exceeded ->
    Alcotest.fail "expected a model under a consistent assumption");
  (match Solver.solve_assuming s [ T.eq x (T.bv_const 20L 8) ] with
  | Solver.Exhausted -> ()
  | Solver.Model _ | Solver.Budget_exceeded ->
    Alcotest.fail "expected Exhausted under a contradictory assumption");
  (* An Unsat assumption query must not mark the session exhausted. *)
  match Solver.next_model s with
  | Solver.Model _ -> ()
  | Solver.Exhausted | Solver.Budget_exceeded ->
    Alcotest.fail "session no longer enumerable after assumption Unsat"

let test_session_push_pop_rewinds_blocking () =
  (* Blocking clauses asserted inside a pushed scope are retracted by the
     pop, so enumeration resumes from the first model blocked inside the
     scope (canonical order makes the re-draw deterministic). *)
  let fs = enumeration_test_formulas () in
  let s = Solver.make_session ~seed:42L fs in
  let take () =
    match Solver.next_model s with
    | Solver.Model m -> Format.asprintf "%a" Model.pp m
    | Solver.Exhausted | Solver.Budget_exceeded ->
      Alcotest.fail "expected a model"
  in
  let _m1 = take () in
  Solver.push s;
  let m2 = take () in
  let _m3 = take () in
  Solver.pop s;
  Alcotest.(check string) "pop retracts the scope's blocking clauses" m2
    (take ())

let test_block_model_replay () =
  (* blocked_models / block_model: replaying one session's frontier into a
     fresh session over the same assertions continues the enumeration
     exactly where the first session stood — the portfolio handoff. *)
  let fs = enumeration_test_formulas () in
  let take s =
    match Solver.next_model s with
    | Solver.Model m -> m
    | Solver.Exhausted | Solver.Budget_exceeded ->
      Alcotest.fail "expected a model"
  in
  let a = Solver.make_session ~seed:42L fs in
  for _ = 1 to 3 do
    ignore (take a)
  done;
  let frontier = Solver.blocked_models a in
  Alcotest.(check int) "three models blocked" 3 (List.length frontier);
  let b = Solver.make_session ~seed:42L fs in
  List.iter (Solver.block_model b) frontier;
  Alcotest.(check int) "handed-over models count as found" 3
    (Solver.models_found b);
  Alcotest.(check string) "challenger continues the sequence"
    (Format.asprintf "%a" Model.pp (take a))
    (Format.asprintf "%a" Model.pp (take b))

let test_blast_cache_cross_session_hits () =
  (* The second session over the same graph rebuilds nothing: every term it
     blasts is already a circuit node stamped by the first session, which
     the cache reports as cross-session hits.  Memory-free formulas only:
     array elimination happens above the blaster, in the solver. *)
  let x = T.bv_var "x" 16 and y = T.bv_var "y" 16 in
  let fs =
    [
      T.eq (T.add x y) (T.bv_const 500L 16);
      T.ult (T.mul x (T.bv_const 3L 16)) (T.bv_const 400L 16);
    ]
  in
  let graph = Blaster.new_graph () in
  let blast_all () =
    let b = Blaster.create ~graph () in
    List.iter (Blaster.assert_term b) fs;
    b
  in
  let b1 = blast_all () in
  Alcotest.(check int) "first session has no cross-session hits" 0
    (Blaster.cross_stats b1);
  let b2 = blast_all () in
  Alcotest.(check bool) "second session reuses the first's nodes" true
    (Blaster.cross_stats b2 > 0);
  let hits, _ = Blaster.cache_stats b2 in
  Alcotest.(check bool) "cross-session hits are a subset of hits" true
    (Blaster.cross_stats b2 <= hits)

let test_default_phase_gives_zeros () =
  (* With the default phase, an unconstrained variable should come out 0,
     mimicking Z3-style minimal models (important for the unguided-search
     behaviour of the reproduction). *)
  let x = T.bv_var "x" 64 and y = T.bv_var "y" 64 in
  let m = solve_sat [ T.eq x x; T.eq y y ] in
  Alcotest.check Alcotest.int64 "x defaults to 0" 0L (Model.bv_exn m "x")

(* Random-term differential test: blaster vs evaluator. *)
let gen_term_and_model seed =
  let module Sm = Scamv_util.Splitmix in
  let rng = ref (Sm.of_seed seed) in
  let next_int n =
    let v, r = Sm.int !rng n in
    rng := r;
    v
  in
  let next64 () =
    let v, r = Sm.next !rng in
    rng := r;
    v
  in
  let w = 1 + next_int 16 in
  let vars = [| ("a", next64 ()); ("b", next64 ()); ("c", next64 ()) |] in
  let rec gen_bv depth : T.t =
    if depth = 0 then
      match next_int 2 with
      | 0 ->
        let name, _ = vars.(next_int 3) in
        T.bv_var name w
      | _ -> T.bv_const (next64 ()) w
    else
      let a = gen_bv (depth - 1) and b = gen_bv (depth - 1) in
      match next_int 11 with
      | 0 -> T.add a b
      | 1 -> T.sub a b
      | 2 -> T.logand a b
      | 3 -> T.logor a b
      | 4 -> T.logxor a b
      | 5 -> T.neg a
      | 6 -> T.lognot a
      | 7 -> T.shl a (T.bv_const (Int64.of_int (next_int (w + 2))) w)
      | 8 -> T.lshr a (T.bv_const (Int64.of_int (next_int (w + 2))) w)
      | 9 -> T.ashr a (T.bv_const (Int64.of_int (next_int (w + 2))) w)
      | _ -> T.ite (gen_bool 0) a b
  and gen_bool depth : T.t =
    let a = gen_bv depth and b = gen_bv depth in
    match next_int 5 with
    | 0 -> T.eq a b
    | 1 -> T.ult a b
    | 2 -> T.ule a b
    | 3 -> T.slt a b
    | _ -> T.sle a b
  in
  let t = gen_bool 2 in
  let model =
    Array.fold_left
      (fun m (name, v) -> Model.add_var m name (Model.Bv (Scamv_util.Bits.truncate w v, w)))
      Model.empty vars
  in
  (t, model, w, vars)

let prop_blaster_agrees_with_eval =
  QCheck.Test.make ~name:"solver agrees with evaluator on random pinned terms"
    ~count:250 QCheck.int64 (fun seed ->
      let t, model, w, vars = gen_term_and_model seed in
      (* Pin the variables to the model's values and ask the solver whether
         the term can take the evaluator's value. *)
      let expected = Eval.eval_bool model t in
      let pins =
        Array.to_list vars
        |> List.map (fun (name, v) ->
               T.eq (T.bv_var name w) (T.bv_const v w))
      in
      let goal = if expected then t else T.not_ t in
      match Solver.solve (goal :: pins) with
      | Solver.Sat _ -> true
      | Solver.Unsat -> false)

let prop_solver_models_satisfy =
  QCheck.Test.make ~name:"returned models satisfy random formulas" ~count:150
    QCheck.int64 (fun seed ->
      let t, _, _, _ = gen_term_and_model seed in
      match Solver.solve [ t ] with
      | Solver.Sat m -> Eval.eval_bool m t
      | Solver.Unsat -> (
        (* Cross-check with the negation: both unsat would be a bug
           (the term is a pure predicate over free vars). *)
        match Solver.solve [ T.not_ t ] with Solver.Sat _ -> true | Solver.Unsat -> false))

(* ------------------------------------------------------------------ *)
(* Algebraic identities proved by UNSAT                                *)
(* ------------------------------------------------------------------ *)

(* The solver decides validity of an identity by refuting its negation:
   a disequality that comes back Unsat is a proof over all 2^128
   assignments — a strong end-to-end check of blaster + CDCL. *)
let prove_identity name lhs rhs =
  Alcotest.test_case name `Quick (fun () ->
      match Solver.solve [ T.neq lhs rhs ] with
      | Solver.Unsat -> ()
      | Solver.Sat m ->
        Alcotest.failf "identity refuted by:@ %s" (Format.asprintf "%a" Model.pp m))

let identity_cases =
  let w = 16 in
  let a = T.bv_var "a" w and b = T.bv_var "b" w in
  [
    prove_identity "(a + b) - b = a" (T.sub (T.add a b) b) a;
    prove_identity "a ^ a = 0" (T.logxor a a) (T.bv_zero w);
    prove_identity "a + a = a << 1" (T.add a a) (T.shl a (T.bv_one w));
    prove_identity "de morgan" (T.lognot (T.logand a b)) (T.logor (T.lognot a) (T.lognot b));
    prove_identity "neg a = ~a + 1" (T.neg a) (T.add (T.lognot a) (T.bv_one w));
    prove_identity "a * 3 = a + a + a"
      (T.mul a (T.bv_const 3L w))
      (T.add (T.add a a) a);
    prove_identity "(a & b) | (a & ~b) = a"
      (T.logor (T.logand a b) (T.logand a (T.lognot b)))
      a;
    prove_identity "lsr then shl masks low bits"
      (T.shl (T.lshr a (T.bv_const 4L w)) (T.bv_const 4L w))
      (T.logand a (T.bv_const 0xFFF0L w));
  ]

let bool_identity_cases =
  let a = T.bv_var "a" 16 and b = T.bv_var "b" 16 in
  let prove name prop =
    Alcotest.test_case name `Quick (fun () ->
        match Solver.solve [ T.not_ prop ] with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "proposition refuted")
  in
  [
    prove "ult trichotomy" (T.or_l [ T.ult a b; T.ult b a; T.eq a b ]);
    prove "ule antisymmetry" (T.implies (T.and_ (T.ule a b) (T.ule b a)) (T.eq a b));
    prove "slt vs sle" (T.iff (T.slt a b) (T.and_ (T.sle a b) (T.neq a b)));
    prove "unsigned overflow wraps"
      (T.implies
         (T.eq a (T.bv_const 0xFFFFL 16))
         (T.eq (T.add a (T.bv_one 16)) (T.bv_zero 16)));
  ]

(* Sort ordering: the solver's default tracked-variable order sorts keys
   with the monomorphic [Sort.compare]; its order — in particular where
   [Sort.Mem] lands — is part of the enumeration-determinism contract
   (blocking order, and with it the model sequence, depends on it), so
   this pins the exact order down. *)
let test_sort_compare_stable () =
  let sorts =
    [ Sort.Mem; Sort.Bv 64; Sort.Bool; Sort.Bv 1; Sort.Mem; Sort.Bv 8; Sort.Bool ]
  in
  let sort_testable = Alcotest.testable Sort.pp Sort.equal in
  Alcotest.(check (list sort_testable))
    "Bool < Bv (by width) < Mem"
    [ Sort.Bool; Sort.Bool; Sort.Bv 1; Sort.Bv 8; Sort.Bv 64; Sort.Mem; Sort.Mem ]
    (List.sort Sort.compare sorts);
  (* A total order: antisymmetric, with equality exactly on equal sorts. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int)
            (Format.asprintf "compare %a %a antisymmetric" Sort.pp a Sort.pp b)
            (Stdlib.compare (Sort.compare a b) 0)
            (- Stdlib.compare (Sort.compare b a) 0);
          Alcotest.(check bool)
            (Format.asprintf "compare %a %a consistent with equal" Sort.pp a Sort.pp b)
            (Sort.equal a b)
            (Sort.compare a b = 0))
        sorts)
    sorts

let () =
  Alcotest.run "scamv_smt"
    [
      ( "term",
        [
          Alcotest.test_case "const folding arith" `Quick test_const_folding_arith;
          Alcotest.test_case "const folding compare" `Quick test_const_folding_compare;
          Alcotest.test_case "bool simplification" `Quick test_bool_simplifications;
          Alcotest.test_case "unit laws" `Quick test_unit_laws;
          Alcotest.test_case "extract/concat" `Quick test_extract_concat;
          Alcotest.test_case "sort errors" `Quick test_sort_errors;
          Alcotest.test_case "select over store" `Quick test_select_over_store;
          Alcotest.test_case "rename / free vars" `Quick test_rename_and_free_vars;
          Alcotest.test_case "ite folding" `Quick test_ite_folding;
          Alcotest.test_case "sort ordering stable" `Quick test_sort_compare_stable;
        ] );
      ( "sat",
        [
          Alcotest.test_case "trivial sat" `Quick test_sat_trivial;
          Alcotest.test_case "unit conflict" `Quick test_sat_unsat_unit_conflict;
          Alcotest.test_case "empty clause" `Quick test_sat_empty_clause;
          Alcotest.test_case "implication chain" `Quick test_sat_implication_chain;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_sat_pigeonhole_3_2;
          Alcotest.test_case "pigeonhole 4/3" `Quick test_sat_pigeonhole_4_3;
          Alcotest.test_case "incremental blocking" `Quick test_sat_incremental_blocking;
          Alcotest.test_case "budget unknown" `Quick test_sat_budget_unknown;
          Alcotest.test_case "budget generous" `Quick test_sat_budget_generous_is_exact;
          QCheck_alcotest.to_alcotest prop_sat_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_sat_matches_brute_force_wide;
          QCheck_alcotest.to_alcotest prop_push_pop_matches_brute_force;
          Alcotest.test_case "propagation allocation bounded" `Quick
            test_propagation_allocation;
        ] );
      ( "solver",
        [
          Alcotest.test_case "eq const" `Quick test_solver_eq_const;
          Alcotest.test_case "add relation" `Quick test_solver_add_relation;
          Alcotest.test_case "unsat arith" `Quick test_solver_unsat_arith;
          Alcotest.test_case "signed vs unsigned" `Quick test_solver_signed_vs_unsigned;
          Alcotest.test_case "shift" `Quick test_solver_shift;
          Alcotest.test_case "mul" `Quick test_solver_mul;
          Alcotest.test_case "memory basic" `Quick test_solver_memory_basic;
          Alcotest.test_case "memory consistency" `Quick test_solver_memory_consistency;
          Alcotest.test_case "memory distinct" `Quick test_solver_memory_distinct_addresses;
          Alcotest.test_case "nested select" `Quick test_solver_nested_select;
          Alcotest.test_case "store" `Quick test_solver_store;
          Alcotest.test_case "model satisfies" `Quick test_solver_model_satisfies;
          Alcotest.test_case "default phase zeros" `Quick test_default_phase_gives_zeros;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "count bv2" `Quick test_enumeration_count;
          Alcotest.test_case "distinct" `Quick test_enumeration_distinct;
          Alcotest.test_case "diversify valid" `Quick test_enumeration_diversify_valid;
          Alcotest.test_case "budget exceeded surfaces" `Quick
            test_solver_budget_exceeded_surfaces;
          Alcotest.test_case "deterministic across sessions" `Quick
            test_enumeration_deterministic;
          Alcotest.test_case "deterministic with shared graph" `Quick
            test_enumeration_deterministic_shared_graph;
          Alcotest.test_case "blast cache cross-session hits" `Quick
            test_blast_cache_cross_session_hits;
        ] );
      ( "incremental sessions",
        [
          Alcotest.test_case "extend matches one-shot" `Quick
            test_solver_extend_matches_oneshot;
          Alcotest.test_case "solve_assuming" `Quick test_solve_assuming;
          Alcotest.test_case "push/pop rewinds blocking" `Quick
            test_session_push_pop_rewinds_blocking;
          Alcotest.test_case "block_model replay" `Quick test_block_model_replay;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_blaster_agrees_with_eval;
          QCheck_alcotest.to_alcotest prop_solver_models_satisfy;
        ] );
      ("identities", identity_cases @ bool_identity_cases);
    ]
