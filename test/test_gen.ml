module Gen = Scamv_gen.Gen
module Templates = Scamv_gen.Templates
module Ast = Scamv_isa.Ast
module Isa = Scamv_arch.Isa
module Reg = Scamv_isa.Reg

(* The shape tests below inspect AArch64 instruction arrays; unwrap the
   guest-program sum once per draw. *)
let arm = function
  | Isa.Aarch64_program p -> p
  | Isa.Riscv_program _ -> Alcotest.fail "aarch64 program expected"

(* ---- combinators ---- *)

let test_gen_deterministic () =
  let g = Gen.int_in 0 1000 in
  Alcotest.(check Alcotest.int) "same seed same value"
    (Gen.generate ~seed:5L g) (Gen.generate ~seed:5L g)

let test_gen_int_in_bounds () =
  for seed = 1 to 200 do
    let v = Gen.generate ~seed:(Int64.of_int seed) (Gen.int_in (-3) 7) in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 7)
  done

let test_gen_list_length () =
  let l = Gen.generate ~seed:1L (Gen.list 5 Gen.bool) in
  Alcotest.(check Alcotest.int) "length" 5 (List.length l)

let test_gen_choose_member () =
  for seed = 1 to 50 do
    let v = Gen.generate ~seed:(Int64.of_int seed) (Gen.choose [ 1; 2; 3 ]) in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_gen_opt_probabilities () =
  let count p =
    let hits = ref 0 in
    for seed = 1 to 500 do
      match Gen.generate ~seed:(Int64.of_int seed) (Gen.opt p (Gen.return ())) with
      | Some () -> incr hits
      | None -> ()
    done;
    !hits
  in
  Alcotest.(check Alcotest.int) "p=0 never" 0 (count 0.0);
  Alcotest.(check Alcotest.int) "p=1 always" 500 (count 1.0);
  let half = count 0.5 in
  Alcotest.(check bool) "p=0.5 plausible" true (half > 150 && half < 350)

let test_gen_frequency () =
  (* Weight 0 side never picked when the other weight dominates fully. *)
  for seed = 1 to 100 do
    let v =
      Gen.generate ~seed:(Int64.of_int seed)
        (Gen.frequency [ (1, Gen.return "a"); (99, Gen.return "b") ])
    in
    Alcotest.(check bool) "valid choice" true (v = "a" || v = "b")
  done;
  Alcotest.check_raises "empty frequency"
    (Invalid_argument "Gen.frequency: weights must be positive") (fun () ->
      ignore (Gen.generate ~seed:1L (Gen.frequency [])))

let test_distinct_regs () =
  for seed = 1 to 100 do
    let regs = Gen.generate ~seed:(Int64.of_int seed) (Gen.distinct_regs 8) in
    let uniq = List.sort_uniq Reg.compare regs in
    Alcotest.(check Alcotest.int) "distinct" 8 (List.length uniq)
  done

let test_reg_avoiding () =
  let avoid = List.filteri (fun i _ -> i < 30) Reg.all in
  let r = Gen.generate ~seed:3L (Gen.reg_avoiding avoid) in
  Alcotest.(check Alcotest.int) "only candidate" 30 (Reg.index r);
  Alcotest.check_raises "all excluded"
    (Invalid_argument "Gen.reg_avoiding: all registers excluded") (fun () ->
      ignore (Gen.generate ~seed:3L (Gen.reg_avoiding Reg.all)))

(* ---- templates ---- *)

let generate_many template n =
  List.init n (fun i -> Gen.generate ~seed:(Int64.of_int (i + 1)) template)

let prop_templates_valid =
  QCheck.Test.make ~name:"all templates produce valid programs" ~count:300
    QCheck.(pair int64 (int_bound 4))
    (fun (seed, idx) ->
      let template =
        List.nth
          [
            Templates.stride;
            Templates.template_a;
            Templates.template_b;
            Templates.template_c;
            Templates.template_d;
          ]
          idx
      in
      let { Templates.program; _ } = Gen.generate ~seed template in
      Isa.validate_program program = Ok ())

let test_stride_shape () =
  List.iter
    (fun { Templates.program; template_name } ->
      Alcotest.(check string) "name" "stride" template_name;
      let program = arm program in
      let n = Array.length program in
      Alcotest.(check bool) "3..5 loads" true (n >= 3 && n <= 5);
      Array.iter
        (fun i -> Alcotest.(check bool) "all loads" true (Ast.is_load i))
        program;
      (* All loads share one base register and use line-multiple offsets. *)
      let bases =
        Array.to_list program
        |> List.filter_map (function
             | Ast.Ldr (_, { Ast.base; _ }) -> Some base
             | _ -> None)
        |> List.sort_uniq Reg.compare
      in
      Alcotest.(check Alcotest.int) "single base" 1 (List.length bases);
      Array.iteri
        (fun i instr ->
          match instr with
          | Ast.Ldr (_, { Ast.offset = Ast.Imm v; _ }) ->
            Alcotest.(check bool) "equidistant line multiples" true
              (Int64.rem v 64L = 0L && Int64.to_int v / 64 mod (i + 1) >= 0)
          | _ -> Alcotest.fail "expected immediate offset")
        program)
    (generate_many Templates.stride 50)

let test_template_a_constraints () =
  List.iter
    (fun { Templates.program; _ } ->
      match arm program with
      | [|
       Ast.Ldr (r2, { Ast.base = _; offset = Ast.Reg r1; _ });
       Ast.Cmp (r1', Ast.Reg r4);
       Ast.B_cond (_, 4);
       Ast.Ldr (_, { Ast.base = _; offset = Ast.Reg r2'; _ });
      |] ->
        Alcotest.(check bool) "cmp uses the offset register" true (Reg.equal r1 r1');
        Alcotest.(check bool) "body uses the loaded register" true (Reg.equal r2 r2');
        Alcotest.(check bool) "r2 <> r1" false (Reg.equal r2 r1);
        Alcotest.(check bool) "r4 not in {r1, r2}" false
          (Reg.equal r4 r1 || Reg.equal r4 r2)
      | _ -> Alcotest.fail "unexpected template A shape")
    (generate_many Templates.template_a 100)

let test_template_b_shape () =
  List.iter
    (fun { Templates.program; _ } ->
      let program = arm program in
      let loads = Array.to_list program |> List.filter Ast.is_load |> List.length in
      Alcotest.(check bool) "1..4 loads" true (loads >= 1 && loads <= 4);
      let branch_idx =
        Array.to_list program
        |> List.mapi (fun i x -> (i, x))
        |> List.find_map (fun (i, x) ->
               match x with Ast.B_cond (_, t) -> Some (i, t) | _ -> None)
      in
      match branch_idx with
      | Some (i, target) ->
        Alcotest.(check bool) "branch skips the body" true
          (target = Array.length program && target > i + 1)
      | None -> Alcotest.fail "no conditional branch")
    (generate_many Templates.template_b 100)

let test_template_c_dependency () =
  List.iter
    (fun { Templates.program; _ } ->
      (* The last load's offset register must be data-dependent on the
         first load's destination. *)
      let instrs = Array.to_list (arm program) in
      let first_load_dest =
        List.find_map
          (function Ast.Ldr (d, _) -> Some d | _ -> None)
          instrs
        |> Option.get
      in
      let last_load_offset =
        List.rev instrs
        |> List.find_map (function
             | Ast.Ldr (_, { Ast.offset = Ast.Reg r; _ }) -> Some r
             | _ -> None)
        |> Option.get
      in
      let depends =
        Reg.equal last_load_offset first_load_dest
        || List.exists
             (function
               | Ast.Add (d, a, _) | Ast.Eor (d, a, _) ->
                 Reg.equal d last_load_offset && Reg.equal a first_load_dest
               | _ -> false)
             instrs
      in
      Alcotest.(check bool) "causal dependency" true depends)
    (generate_many Templates.template_c 100)

let test_template_d_shape () =
  List.iter
    (fun { Templates.program; _ } ->
      let program = arm program in
      let jump =
        Array.to_list program
        |> List.mapi (fun i x -> (i, x))
        |> List.find_map (fun (i, x) -> match x with Ast.B t -> Some (i, t) | _ -> None)
      in
      match jump with
      | Some (i, target) ->
        Alcotest.(check bool) "dead code exists" true (target > i + 1);
        for k = i + 1 to target - 1 do
          Alcotest.(check bool) "dead instructions are loads" true
            (Ast.is_load program.(k))
        done
      | None -> Alcotest.fail "no unconditional branch")
    (generate_many Templates.template_d 100)

let test_by_name () =
  List.iter
    (fun name ->
      ignore (Gen.generate ~seed:1L (Templates.by_name name));
      ignore (Gen.generate ~seed:1L (Templates.by_name ~isa:Isa.Riscv name)))
    Templates.names;
  Alcotest.check_raises "unknown"
    (Invalid_argument
       "Templates.by_name: unknown template \"X\" (expected one of: stride, \
        A, B, C, D)") (fun () -> ignore (Templates.by_name "X"))

let test_seed_diversity () =
  (* Different seeds should not all produce the same program. *)
  let programs =
    generate_many Templates.template_b 20
    |> List.map (fun t -> Isa.program_to_string t.Templates.program)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "diverse" true (List.length programs > 5)

let () =
  Alcotest.run "scamv_gen"
    [
      ( "combinators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "int_in bounds" `Quick test_gen_int_in_bounds;
          Alcotest.test_case "list length" `Quick test_gen_list_length;
          Alcotest.test_case "choose member" `Quick test_gen_choose_member;
          Alcotest.test_case "opt probabilities" `Quick test_gen_opt_probabilities;
          Alcotest.test_case "frequency" `Quick test_gen_frequency;
          Alcotest.test_case "distinct regs" `Quick test_distinct_regs;
          Alcotest.test_case "reg avoiding" `Quick test_reg_avoiding;
        ] );
      ( "templates",
        [
          QCheck_alcotest.to_alcotest prop_templates_valid;
          Alcotest.test_case "stride shape" `Quick test_stride_shape;
          Alcotest.test_case "template A constraints" `Quick test_template_a_constraints;
          Alcotest.test_case "template B shape" `Quick test_template_b_shape;
          Alcotest.test_case "template C dependency" `Quick test_template_c_dependency;
          Alcotest.test_case "template D shape" `Quick test_template_d_shape;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "seed diversity" `Quick test_seed_diversity;
        ] );
    ]
